#!/usr/bin/env python
"""The web interface's heatmap mode (§3, Figure 5(b)).

Builds the Ad-KMN cover for the current window, renders the centroid
"emitting points" heatmap as ASCII art to the terminal and as a PPM
image next to this script, and lists the centroid markers with their
green-to-red colours.

Run:  python examples/city_heatmap.py
"""

from pathlib import Path

import numpy as np

from repro.app.heatmap import render_ascii, render_ppm
from repro.app.webapp import WebInterface
from repro.data import generate_lausanne_dataset, LausanneConfig
from repro.geo.coords import BoundingBox
from repro.query.engine import QueryEngine


def main() -> None:
    dataset = generate_lausanne_dataset(LausanneConfig(days=1, target_tuples=0))
    engine = QueryEngine(dataset.tuples, h=500)
    web = WebInterface(engine)

    # Morning rush hour, when plume contrast peaks.
    t = float(dataset.tuples.t[int(np.searchsorted(dataset.tuples.t, 8.5 * 3600.0))])
    bounds = BoundingBox(0.0, 0.0, 6000.0, 4000.0)

    print("Ad-KMN centroids (the heatmap's emitting points):")
    for m in web.centroid_markers(t):
        print(
            f"  ({m.x:6.0f}, {m.y:6.0f})  {m.co2_ppm:6.0f} ppm  "
            f"{m.level.name:10s} {m.color}"
        )

    heatmap = web.heatmap(t, bounds, nx=72, ny=24)
    lo, hi = heatmap.value_range()
    print(f"\nCO2 heatmap at 08:30 ({lo:.0f}..{hi:.0f} ppm, north up):\n")
    print(render_ascii(heatmap))

    out = Path(__file__).with_name("city_heatmap.ppm")
    render_ppm(web.heatmap(t, bounds, nx=360, ny=240), out)
    print(f"\nfull-resolution image written to {out}")

    # The single-point-query mode for a clicked position.
    reading = web.point_query(t, 3000.0, 2200.0)
    print(f"\nclicked city centre: {reading.text}")


if __name__ == "__main__":
    main()
