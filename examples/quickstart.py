#!/usr/bin/env python
"""EnviroMeter quickstart.

Generates a small community-sensed CO2 dataset, builds an adaptive model
cover with Ad-KMN, and answers a point query three ways — exactly the
pipeline of the paper's Figures 1 and 3, in ~40 lines of API use.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import AdKMNConfig, fit_adkmn
from repro.data import generate_lausanne_dataset, LausanneConfig
from repro.data.tuples import QueryTuple
from repro.data.windows import window
from repro.query import ModelCoverProcessor, NaiveProcessor, IndexedProcessor


def main() -> None:
    # 1. Community sensing: two buses, one day, CO2 at 20 s intervals.
    dataset = generate_lausanne_dataset(LausanneConfig(days=1, target_tuples=0))
    print(f"sensed {len(dataset)} raw tuples b_i = (t, x, y, s)")

    # 2. Take one window W_c of 240 tuples (the paper's largest H) from
    #    mid-morning and learn the adaptive model cover.
    c = int(np.searchsorted(dataset.tuples.t, 10.0 * 3600.0)) // 240
    w = window(dataset.tuples, c, 240)
    result = fit_adkmn(w, AdKMNConfig(tau_n_pct=2.0))
    cover = result.cover
    print(
        f"Ad-KMN fitted {cover.size} models in {result.rounds} round(s); "
        f"worst region error {result.worst_error_pct:.2f}% (tau_n = 2%)"
    )
    print(f"serialized cover: {cover.wire_size_bytes()} bytes "
          f"(vs {len(w) * 4 * 8} bytes of raw tuples)")

    # 3. Answer the same point query with all three methods of §2.2.
    q = QueryTuple(t=float(w.t[120]), x=2200.0, y=1700.0)
    for proc in (
        NaiveProcessor(w, radius_m=1000.0),
        IndexedProcessor(w, kind="rtree", radius_m=1000.0),
        ModelCoverProcessor(cover),
    ):
        res = proc.process(q)
        shown = f"{res.value:7.1f} ppm" if res.answered else "   no data"
        print(f"  {proc.name:12s} -> {shown}   (support: {res.support} tuples)")

    truth = dataset.field.value(q.t, q.x, q.y)
    print(f"  {'ground truth':12s} -> {truth:7.1f} ppm")


if __name__ == "__main__":
    main()
