#!/usr/bin/env python
"""Reproduce the bandwidth experiment interactively (§4.2, Figure 7(b)).

Runs the same 100-tuple continuous query through the baseline client and
the model-cache client over a simulated GPRS link, prints both traffic
ledgers and the headline ratios, then repeats the comparison over 3G to
show the ratios are a property of the protocol, not the bearer.

Run:  python examples/bandwidth_audit.py
"""

from repro.client import BaselineClient, ModelCacheClient
from repro.data import generate_lausanne_dataset, LausanneConfig
from repro.network import GPRS, UMTS, CellularLink
from repro.query.continuous import uniform_query_tuples, waypoint_trajectory
from repro.server import EnviroMeterServer


def run_pair(server, queries, bearer):
    baseline = BaselineClient(server, CellularLink(bearer))
    baseline.run_continuous(queries)
    cache = ModelCacheClient(server, CellularLink(bearer))
    cache.run_continuous(queries)
    return baseline.stats, cache.stats


def report(name, base, cache):
    print(f"--- {name} ---")
    print(f"{'technique':12s} {'sent (kb)':>10s} {'recv (kb)':>10s} {'time (s)':>9s}")
    for label, s in (("baseline", base), ("model-cache", cache)):
        print(
            f"{label:12s} {s.sent_kb:10.2f} {s.received_kb:10.2f} "
            f"{s.network_time_s:9.2f}"
        )
    print(
        f"{'ratios':12s} {base.sent_bytes / cache.sent_bytes:9.0f}x "
        f"{base.received_bytes / cache.received_bytes:9.0f}x "
        f"{base.network_time_s / cache.network_time_s:8.0f}x"
    )
    print()


def main() -> None:
    dataset = generate_lausanne_dataset(LausanneConfig(days=1, target_tuples=0))
    server = EnviroMeterServer(h=240)
    server.ingest(dataset.tuples)

    t0 = float(dataset.tuples.t[1500])
    trajectory = waypoint_trajectory(
        [(1200.0, 1100.0), (3000.0, 2200.0), (5000.0, 3000.0)],
        t0,
        t0 + 100 * 60.0,
    )
    queries = uniform_query_tuples(trajectory, t0, 60.0, 100)
    print("continuous query: 100 tuples at 60 s intervals "
          "(paper: 113x sent, 31x received, ~100x time)\n")

    report("GPRS", *run_pair(server, queries, GPRS))
    report("UMTS / 3G", *run_pair(server, queries, UMTS))


if __name__ == "__main__":
    main()
