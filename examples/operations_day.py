#!/usr/bin/env python
"""A day of platform operations.

The operator's view of EnviroMeter: replay a day of community-sensed
data into the server as it would arrive from the buses, screen each
delivery for sensor faults, watch the dashboard as covers get built
lazily, and ask where the next sensor should go (the widest-uncertainty
region).

Run:  python examples/operations_day.py
"""

import numpy as np

from repro.app.dashboard import Dashboard
from repro.core.adkmn import AdKMNConfig, fit_adkmn
from repro.core.confidence import ConfidenceCover
from repro.data import generate_lausanne_dataset, LausanneConfig
from repro.data.quality import QualityConfig, screen_window
from repro.data.tuples import TupleBatch
from repro.server import EnviroMeterServer
from repro.server.stream import StreamReplayer


def inject_faults(batch: TupleBatch, seed: int = 3) -> TupleBatch:
    """Corrupt ~1 % of the day's readings the way real boxes fail:
    stuck ADCs, GPS glitches, uplink retries."""
    rng = np.random.default_rng(seed)
    t = batch.t.copy(); t.flags.writeable = True
    x = batch.x.copy(); x.flags.writeable = True
    y = batch.y.copy(); y.flags.writeable = True
    s = batch.s.copy(); s.flags.writeable = True
    n = len(batch)
    for i in rng.choice(n, size=n // 300, replace=False):
        s[i] = -5.0                      # stuck sensor
    for i in rng.choice(n, size=n // 300, replace=False):
        x[i] = -20_000.0                 # GPS glitch
    for i in rng.choice(n, size=n // 300, replace=False):
        s[i] = s[i] + 4_000.0            # transient spike
    return TupleBatch(t, x, y, s)


def main() -> None:
    dataset = generate_lausanne_dataset(LausanneConfig(days=1, target_tuples=0))
    dirty = inject_faults(dataset.tuples)

    # Screen the stream before it reaches the modeling pipeline.
    clean, report = screen_window(dirty, QualityConfig(), region=dataset.region)
    print(
        f"quality screen: {report.total} tuples in, {report.kept} kept — "
        f"rejected {report.out_of_range} out-of-range, "
        f"{report.out_of_region} off-region, {report.spikes} spikes, "
        f"{report.duplicates} duplicates "
        f"({report.rejection_rate:.1%} rejection rate)"
    )

    # Replay the clean stream into the server in 15-minute deliveries,
    # with an app user querying every 2 hours (forcing lazy cover builds).
    server = EnviroMeterServer(h=240)
    replayer = StreamReplayer(server, batch_interval_s=900.0)
    stats = replayer.run(clean, query_every_s=2 * 3600.0)
    print(
        f"\nreplayed {stats.tuples} tuples in {stats.batches} deliveries; "
        f"{stats.covers_built} covers built lazily for "
        f"{server.served_values} user queries; "
        f"{stats.windows_sealed} windows sealed"
    )

    # The dashboard at end of day.
    now = stats.final_time
    print("\n" + Dashboard(server, dataset.region).render(now))

    # Where should the next sensor go?  The widest-uncertainty region.
    c = server.current_window(now)
    w = server.db.window_view(c)  # cached zero-copy view of W_c
    result = fit_adkmn(w, AdKMNConfig(), window_c=c)
    conf = ConfidenceCover(result, w)
    k = conf.worst_region()
    cx, cy = result.cover.centroids[k]
    print(
        f"\nsensing gap: region {k} around ({cx:.0f}, {cy:.0f}) has the "
        f"widest residual spread ({conf.region_std(k):.1f} ppm) — "
        f"route the next sensor-equipped bus there."
    )


if __name__ == "__main__":
    main()
