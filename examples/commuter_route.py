#!/usr/bin/env python
"""A commuter's morning on EnviroMeter (the Android app scenario, §3).

A user opens the app during the morning commute: checks the CO2 at their
current position, records their route across town, and reads the OSHA
verdict — all over a simulated GPRS link with the model-cache strategy,
so the whole session costs one model download.

Run:  python examples/commuter_route.py
"""

import numpy as np

from repro.app.android import AndroidSession
from repro.app.settings import AppSettings
from repro.data import generate_lausanne_dataset, LausanneConfig
from repro.server import EnviroMeterServer


def main() -> None:
    dataset = generate_lausanne_dataset(LausanneConfig(days=1, target_tuples=0))
    server = EnviroMeterServer(h=240)
    server.ingest(dataset.tuples)

    # 08:00 — the user leaves home near the gare.
    t0 = float(dataset.tuples.t[int(np.searchsorted(dataset.tuples.t, 8 * 3600.0))])
    app = AndroidSession(server, AppSettings(position_update_interval_s=60.0))
    app.set_clock(t0)
    app.update_position(1600.0, 1300.0)
    print("08:00 at the gare:", app.current_reading_text())

    # Record the commute: gare -> centre -> north-east, ~25 minutes.
    route = app.drive_route(
        waypoints=[(1600.0, 1300.0), (3000.0, 2200.0), (4600.0, 2800.0)],
        t_start=t0 + 60.0,
        duration_s=25 * 60.0,
        name="morning-commute",
    )
    print()
    print(route.summary_text())
    print(f"peak along the way: {route.peak_ppm:.0f} ppm")
    print()
    print("route markers (first 10):")
    for p in route.points[:10]:
        color = p.marker_color or "(none)"
        ppm = f"{p.co2_ppm:6.0f} ppm" if p.co2_ppm is not None else "  no data"
        print(f"  ({p.x:6.0f}, {p.y:6.0f})  {ppm}  {color}")

    stats = app.traffic
    print()
    print(
        f"session traffic: {stats.sent_kb:.2f} KB up, {stats.received_kb:.2f} KB "
        f"down in {stats.sent_messages} request(s) — the model cache answered "
        f"{len(route.points)} position updates locally"
    )


if __name__ == "__main__":
    main()
