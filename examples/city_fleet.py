#!/usr/bin/env python
"""Fleet-scale EnviroMeter: many users, one server.

The paper's bandwidth experiment covers a single mobile object; a real
deployment serves hundreds.  This example runs a mixed fleet of
commuters — half on the model-cache strategy, half on the baseline —
against one server and shows how aggregate traffic scales: baseline
grows with (members x queries), model-cache with (members x 1), and the
server materialises exactly one cover for all of them.

It also shows the multi-pollutant platform: the same fleet machinery
runs against a carbon-monoxide dataset with a CO-specific τn range.

Run:  python examples/city_fleet.py
"""

from repro.client.fleet import FleetSimulator, commuter_fleet
from repro.core.adkmn import AdKMNConfig
from repro.data import generate_lausanne_dataset, LausanneConfig
from repro.data.multipollutant import generate_pollutant_dataset, tau_for_pollutant
from repro.server import EnviroMeterServer


def run_fleet(label, dataset, n_members, use_model_cache, config=None):
    server = EnviroMeterServer(h=240, config=config)
    server.ingest(dataset.tuples)
    t_start = float(dataset.tuples.t[1000])
    fleet = commuter_fleet(
        n_members,
        dataset.covered_bbox(),
        use_model_cache=use_model_cache,
        n_queries=30,
    )
    report = FleetSimulator(server).run(fleet, t_start)
    total = report.total_stats()
    print(
        f"{label:28s} members={n_members:3d}  "
        f"sent={total.sent_kb:8.2f} KB  recv={total.received_kb:8.2f} KB  "
        f"requests={total.sent_messages:5d}  covers-built="
        f"{len(server.db.table('model_cover'))}"
    )
    return total


def main() -> None:
    co2 = generate_lausanne_dataset(LausanneConfig(days=1, target_tuples=0))

    print("CO2, 30 queries per member:")
    for n in (5, 20, 50):
        run_fleet("  baseline fleet", co2, n, use_model_cache=False)
    print()
    for n in (5, 20, 50):
        run_fleet("  model-cache fleet", co2, n, use_model_cache=True)

    print("\ncarbon monoxide (pollutant-specific tau range):")
    co = generate_pollutant_dataset("co", LausanneConfig(days=1, target_tuples=0))
    cfg = AdKMNConfig(**tau_for_pollutant("co"))
    run_fleet("  model-cache fleet (CO)", co, 20, use_model_cache=True, config=cfg)


if __name__ == "__main__":
    main()
