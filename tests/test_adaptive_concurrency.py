"""Readers pinned across a rebalance epoch, against the serial oracle.

The adaptive layer's core isolation claim: a plan pins its binding at
build time, so executing it — from pool threads racing a free-running
writer AND a split/merge re-cut, or through the process-parallel
executor's stale-layout fallback — returns bytes identical to a serial
replay on a quiescent router holding exactly the rows the plan saw.
Everything is seeded; a failure replays from the seed alone.
"""

import threading

import numpy as np
import pytest

from repro.data.tuples import TupleBatch
from repro.geo.coords import BoundingBox
from repro.geo.region import RegionGrid
from repro.query.base import QueryBatch
from repro.query.pipeline.parallel import ProcessPlanExecutor
from repro.query.sharded import ShardedQueryEngine
from repro.storage.shards import ShardRouter

BOUNDS = BoundingBox(0.0, 0.0, 6000.0, 4000.0)
H = 96
N_TUPLES = 900
HEAD = 600  # rows ingested before the pinned plan is built
N_READERS = 4
READS_PER_READER = 6


def seeded_stream(seed: int) -> TupleBatch:
    rng = np.random.default_rng(seed)
    x = rng.uniform(-500.0, 6500.0, N_TUPLES)
    y = rng.uniform(-500.0, 4500.0, N_TUPLES)
    hot = rng.random(N_TUPLES) < 0.5  # downtown skew: cell 0 runs hot
    x[hot] = rng.uniform(0.0, 1500.0, int(hot.sum()))
    y[hot] = rng.uniform(0.0, 1500.0, int(hot.sum()))
    return TupleBatch(
        np.cumsum(rng.uniform(1.0, 4.0, N_TUPLES)),
        x, y, rng.uniform(350.0, 600.0, N_TUPLES),
    )


def seeded_queries(stream: TupleBatch, seed: int, n: int = 64) -> QueryBatch:
    rng = np.random.default_rng(seed + 1)
    picks = rng.integers(0, HEAD, n)  # times inside the pinned head
    return QueryBatch(
        stream.t[picks],
        stream.x[picks] + rng.normal(0.0, 250.0, n),
        stream.y[picks] + rng.normal(0.0, 250.0, n),
    )


def make_engine(stream_prefix: TupleBatch, workers: int = 4) -> ShardedQueryEngine:
    router = ShardRouter(RegionGrid(BOUNDS, nx=3, ny=2), h=H)
    router.ingest(stream_prefix)
    return ShardedQueryEngine(router, radius_m=400.0, max_workers=workers)


def fingerprint(result) -> bytes:
    return (
        result.values.tobytes()
        + result.support.tobytes()
        + result.answered.tobytes()
    )


@pytest.mark.parametrize("seed", [0, 7])
def test_pinned_readers_match_serial_replay_across_rebalance(seed):
    stream = seeded_stream(seed)
    queries = seeded_queries(stream, seed)

    # Serial replay oracle: a quiescent engine over exactly the head.
    with make_engine(stream.slice(0, HEAD), workers=1) as serial:
        expected = fingerprint(serial.execute(serial.plan(queries, "naive")))

    with make_engine(stream.slice(0, HEAD)) as eng:
        plan = eng.plan(queries, "naive")  # pinned at the quiescent head
        hot = int(np.argmax(eng.router.shard_counts()))
        fingerprints = []
        fp_lock = threading.Lock()
        failures = []

        def writer():
            try:
                step = 30
                for start in range(HEAD, N_TUPLES, step):
                    eng.router.ingest(
                        stream.slice(start, min(start + step, N_TUPLES))
                    )
            except BaseException as exc:  # pragma: no cover - failure path
                failures.append(exc)

        def rebalancer():
            try:
                new_ids = eng.router.split_shard(hot)
                eng.set_replicas({s: 2 for s in new_ids})
                eng.set_replicas({})
                eng.router.merge_cell(eng.router.grid.cell_of_shard(hot))
            except BaseException as exc:  # pragma: no cover - failure path
                failures.append(exc)

        def reader():
            try:
                for _ in range(READS_PER_READER):
                    fp = fingerprint(eng.execute(plan))
                    with fp_lock:
                        fingerprints.append(fp)
            except BaseException as exc:  # pragma: no cover - failure path
                failures.append(exc)

        threads = [threading.Thread(target=writer), threading.Thread(target=rebalancer)]
        threads += [threading.Thread(target=reader) for _ in range(N_READERS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert not failures, failures
        assert len(fingerprints) == N_READERS * READS_PER_READER
        assert all(fp == expected for fp in fingerprints), (
            "a pinned plan diverged from the serial replay during a rebalance"
        )
        # The re-cut really happened while readers were running.
        assert eng.router.layout_epoch == 2


@pytest.mark.parametrize("seed", [3])
def test_process_path_stale_plan_falls_back_byte_identically(seed):
    stream = seeded_stream(seed)
    queries = seeded_queries(stream, seed)

    with make_engine(stream.slice(0, HEAD), workers=1) as serial:
        expected = fingerprint(serial.execute(serial.plan(queries, "naive")))

    with make_engine(stream.slice(0, HEAD)) as eng:
        plan = eng.plan(queries, "naive")
        hot = int(np.argmax(eng.router.shard_counts()))
        with ProcessPlanExecutor(eng, processes=2) as executor:
            # Same layout: worker processes serve the plan, no fallback.
            assert fingerprint(executor.execute(plan)) == expected
            assert executor.fallbacks == 0

            new_ids = eng.router.split_shard(hot)
            eng.router.ingest(stream.slice(HEAD, N_TUPLES))

            # The pinned plan now references a retired layout: the
            # executor must refuse to serialize it to workers (their
            # shard exports hold the new layout's rows) and fall back to
            # the in-process path — bytes still identical.
            assert fingerprint(executor.execute(plan)) == expected
            assert executor.fallbacks > 0

            # A fresh plan at the new layout ships to workers again,
            # replicas included, and agrees with the thread path.
            eng.set_replicas({s: 2 for s in new_ids})
            before = executor.fallbacks
            fresh = eng.plan(queries, "naive")
            thread_path = fingerprint(eng.execute(fresh))
            assert fingerprint(executor.execute(fresh)) == thread_path
            assert executor.fallbacks == before
