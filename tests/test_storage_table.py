"""Tests for repro.storage.table."""

import numpy as np
import pytest

from repro.storage.schema import ColumnType, Schema
from repro.storage.table import Table


def numeric_table():
    return Table("points", Schema.of(("t", ColumnType.FLOAT64), ("n", ColumnType.INT64)))


def blob_table():
    return Table("blobs", Schema.of(("id", ColumnType.INT64), ("data", ColumnType.BYTES)))


class TestValidation:
    def test_bad_name(self):
        with pytest.raises(ValueError):
            Table("bad name", Schema.of(("a", ColumnType.FLOAT64)))

    def test_wrong_row_width(self):
        table = numeric_table()
        with pytest.raises(ValueError):
            table.insert((1.0,))

    def test_bytes_type_checked(self):
        table = blob_table()
        with pytest.raises(TypeError):
            table.insert((1, "not-bytes"))


class TestInsertAndScan:
    def test_insert_returns_row_ids(self):
        table = numeric_table()
        assert table.insert((1.0, 2)) == 0
        assert table.insert((3.0, 4)) == 1
        assert len(table) == 2

    def test_column_snapshot(self):
        table = numeric_table()
        table.insert_many([(1.0, 10), (2.0, 20)])
        col = table.column("n")
        assert col.tolist() == [10, 20]
        assert col.dtype == np.int64

    def test_snapshot_immutable(self):
        table = numeric_table()
        table.insert((1.0, 1))
        snap = table.column("t")
        with pytest.raises(ValueError):
            snap[0] = 9.0

    def test_snapshot_isolated_from_later_appends(self):
        table = numeric_table()
        table.insert((1.0, 1))
        snap = table.column("t")
        table.insert((2.0, 2))
        assert len(snap) == 1

    def test_scan(self):
        table = numeric_table()
        table.insert((1.0, 5))
        cols = table.scan()
        assert set(cols) == {"t", "n"}

    def test_row(self):
        table = blob_table()
        table.insert((7, b"abc"))
        assert table.row(0) == (7, b"abc")

    def test_row_out_of_range(self):
        with pytest.raises(IndexError):
            numeric_table().row(0)

    def test_unknown_column(self):
        with pytest.raises(KeyError):
            numeric_table().column("zzz")

    def test_crosses_chunk_boundary(self):
        table = numeric_table()
        n = 9000  # > one 8192 chunk
        table.insert_columns(
            t=np.arange(n, dtype=float), n=np.arange(n, dtype=np.int64)
        )
        assert len(table) == n
        col = table.column("t")
        assert col[8191] == 8191.0
        assert col[8192] == 8192.0


class TestBulkInsert:
    def test_insert_columns(self):
        table = numeric_table()
        assert table.insert_columns(t=np.ones(5), n=np.arange(5)) == 5
        assert len(table) == 5

    def test_missing_column(self):
        table = numeric_table()
        with pytest.raises(ValueError):
            table.insert_columns(t=np.ones(3))

    def test_length_mismatch(self):
        table = numeric_table()
        with pytest.raises(ValueError):
            table.insert_columns(t=np.ones(3), n=np.ones(4))

    def test_bytes_bulk_rejected(self):
        table = blob_table()
        with pytest.raises(TypeError):
            table.insert_columns(id=np.ones(1), data=np.ones(1))

    def test_bytes_rejection_leaves_table_unchanged(self):
        """Regression: the seed extended earlier columns before noticing a
        BYTES column, corrupting the table on a failed bulk insert."""
        table = blob_table()
        with pytest.raises(TypeError):
            table.insert_columns(id=np.arange(3), data=np.ones(3))
        assert len(table) == 0
        assert len(table.column("id")) == 0
        assert table.column("data") == ()

    def test_bad_dtype_leaves_table_unchanged(self):
        table = numeric_table()
        with pytest.raises(ValueError):
            table.insert_columns(t=np.ones(2), n=np.array(["a", "b"]))
        assert len(table) == 0
        assert len(table.column("t")) == 0

    def test_vectorized_extend_matches_append(self):
        bulk, scalar = numeric_table(), numeric_table()
        t = np.linspace(0.0, 1.0, 10_000)
        n = np.arange(10_000, dtype=np.int64)
        bulk.insert_columns(t=t, n=n)
        scalar.insert_many(zip(t, n))
        assert np.array_equal(bulk.column("t"), scalar.column("t"))
        assert np.array_equal(bulk.column("n"), scalar.column("n"))


class TestAtomicRowInsert:
    def test_bad_bytes_value_leaves_table_unchanged(self):
        """A row rejected mid-validation must not leave earlier columns
        extended."""
        table = blob_table()
        with pytest.raises(TypeError):
            table.insert((1, "not-bytes"))
        assert len(table) == 0
        assert len(table.column("id")) == 0

    def test_bad_numeric_value_leaves_table_unchanged(self):
        table = blob_table()
        with pytest.raises((TypeError, ValueError)):
            table.insert((object(), b"ok"))
        assert table.column("data") == ()


class TestZeroCopySnapshots:
    def test_snapshot_is_cached_view(self):
        table = numeric_table()
        table.insert_columns(t=np.ones(100), n=np.arange(100))
        assert table.column("t") is table.column("t")

    def test_snapshot_never_concatenates(self, monkeypatch):
        table = numeric_table()
        for start in range(0, 20_000, 500):
            table.insert_columns(
                t=np.arange(start, start + 500, dtype=float),
                n=np.arange(start, start + 500),
            )

        def boom(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("snapshot must not concatenate history")

        monkeypatch.setattr(np, "concatenate", boom)
        snap = table.column("t")
        assert len(snap) == 20_000
        assert snap[8192] == 8192.0

    def test_snapshot_survives_buffer_growth(self):
        table = numeric_table()
        table.insert_columns(t=np.zeros(10), n=np.zeros(10, dtype=np.int64))
        snap = table.column("t")
        # Force several reallocation-doublings past the initial capacity.
        table.insert_columns(
            t=np.ones(100_000), n=np.ones(100_000, dtype=np.int64)
        )
        assert len(snap) == 10
        assert np.all(snap == 0.0)
