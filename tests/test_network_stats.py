"""Tests for repro.network.stats."""

import pytest

from repro.network.stats import TrafficStats


class TestLedger:
    def test_records_sent(self):
        stats = TrafficStats()
        stats.record_sent(1024, 0.5)
        assert stats.sent_bytes == 1024
        assert stats.sent_kb == 1.0
        assert stats.sent_messages == 1
        assert stats.network_time_s == 0.5

    def test_records_received(self):
        stats = TrafficStats()
        stats.record_received(2048, 0.25)
        assert stats.received_kb == 2.0
        assert stats.received_messages == 1

    def test_total_time_includes_compute(self):
        stats = TrafficStats()
        stats.record_sent(10, 1.0)
        stats.record_compute(0.5)
        assert stats.total_time_s == pytest.approx(1.5)

    def test_negative_rejected(self):
        stats = TrafficStats()
        with pytest.raises(ValueError):
            stats.record_sent(-1)
        with pytest.raises(ValueError):
            stats.record_received(1, -0.1)
        with pytest.raises(ValueError):
            stats.record_compute(-1.0)

    def test_merge(self):
        a = TrafficStats()
        a.record_sent(100, 1.0)
        b = TrafficStats()
        b.record_received(200, 2.0)
        merged = a.merged_with(b)
        assert merged.sent_bytes == 100
        assert merged.received_bytes == 200
        assert merged.network_time_s == pytest.approx(3.0)
        # Originals untouched.
        assert a.received_bytes == 0
