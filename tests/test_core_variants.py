"""Tests for repro.core.variants (Ad-GRID and Ad-SPLIT)."""

import numpy as np
import pytest

from repro.core.adkmn import AdKMNConfig
from repro.core.variants import fit_adgrid, fit_adsplit
from repro.data.tuples import TupleBatch
from tests.test_core_adkmn import stepped_field_batch


@pytest.mark.parametrize("fit", [fit_adgrid, fit_adsplit])
class TestCommonBehaviour:
    def test_empty_raises(self, fit):
        with pytest.raises(ValueError):
            fit(TupleBatch.empty())

    def test_produces_valid_cover(self, fit):
        batch = stepped_field_batch()
        result = fit(batch, AdKMNConfig(tau_n_pct=2.0))
        cover = result.cover
        assert cover.size >= 1
        assert len(result.region_errors_pct) == cover.size
        assert len(result.labels) == len(batch)
        # Serialization works for variant covers too.
        rebuilt_size = type(cover).from_blob(cover.to_blob()).size
        assert rebuilt_size == cover.size

    def test_adapts_on_stepped_field(self, fit):
        batch = stepped_field_batch()
        result = fit(batch, AdKMNConfig(tau_n_pct=2.0))
        assert result.cover.size >= 4

    def test_respects_max_models(self, fit):
        batch = stepped_field_batch()
        result = fit(batch, AdKMNConfig(tau_n_pct=0.05, max_models=6))
        assert result.cover.size <= 6

    def test_valid_until_override(self, fit):
        batch = stepped_field_batch()
        result = fit(batch, valid_until=123.0, window_c=9)
        assert result.cover.valid_until == 123.0
        assert result.cover.window_c == 9


class TestAdGridSpecifics:
    def test_centroids_are_cell_centres_inside_extent(self):
        batch = stepped_field_batch()
        result = fit_adgrid(batch, AdKMNConfig(tau_n_pct=2.0))
        cx = result.cover.centroids[:, 0]
        cy = result.cover.centroids[:, 1]
        assert np.all(cx >= batch.x.min() - 1)
        assert np.all(cx <= batch.x.max() + 1)
        assert np.all(cy >= batch.y.min() - 1)
        assert np.all(cy <= batch.y.max() + 1)

    def test_labels_cover_all_tuples(self):
        batch = stepped_field_batch()
        result = fit_adgrid(batch, AdKMNConfig(tau_n_pct=2.0))
        counts = np.bincount(result.labels, minlength=result.cover.size)
        assert counts.sum() == len(batch)


class TestAdSplitSpecifics:
    def test_monotone_model_growth(self):
        batch = stepped_field_batch()
        coarse = fit_adsplit(batch, AdKMNConfig(tau_n_pct=8.0))
        fine = fit_adsplit(batch, AdKMNConfig(tau_n_pct=1.0))
        assert fine.cover.size >= coarse.cover.size
