"""Tests for repro.index.strtree."""

import random

import pytest

from repro.index.base import brute_force_radius
from repro.index.strtree import STRTree


def random_points(n, seed=0, extent=1000.0):
    rng = random.Random(seed)
    xs = [rng.uniform(0, extent) for _ in range(n)]
    ys = [rng.uniform(0, extent) for _ in range(n)]
    return xs, ys


class TestConstruction:
    def test_empty(self):
        tree = STRTree([], [])
        assert len(tree) == 0
        assert tree.height == 0
        assert tree.query_radius(0, 0, 100) == []

    def test_single_leaf(self):
        xs, ys = random_points(10)
        assert STRTree(xs, ys).height == 1

    def test_multi_level(self):
        xs, ys = random_points(2000)
        tree = STRTree(xs, ys, leaf_capacity=16)
        assert tree.height >= 2

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            STRTree([1.0], [])

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            STRTree([], [], leaf_capacity=1)


class TestRadiusQuery:
    def test_matches_brute_force(self):
        xs, ys = random_points(600, seed=1)
        tree = STRTree(xs, ys)
        rng = random.Random(2)
        for _ in range(120):
            qx, qy = rng.uniform(-100, 1100), rng.uniform(-100, 1100)
            r = rng.uniform(0, 400)
            assert sorted(tree.query_radius(qx, qy, r)) == brute_force_radius(
                xs, ys, qx, qy, r
            )

    def test_duplicates(self):
        tree = STRTree([3.0] * 40, [3.0] * 40)
        assert sorted(tree.query_radius(3, 3, 0)) == list(range(40))

    def test_negative_radius(self):
        with pytest.raises(ValueError):
            STRTree([0.0], [0.0]).query_radius(0, 0, -1)

    def test_collinear(self):
        xs = [float(i) for i in range(200)]
        ys = [0.0] * 200
        tree = STRTree(xs, ys, leaf_capacity=8)
        assert sorted(tree.query_radius(100.0, 0.0, 1.5)) == [99, 100, 101]


class TestVersusDynamicRTree:
    def test_same_results_as_insert_built_rtree(self):
        from repro.index.rtree import RTree

        xs, ys = random_points(300, seed=3)
        a = STRTree(xs, ys)
        b = RTree(xs, ys)
        rng = random.Random(4)
        for _ in range(50):
            qx, qy, r = rng.uniform(0, 1000), rng.uniform(0, 1000), rng.uniform(0, 300)
            assert sorted(a.query_radius(qx, qy, r)) == sorted(
                b.query_radius(qx, qy, r)
            )
