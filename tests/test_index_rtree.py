"""Tests for repro.index.rtree."""

import random

import pytest

from repro.index.base import brute_force_radius
from repro.index.rtree import RTree


def random_points(n, seed=0, extent=1000.0):
    rng = random.Random(seed)
    xs = [rng.uniform(0, extent) for _ in range(n)]
    ys = [rng.uniform(0, extent) for _ in range(n)]
    return xs, ys


class TestConstruction:
    def test_empty(self):
        tree = RTree([], [])
        assert len(tree) == 0
        assert tree.query_radius(0, 0, 100) == []

    def test_single_point(self):
        tree = RTree([5.0], [5.0])
        assert tree.query_radius(5, 5, 0) == [0]
        assert tree.query_radius(100, 100, 1) == []

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            RTree([1.0], [1.0, 2.0])

    def test_max_entries_minimum(self):
        with pytest.raises(ValueError):
            RTree([], [], max_entries=3)

    def test_grows_in_height(self):
        xs, ys = random_points(500)
        tree = RTree(xs, ys, max_entries=8)
        assert tree.height >= 3
        assert len(tree) == 500

    def test_node_count_reasonable(self):
        xs, ys = random_points(200)
        tree = RTree(xs, ys, max_entries=8)
        # At least n/M leaf nodes, at most ~n nodes.
        assert 200 // 8 <= tree.count_nodes() <= 200


class TestRadiusQuery:
    def test_matches_brute_force(self):
        xs, ys = random_points(400, seed=1)
        tree = RTree(xs, ys)
        rng = random.Random(2)
        for _ in range(100):
            qx, qy = rng.uniform(-100, 1100), rng.uniform(-100, 1100)
            r = rng.uniform(0, 400)
            assert sorted(tree.query_radius(qx, qy, r)) == brute_force_radius(
                xs, ys, qx, qy, r
            )

    def test_boundary_inclusive(self):
        tree = RTree([0.0, 10.0], [0.0, 0.0])
        assert sorted(tree.query_radius(0, 0, 10.0)) == [0, 1]

    def test_negative_radius(self):
        tree = RTree([0.0], [0.0])
        with pytest.raises(ValueError):
            tree.query_radius(0, 0, -1)

    def test_duplicate_points_all_returned(self):
        xs = [5.0] * 20
        ys = [5.0] * 20
        tree = RTree(xs, ys)
        assert sorted(tree.query_radius(5, 5, 1)) == list(range(20))

    def test_zero_radius_exact_hit(self):
        xs, ys = random_points(50, seed=3)
        tree = RTree(xs, ys)
        assert tree.query_radius(xs[7], ys[7], 0.0) == [7]

    def test_clustered_data(self):
        # Two tight clusters far apart: queries on one cluster must not
        # leak results from the other.
        xs = [0.0 + i * 0.1 for i in range(50)] + [900.0 + i * 0.1 for i in range(50)]
        ys = [0.0] * 100
        tree = RTree(xs, ys)
        hits = tree.query_radius(0.0, 0.0, 50.0)
        assert all(i < 50 for i in hits)
        assert len(hits) == 50
