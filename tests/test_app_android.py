"""Tests for repro.app.android — the simulated Android session."""

import pytest

from repro.app.android import AndroidSession
from repro.app.settings import AppSettings
from repro.server.server import EnviroMeterServer


@pytest.fixture()
def server(small_batch):
    srv = EnviroMeterServer(h=240)
    srv.ingest(small_batch)
    return srv


@pytest.fixture()
def session(server, small_batch):
    s = AndroidSession(server)
    s.set_clock(float(small_batch.t[300]))
    return s


class TestCurrentReading:
    def test_requires_gps_fix(self, session):
        with pytest.raises(RuntimeError):
            session.current_reading()

    def test_reading_at_position(self, session):
        session.update_position(2000.0, 1500.0)
        value = session.current_reading()
        assert value is not None
        assert "ppm" in session.current_reading_text()

    def test_clock_monotonic(self, session):
        with pytest.raises(ValueError):
            session.set_clock(0.0)


class TestRouteRecording:
    def test_record_and_summarise(self, session, small_batch):
        t0 = float(small_batch.t[300])
        session.start_route_recording("commute")
        for i in range(5):
            session.record_position(t0 + 60.0 * i, 1500.0 + 200 * i, 1200.0 + 150 * i)
        route = session.stop_route_recording()
        assert len(route.points) == 5
        assert route.average_ppm is not None
        assert "commute" in route.summary_text()

    def test_double_recording_rejected(self, session):
        session.start_route_recording("a")
        with pytest.raises(RuntimeError):
            session.start_route_recording("b")

    def test_record_without_start(self, session):
        with pytest.raises(RuntimeError):
            session.record_position(1e9, 0, 0)

    def test_drive_route_uses_configured_interval(self, server, small_batch):
        session = AndroidSession(
            server, AppSettings(position_update_interval_s=120.0)
        )
        t0 = float(small_batch.t[300])
        route = session.drive_route(
            [(1000.0, 1000.0), (2500.0, 2000.0)], t0, duration_s=600.0
        )
        assert len(route.points) == 6  # 600 s / 120 s + 1


class TestSettingsAndTraffic:
    def test_model_cache_default_is_light_on_traffic(self, session, small_batch):
        t0 = float(small_batch.t[300])
        session.update_position(2000.0, 1500.0)
        for i in range(10):
            session.set_clock(t0 + 60.0 * i)
            session.current_reading()
        assert session.traffic.sent_messages == 1  # one model request

    def test_switching_strategy_recreates_client(self, session, server, small_batch):
        session.update_position(2000.0, 1500.0)
        session.current_reading()
        session.apply_settings(session.settings.with_model_cache(False))
        session.current_reading()
        # Baseline client: the reading went to the server as a value query.
        assert server.served_values >= 1

    def test_settings_change_without_strategy_keeps_client(self, session):
        before = session.traffic
        session.apply_settings(session.settings.with_interval(30.0))
        assert session.traffic is before
