"""Tests for repro.data.quality."""

import numpy as np
import pytest

from repro.data.quality import (
    QualityConfig,
    duplicate_mask,
    range_mask,
    region_mask,
    screen_window,
    spike_mask,
)
from repro.data.tuples import TupleBatch
from repro.geo.coords import BoundingBox
from repro.geo.region import Region


def clean_batch(n=50, seed=0):
    rng = np.random.default_rng(seed)
    return TupleBatch(
        np.arange(n) * 60.0,
        rng.uniform(0, 5000, n),
        rng.uniform(0, 3000, n),
        450.0 + rng.normal(0, 10, n),
    )


REGION = Region("lausanne", BoundingBox(0, 0, 6000, 4000))


class TestConfigValidation:
    def test_invalid_range(self):
        with pytest.raises(ValueError):
            QualityConfig(physical_range=(10.0, 10.0))

    def test_invalid_mad(self):
        with pytest.raises(ValueError):
            QualityConfig(mad_threshold=0)


class TestIndividualChecks:
    def test_range_mask(self):
        batch = TupleBatch([0, 1, 2], [0, 0, 0], [0, 0, 0], [-5.0, 450.0, 20_000.0])
        mask = range_mask(batch, (0.0, 10_000.0))
        assert mask.tolist() == [False, True, False]

    def test_region_mask(self):
        batch = TupleBatch([0, 1], [100.0, -999.0], [100.0, 100.0], [450.0, 450.0])
        assert region_mask(batch, REGION).tolist() == [True, False]

    def test_spike_mask_flags_outlier(self):
        batch = clean_batch()
        spiked = TupleBatch(
            np.append(batch.t, 99_999.0),
            np.append(batch.x, 100.0),
            np.append(batch.y, 100.0),
            np.append(batch.s, 5_000.0),  # wild spike
        )
        mask = spike_mask(spiked, mad_threshold=6.0)
        assert not mask[-1]
        assert np.sum(~mask) == 1

    def test_spike_mask_small_batches_pass(self):
        batch = TupleBatch([0, 1], [0, 0], [0, 0], [400.0, 9_999.0])
        assert spike_mask(batch, 6.0).all()

    def test_spike_mask_constant_window_passes(self):
        batch = TupleBatch(
            np.arange(10.0), np.zeros(10), np.zeros(10), np.full(10, 450.0)
        )
        assert spike_mask(batch, 6.0).all()

    def test_duplicate_mask_keeps_first(self):
        batch = TupleBatch(
            [0.0, 0.0, 1.0], [5.0, 5.0, 5.0], [5.0, 5.0, 5.0], [450.0, 451.0, 452.0]
        )
        assert duplicate_mask(batch).tolist() == [True, False, True]


class TestScreenWindow:
    def test_clean_data_untouched(self):
        batch = clean_batch()
        clean, report = screen_window(batch, region=REGION)
        assert len(clean) == len(batch)
        assert report.rejected == 0
        assert report.rejection_rate == 0.0

    def test_empty_window(self):
        clean, report = screen_window(TupleBatch.empty())
        assert len(clean) == 0
        assert report.total == 0

    def test_each_fault_charged_once(self):
        base = clean_batch(n=40)
        # Append: one out-of-range, one out-of-region, one duplicate of
        # row 0, one spike.
        t = np.append(base.t, [9000.0, 9001.0, base.t[0], 9003.0])
        x = np.append(base.x, [100.0, -5000.0, base.x[0], 200.0])
        y = np.append(base.y, [100.0, 100.0, base.y[0], 200.0])
        s = np.append(base.s, [-10.0, 450.0, 450.0, 3000.0])
        dirty = TupleBatch(t, x, y, s)
        clean, report = screen_window(dirty, region=REGION)
        assert report.out_of_range == 1
        assert report.out_of_region == 1
        assert report.duplicates == 1
        assert report.spikes == 1
        assert report.rejected == 4
        assert len(clean) == 40

    def test_stuck_sensor_does_not_mask_spikes(self):
        # A stuck-at-20000 value is removed by the range check FIRST, so
        # the MAD screen still sees the true distribution and catches the
        # smaller (in-range) spike.
        base = clean_batch(n=60)
        t = np.append(base.t, [8000.0, 8001.0])
        x = np.append(base.x, [100.0, 150.0])
        y = np.append(base.y, [100.0, 150.0])
        s = np.append(base.s, [20_000.0, 2_000.0])
        clean, report = screen_window(TupleBatch(t, x, y, s), region=REGION)
        assert report.out_of_range == 1
        assert report.spikes == 1
        assert len(clean) == 60

    def test_region_check_optional(self):
        batch = TupleBatch([0.0], [-99_999.0], [0.0], [450.0])
        clean, report = screen_window(batch)  # no region passed
        assert len(clean) == 1
        assert report.out_of_region == 0

    def test_modeling_on_screened_data(self):
        """Screen -> Ad-KMN is the intended composition."""
        from repro.core.adkmn import AdKMNConfig, fit_adkmn

        base = clean_batch(n=80)
        s = base.s.copy()
        s.flags.writeable = True
        s[10] = 9_500.0  # in physical range but a wild spike
        dirty = TupleBatch(base.t, base.x, base.y, s)
        clean, report = screen_window(dirty, region=REGION)
        assert report.spikes == 1
        result = fit_adkmn(clean, AdKMNConfig(tau_n_pct=5.0))
        # The fitted cover is sane: predictions near the true level.
        v = result.cover.predict(0.0, 2500.0, 1500.0)
        assert 350.0 < v < 600.0
