"""Tests for repro.query.pipeline.parallel — process-parallel execution.

The contract under test is the tentpole guarantee: every answer produced
on the process pool is byte-identical to the serial ``PlanExecutor``
path, and any worker failure (including ``kill -9`` mid-request)
degrades to a correct in-process answer rather than an error.
"""

import importlib.util
import os
import signal
import time

import numpy as np
import pytest

from repro.geo.region import RegionGrid
from repro.query.base import QueryBatch
from repro.query.pipeline import parallel
from repro.query.pipeline.parallel import ProcessPlanExecutor, ProcessShardedEngine
from repro.query.sharded import ShardedQueryEngine
from repro.storage.shards import ShardRouter

# Guard against a hung worker pipe wedging the suite — but only where the
# pytest-timeout plugin is actually installed (CI installs it; the mark
# would be an unknown no-op elsewhere).
pytestmark = (
    [pytest.mark.timeout(300)]
    if importlib.util.find_spec("pytest_timeout")
    else []
)

H = 500


def _router(dataset, shards=4):
    router = ShardRouter(
        RegionGrid.for_shard_count(dataset.covered_bbox(), shards), h=H
    )
    router.ingest(dataset.tuples)
    return router


@pytest.fixture(scope="module")
def sharded(small_dataset):
    engine = ShardedQueryEngine(_router(small_dataset), max_workers=2)
    yield engine
    engine.close()


@pytest.fixture(scope="module")
def pexec(sharded):
    executor = ProcessPlanExecutor(sharded, processes=2, timeout_s=120.0)
    yield executor
    executor.close()


@pytest.fixture(scope="module")
def probes(small_dataset):
    tuples = small_dataset.tuples
    t = float(tuples.t[len(tuples) // 2])
    bounds = small_dataset.covered_bbox()
    return QueryBatch.from_grid(
        t, bounds.min_x, bounds.min_y, bounds.width, bounds.height, 12, 9
    )


def _assert_identical(serial, parallel):
    assert np.array_equal(serial.values, parallel.values, equal_nan=True)
    assert np.array_equal(serial.support, parallel.support)
    assert np.array_equal(serial.answered, parallel.answered)
    assert serial.values.tobytes() == parallel.values.tobytes()


class TestByteIdentity:
    def test_merge_shaped_naive_plan(self, sharded, pexec, probes):
        plan = sharded.plan(probes, "naive")
        _assert_identical(sharded.execute(plan), pexec.execute(plan))
        assert pexec.fallbacks == 0

    def test_merge_shaped_index_plan(self, sharded, pexec, probes):
        plan = sharded.plan(probes, "grid")
        _assert_identical(sharded.execute(plan), pexec.execute(plan))

    def test_cover_plan_with_fallback_subplan(self, sharded, pexec, probes):
        plan = sharded.plan(probes, "model-cover")
        _assert_identical(sharded.execute(plan), pexec.execute(plan))

    def test_continuous_stream(self, sharded, pexec, small_dataset):
        tuples = small_dataset.tuples
        picks = np.linspace(0, len(tuples) - 1, 60).astype(int)
        stream = QueryBatch(
            tuples.t[picks], tuples.x[picks] + 40.0, tuples.y[picks] - 40.0
        )
        plan = sharded.plan(stream, "naive")
        _assert_identical(sharded.execute(plan), pexec.execute(plan))

    def test_repeated_execution_is_stable(self, sharded, pexec, probes):
        plan = sharded.plan(probes, "naive")
        first = pexec.execute(plan)
        second = pexec.execute(plan)
        assert first.values.tobytes() == second.values.tobytes()


class TestIncrementalIngest:
    def test_exports_grow_with_the_stream(self, small_dataset):
        tuples = small_dataset.tuples
        half = len(tuples) // 2
        router = ShardRouter(
            RegionGrid.for_shard_count(small_dataset.covered_bbox(), 4), h=H
        )
        router.ingest(tuples.slice(0, half))
        engine = ShardedQueryEngine(router, max_workers=1)
        bounds = small_dataset.covered_bbox()
        with ProcessPlanExecutor(engine, processes=2) as executor:
            t1 = float(tuples.t[half // 2])
            probes1 = QueryBatch.from_grid(
                t1, bounds.min_x, bounds.min_y, bounds.width, bounds.height, 6, 5
            )
            plan1 = engine.plan(probes1, "naive")
            _assert_identical(engine.execute(plan1), executor.execute(plan1))
            names_before = {
                s: export.name
                for s, export in executor.registry._exports.items()
            }
            router.ingest(tuples.slice(half, len(tuples)))
            t2 = float(tuples.t[half + half // 2])
            probes2 = QueryBatch.from_grid(
                t2, bounds.min_x, bounds.min_y, bounds.width, bounds.height, 6, 5
            )
            plan2 = engine.plan(probes2, "naive")
            _assert_identical(engine.execute(plan2), executor.execute(plan2))
            names_after = {
                s: export.name
                for s, export in executor.registry._exports.items()
            }
            # At least one shard needed a larger prefix and re-exported.
            assert any(
                names_after[s] != names_before.get(s) for s in names_after
            )
            assert executor.fallbacks == 0
        engine.close()


class TestCrashRecovery:
    def test_killed_workers_degrade_to_in_process_answer(
        self, small_dataset, monkeypatch
    ):
        engine = ShardedQueryEngine(_router(small_dataset), max_workers=1)
        bounds = small_dataset.covered_bbox()
        t = float(small_dataset.tuples.t[1000])
        probes = QueryBatch.from_grid(
            t, bounds.min_x, bounds.min_y, bounds.width, bounds.height, 6, 5
        )
        with ProcessPlanExecutor(engine, processes=2, timeout_s=60.0) as executor:
            plan = engine.plan(probes, "naive")
            expected = engine.execute(plan)
            _assert_identical(expected, executor.execute(plan))
            # kill -9 every live worker.  The executor notices dead
            # workers before it sends and respawns them — so to model a
            # worker dying *mid-request* (after liveness was checked,
            # before the reply) we pin alive() to True: the dispatcher
            # sends into a dead pipe, the request fails, and the plan
            # must fall back to a correct in-process answer.
            for worker in executor._workers:
                if worker is not None:
                    os.kill(worker.process.pid, signal.SIGKILL)
                    worker.process.join(timeout=10.0)
            with pytest.MonkeyPatch.context() as mid_request:
                mid_request.setattr(parallel._Worker, "alive", lambda self: True)
                survived = executor.execute(engine.plan(probes, "naive"))
            _assert_identical(expected, survived)
            assert executor.fallbacks == 1
            # The pool heals: the next request respawns the dead workers
            # and runs on the process path again (no further fallback).
            healed = executor.execute(engine.plan(probes, "naive"))
            _assert_identical(expected, healed)
            assert executor.fallbacks == 1
        engine.close()

    def test_killed_pool_respawns_before_next_request(self, small_dataset):
        # Plain kill -9 between requests: the lazy respawn notices the
        # corpse and the next request never even needs the fallback.
        engine = ShardedQueryEngine(_router(small_dataset), max_workers=1)
        bounds = small_dataset.covered_bbox()
        t = float(small_dataset.tuples.t[1000])
        probes = QueryBatch.from_grid(
            t, bounds.min_x, bounds.min_y, bounds.width, bounds.height, 5, 4
        )
        with ProcessPlanExecutor(engine, processes=2, timeout_s=60.0) as executor:
            plan = engine.plan(probes, "naive")
            expected = engine.execute(plan)
            _assert_identical(expected, executor.execute(plan))
            for worker in executor._workers:
                if worker is not None:
                    os.kill(worker.process.pid, signal.SIGKILL)
                    worker.process.join(timeout=10.0)
            time.sleep(0.05)
            healed = executor.execute(engine.plan(probes, "naive"))
            _assert_identical(expected, healed)
            assert executor.fallbacks == 0
        engine.close()

    def test_unsupported_plan_falls_back(self, small_batch):
        # An unsharded engine plan has shard=None contexts: the process
        # path cannot serialize it and must fall back transparently.
        from repro.query.engine import QueryEngine

        engine = QueryEngine(small_batch, h=240)
        t = float(small_batch.t[500])
        queries = QueryBatch(
            np.array([t, t]), np.array([1000.0, 2000.0]), np.array([1000.0, 1500.0])
        )
        plan = engine.plan(queries, "naive")
        with ProcessPlanExecutor(engine, processes=1) as executor:
            result = executor.execute(plan)
            assert executor.fallbacks == 1
        expected = engine.execute(engine.plan(queries, "naive"))
        assert np.array_equal(expected.values, result.values, equal_nan=True)


class TestProcessShardedEngine:
    def test_three_request_shapes(self, small_dataset):
        engine = ShardedQueryEngine(_router(small_dataset), max_workers=1)
        oracle = ShardedQueryEngine(_router(small_dataset), max_workers=1)
        bounds = small_dataset.covered_bbox()
        t = float(small_dataset.tuples.t[2000])
        with ProcessShardedEngine(engine, processes=2) as facade:
            point = facade.point_query(t, 2000.0, 1500.0)
            expected_point = oracle.point_query(t, 2000.0, 1500.0)
            assert point.value == expected_point.value
            assert point.support == expected_point.support

            grid = facade.heatmap_grid(t, bounds, nx=8, ny=6)
            expected_grid = oracle.heatmap_grid(t, bounds, nx=8, ny=6)
            assert grid.tobytes() == expected_grid.tobytes()

            empty = facade.continuous_query_batch(QueryBatch(
                np.empty(0), np.empty(0), np.empty(0)
            ))
            assert len(empty) == 0
        oracle.close()
