"""Tests for the unified execution-plan pipeline (``repro/query/pipeline``).

Covers the one epoch-keyed :class:`ProcessorCache` (both build
disciplines, stale accounting, aggregation), the plan IR and its
builders (shapes, contexts, fallbacks, ``format_plan``), the
statistics-backed planner's feedback loop (recalibration among exact
methods only — the exact-vs-model boundary must stay deterministic), the
uniform server counters, and the ``auto``-is-never-the-worst performance
contract recalibrated against the benchmark scenarios.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.data.tuples import TupleBatch
from repro.eval.timing import time_callable
from repro.geo.coords import BoundingBox
from repro.geo.region import RegionGrid
from repro.network.messages import QueryRequest
from repro.query.base import QueryBatch
from repro.query.engine import QueryEngine
from repro.query.pipeline import (
    CacheStats,
    CoverOp,
    FallbackOp,
    PlannerFeedback,
    PlanReport,
    ProcessorCache,
    ScanOp,
    format_plan,
)
from repro.query.planner import PlanEstimate, QueryProfile
from repro.query.sharded import ShardedQueryEngine
from repro.server.server import (
    ConcurrentEnviroMeterServer,
    EnviroMeterServer,
    ShardedEnviroMeterServer,
)
from repro.storage.shards import ShardRouter

BBOX = BoundingBox(0.0, 0.0, 6000.0, 4000.0)


def make_stream(rng: np.random.Generator, n: int) -> TupleBatch:
    t = np.cumsum(rng.uniform(1.0, 30.0, n))
    return TupleBatch(
        t,
        rng.uniform(0.0, 6000.0, n),
        rng.uniform(0.0, 4000.0, n),
        rng.uniform(350.0, 600.0, n),
    )


class TestProcessorCache:
    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            ProcessorCache(0)

    def test_atomic_build_serves_and_counts(self):
        cache = ProcessorCache(4)
        built = []

        def build():
            built.append(1)
            return "value"

        assert cache.get_or_build(("k",), 0, build) == "value"
        assert cache.get_or_build(("k",), 0, build) == "value"
        assert len(built) == 1
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.stale == 0

    def test_stale_stamp_rebuilds_and_counts(self):
        cache = ProcessorCache(4)
        cache.get_or_build(("k",), 0, lambda: "old")
        assert cache.get_or_build(("k",), 1, lambda: "new") == "new"
        assert cache.stats.stale == 1
        assert cache.stats.misses == 2  # stale lookups are misses too
        assert cache.stats.lookups == cache.stats.hits + cache.stats.misses
        # The stale entry was replaced in place, not duplicated.
        assert len(cache) == 1
        assert cache.entry_stamp(("k",)) == 1

    def test_lru_eviction_order_and_counter(self):
        cache = ProcessorCache(2)
        for i in range(4):
            cache.get_or_build(("k", i), 0, lambda i=i: i)
        assert cache.keys() == [("k", 2), ("k", 3)]
        assert cache.stats.evictions == 2

    def test_shared_build_discards_race_duplicate(self):
        cache = ProcessorCache(4)
        first = cache.get_or_build(("k",), 0, lambda: object(), shared_build=True)
        # A racing builder inserting at the same stamp loses: the winner
        # stays cached and is returned to the loser.
        assert cache.insert(("k",), 0, object()) is first
        assert cache.get_or_build(("k",), 0, lambda: object(), shared_build=True) is first

    def test_shared_build_parallel_distinct_keys(self):
        cache = ProcessorCache(64)
        barrier = threading.Barrier(8)
        errors = []

        def worker(seed):
            try:
                barrier.wait()
                for i in range(30):
                    v = cache.get_or_build(
                        ("k", (seed + i) % 12), 0, lambda: object(), shared_build=True
                    )
                    assert v is cache.get_or_build(
                        ("k", (seed + i) % 12), 0, lambda: object(), shared_build=True
                    )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 12

    def test_older_stamp_insert_keeps_newer_entry(self):
        cache = ProcessorCache(4)
        cache.get_or_build(("k",), 5, lambda: "new")
        # An older-snapshot caller must get its own build back while the
        # fresher entry stays cached for future readers (no ping-pong).
        assert cache.insert(("k",), 3, "old") == "old"
        assert cache.peek(("k",), 5) == "new"
        assert cache.peek(("k",), 3) is None

    def test_stats_aggregate(self):
        a = CacheStats(hits=2, misses=3, evictions=1, stale=1)
        b = CacheStats(hits=1, misses=1)
        total = CacheStats.aggregate([a, b])
        assert (total.hits, total.misses, total.evictions, total.stale) == (3, 4, 1, 1)
        assert total.as_dict()["stale"] == 1


class TestPlannerFeedback:
    def test_empty_feedback_is_static_model(self):
        fb = PlannerFeedback()
        est = {
            "naive": PlanEstimate("naive", 100.0, 0.0),
            "vptree": PlanEstimate("vptree", 50.0, 10.0),
        }
        assert fb.adjust(est) == {"naive": 100.0, "vptree": 50.0}

    def test_observed_costs_rerank_exact_methods(self):
        fb = PlannerFeedback(alpha=1.0)
        est = {
            "naive": PlanEstimate("naive", 100.0, 0.0),
            "vptree": PlanEstimate("vptree", 50.0, 10.0),
        }
        # The model prefers vptree, but per its own units it measures
        # 200x slower than naive per naive's units.
        fb.observe("vptree", n_queries=10, elapsed_s=1.0, units_per_query=50.0)
        fb.observe("naive", n_queries=10, elapsed_s=0.01, units_per_query=100.0)
        adjusted = fb.adjust(est)
        assert adjusted["naive"] < adjusted["vptree"]

    def test_unobserved_methods_use_median_observed_rate(self):
        fb = PlannerFeedback(alpha=1.0)
        est = {
            "naive": PlanEstimate("naive", 100.0, 0.0),
            "vptree": PlanEstimate("vptree", 50.0, 10.0),
        }
        fb.observe("naive", n_queries=10, elapsed_s=1.0, units_per_query=100.0)
        adjusted = fb.adjust(est)
        # Both scores are estimated units x observed sec-per-unit, so the
        # slice's own unit estimate stays in the product (spu = 1e-3).
        assert adjusted["naive"] == pytest.approx(100.0 * 1e-3)
        assert adjusted["vptree"] == pytest.approx(50.0 * 1e-3)

    def test_rates_normalised_by_each_methods_own_units(self):
        """An index method's small unit estimate must not deflate its
        observed rate: a method measured slower per query on the same
        workload must score worse, whatever its unit scale."""
        fb = PlannerFeedback(alpha=1.0)
        est = {
            "naive": PlanEstimate("naive", 1000.0, 0.0),   # full scan
            "rtree": PlanEstimate("rtree", 20.0, 100.0),   # sparse hits
        }
        # Same workload: naive measured 0.5 ms/query, rtree 1 ms/query.
        fb.observe("naive", n_queries=100, elapsed_s=0.05, units_per_query=1000.0)
        fb.observe("rtree", n_queries=100, elapsed_s=0.10, units_per_query=20.0)
        adjusted = fb.adjust(est)
        # Scores reproduce the observed per-query ordering on this slice.
        assert adjusted["naive"] == pytest.approx(5e-4)
        assert adjusted["rtree"] == pytest.approx(1e-3)
        assert adjusted["naive"] < adjusted["rtree"]

    def test_feedback_never_moves_exact_vs_model_boundary(self):
        """Observed timings recalibrate scan kinds (answers identical by
        construction) but must never flip a window between exact and
        model answers — that would make query *answers* timing-dependent."""
        rng = np.random.default_rng(3)
        stream = make_stream(rng, 300)
        router = ShardRouter(RegionGrid.for_shard_count(BBOX, 4), h=64)
        router.ingest(stream)
        engine = ShardedQueryEngine(router, radius_m=900.0)
        queries = QueryBatch(
            np.linspace(float(stream.t[10]), float(stream.t[-1]), 40),
            rng.uniform(0, 6000, 40),
            rng.uniform(0, 4000, 40),
        )
        baseline = engine.continuous_query_batch(queries, method="auto")
        # Poison the feedback with absurd observations for every method.
        for method in ("naive", "vptree", "rtree", "model-cover"):
            engine.planner.feedback.observe(method, 1, 1000.0)
        engine.planner.feedback.observe("naive", 1, 1e-9)
        # Fresh verdicts (fresh cache so plans are re-planned from scratch).
        fresh = ShardedQueryEngine(router, radius_m=900.0)
        fresh._planner.feedback = engine.planner.feedback
        again = fresh.continuous_query_batch(queries, method="auto")
        np.testing.assert_array_equal(baseline.values, again.values)
        np.testing.assert_array_equal(baseline.support, again.support)


class TestPlanShapes:
    def test_engine_plan_groups_and_contexts(self):
        rng = np.random.default_rng(11)
        stream = make_stream(rng, 200)
        engine = QueryEngine(stream, h=40, radius_m=900.0)
        ts = np.array([float(stream.t[5]), float(stream.t[50]), float(stream.t[150])])
        queries = QueryBatch(ts, np.full(3, 2000.0), np.full(3, 1500.0))
        plan = engine.plan(queries, "naive")
        assert plan.merge is None
        assert len(plan.ops) == 3
        for op in plan.ops:
            assert isinstance(op, ScanOp) and op.emit == "result"
            assert op.context.shard is None
            assert op.context.n_rows == len(engine.window(op.context.window_c))

    def test_sharded_exact_plan_is_merge_shaped(self):
        rng = np.random.default_rng(12)
        stream = make_stream(rng, 200)
        router = ShardRouter(RegionGrid.for_shard_count(BBOX, 4), h=64)
        router.ingest(stream)
        engine = ShardedQueryEngine(router, radius_m=900.0)
        queries = QueryBatch(
            np.full(5, float(stream.t[-1])),
            np.linspace(500.0, 5500.0, 5),
            np.full(5, 2000.0),
        )
        plan = engine.plan(queries, "naive")
        assert plan.merge is not None
        assert plan.merge.n_queries == 5
        assert all(isinstance(op, ScanOp) and op.emit == "hits" for op in plan.ops)
        shards = {op.context.shard for op in plan.ops}
        assert shards <= set(range(4))

    def test_cover_plan_fallback_for_empty_region(self):
        rng = np.random.default_rng(13)
        n = 64
        t = np.cumsum(rng.uniform(1.0, 60.0, n))
        stream = TupleBatch(  # west half only: east shard is empty
            t,
            rng.uniform(0.0, 2500.0, n),
            rng.uniform(0.0, 4000.0, n),
            rng.uniform(350.0, 600.0, n),
        )
        router = ShardRouter(RegionGrid(BBOX, nx=2, ny=1), h=32)
        router.ingest(stream)
        engine = ShardedQueryEngine(router, radius_m=3500.0)
        queries = QueryBatch(
            np.full(3, float(stream.t[-1])),
            np.array([4000.0, 5000.0, 5500.0]),
            np.full(3, 2000.0),
        )
        plan = engine.plan(queries, "model-cover")
        fallbacks = [op for op in plan.ops if isinstance(op, FallbackOp)]
        assert len(fallbacks) == 1
        assert fallbacks[0].plan.merge is not None  # exact sub-plan
        assert len(fallbacks[0].positions) == 3
        assert not [op for op in plan.ops if isinstance(op, CoverOp)]

    def test_format_plan_lists_every_op(self):
        rng = np.random.default_rng(14)
        stream = make_stream(rng, 150)
        engine = QueryEngine(stream, h=40, radius_m=900.0)
        queries = QueryBatch(
            np.linspace(float(stream.t[0]), float(stream.t[-1]), 6),
            np.full(6, 2000.0),
            np.full(6, 1500.0),
        )
        plan = engine.plan(queries, "auto", want_estimates=True)
        report = PlanReport()
        engine.execute(plan, report)
        text = format_plan(plan, report)
        assert "plan: method=auto" in text
        assert text.count("\n") >= len(plan.ops) + 1
        assert "ms" in text  # observed timings rendered
        for op in plan.ops:
            assert op.context.describe() in text

    def test_plan_report_total_and_per_op(self):
        rng = np.random.default_rng(15)
        stream = make_stream(rng, 100)
        engine = QueryEngine(stream, h=50, radius_m=900.0)
        queries = QueryBatch(
            np.full(4, float(stream.t[-1])), np.full(4, 1000.0), np.full(4, 1000.0)
        )
        plan = engine.plan(queries, "naive")
        report = PlanReport()
        engine.execute(plan, report)
        assert report.total_s > 0.0
        assert all(report.observed(op) is not None for op in plan.ops)


class TestEngineAuto:
    def test_unsharded_auto_matches_planned_fixed_method(self):
        """The engine's new auto mode must answer exactly like the fixed
        method the planner picked for each window."""
        rng = np.random.default_rng(21)
        stream = make_stream(rng, 240)
        engine = QueryEngine(
            stream, h=60, radius_m=900.0,
            profile=QueryProfile(needs_exact_average=True, radius_m=900.0),
        )
        queries = QueryBatch(
            np.linspace(float(stream.t[0]), float(stream.t[-1]), 30),
            rng.uniform(0, 6000, 30),
            rng.uniform(0, 4000, 30),
        )
        plan = engine.plan(queries, "auto")
        auto = engine.execute(plan)
        # Re-answer each op's queries with its concrete planned method.
        for op in plan.ops:
            fixed = engine.continuous_query_batch(op.queries, method=op.method)
            np.testing.assert_array_equal(auto.values[op.positions], fixed.values)
            np.testing.assert_array_equal(auto.support[op.positions], fixed.support)

    def test_auto_rejects_without_known_method(self):
        rng = np.random.default_rng(22)
        engine = QueryEngine(make_stream(rng, 50), h=50)
        with pytest.raises(ValueError, match="unknown method"):
            engine.continuous_query_batch(
                QueryBatch(np.array([1.0]), np.array([0.0]), np.array([0.0])),
                method="bogus",
            )


class TestServerCounters:
    def make_server(self, rng, sharded=False):
        stream = make_stream(rng, 200)
        if sharded:
            server = ShardedEnviroMeterServer(
                RegionGrid.for_shard_count(BBOX, 4), h=50
            )
        else:
            server = EnviroMeterServer(h=50)
        server.ingest(stream)
        return server, stream

    @pytest.mark.parametrize("sharded", [False, True])
    def test_uniform_cache_counters(self, sharded):
        rng = np.random.default_rng(31)
        server, stream = self.make_server(rng, sharded)
        reqs = [
            QueryRequest(t=float(stream.t[-1]), x=2000.0 + 100 * i, y=1500.0)
            for i in range(6)
        ]
        server.handle_many(reqs)
        server.handle_many(reqs)
        stats = server.cache_stats
        snap = stats.as_dict()
        assert set(snap) == {"hits", "misses", "evictions", "stale", "hit_rate"}
        assert stats.lookups == stats.hits + stats.misses
        assert stats.hits > 0  # second pass served from the cover memo

    def test_concurrent_front_end_delegates_counters(self):
        rng = np.random.default_rng(32)
        server, stream = self.make_server(rng)
        front = ConcurrentEnviroMeterServer(server, max_workers=2)
        reqs = [
            QueryRequest(t=float(stream.t[-1]), x=1000.0 * i, y=1200.0)
            for i in range(4)
        ]
        front.handle_many(reqs)
        assert front.cache_stats is server.cache_stats
        front.close()

    def test_server_cover_memo_stale_on_ingest(self):
        rng = np.random.default_rng(33)
        stream = make_stream(rng, 120)
        server = EnviroMeterServer(h=50)
        server.ingest(stream.slice(0, 110))  # window 2 stays open
        t_open = float(stream.t[105])
        server.handle(QueryRequest(t=t_open, x=2000.0, y=1500.0))
        server.ingest(stream.slice(110, 120))  # window 2 grows
        server.handle(QueryRequest(t=t_open, x=2000.0, y=1500.0))
        assert server.cache_stats.stale >= 1


class TestAutoNeverSlower:
    """Satellite contract: on the benchmark scenarios, ``auto`` must not
    be slower than the *worst* fixed method (margin for timer noise).

    The planner's whole job is to stay off the worst method; with the
    recalibrated constants the chosen plan's wall time must land at or
    below every fixed alternative's, whatever the machine.
    """

    FIXED = ("naive", "vptree", "model-cover")

    def _timings(self, run, methods, repeats=3):
        out = {}
        for method in methods:
            run(method)  # warm caches / verdicts / covers
            out[method] = time_callable(lambda m=method: run(m), repeats=repeats)
        return out

    def test_auto_heatmap_not_slower_than_worst_fixed(self):
        rng = np.random.default_rng(41)
        stream = make_stream(rng, 3000)
        engine = QueryEngine(stream, h=240, radius_m=900.0, max_workers=1)
        t = float(stream.t[-1])

        def run(method):
            engine.heatmap_grid(t, BBOX, nx=30, ny=20, method=method)

        times = self._timings(run, self.FIXED + ("auto",))
        worst_fixed = max(times[m] for m in self.FIXED)
        assert times["auto"] <= worst_fixed * 1.5, times

    def test_auto_sharded_continuous_not_slower_than_worst_fixed(self):
        rng = np.random.default_rng(42)
        stream = make_stream(rng, 3000)
        router = ShardRouter(RegionGrid.for_shard_count(BBOX, 4), h=240)
        router.ingest(stream)
        engine = ShardedQueryEngine(router, radius_m=900.0, max_workers=1)
        queries = QueryBatch(
            np.linspace(float(stream.t[0]), float(stream.t[-1]), 600),
            rng.uniform(0, 6000, 600),
            rng.uniform(0, 4000, 600),
        )

        def run(method):
            engine.continuous_query_batch(queries, method=method)

        times = self._timings(run, self.FIXED + ("auto",))
        worst_fixed = max(times[m] for m in self.FIXED)
        assert times["auto"] <= worst_fixed * 1.5, times


class TestRefreshRaceSafety:
    """The binding must be a fully pinned pre-refresh view: a plan built
    (or even just bound) before a refresh executes against the old rows
    under the old stamps, so the shared cache is never poisoned with a
    stale processor under a fresh stamp."""

    def test_binding_pins_batch_and_stamps_across_refresh(self):
        rng = np.random.default_rng(51)
        H = 40
        stream = make_stream(rng, 2 * H + 20)
        engine = QueryEngine(stream.slice(0, H + 5), h=H, radius_m=1500.0)
        binding = engine.binding()
        engine.refresh(stream.slice(0, H + 25))  # grows open window 1
        stamp, sub, _ = binding.slice_for(None, 1)
        assert stamp == 0  # pre-refresh stamp...
        assert len(sub) == 5  # ...paired with the pre-refresh rows

    def test_pre_refresh_plan_does_not_poison_cache(self):
        rng = np.random.default_rng(52)
        H = 40
        stream = make_stream(rng, 2 * H)
        engine = QueryEngine(stream.slice(0, H + 5), h=H, radius_m=2500.0)
        t_open = float(stream.t[H + 2])
        queries = QueryBatch(
            np.array([t_open]), np.array([3000.0]), np.array([2000.0])
        )
        plan = engine.plan(queries, "naive")
        engine.refresh(stream)  # window 1 grows from 5 to H rows
        stale_view = engine.execute(plan)  # correct for *its* pinned epoch
        assert stale_view.support[0] <= H
        # The post-refresh engine must answer from the grown window,
        # identical to a fresh engine over the same stream.
        after = engine.point_query(t_open, 3000.0, 2000.0, method="naive")
        oracle = QueryEngine(stream, h=H, radius_m=2500.0).point_query(
            t_open, 3000.0, 2000.0, method="naive"
        )
        assert after.support == oracle.support
        assert after.value == oracle.value


class TestProcessGroups:
    def test_matches_per_group_continuous_and_orders_results(self):
        from repro.query.executor import group_queries_by_window

        rng = np.random.default_rng(61)
        stream = make_stream(rng, 300)
        engine = QueryEngine(stream, h=40, radius_m=1200.0)
        queries = QueryBatch(
            np.linspace(float(stream.t[0]), float(stream.t[-1]), 60),
            rng.uniform(0, 6000, 60),
            rng.uniform(0, 4000, 60),
        )
        groups = group_queries_by_window(
            queries, engine.window_for_time,
            windows_for_times=engine.windows_for_times,
        )
        results = engine.process_groups("naive", groups)
        assert len(results) == len(groups)
        for group, res in zip(groups, results):
            solo = engine.continuous_query_batch(group.queries, method="naive")
            np.testing.assert_array_equal(res.values, solo.values)
            np.testing.assert_array_equal(res.support, solo.support)

    def test_empty_and_unknown_method(self):
        rng = np.random.default_rng(62)
        engine = QueryEngine(make_stream(rng, 50), h=50)
        assert engine.process_groups("naive", []) == []
        with pytest.raises(ValueError, match="unknown method"):
            engine.process_groups("auto", [])


class TestAutoFitRunsOnce:
    def test_auto_model_cover_verdict_reuses_pricing_fit(self, monkeypatch):
        """When the planner prices (and picks) model-cover, that fit must
        be the only one: execution serves the seeded processor instead of
        refitting through the builder."""
        import repro.query.planner as planner_mod
        from repro.core.adkmn import fit_adkmn as real_fit

        calls = []

        def counting_fit(*args, **kwargs):
            calls.append(1)
            return real_fit(*args, **kwargs)

        monkeypatch.setattr(planner_mod, "fit_adkmn", counting_fit)
        rng = np.random.default_rng(71)
        # A smooth linear field fits with very few models, so the cost
        # model reliably prefers model-cover over the scan methods.
        n = 240
        x = rng.uniform(0.0, 6000.0, n)
        y = rng.uniform(0.0, 4000.0, n)
        stream = TupleBatch(
            np.cumsum(rng.uniform(1.0, 30.0, n)), x, y, 350.0 + x / 50.0 + y / 80.0
        )
        engine = QueryEngine(
            stream, h=240, radius_m=2500.0,
            profile=QueryProfile(expected_queries=100_000, radius_m=2500.0),
        )
        queries = QueryBatch(
            np.full(8, float(stream.t[-1])),
            np.linspace(500.0, 5500.0, 8),
            np.full(8, 2000.0),
        )
        plan = engine.plan(queries, "auto")
        assert [op.method for op in plan.ops] == ["model-cover"]
        result = engine.execute(plan)
        assert result.n_answered == len(queries)
        assert len(calls) == 1  # the pricing fit, and nothing else
        assert engine.builder.fit_count == 0  # builder never refit it


class TestUnshardedAutoDeterminism:
    def test_feedback_never_changes_unsharded_auto_bytes(self):
        """Unsharded result-path scans sum hits in method-specific order,
        so feedback must not rerank them: auto answers are byte-identical
        however the feedback is poisoned."""
        rng = np.random.default_rng(81)
        stream = make_stream(rng, 240)
        queries = QueryBatch(
            np.linspace(float(stream.t[0]), float(stream.t[-1]), 40),
            rng.uniform(0, 6000, 40),
            rng.uniform(0, 4000, 40),
        )
        profile = QueryProfile(needs_exact_average=True, radius_m=900.0)
        baseline_engine = QueryEngine(stream, h=60, radius_m=900.0, profile=profile)
        baseline = baseline_engine.continuous_query_batch(queries, method="auto")
        poisoned_engine = QueryEngine(stream, h=60, radius_m=900.0, profile=profile)
        for method in ("naive", "vptree", "rtree", "model-cover"):
            poisoned_engine.planner.feedback.observe(method, 1, 1000.0)
        poisoned_engine.planner.feedback.observe("vptree", 1, 1e-9)
        poisoned = poisoned_engine.continuous_query_batch(queries, method="auto")
        np.testing.assert_array_equal(baseline.values, poisoned.values)
        np.testing.assert_array_equal(baseline.support, poisoned.support)


class TestEvalUnits:
    def test_eval_units_strips_amortised_preparation(self):
        from repro.query.pipeline import PipelinePlanner

        planner = PipelinePlanner(QueryProfile(expected_queries=100))
        est = PlanEstimate("rtree", per_query_cost=936.0, preparation_cost=93_600.0)
        # 936 total = 0 scan share? No: 936 - 93600/100 = 0 -> floored.
        assert planner.eval_units(est) == pytest.approx(1e-9)
        est2 = PlanEstimate("rtree", per_query_cost=1000.0, preparation_cost=50_000.0)
        # 1000 - 500 = 500 evaluation units actually run inside the timer.
        assert planner.eval_units(est2) == pytest.approx(500.0)
        naive = PlanEstimate("naive", per_query_cost=240.0, preparation_cost=0.0)
        assert planner.eval_units(naive) == pytest.approx(240.0)
