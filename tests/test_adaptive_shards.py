"""Adaptive shard management: load stats, hot-region split/merge,
read replicas and the rebalance policy loop.

The load-bearing discipline is byte-identity: the exact merge gather is
canonical in global stream position, so *any* layout of the same stream
— static grid, split downtown, merged back, replica-split scans — must
answer every query with the same bytes.  Each mechanism here is tested
against that oracle; the policy loop is tested on seeded load shapes.
"""

import numpy as np
import pytest

from repro.data.tuples import TupleBatch
from repro.geo.coords import BoundingBox
from repro.geo.region import RefinedRegionGrid, RegionGrid
from repro.query.base import QueryBatch
from repro.query.sharded import ShardedQueryEngine
from repro.storage.load import ShardLoadTracker, skew_coefficient
from repro.storage.rebalance import RebalanceAction, ShardRebalancer
from repro.storage.shards import ShardRouter, StaleLayoutError

BOUNDS = BoundingBox(0.0, 0.0, 6000.0, 4000.0)
H = 64


def make_stream(n: int, seed: int = 0, hot_cell_frac: float = 0.0) -> TupleBatch:
    """``n`` time-ordered tuples; ``hot_cell_frac`` of them packed into
    the first grid cell's lower-left quadrant (the "downtown" skew)."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(-500.0, 6500.0, n)  # includes out-of-bounds slabs
    y = rng.uniform(-500.0, 4500.0, n)
    hot = rng.random(n) < hot_cell_frac
    x[hot] = rng.uniform(0.0, 900.0, int(hot.sum()))
    y[hot] = rng.uniform(0.0, 800.0, int(hot.sum()))
    return TupleBatch(
        np.cumsum(rng.uniform(1.0, 5.0, n)),
        x, y, rng.uniform(350.0, 600.0, n),
    )


def make_queries(stream: TupleBatch, n: int, seed: int = 1) -> QueryBatch:
    rng = np.random.default_rng(seed)
    picks = rng.integers(0, len(stream), n)
    return QueryBatch(
        stream.t[picks],
        stream.x[picks] + rng.normal(0.0, 200.0, n),
        stream.y[picks] + rng.normal(0.0, 200.0, n),
    )


def filled_router(stream: TupleBatch, nx=3, ny=2, h=H) -> ShardRouter:
    router = ShardRouter(RegionGrid(BOUNDS, nx=nx, ny=ny), h=h)
    router.ingest(stream)
    return router


def answers(engine: ShardedQueryEngine, queries: QueryBatch):
    return engine.execute(engine.plan(queries, "naive"))


def identical(a, b) -> bool:
    return (
        a.values.tobytes() == b.values.tobytes()
        and a.support.tobytes() == b.support.tobytes()
        and a.answered.tobytes() == b.answered.tobytes()
    )


class TestRefinedRegionGrid:
    def test_unsplit_refinement_routes_like_base(self):
        base = RegionGrid(BOUNDS, nx=3, ny=2)
        refined = RefinedRegionGrid.refine(base)
        rng = np.random.default_rng(3)
        xs = rng.uniform(-2000.0, 8000.0, 500)  # far outside both edges
        ys = rng.uniform(-2000.0, 6000.0, 500)
        assert np.array_equal(refined.shards_of(xs, ys), base.shards_of(xs, ys))
        for r in (0.0, 150.0, 5000.0):
            assert np.array_equal(
                refined.disks_shard_mask(xs, ys, r),
                base.disks_shard_mask(xs, ys, r),
            )

    def test_split_keeps_cell_ownership_and_stable_ids(self):
        base = RegionGrid(BOUNDS, nx=3, ny=2)
        refined = RefinedRegionGrid.refine(base).split_cell(4)
        assert refined.n_regions == 3 * 2 + 3  # three new tiles
        assert refined.cell_shards[4][0] == 4  # first tile keeps the id
        assert refined.is_split(4) and not refined.is_split(0)
        rng = np.random.default_rng(4)
        xs = rng.uniform(-500.0, 6500.0, 400)
        ys = rng.uniform(-500.0, 4500.0, 400)
        before = base.shards_of(xs, ys)
        after = refined.shards_of(xs, ys)
        tiles = set(refined.cell_shards[4])
        # Tuples in the split cell land on one of its tiles; everyone
        # else keeps their exact shard id.
        assert all(int(s) in tiles for s in after[before == 4])
        assert np.array_equal(after[before != 4], before[before != 4])
        for s in tiles:
            assert refined.cell_of_shard(s) == 4

    def test_split_validation(self):
        refined = RefinedRegionGrid.refine(RegionGrid(BOUNDS, nx=2, ny=2))
        with pytest.raises(ValueError, match="no base cell"):
            refined.split_cell(9)
        with pytest.raises(ValueError, match="split factors"):
            refined.split_cell(0, sx=1, sy=1)
        with pytest.raises(ValueError, match="split factors"):
            refined.split_cell(0, sx=3, sy=1)
        once = refined.split_cell(1)
        with pytest.raises(ValueError, match="already split"):
            once.split_cell(1)

    def test_merge_leaves_holes_and_split_reuses_them(self):
        refined = RefinedRegionGrid.refine(RegionGrid(BOUNDS, nx=3, ny=2))
        split = refined.split_cell(2)
        extra = set(split.cell_shards[2]) - {2}
        merged = split.merge_cell(2)
        assert merged.cell_shards[2] == (2,)  # survivor = lowest id
        assert merged.n_regions == split.n_regions  # slots never shrink
        for s in extra:
            assert not merged.active_shards[s]
            with pytest.raises(ValueError, match="not an active slot"):
                merged.region(s)
            with pytest.raises(ValueError, match="not an active slot"):
                merged.cell_of_shard(s)
        # Hole slots answer no scatter and own no points.
        rng = np.random.default_rng(5)
        xs, ys = rng.uniform(0, 6000, 300), rng.uniform(0, 4000, 300)
        assert not np.isin(merged.shards_of(xs, ys), list(extra)).any()
        assert not merged.disks_shard_mask(xs, ys, 4000.0)[:, list(extra)].any()
        # The next split takes the retired ids before growing the space.
        again = merged.split_cell(0)
        assert merged.n_regions == again.n_regions
        assert extra <= set(again.cell_shards[0])

    def test_degenerate_split_factors(self):
        refined = RefinedRegionGrid.refine(RegionGrid(BOUNDS, nx=3, ny=2))
        wide = refined.split_cell(0, sx=2, sy=1)
        tall = refined.split_cell(0, sx=1, sy=2)
        assert len(wide.cell_shards[0]) == 2 == len(tall.cell_shards[0])
        # 2x1 tiles stack along x, 1x2 along y.
        r_w = [wide.region(s).bounds for s in wide.cell_shards[0]]
        assert r_w[0].max_x == pytest.approx(r_w[1].min_x)
        r_t = [tall.region(s).bounds for s in tall.cell_shards[0]]
        assert r_t[0].max_y == pytest.approx(r_t[1].min_y)


class TestRouterRebalance:
    def test_split_and_merge_preserve_answers(self):
        stream = make_stream(600, hot_cell_frac=0.5)
        queries = make_queries(stream, 80)
        with ShardedQueryEngine(filled_router(stream), max_workers=2) as ref, \
                ShardedQueryEngine(filled_router(stream), max_workers=2) as eng:
            expected = answers(ref, queries)
            router = eng.router
            hot = int(np.argmax(router.shard_counts()))
            rows_before = router.shard_counts()[hot]
            new_ids = router.split_shard(hot)
            assert router.layout_epoch == 1
            assert sum(router.shard_counts()[s] for s in new_ids) == rows_before
            assert sum(router.shard_counts()) == len(stream)
            assert identical(expected, answers(eng, queries))
            cell = router.grid.cell_of_shard(hot)
            keep = router.merge_cell(cell)
            assert keep == min(new_ids)
            assert router.layout_epoch == 2
            assert router.shard_counts()[keep] == rows_before
            assert identical(expected, answers(eng, queries))

    def test_split_carries_load_share_to_tiles(self):
        stream = make_stream(400, hot_cell_frac=0.6)
        router = filled_router(stream)
        hot = int(np.argmax(router.shard_counts()))
        parent_load = router.load.loads()[hot]
        assert parent_load > 0  # ingest recorded
        new_ids = router.split_shard(hot)
        loads = router.load.loads()
        assert sum(loads[s] for s in new_ids) == pytest.approx(parent_load)
        merged = router.merge_cell(router.grid.cell_of_shard(hot))
        assert router.load.loads()[merged] == pytest.approx(parent_load)

    def test_window_stats_rows_carry_read_epoch(self):
        router = filled_router(make_stream(200))
        for stamp, n_rows, read_epoch in router.window_stats(0):
            assert read_epoch == router.epoch
            assert n_rows >= 0 and stamp >= 0

    def test_stale_binding_raises_and_engine_retries(self):
        stream = make_stream(300, hot_cell_frac=0.5)
        queries = make_queries(stream, 20)
        with ShardedQueryEngine(filled_router(stream)) as eng:
            binding = eng.binding()
            eng.router.split_shard(int(np.argmax(eng.router.shard_counts())))
            with pytest.raises(StaleLayoutError):
                eng.plan(queries, "naive", binding=binding)
            # The engine's own plan() re-pins internally and succeeds.
            assert answers(eng, queries).answered.any()

    def test_plan_built_before_rebalance_executes_identically(self):
        stream = make_stream(500, hot_cell_frac=0.5)
        queries = make_queries(stream, 60)
        with ShardedQueryEngine(filled_router(stream), max_workers=2) as eng:
            plan = eng.plan(queries, "naive")
            expected = eng.execute(plan)
            hot = int(np.argmax(eng.router.shard_counts()))
            eng.router.split_shard(hot)
            assert identical(expected, eng.execute(plan))  # pinned slices
            eng.router.merge_cell(eng.router.grid.cell_of_shard(hot))
            assert identical(expected, eng.execute(plan))

    def test_tiered_router_refuses_rebalance(self, tmp_path):
        from repro.storage.tiered import TieredShardRouter

        tiered = TieredShardRouter(
            RegionGrid(BOUNDS, nx=2, ny=2), h=H, data_dir=tmp_path / "tier"
        )
        tiered.ingest(make_stream(50))
        assert tiered.layout_epoch == 0
        with pytest.raises(NotImplementedError, match="durable tier"):
            tiered.split_shard(0)
        with pytest.raises(NotImplementedError, match="durable tier"):
            tiered.merge_cell(0)
        tiered.close()


class TestReadReplicas:
    def test_replica_plans_split_ops_and_answer_identically(self):
        stream = make_stream(600, hot_cell_frac=0.6)
        queries = make_queries(stream, 100)
        with ShardedQueryEngine(filled_router(stream), max_workers=4) as eng:
            hot = int(np.argmax(eng.router.shard_counts()))
            plain = eng.plan(queries, "naive")
            expected = eng.execute(plain)
            eng.set_replicas({hot: 3})
            assert eng.replicas == {hot: 3}
            split = eng.plan(queries, "naive")
            hot_ops = [op for op in split.ops if op.context.shard == hot]
            plain_hot = [op for op in plain.ops if op.context.shard == hot]
            assert len(hot_ops) > len(plain_hot)
            # Disjoint replica chunks cover exactly the original queries.
            for a, b in zip(plain_hot, _regroup(hot_ops)):
                assert np.array_equal(a.positions, b)
            assert identical(expected, eng.execute(split))

    def test_replica_counts_below_two_are_dropped(self):
        with ShardedQueryEngine(filled_router(make_stream(100))) as eng:
            eng.set_replicas({0: 1, 1: 0, 2: 4})
            assert eng.replicas == {2: 4}
            eng.set_replicas(None)
            assert eng.replicas == {}

    def test_scan_load_is_recorded(self):
        stream = make_stream(400, hot_cell_frac=0.6)
        queries = make_queries(stream, 60)
        with ShardedQueryEngine(filled_router(stream)) as eng:
            answers(eng, queries)
            stats = eng.router.shard_load_stats()
            assert sum(st.scan_queries for st in stats) > 0
            assert sum(st.scan_units for st in stats) > 0
            assert max(st.load for st in stats) > 0


def _regroup(replica_ops):
    """Concatenate replica ops' positions back per (window, shard)."""
    groups = {}
    for op in replica_ops:
        groups.setdefault(
            (op.context.window_c, op.context.shard), []
        ).append(op.positions)
    return [np.concatenate(parts) for _, parts in sorted(groups.items())]


class TestShardLoadTracker:
    def test_counters_accumulate_and_load_decays(self):
        tracker = ShardLoadTracker(3, alpha=0.5)
        tracker.record_ingest(1, 100)
        tracker.record_scan(1, 10, 500.0, 0.25)
        stat = tracker.snapshot()[1]
        assert stat.ingest_rows == 100
        assert stat.scan_queries == 10
        assert stat.scan_units == 500.0
        assert stat.scan_seconds == 0.25
        assert stat.load > 0
        before = tracker.loads()[1]
        tracker.decay()
        assert 0 < tracker.loads()[1] < before
        assert tracker.loads()[0] == 0.0

    def test_seed_resize_reset(self):
        tracker = ShardLoadTracker(2)
        tracker.seed_load(0, 8.0)
        assert tracker.loads()[0] == 8.0
        tracker.seed_load(0, -3.0)  # clamped: load is non-negative
        assert tracker.loads()[0] == 0.0
        tracker.resize(4)
        assert tracker.n_shards == 4
        tracker.resize(2)  # never shrinks
        assert tracker.n_shards == 4
        tracker.seed_load(3, 2.0)
        tracker.reset_shard(3)
        assert tracker.snapshot()[3].load == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardLoadTracker(0)
        with pytest.raises(ValueError):
            ShardLoadTracker(2, alpha=0.0)
        with pytest.raises(ValueError):
            ShardLoadTracker(2, alpha=1.5)

    def test_skew_coefficient(self):
        assert skew_coefficient([]) == 1.0
        assert skew_coefficient([0.0, 0.0]) == 1.0
        assert skew_coefficient([2.0, 2.0, 2.0]) == 1.0
        assert skew_coefficient([9.0, 1.0, 2.0]) == pytest.approx(9.0 / 4.0)


class TestShardRebalancer:
    def test_threshold_validation(self):
        router = filled_router(make_stream(50))
        with pytest.raises(ValueError, match="split_threshold"):
            ShardRebalancer(router, split_threshold=1.0)
        with pytest.raises(ValueError, match="merge_threshold"):
            ShardRebalancer(router, merge_threshold=1.0)

    def test_hot_unsplit_shard_is_split_first(self):
        stream = make_stream(500, hot_cell_frac=0.7)
        router = filled_router(stream)
        rb = ShardRebalancer(router)
        hot = int(np.argmax(router.shard_counts()))
        assert rb.skew() > rb.split_threshold
        action = rb.step()
        assert action.kind == "split" and action.shard == hot
        assert len(action.new_shards) >= 2
        assert rb.history == [action]
        assert router.grid.is_split(action.cell)

    def test_hot_split_shard_gets_replicas_installed(self):
        stream = make_stream(500, hot_cell_frac=0.7)
        router = filled_router(stream)
        with ShardedQueryEngine(router) as eng:
            rb = ShardRebalancer(router, eng, max_replicas=3)
            split = rb.step()
            assert split.kind == "split"
            # Re-heat one tile far past the threshold (everyone else
            # cold): refinement limit reached, so the policy provisions
            # replicas on the engine.
            tile = split.new_shards[-1]
            for s in range(router.n_shards):
                router.load.seed_load(s, 100.0 if s == tile else 0.0)
            action = rb.step()
            assert action.kind == "replicas" and action.shard == tile
            assert eng.replicas[tile] == 3  # capped at max_replicas
            # Already provisioned: the same heat does not re-act.
            router.load.seed_load(tile, 100.0)
            assert rb.step().kind == "none"

    def test_all_cold_tiles_merge_and_drop_replicas(self):
        stream = make_stream(400, hot_cell_frac=0.7)
        router = filled_router(stream)
        with ShardedQueryEngine(router) as eng:
            rb = ShardRebalancer(router, eng)
            split = rb.step()
            eng.set_replicas({split.new_shards[-1]: 2})
            # Load moves on: decay the tiles to cold, keep a suburb warm
            # so the mean stays positive.
            for s in split.new_shards:
                router.load.seed_load(s, 0.0)
            other = next(
                s for s in range(router.n_shards) if s not in split.new_shards
            )
            router.load.seed_load(other, 5.0)
            action = rb.step()
            assert action.kind == "merge" and action.cell == split.cell
            assert action.shard == min(split.new_shards)
            assert eng.replicas == {}  # merged tiles lose their entries

    def test_run_reaches_quiescence_with_identical_answers(self):
        stream = make_stream(800, hot_cell_frac=0.6)
        queries = make_queries(stream, 120)
        with ShardedQueryEngine(filled_router(stream), max_workers=2) as ref, \
                ShardedQueryEngine(filled_router(stream), max_workers=2) as eng:
            expected = answers(ref, queries)
            answers(eng, queries)  # feed the load tracker a real workload
            rb = ShardRebalancer(eng.router, eng)
            taken = rb.run(max_steps=12)
            assert taken, "skewed load must trigger at least one action"
            assert taken == rb.history
            assert any(a.kind == "split" for a in taken)
            assert identical(expected, answers(eng, queries))

    def test_quiet_on_balanced_load(self):
        router = filled_router(make_stream(300, hot_cell_frac=0.0))
        rb = ShardRebalancer(router)
        assert rb.run() == []
        assert router.layout_epoch == 0

    def test_tiny_hot_shard_is_left_alone(self):
        router = filled_router(make_stream(120, hot_cell_frac=0.5))
        rb = ShardRebalancer(router, min_rows_to_split=10_000)
        action = rb.step()
        assert action.kind in ("none", "replicas")
        assert router.layout_epoch == 0  # never re-cut below the floor

    def test_action_is_frozen_record(self):
        action = RebalanceAction("split", shard=1, new_shards=(1, 6))
        with pytest.raises(Exception):
            action.kind = "merge"


class TestSubscriptionsAcrossRebalance:
    def test_standing_query_survives_a_rebalance(self, small_batch):
        from repro.query.subscriptions import (
            SubscriptionSpec,
            registry_for,
        )

        bbox = BoundingBox(
            float(small_batch.x.min()) - 500.0,
            float(small_batch.y.min()) - 500.0,
            float(small_batch.x.max()) + 500.0,
            float(small_batch.y.max()) + 500.0,
        )
        head = small_batch.slice(0, 2000)
        router = ShardRouter(RegionGrid(bbox, nx=2, ny=2), h=240)
        router.ingest(head)
        with ShardedQueryEngine(router) as eng:
            reg = registry_for(eng)
            xm, ym = float(np.mean(head.x)), float(np.mean(head.y))
            spec = SubscriptionSpec(
                route=((xm - 300.0, ym - 300.0), (xm + 300.0, ym + 300.0)),
                t_start=float(head.t[0]),
                interval_s=60.0,
                count=20,
                method="naive",
            )
            sub = reg.register(spec)
            hot = int(np.argmax(router.shard_counts()))
            router.split_shard(hot)
            router.ingest(small_batch.slice(2000, 2600))
            reg.maintain()
            router.merge_cell(router.grid.cell_of_shard(hot))
            router.ingest(small_batch.slice(2600, 3000))
            reg.maintain()
            # Replay the update stream; the folded state must equal a
            # from-scratch engine over the same rows, bytes for bytes.
            state_v = sub.initial.values.copy()
            state_s = sub.initial.support.copy()
            for u in reg.poll(sub.id, maintain=False):
                state_v[u.indices] = u.values
                state_s[u.indices] = u.support
            fresh = ShardRouter(RegionGrid(bbox, nx=2, ny=2), h=240)
            fresh.ingest(small_batch.slice(0, 3000))
            with ShardedQueryEngine(fresh) as ref_eng:
                ref_v, ref_s = registry_for(ref_eng).reference_answers(
                    spec.query_batch(), "naive"
                )
            assert np.array_equal(state_v, ref_v, equal_nan=True)
            assert np.array_equal(state_s, ref_s)


class TestShmLayoutRetirement:
    def test_export_retired_on_layout_change(self):
        from repro.storage.shm import ShardExportRegistry, attach_shard

        rng = np.random.default_rng(9)
        batch = TupleBatch(
            np.sort(rng.uniform(0, 100, 40)),
            rng.uniform(0, 100, 40),
            rng.uniform(0, 100, 40),
            rng.uniform(0, 100, 40),
        )
        registry = ShardExportRegistry()
        try:
            prefix = lambda: (batch, np.arange(40, dtype=np.int64))
            d1 = registry.ensure(0, 30, prefix, layout=0)
            # Same layout, covered length: reused.
            assert registry.ensure(0, 30, prefix, layout=0).shm_name == d1.shm_name
            # A re-cut replaced the shard's rows: long enough is not
            # good enough, the export must be rebuilt.
            d2 = registry.ensure(0, 30, prefix, layout=1)
            assert d2.shm_name != d1.shm_name
            with pytest.raises(FileNotFoundError):
                attach_shard(d1, untrack=False)
        finally:
            registry.close()
