"""End-to-end integration tests: the full EnviroMeter loop.

Sense -> store -> model -> query -> cache -> app, across module
boundaries, on the small synthetic dataset.
"""

import numpy as np
import pytest

from repro.app.android import AndroidSession
from repro.app.webapp import WebInterface
from repro.client.baseline import BaselineClient
from repro.client.modelcache import ModelCacheClient
from repro.core.cover import ModelCover
from repro.data.tuples import QueryTuple
from repro.geo.coords import BoundingBox
from repro.query.engine import QueryEngine
from repro.server.server import EnviroMeterServer
from repro.storage.persist import load_database, save_database


class TestFullLoop:
    def test_sense_store_model_query(self, small_dataset):
        """The complete Figure 1/3 pipeline."""
        server = EnviroMeterServer(h=240)
        server.ingest(small_dataset.tuples)

        t = float(small_dataset.tuples.t[800])
        # Point query through the server path.
        from repro.network.messages import QueryRequest

        response = server.handle(QueryRequest(t=t, x=2000.0, y=1500.0))
        assert 200.0 < response.value < 1500.0

        # The stored cover blob round-trips through the database.
        c = server.current_window(t)
        _, _, blob = server.db.cover_blob_for_window(c)
        cover = ModelCover.from_blob(blob)
        assert cover.window_c == c

    def test_database_survives_persistence(self, small_dataset, tmp_path):
        server = EnviroMeterServer(h=240)
        server.ingest(small_dataset.tuples)
        t = float(small_dataset.tuples.t[500])
        server.cover_for(t)

        path = tmp_path / "server.emdb"
        save_database(server.db, path)
        restored = EnviroMeterServer(h=240, database=load_database(path))
        # The restored server answers from the persisted cover and data.
        from repro.network.messages import QueryRequest

        response = restored.handle(QueryRequest(t=t, x=2000.0, y=1500.0))
        assert response.value is not None

    def test_clients_agree_within_cover_validity(self, small_dataset):
        server = EnviroMeterServer(h=240)
        server.ingest(small_dataset.tuples)
        t0 = float(small_dataset.tuples.t[300])
        # Queries within one window: both clients see the same cover.
        queries = [QueryTuple(t=t0 + i, x=2000.0, y=1500.0) for i in range(10)]
        vb = BaselineClient(server).run_continuous(queries)
        vm = ModelCacheClient(server).run_continuous(queries)
        for a, b in zip(vb, vm):
            assert a == pytest.approx(b)

    def test_android_and_web_consistent(self, small_dataset):
        server = EnviroMeterServer(h=240)
        server.ingest(small_dataset.tuples)
        engine = QueryEngine(small_dataset.tuples, h=240)
        web = WebInterface(engine)

        t = float(small_dataset.tuples.t[800])
        session = AndroidSession(server)
        session.set_clock(t)
        session.update_position(2000.0, 1500.0)

        phone = session.current_reading()
        browser = web.point_query(t, 2000.0, 1500.0).co2_ppm
        # Same algorithm, same data, same window -> same interpolation.
        assert phone == pytest.approx(browser, rel=1e-9)

    def test_heatmap_tracks_pollution_sources(self, small_dataset):
        engine = QueryEngine(small_dataset.tuples, h=500)
        web = WebInterface(engine)
        # Morning rush hour: plume contrast is at its strongest.
        t = float(
            small_dataset.tuples.t[
                int(np.searchsorted(small_dataset.tuples.t, 8.0 * 3600.0))
            ]
        )
        hm = web.heatmap(t, BoundingBox(500, 500, 4500, 3000), nx=12, ny=8)
        lo, hi = hm.value_range()
        # Real spatial contrast, physically plausible outdoor CO2 range.
        assert hi - lo > 5.0
        assert 300.0 < lo < hi < 1500.0

    def test_cover_accuracy_against_window_data(self, small_dataset, daytime_window):
        """The cover's training-data error respects the Ad-KMN threshold."""
        from repro.core.adkmn import AdKMNConfig, fit_adkmn
        from repro.models.errors import approximation_error_pct

        result = fit_adkmn(daytime_window, AdKMNConfig(tau_n_pct=2.0))
        w = daytime_window
        pred = result.cover.predict_batch(w.t, w.x, w.y)
        overall = approximation_error_pct(pred, w.s)
        # Overall error is a size-weighted mix of per-region errors, all
        # of which converged to <= 2 % (or were too small to split).
        assert overall <= 3.0
