"""Tests for repro.client.fleet."""

import pytest

from repro.client.fleet import FleetMember, FleetSimulator, commuter_fleet
from repro.server.server import EnviroMeterServer


@pytest.fixture()
def server(small_batch):
    srv = EnviroMeterServer(h=240)
    srv.ingest(small_batch)
    return srv


@pytest.fixture()
def t_start(small_batch):
    return float(small_batch.t[300])


def member(name, cache=True, n_queries=20):
    return FleetMember(
        name=name,
        waypoints=((1000.0, 1000.0), (3000.0, 2500.0)),
        use_model_cache=cache,
        n_queries=n_queries,
    )


class TestFleetMember:
    def test_validation(self):
        with pytest.raises(ValueError):
            FleetMember(name="x", waypoints=((0.0, 0.0),))
        with pytest.raises(ValueError):
            member("x", n_queries=0)

    def test_queries_follow_route(self, t_start):
        qs = member("a", n_queries=5).queries(t_start)
        assert len(qs) == 5
        assert qs[0].position() == (1000.0, 1000.0)


class TestFleetSimulator:
    def test_empty_fleet_rejected(self, server, t_start):
        with pytest.raises(ValueError):
            FleetSimulator(server).run([], t_start)

    def test_duplicate_names_rejected(self, server, t_start):
        with pytest.raises(ValueError):
            FleetSimulator(server).run([member("a"), member("a")], t_start)

    def test_mixed_fleet_reports(self, server, t_start):
        fleet = [member("cache-1"), member("cache-2"), member("base-1", cache=False)]
        report = FleetSimulator(server).run(fleet, t_start)
        assert len(report.members) == 3
        assert all(m.answered == 20 for m in report.members)
        base, cache = report.stats_by_strategy()
        # One baseline member: 20 round trips; two cached members: 1 each.
        assert base.sent_messages == 20
        assert cache.sent_messages == 2

    def test_cache_traffic_sublinear_in_fleet_size(self, server, t_start, small_dataset):
        bbox = small_dataset.covered_bbox()
        small = FleetSimulator(server).run(
            commuter_fleet(2, bbox, n_queries=20), t_start
        )
        big = FleetSimulator(server).run(
            commuter_fleet(8, bbox, n_queries=20, seed=1), t_start
        )
        # Per-member cached traffic is one model download regardless of
        # fleet size; total grows linearly in members, not in queries.
        assert big.total_stats().sent_messages == 8
        assert small.total_stats().sent_messages == 2

    def test_baseline_fleet_traffic_linear_in_queries(self, server, t_start, small_dataset):
        bbox = small_dataset.covered_bbox()
        fleet = commuter_fleet(3, bbox, use_model_cache=False, n_queries=15)
        report = FleetSimulator(server).run(fleet, t_start)
        assert report.total_stats().sent_messages == 3 * 15
        assert report.server_values_served == 3 * 15

    def test_server_cover_computed_once_for_cached_fleet(
        self, server, t_start, small_dataset
    ):
        bbox = small_dataset.covered_bbox()
        FleetSimulator(server).run(commuter_fleet(5, bbox, n_queries=10), t_start)
        # Five model requests served, but only one cover blob materialised.
        assert server.served_covers == 5
        assert len(server.db.table("model_cover")) == 1


class TestCommuterFleet:
    def test_size_and_names(self, small_dataset):
        fleet = commuter_fleet(4, small_dataset.covered_bbox())
        assert len(fleet) == 4
        assert len({m.name for m in fleet}) == 4

    def test_invalid_size(self, small_dataset):
        with pytest.raises(ValueError):
            commuter_fleet(0, small_dataset.covered_bbox())

    def test_routes_inside_bbox(self, small_dataset):
        bbox = small_dataset.covered_bbox()
        for m in commuter_fleet(6, bbox, seed=3):
            for x, y in m.waypoints:
                assert bbox.min_x <= x <= bbox.max_x
                assert bbox.min_y <= y <= bbox.max_y


class TestRegionalFleet:
    def _grid(self):
        from repro.geo.coords import BoundingBox
        from repro.geo.region import RegionGrid

        return RegionGrid(BoundingBox(0.0, 0.0, 6000.0, 4000.0), nx=2, ny=2)

    def test_members_stay_inside_their_region(self):
        from repro.client.fleet import regional_fleet

        grid = self._grid()
        fleet = regional_fleet(3, grid, seed=5)
        assert len(fleet) == 3 * grid.n_regions
        assert len({m.name for m in fleet}) == len(fleet)
        for k in range(grid.n_regions):
            members = [m for m in fleet if m.name.startswith(f"region-{k}-")]
            assert len(members) == 3
            bounds = grid.region(k).bounds
            for m in members:
                for x, y in m.waypoints:
                    assert bounds.contains_point(x, y)
                    assert grid.shard_of(x, y) == k

    def test_invalid_size(self):
        from repro.client.fleet import regional_fleet

        with pytest.raises(ValueError):
            regional_fleet(0, self._grid())

    def test_runs_against_sharded_server(self, small_batch, t_start):
        from repro.client.fleet import regional_fleet
        from repro.server.server import ShardedEnviroMeterServer

        grid = self._grid()
        server = ShardedEnviroMeterServer(grid, h=240)
        server.ingest(small_batch)
        fleet = regional_fleet(1, grid, n_queries=5, seed=2)
        report = FleetSimulator(server).run(fleet, t_start)
        assert len(report.members) == grid.n_regions
        assert report.server_covers_served >= 1
        # Shard-local traffic: every member is answered, and the request
        # volume aggregates across the per-region servers.
        assert report.server_covers_served == server.served_covers


class TestSubscriptionFleet:
    def test_run_subscriptions_delivers_and_prunes(self, small_batch, t_start):
        import numpy as np

        cut = int(0.8 * len(small_batch))
        srv = EnviroMeterServer(h=240)
        srv.ingest(small_batch.slice(0, cut))
        members = [
            member("tail-rider", n_queries=10),
            member("side-rider", n_queries=10),
        ]
        t_tail = float(small_batch.t[cut - 1])
        sim = FleetSimulator(srv)
        step = (len(small_batch) - cut + 2) // 3
        batches = [
            small_batch.slice(lo, min(lo + step, len(small_batch)))
            for lo in range(cut, len(small_batch), step)
        ]
        report = sim.run_subscriptions(
            members, t_tail, ingest_batches=batches
        )
        assert {m.name for m in report.members} == {"tail-rider", "side-rider"}
        assert report.maintenance_passes >= len(batches)
        # Delta maintenance re-executes at most the dirty slices, never
        # the naive every-member-every-poll total.
        naive_total = len(batches) * sum(m.n_queries for m in members)
        assert report.queries_reexecuted < naive_total
        for m in report.members:
            sub = srv.subscriptions.subscription(m.subscription_id)
            ref_v, ref_s = srv.subscriptions.reference_answers(
                sub.batch, sub.method
            )
            v, s = sub.answer()
            assert np.array_equal(v, ref_v, equal_nan=True)
            assert np.array_equal(s, ref_s)

    def test_run_subscriptions_rejects_duplicate_names(self, server, t_start):
        sim = FleetSimulator(server)
        with pytest.raises(ValueError):
            sim.run_subscriptions([member("a"), member("a")], t_start)
