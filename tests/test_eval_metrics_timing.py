"""Tests for repro.eval.metrics and repro.eval.timing."""

import time

import numpy as np
import pytest

from repro.data.field import PollutionField
from repro.data.tuples import QueryTuple
from repro.eval.metrics import evaluate_accuracy
from repro.eval.timing import Timer, time_callable
from repro.query.base import QueryResult


class ConstantField(PollutionField):
    pass


class OracleProcessor:
    """Answers with the true field value: NRMSE must be ~0."""

    name = "oracle"

    def __init__(self, field):
        self._field = field

    def process(self, q):
        return QueryResult(query=q, value=self._field.value(q.t, q.x, q.y), support=1)


class RefusingProcessor:
    name = "refuser"

    def process(self, q):
        return QueryResult(query=q, value=None, support=0)


@pytest.fixture()
def field():
    from repro.data.field import default_lausanne_field

    return default_lausanne_field()


@pytest.fixture()
def queries():
    rng = np.random.default_rng(0)
    return [
        QueryTuple(
            t=float(rng.uniform(0, 86_400)),
            x=float(rng.uniform(0, 6000)),
            y=float(rng.uniform(0, 4000)),
        )
        for _ in range(50)
    ]


class TestEvaluateAccuracy:
    def test_oracle_scores_zero(self, field, queries):
        nrmse, answered = evaluate_accuracy(OracleProcessor(field), queries, field)
        assert nrmse == pytest.approx(0.0, abs=1e-9)
        assert answered == 50

    def test_biased_processor_scores_positive(self, field, queries):
        class Biased(OracleProcessor):
            def process(self, q):
                res = super().process(q)
                return QueryResult(query=q, value=res.value + 30.0, support=1)

        nrmse, _ = evaluate_accuracy(Biased(field), queries, field)
        assert nrmse > 0.0

    def test_refusing_processor_raises(self, field, queries):
        with pytest.raises(ValueError, match="answered no queries"):
            evaluate_accuracy(RefusingProcessor(), queries, field)


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed_s >= 0.009

    def test_time_callable_best_of(self):
        calls = []
        best = time_callable(lambda: calls.append(1), repeats=3)
        assert len(calls) == 3
        assert best >= 0.0

    def test_time_callable_validation(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=0)
