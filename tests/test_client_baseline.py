"""Tests for repro.client.baseline."""

import pytest

from repro.client.baseline import BaselineClient
from repro.data.tuples import QueryTuple
from repro.network.link import GPRS, CellularLink
from repro.network.protocol import FRAME_OVERHEAD_BYTES
from repro.server.server import EnviroMeterServer


@pytest.fixture()
def server(small_batch):
    srv = EnviroMeterServer(h=240)
    srv.ingest(small_batch)
    return srv


class TestQuerying:
    def test_returns_value(self, server, small_batch):
        client = BaselineClient(server)
        t = float(small_batch.t[100])
        value = client.query(QueryTuple(t=t, x=2000.0, y=1500.0))
        assert value is not None
        assert 200.0 < value < 1500.0

    def test_one_round_trip_per_query(self, server, small_batch):
        client = BaselineClient(server)
        t = float(small_batch.t[100])
        for i in range(5):
            client.query(QueryTuple(t=t + i, x=2000.0, y=1500.0))
        assert client.stats.sent_messages == 5
        assert client.stats.received_messages == 5
        assert server.served_values == 5

    def test_traffic_includes_framing(self, server, small_batch):
        client = BaselineClient(server)
        t = float(small_batch.t[100])
        client.query(QueryTuple(t=t, x=0.0, y=0.0))
        assert client.stats.sent_bytes == 25 + FRAME_OVERHEAD_BYTES

    def test_network_time_accumulates(self, server, small_batch):
        link = CellularLink(GPRS)
        client = BaselineClient(server, link)
        t = float(small_batch.t[100])
        client.query(QueryTuple(t=t, x=0.0, y=0.0))
        # At least one full RTT.
        assert client.stats.network_time_s >= GPRS.rtt_s

    def test_run_continuous(self, server, small_batch):
        client = BaselineClient(server)
        t0 = float(small_batch.t[100])
        queries = [QueryTuple(t=t0 + 60 * i, x=2000.0, y=1500.0) for i in range(10)]
        values = client.run_continuous(queries)
        assert len(values) == 10
        assert client.stats.sent_messages == 10
