"""Tests for repro.client.modelcache — the paper's Section 2.3 protocol."""

import pytest

from repro.client.baseline import BaselineClient
from repro.client.modelcache import ModelCacheClient
from repro.data.tuples import QueryTuple
from repro.server.server import EnviroMeterServer


@pytest.fixture()
def server(small_batch):
    srv = EnviroMeterServer(h=240, validity_horizon_s=4 * 3600.0)
    srv.ingest(small_batch)
    return srv


class TestCaching:
    def test_initial_request_fetches_cover(self, server, small_batch):
        client = ModelCacheClient(server)
        t = float(small_batch.t[100])
        value = client.query(QueryTuple(t=t, x=2000.0, y=1500.0))
        assert value is not None
        assert client.cached_cover is not None
        assert client.cache_refreshes == 1

    def test_valid_cover_answers_locally(self, server, small_batch):
        client = ModelCacheClient(server)
        t = float(small_batch.t[100])
        for i in range(20):
            client.query(QueryTuple(t=t + i * 60.0, x=2000.0, y=1500.0))
        # One model request total; the server never saw a value query.
        assert client.cache_refreshes == 1
        assert server.served_covers == 1
        assert server.served_values == 0

    def test_expired_cover_refreshes(self, server, small_batch):
        client = ModelCacheClient(server)
        t = float(small_batch.t[100])
        client.query(QueryTuple(t=t, x=0.0, y=0.0))
        t_n = client.cached_cover.valid_until
        client.query(QueryTuple(t=t_n + 1.0, x=0.0, y=0.0))
        assert client.cache_refreshes == 2

    def test_local_answers_match_cover(self, server, small_batch):
        client = ModelCacheClient(server)
        t = float(small_batch.t[100])
        q = QueryTuple(t=t, x=2100.0, y=1600.0)
        value = client.query(q)
        assert value == pytest.approx(client.cached_cover.predict(q.t, q.x, q.y))

    def test_uses_much_less_bandwidth_than_baseline(self, server, small_batch):
        t0 = float(small_batch.t[100])
        queries = [QueryTuple(t=t0 + 60.0 * i, x=2000.0, y=1500.0) for i in range(100)]
        base = BaselineClient(server)
        cache = ModelCacheClient(server)
        base.run_continuous(queries)
        cache.run_continuous(queries)
        assert base.stats.sent_bytes > 50 * cache.stats.sent_bytes
        assert base.stats.received_bytes > 10 * cache.stats.received_bytes
        assert base.stats.network_time_s > 20 * cache.stats.network_time_s
