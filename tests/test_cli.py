"""Tests for repro.cli."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figures_quick_flag(self):
        args = build_parser().parse_args(["figures", "--quick"])
        assert args.quick

    def test_dataset_defaults(self):
        args = build_parser().parse_args(["dataset"])
        assert args.days == 30
        assert args.target == 176_000


class TestCommands:
    def test_dataset_command(self, tmp_path, capsys):
        out = tmp_path / "small.csv"
        rc = main(
            ["dataset", "--days", "1", "--target", "500", "--out", str(out)]
        )
        assert rc == 0
        assert out.exists()
        assert "500 tuples" in capsys.readouterr().out
        from repro.data.io import read_tuples_csv

        assert len(read_tuples_csv(out)) == 500

    def test_heatmap_ascii(self, capsys):
        rc = main(["heatmap", "--hour", "9.0", "--width", "20", "--height", "8"])
        assert rc == 0
        lines = capsys.readouterr().out.rstrip("\n").split("\n")
        assert len(lines) == 8
        assert all(len(line) == 20 for line in lines)

    def test_heatmap_ppm(self, tmp_path, capsys):
        out = tmp_path / "map.ppm"
        rc = main(["heatmap", "--out", str(out), "--width", "16", "--height", "8"])
        assert rc == 0
        assert out.read_bytes().startswith(b"P6\n16 8\n255\n")

    def test_serve_command(self, capsys):
        rc = main(["serve", "--days", "1", "--query-every", "14400"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "replayed" in out
        assert "cover(s)" in out

    def test_serve_sharded(self, capsys):
        rc = main(
            ["serve", "--days", "1", "--query-every", "14400", "--shards", "4"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "replayed" in out
        assert "per-shard tuple counts" in out

    def test_heatmap_sharded_ascii(self, capsys):
        rc = main(
            [
                "heatmap", "--hour", "9.0",
                "--width", "18", "--height", "6", "--shards", "4",
            ]
        )
        assert rc == 0
        lines = capsys.readouterr().out.rstrip("\n").split("\n")
        assert len(lines) == 6
        assert all(len(line) == 18 for line in lines)

    def test_shards_must_be_positive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--shards", "0"])


class TestExplain:
    def test_explain_defaults(self):
        args = build_parser().parse_args(["explain"])
        assert args.method == "auto"
        assert args.shards == 1
        assert args.queries == 0

    def test_explain_heatmap_prints_plan(self, capsys):
        rc = main(
            [
                "explain", "--hour", "9.0",
                "--width", "12", "--height", "8", "--method", "auto",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "plan: method=auto" in out
        assert "est u/q" in out and "observed" in out
        assert "cache {" in out
        assert "planner feedback" in out

    def test_explain_sharded_continuous(self, capsys):
        rc = main(
            [
                "explain", "--shards", "4", "--queries", "60",
                "--method", "auto", "--warm",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "plan: method=auto" in out
        assert "/s" in out  # per-shard contexts rendered


class TestShardsCommand:
    def test_shards_prints_load_table(self, capsys):
        rc = main(["shards", "--days", "1", "--shards", "6", "--queries", "40"])
        assert rc == 0
        out = capsys.readouterr().out
        header = next(l for l in out.splitlines() if l.startswith("shard"))
        for col in ("cell", "rows", "windows", "ingested", "queries",
                    "scan-units", "load", "flags"):
            assert col in header
        assert "skew (max/mean):" in out

    def test_shards_rebalance_splits_and_flags(self, capsys):
        rc = main(
            [
                "shards", "--days", "1", "--shards", "6", "--queries", "80",
                "--focus", "0.25", "--rebalance", "4",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "rebalance: split shard" in out
        assert "split" in out.split("flags", 1)[1]  # tiles flagged in table

    def test_explain_sharded_includes_shard_table(self, capsys):
        rc = main(["explain", "--shards", "4", "--queries", "20"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "per-shard occupancy and load:" in out
        assert "skew (max/mean):" in out

    def test_explain_unsharded_omits_shard_table(self, capsys):
        rc = main(["explain", "--queries", "20"])
        assert rc == 0
        assert "per-shard occupancy" not in capsys.readouterr().out


class TestServeSubscriptions:
    def test_subscriptions_require_network_mode(self, capsys):
        rc = main(["serve", "--days", "1", "--subscriptions"])
        assert rc == 2
        assert "--port" in capsys.readouterr().err

    def test_parser_accepts_flag(self):
        args = build_parser().parse_args(
            ["serve", "--port", "9000", "--subscriptions"]
        )
        assert args.subscriptions
