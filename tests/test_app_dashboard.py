"""Tests for repro.app.dashboard."""

import numpy as np
import pytest

from repro.app.dashboard import Dashboard, cover_health, skew_indicators
from repro.core.adkmn import AdKMNConfig, fit_adkmn
from repro.data.tuples import TupleBatch
from repro.geo.coords import BoundingBox
from repro.geo.region import Region
from repro.server.server import EnviroMeterServer

REGION = Region("lausanne", BoundingBox(0, 0, 6000, 4000))


class TestSkewIndicators:
    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            skew_indicators(TupleBatch.empty(), REGION)

    def test_invalid_cell(self, daytime_window):
        with pytest.raises(ValueError):
            skew_indicators(daytime_window, REGION, cell_m=0)

    def test_bus_data_is_geographically_sparse(self, daytime_window):
        skew = skew_indicators(daytime_window, REGION)
        # Two bus routes cover a small fraction of the city's 500 m cells.
        assert 0.0 < skew.covered_area_fraction < 0.5
        assert skew.tuple_count == len(daytime_window)

    def test_gap_detection(self):
        t = np.array([0.0, 60.0, 120.0, 7200.0])  # 2-hour silence
        batch = TupleBatch(t, np.zeros(4), np.zeros(4), np.full(4, 450.0))
        skew = skew_indicators(batch, REGION)
        assert skew.largest_gap_s == pytest.approx(7080.0)

    def test_tuples_per_model_uses_result(self, daytime_window):
        result = fit_adkmn(daytime_window, AdKMNConfig())
        skew = skew_indicators(daytime_window, REGION, result)
        assert skew.tuples_per_model == pytest.approx(
            len(daytime_window) / result.cover.size
        )

    def test_sparse_flag(self):
        batch = TupleBatch([0.0] * 5, [1.0] * 5, [1.0] * 5, [450.0] * 5)
        assert skew_indicators(batch, REGION).is_sparse


class TestCoverHealth:
    def test_staleness(self, daytime_window):
        result = fit_adkmn(daytime_window, AdKMNConfig(tau_n_pct=8.0))
        now = float(daytime_window.t[-1]) + 1800.0
        health = cover_health(result, now, daytime_window)
        assert health.staleness_s == pytest.approx(1800.0)
        assert health.converged  # loose tau converges without splits
        assert not health.needs_attention

    def test_stale_cover_flags_attention(self, daytime_window):
        result = fit_adkmn(daytime_window, AdKMNConfig(tau_n_pct=8.0))
        now = float(daytime_window.t[-1]) + 5 * 3600.0
        assert cover_health(result, now, daytime_window).needs_attention

    def test_unconverged_cover_flags_attention(self, daytime_window):
        # A τn below the sensor-noise floor cannot converge: min_split_size
        # blocks the endless split cascade and the health record says so.
        result = fit_adkmn(daytime_window, AdKMNConfig(tau_n_pct=0.2))
        assert not result.converged
        now = float(daytime_window.t[-1])
        assert cover_health(result, now, daytime_window).needs_attention

    def test_clock_before_window_is_not_negative(self, daytime_window):
        result = fit_adkmn(daytime_window, AdKMNConfig())
        health = cover_health(result, 0.0, daytime_window)
        assert health.staleness_s == 0.0


class TestDashboard:
    def test_no_data(self):
        panel = Dashboard(EnviroMeterServer(), REGION).render(0.0)
        assert "no data" in panel

    def test_full_panel(self, small_batch):
        server = EnviroMeterServer(h=240)
        server.ingest(small_batch)
        now = float(small_batch.t[500])
        panel = Dashboard(server, REGION).render(now)
        assert "EnviroMeter server status" in panel
        assert "models" in panel
        assert "skew" in panel
        assert "t_n" in panel

    def test_panel_reflects_traffic(self, small_batch):
        from repro.network.messages import QueryRequest

        server = EnviroMeterServer(h=240)
        server.ingest(small_batch)
        now = float(small_batch.t[500])
        server.handle(QueryRequest(t=now, x=2000.0, y=1500.0))
        panel = Dashboard(server, REGION).render(now)
        assert "1 value responses" in panel
