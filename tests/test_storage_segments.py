"""Tests for repro.storage.segments — the immutable sealed-window files.

The durable tier's correctness rests on two properties of this format:
round-trips are *byte-exact* (float64 columns, NaN/inf payloads and all),
and any single corrupted or missing byte surfaces as
:class:`SegmentCorrupt` rather than silently wrong rows.  Both are
checked exhaustively here: hypothesis drives the round-trip over random
lengths and pathological floats, and the corruption tests flip / drop
*every byte offset* of a small segment.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.data.tuples import TupleBatch
from repro.storage.segments import (
    CORE_COLUMNS,
    SegmentCorrupt,
    read_segment,
    read_segment_meta,
    segment_filename,
    write_segment,
)
from repro.storage.sketch import WindowSketch

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

_floats = st.floats(
    allow_nan=True, allow_infinity=True, width=64
)  # full float64 range, NaN and ±inf included


def _batch(n: int, seed: int = 0) -> TupleBatch:
    rng = np.random.default_rng(seed)
    return TupleBatch(
        np.cumsum(rng.uniform(0.5, 5.0, n)),
        rng.uniform(0.0, 100.0, n),
        rng.uniform(0.0, 100.0, n),
        rng.uniform(350.0, 600.0, n),
    )


def _write(path, batch, gids=None, **kwargs) -> int:
    if gids is None:
        gids = np.arange(len(batch), dtype=np.int64)
    defaults = dict(
        shard=3, window_c=17, h=240, stamp=42, sketch=WindowSketch.of(batch)
    )
    defaults.update(kwargs)
    return write_segment(path, batch=batch, gids=gids, **defaults)


class TestRoundTrip:
    def test_columns_and_gids_byte_exact(self, tmp_path):
        batch = _batch(100)
        gids = np.arange(500, 600, dtype=np.int64)
        path = tmp_path / segment_filename(3, 17)
        size = _write(path, batch, gids)
        assert size == path.stat().st_size
        seg = read_segment(path)
        out = seg.batch()
        for name in CORE_COLUMNS:
            assert getattr(out, name).tobytes() == getattr(batch, name).tobytes()
        assert seg.gids().tobytes() == gids.tobytes()
        assert seg.gids().dtype == np.dtype("<i8")

    def test_meta_round_trip(self, tmp_path):
        batch = _batch(7)
        sketch = WindowSketch.of(batch)
        path = tmp_path / "a.seg"
        _write(path, batch, shard=5, window_c=9, h=100, stamp=1234, sketch=sketch)
        meta = read_segment_meta(path)
        assert (meta.shard, meta.window_c, meta.h) == (5, 9, 100)
        assert (meta.n_rows, meta.stamp) == (7, 1234)
        assert meta.sketch == sketch
        # Header-only read agrees with the full read.
        assert read_segment(path).meta == meta

    def test_empty_slice_round_trips(self, tmp_path):
        path = tmp_path / "empty.seg"
        _write(path, TupleBatch.empty(), sketch=WindowSketch.EMPTY)
        seg = read_segment(path)
        assert seg.meta.n_rows == 0
        assert len(seg.batch()) == 0
        assert len(seg.gids()) == 0
        assert seg.meta.sketch is WindowSketch.EMPTY

    def test_uncompressed_round_trips(self, tmp_path):
        batch = _batch(50)
        path = tmp_path / "raw.seg"
        _write(path, batch, compress=False)
        out = read_segment(path).batch()
        assert out.t.tobytes() == batch.t.tobytes()

    def test_compression_shrinks_redundant_payloads(self, tmp_path):
        n = 2000
        batch = TupleBatch(
            np.arange(n, dtype=float),
            np.zeros(n),
            np.zeros(n),
            np.full(n, 400.0),
        )
        raw = _write(tmp_path / "raw.seg", batch, compress=False)
        packed = _write(tmp_path / "zip.seg", batch, compress=True)
        assert packed < raw

    @_SETTINGS
    @given(
        rows=st.lists(
            st.tuples(_floats, _floats, _floats, _floats), min_size=1, max_size=60
        ),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        compress=st.booleans(),
    )
    def test_random_payloads_round_trip_exactly(
        self, tmp_path, rows, seed, compress
    ):
        """Any float64 payload — NaN, ±inf, -0.0 — reads back bit-identical."""
        cols = [np.array(col, dtype=np.float64) for col in zip(*rows)]
        batch = TupleBatch(*cols)
        rng = np.random.default_rng(seed)
        gids = np.sort(rng.choice(10**6, size=len(batch), replace=False)).astype(
            np.int64
        )
        path = tmp_path / "prop.seg"
        _write(path, batch, gids, compress=compress)
        seg = read_segment(path)
        out = seg.batch()
        for name in CORE_COLUMNS:
            assert getattr(out, name).tobytes() == getattr(batch, name).tobytes()
        assert seg.gids().tobytes() == gids.tobytes()
        assert seg.meta.n_rows == len(batch)

    def test_gid_batch_length_mismatch_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="align"):
            _write(tmp_path / "bad.seg", _batch(5), np.arange(4, dtype=np.int64))


class TestSelectiveRead:
    def test_core_only_skips_gids(self, tmp_path):
        path = tmp_path / "a.seg"
        _write(path, _batch(20))
        seg = read_segment(path, groups=("core",))
        assert set(seg.groups) == {"core"}
        assert len(seg.batch()) == 20
        with pytest.raises(KeyError):
            seg.gids()

    def test_gids_only_skips_core(self, tmp_path):
        path = tmp_path / "a.seg"
        _write(path, _batch(20))
        seg = read_segment(path, groups=("gids",))
        assert set(seg.groups) == {"gids"}
        assert len(seg.gids()) == 20

    def test_unknown_group_rejected(self, tmp_path):
        path = tmp_path / "a.seg"
        _write(path, _batch(5))
        with pytest.raises(KeyError, match="models"):
            read_segment(path, groups=("core", "models"))

    def test_skipped_group_is_not_validated(self, tmp_path):
        """Corruption confined to an unread group stays invisible — the
        reader never touches those payload bytes (that is the point of
        column groups); reading the group does detect it."""
        path = tmp_path / "a.seg"
        _write(path, _batch(20), compress=False)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # last byte: inside the trailing gids payload
        path.write_bytes(bytes(data))
        read_segment(path, groups=("core",))  # fine
        with pytest.raises(SegmentCorrupt):
            read_segment(path, groups=("gids",))


class TestCorruptionDetection:
    @pytest.mark.parametrize("compress", [False, True])
    def test_every_single_byte_flip_is_detected(self, tmp_path, compress):
        """Flip each byte of a small segment in turn: every read must fail
        loudly with SegmentCorrupt — magic, version, header, directory and
        payload corruption alike."""
        path = tmp_path / "a.seg"
        _write(path, _batch(6, seed=3), compress=compress)
        pristine = path.read_bytes()
        for offset in range(len(pristine)):
            data = bytearray(pristine)
            data[offset] ^= 0xFF
            path.write_bytes(bytes(data))
            with pytest.raises(SegmentCorrupt):
                read_segment(path)
        path.write_bytes(pristine)
        read_segment(path)  # the pristine image still reads

    def test_every_truncation_is_detected(self, tmp_path):
        path = tmp_path / "a.seg"
        _write(path, _batch(6, seed=4), compress=False)
        pristine = path.read_bytes()
        for length in range(len(pristine)):
            path.write_bytes(pristine[:length])
            with pytest.raises(SegmentCorrupt):
                read_segment(path)

    def test_truncated_meta_read_is_detected(self, tmp_path):
        path = tmp_path / "a.seg"
        _write(path, _batch(6))
        pristine = path.read_bytes()
        path.write_bytes(pristine[:10])
        with pytest.raises(SegmentCorrupt):
            read_segment_meta(path)

    def test_not_a_segment_file(self, tmp_path):
        path = tmp_path / "junk.seg"
        path.write_bytes(b"NOPE" + b"\x00" * 64)
        with pytest.raises(SegmentCorrupt, match="not a segment file"):
            read_segment(path)

    def test_future_version_rejected(self, tmp_path):
        path = tmp_path / "a.seg"
        _write(path, _batch(3))
        data = bytearray(path.read_bytes())
        data[4] = 99  # version field of the preamble
        path.write_bytes(bytes(data))
        with pytest.raises(SegmentCorrupt, match="version"):
            read_segment(path)


class TestAtomicity:
    def test_no_temp_files_after_write(self, tmp_path):
        path = tmp_path / "a.seg"
        _write(path, _batch(10))
        assert [p.name for p in tmp_path.iterdir()] == ["a.seg"]

    def test_filename_layout(self):
        assert segment_filename(3, 17) == "seg-s0003-w00000017.seg"
        assert segment_filename(0, 0) == "seg-s0000-w00000000.seg"
