"""Shared fixtures: small deterministic datasets and windows.

The full 176 K-tuple dataset takes seconds to generate; tests use a
truncated 1-day variant (still geo-temporally skewed) cached per session.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.lausanne import LausanneConfig, LausanneDataset, generate_lausanne_dataset
from repro.data.tuples import TupleBatch


@pytest.fixture(scope="session")
def small_dataset() -> LausanneDataset:
    """One simulated day, ~5.9 K tuples, deterministic."""
    return generate_lausanne_dataset(LausanneConfig(days=1, target_tuples=0, seed=7))


@pytest.fixture(scope="session")
def small_batch(small_dataset) -> TupleBatch:
    return small_dataset.tuples


@pytest.fixture(scope="session")
def daytime_window(small_batch) -> TupleBatch:
    """A contiguous in-service window of 240 tuples around 10:00."""
    anchor = 10.0 * 3600.0
    pos = int(np.searchsorted(small_batch.t, anchor))
    start = min(pos, len(small_batch) - 240)
    return small_batch.slice(start, start + 240)


@pytest.fixture()
def tiny_batch() -> TupleBatch:
    """Twelve hand-written tuples on a 4x3 grid with a linear field."""
    xs, ys, ts, ss = [], [], [], []
    for j in range(3):
        for i in range(4):
            xs.append(100.0 * i)
            ys.append(100.0 * j)
            ts.append(60.0 * (4 * j + i))
            ss.append(400.0 + 0.5 * (100.0 * i) + 0.25 * (100.0 * j))
    return TupleBatch(np.array(ts), np.array(xs), np.array(ys), np.array(ss))
