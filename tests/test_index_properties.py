"""Property-based tests: every index agrees with the brute-force oracle.

This is the core correctness invariant of the metric-space substrate:
whatever the point distribution, a radius query returns exactly the
points within the radius.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.base import brute_force_radius
from repro.index.grid import GridIndex
from repro.index.kdtree import KDTree
from repro.index.rtree import RTree
from repro.index.vptree import VPTree

# Millimetre-resolution coordinates in a +-10 km frame: the realistic
# domain of projected GPS positions.  Raw float strategies generate
# denormals (~1e-160) whose squared distances underflow to zero, an
# arithmetic pathology no physical dataset exhibits and that the squared-
# distance convention shared by all methods does not try to defend against.
coord = st.integers(min_value=-10_000_000, max_value=10_000_000).map(
    lambda mm: mm / 1000.0
)
points_strategy = st.lists(st.tuples(coord, coord), min_size=0, max_size=80)
query_strategy = st.tuples(
    coord,
    coord,
    st.integers(min_value=0, max_value=5_000_000).map(lambda mm: mm / 1000.0),
)


def _split(points):
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    return xs, ys


@settings(max_examples=80, deadline=None)
@given(points=points_strategy, query=query_strategy)
def test_rtree_matches_oracle(points, query):
    xs, ys = _split(points)
    qx, qy, r = query
    assert sorted(RTree(xs, ys).query_radius(qx, qy, r)) == brute_force_radius(
        xs, ys, qx, qy, r
    )


@settings(max_examples=80, deadline=None)
@given(points=points_strategy, query=query_strategy)
def test_vptree_matches_oracle(points, query):
    xs, ys = _split(points)
    qx, qy, r = query
    assert sorted(VPTree(xs, ys).query_radius(qx, qy, r)) == brute_force_radius(
        xs, ys, qx, qy, r
    )


@settings(max_examples=80, deadline=None)
@given(points=points_strategy, query=query_strategy)
def test_kdtree_matches_oracle(points, query):
    xs, ys = _split(points)
    qx, qy, r = query
    assert sorted(KDTree(xs, ys).query_radius(qx, qy, r)) == brute_force_radius(
        xs, ys, qx, qy, r
    )


@settings(max_examples=80, deadline=None)
@given(
    points=points_strategy,
    query=query_strategy,
    cell=st.floats(min_value=10.0, max_value=2_000.0),
)
def test_grid_matches_oracle(points, query, cell):
    xs, ys = _split(points)
    qx, qy, r = query
    got = sorted(GridIndex(xs, ys, cell_m=cell).query_radius(qx, qy, r))
    assert got == brute_force_radius(xs, ys, qx, qy, r)
