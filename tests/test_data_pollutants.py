"""Tests for repro.data.pollutants."""

import pytest

from repro.data.pollutants import (
    CO,
    CO2,
    PM10,
    Pollutant,
    get_pollutant,
    registered_pollutants,
)


class TestRegistry:
    def test_three_pollutants(self):
        assert registered_pollutants() == ("co", "co2", "pm")

    def test_lookup(self):
        assert get_pollutant("co2") is CO2
        assert get_pollutant("co") is CO
        assert get_pollutant("pm") is PM10

    def test_unknown(self):
        with pytest.raises(KeyError, match="unknown pollutant"):
            get_pollutant("ozone")


class TestValidation:
    def test_invalid_range(self):
        with pytest.raises(ValueError):
            Pollutant("x", "x", "ppm", (10.0, 10.0), ((1.0, "a"),), ambient=0.0)

    def test_unordered_bands(self):
        with pytest.raises(ValueError):
            Pollutant(
                "x", "x", "ppm", (0.0, 10.0), ((5.0, "a"), (1.0, "b")), ambient=0.0
            )

    def test_no_bands(self):
        with pytest.raises(ValueError):
            Pollutant("x", "x", "ppm", (0.0, 10.0), (), ambient=0.0)


class TestBands:
    def test_co2_bands(self):
        assert CO2.band(400.0) == "fresh"
        assert CO2.band(600.0) == "acceptable"
        assert CO2.band(6000.0) == "unsafe"
        assert CO2.band(50_000.0) == "unsafe"  # past the last threshold

    def test_co_bands(self):
        assert CO.band(0.4) == "fresh"
        assert CO.band(30.0) == "poor"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CO2.band(-1.0)

    def test_range_width_is_footnote1_denominator(self):
        assert CO2.range_width == 650.0

    def test_adkmn_accepts_any_pollutant_range(self, daytime_window):
        """The pollutant's normal range plugs straight into Ad-KMN."""
        from repro.core.adkmn import AdKMNConfig, fit_adkmn

        cfg = AdKMNConfig(tau_n_pct=2.0, normal_range=CO2.normal_range)
        result = fit_adkmn(daytime_window, cfg)
        assert result.cover.size >= 1
