"""Tests for repro.network.link and repro.network.protocol."""

import pytest

from repro.network.link import GPRS, HSPA, UMTS, BearerProfile, CellularLink
from repro.network.protocol import FRAME_OVERHEAD_BYTES, framed_size


class TestFraming:
    def test_adds_overhead(self):
        assert framed_size(100) == 100 + FRAME_OVERHEAD_BYTES

    def test_custom_overhead(self):
        assert framed_size(10, overhead=5) == 15

    def test_validation(self):
        with pytest.raises(ValueError):
            framed_size(-1)
        with pytest.raises(ValueError):
            framed_size(1, overhead=-1)


class TestBearerProfiles:
    def test_presets_ordered_by_speed(self):
        assert GPRS.downlink_bps < UMTS.downlink_bps < HSPA.downlink_bps
        assert GPRS.rtt_s > UMTS.rtt_s > HSPA.rtt_s

    def test_invalid_profile(self):
        with pytest.raises(ValueError):
            BearerProfile("bad", rtt_s=0, downlink_bps=1, uplink_bps=1)


class TestCellularLink:
    def test_clock_accumulates(self):
        link = CellularLink(GPRS)
        dt1 = link.send_up(1000)
        dt2 = link.send_down(1000)
        assert link.clock_s == pytest.approx(dt1 + dt2)

    def test_transfer_time_formula(self):
        link = CellularLink(GPRS)
        dt = link.send_up(2500)  # 2500 B = 20 000 bits at 20 kbit/s = 1 s
        assert dt == pytest.approx(GPRS.rtt_s / 2 + 1.0)

    def test_downlink_faster_than_uplink(self):
        link = CellularLink(GPRS)
        up = link.send_up(10_000)
        down = link.send_down(10_000)
        assert down < up

    def test_round_trip_pays_full_rtt(self):
        link = CellularLink(UMTS)
        total = link.round_trip(0, 0)
        assert total == pytest.approx(UMTS.rtt_s)

    def test_reset(self):
        link = CellularLink()
        link.send_up(100)
        link.reset()
        assert link.clock_s == 0.0
