"""Deterministic concurrency harness for the serving layer.

Two drivers, both built on real threads (``docs/testing.md``):

* :func:`run_phase_schedule` — a *barrier-synchronized* schedule: a
  seeded sequence of write and read steps where writes run exclusively
  and reads run truly concurrently (every reader thread passes a barrier
  before touching the server).  Because writes never overlap reads, every
  answer's epoch is exact by construction, making failures replayable
  from the seed alone.
* :func:`run_free_running` — the writer ingests flat out while reader
  threads drain the query workload with no synchronisation beyond the
  server's own snapshot isolation.  Epochs are whatever
  ``handle_many_with_epoch`` pinned; the oracle below replays them.

The oracle, :func:`serial_replay_answers`, rebuilds a fresh server,
replays the same ingest batches one epoch at a time, and answers each
recorded chunk at the epoch the concurrent run reported — every response
must be byte-identical (:func:`response_fingerprints`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.data.tuples import TupleBatch
from repro.network.messages import (
    ModelCoverResponse,
    ModelRequest,
    QueryRequest,
    ValueResponse,
)

Step = str  # "write" | "read"


def seeded_schedule(
    seed: int, n_writes: int, n_reads: int, lead_writes: int = 1
) -> List[Step]:
    """A reproducible interleaving of ``n_writes`` write steps and
    ``n_reads`` read steps.  ``lead_writes`` write steps come first so
    the first read never hits an empty server."""
    rng = np.random.default_rng(seed)
    lead = min(lead_writes, n_writes)
    steps = ["write"] * (n_writes - lead) + ["read"] * n_reads
    rng.shuffle(steps)
    return ["write"] * lead + steps


def response_fingerprints(responses: Sequence) -> List[tuple]:
    """Byte-comparable identity per response (NaN-stable)."""
    out = []
    for r in responses:
        if isinstance(r, ValueResponse):
            # Compare the raw float bit patterns: NaN == NaN, and any
            # last-ulp divergence between runs is a real failure.
            out.append(("value", r.t, np.float64(r.value).tobytes()))
        elif isinstance(r, ModelCoverResponse):
            out.append(("cover", r.blob))
        else:  # pragma: no cover - harness misuse
            raise TypeError(f"unexpected response {type(r).__name__}")
    return out


@dataclass
class AnsweredChunk:
    """One concurrently-answered request chunk and the epoch it pinned."""

    epoch: int
    requests: List
    fingerprints: List[tuple]


def split_round_robin(requests: Sequence, n: int) -> List[List]:
    """Deterministic round-robin split of a workload into ``n`` chunks."""
    chunks: List[List] = [[] for _ in range(n)]
    for i, request in enumerate(requests):
        chunks[i % n].append(request)
    return [c for c in chunks if c]


def run_phase_schedule(
    server,
    batches: Sequence[TupleBatch],
    read_workloads: Sequence[Sequence],
    schedule: Sequence[Step],
    n_readers: int = 4,
) -> List[AnsweredChunk]:
    """Drive ``server`` through a barrier-synchronized schedule.

    ``schedule`` must contain exactly ``len(batches)`` write steps and
    ``len(read_workloads)`` read steps.  On a read step the workload is
    split across ``n_readers`` threads which all pass a start barrier
    before calling ``handle_many_with_epoch`` — genuinely concurrent
    reads at a write-quiescent (hence exact) epoch.
    """
    assert sum(s == "write" for s in schedule) == len(batches)
    assert sum(s == "read" for s in schedule) == len(read_workloads)
    answered: List[AnsweredChunk] = []
    answered_lock = threading.Lock()
    next_batch = iter(batches)
    next_read = iter(read_workloads)

    def read_task(chunk, barrier):
        barrier.wait()
        responses, epoch = server.handle_many_with_epoch(chunk)
        with answered_lock:
            answered.append(
                AnsweredChunk(
                    epoch=int(epoch),
                    requests=list(chunk),
                    fingerprints=response_fingerprints(responses),
                )
            )

    for step in schedule:
        if step == "write":
            server.ingest(next(next_batch))
            continue
        chunks = split_round_robin(next(next_read), n_readers)
        barrier = threading.Barrier(len(chunks))
        threads = [
            threading.Thread(target=read_task, args=(chunk, barrier))
            for chunk in chunks
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    return answered


def run_free_running(
    server,
    batches: Sequence[TupleBatch],
    read_workloads: Sequence[Sequence],
    n_readers: int = 4,
) -> List[AnsweredChunk]:
    """Writer ingests flat out while readers drain the workload.

    No synchronisation between writer and readers — the point is to
    catch torn snapshots.  Each reader chunk records the epoch its
    answers were pinned at; readers keep draining until the workload is
    exhausted (the writer usually finishes first, so late chunks see the
    final epoch).
    """
    answered: List[AnsweredChunk] = []
    answered_lock = threading.Lock()
    work = list(read_workloads)
    work_lock = threading.Lock()
    failures: List[BaseException] = []

    def writer():
        try:
            for batch in batches:
                server.ingest(batch)
        except BaseException as exc:  # pragma: no cover - failure path
            failures.append(exc)

    def reader():
        try:
            while True:
                with work_lock:
                    if not work:
                        return
                    chunk = work.pop(0)
                responses, epoch = server.handle_many_with_epoch(chunk)
                with answered_lock:
                    answered.append(
                        AnsweredChunk(
                            epoch=int(epoch),
                            requests=list(chunk),
                            fingerprints=response_fingerprints(responses),
                        )
                    )
        except BaseException as exc:  # pragma: no cover - failure path
            failures.append(exc)

    threads = [threading.Thread(target=writer)]
    threads += [threading.Thread(target=reader) for _ in range(n_readers)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if failures:
        raise failures[0]
    return answered


def serial_replay_answers(
    make_server: Callable[[], object],
    batches: Sequence[TupleBatch],
    answered: Sequence[AnsweredChunk],
) -> List[Tuple[AnsweredChunk, List[tuple]]]:
    """Replay the ingest serially and re-answer every chunk at its epoch.

    Returns ``(chunk, serial fingerprints)`` pairs; a snapshot-isolation
    bug shows up as a fingerprint mismatch.  Epoch ``e`` is the server
    state after the first ``e`` ingested batches (every batch non-empty),
    exactly :attr:`repro.storage.engine.Database.epoch`'s numbering.
    """
    server = make_server()
    by_epoch: dict = {}
    for chunk in answered:
        by_epoch.setdefault(chunk.epoch, []).append(chunk)
    out: List[Tuple[AnsweredChunk, List[tuple]]] = []
    for epoch in sorted(by_epoch):
        if epoch > len(batches):
            raise AssertionError(f"recorded epoch {epoch} past final ingest")
    epoch = 0
    for chunk in by_epoch.get(0, ()):  # answered before any ingest
        out.append((chunk, response_fingerprints(server.handle_many(chunk.requests))))
    for batch in batches:
        server.ingest(batch)
        epoch += 1
        for chunk in by_epoch.get(epoch, ()):
            out.append(
                (chunk, response_fingerprints(server.handle_many(chunk.requests)))
            )
    return out


def make_query_workload(
    rng: np.random.Generator,
    stream: TupleBatch,
    n: int,
    model_request_every: int = 0,
) -> List:
    """``n`` requests near the stream's data (seeded, reproducible).

    Positions jitter around random tuples, times land near random tuple
    timestamps; every ``model_request_every``-th request is a
    :class:`ModelRequest` so the cover path is exercised too."""
    idx = rng.integers(0, len(stream), size=n)
    jx = rng.normal(0.0, 150.0, size=n)
    jy = rng.normal(0.0, 150.0, size=n)
    jt = rng.uniform(-30.0, 30.0, size=n)
    out: List = []
    for k in range(n):
        i = int(idx[k])
        t = float(stream.t[i] + jt[k])
        x = float(stream.x[i] + jx[k])
        y = float(stream.y[i] + jy[k])
        if model_request_every and k % model_request_every == model_request_every - 1:
            out.append(ModelRequest(t=t, x=x, y=y))
        else:
            out.append(QueryRequest(t=t, x=x, y=y))
    return out
