"""Tests for repro.core.kmeans."""

import numpy as np
import pytest

from repro.core.kmeans import kmeans, kmeans_pp_seeds, lloyd


def two_blobs(n=100, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal((0, 0), 5, size=(n, 2))
    b = rng.normal((100, 100), 5, size=(n, 2))
    return np.vstack([a, b])


class TestValidation:
    def test_k_too_large(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((3, 2)), 4)

    def test_k_zero(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((3, 2)), 0)

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((3, 3)), 2)

    def test_n_init_positive(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((3, 2)), 1, n_init=0)


class TestClustering:
    def test_separates_two_blobs(self):
        points = two_blobs()
        result = kmeans(points, 2, seed=1)
        assert result.k == 2
        # One centroid near each blob.
        dists_origin = np.linalg.norm(result.centroids - [0, 0], axis=1)
        dists_far = np.linalg.norm(result.centroids - [100, 100], axis=1)
        assert min(dists_origin) < 10
        assert min(dists_far) < 10

    def test_labels_partition_all_points(self):
        points = two_blobs()
        result = kmeans(points, 2)
        assert len(result.labels) == len(points)
        assert set(np.unique(result.labels)) <= {0, 1}

    def test_labels_are_nearest_centroid(self):
        points = two_blobs(seed=2)
        result = kmeans(points, 3, seed=2)
        d2 = np.sum(
            (points[:, None, :] - result.centroids[None, :, :]) ** 2, axis=2
        )
        assert np.array_equal(result.labels, np.argmin(d2, axis=1))

    def test_deterministic(self):
        points = two_blobs()
        a = kmeans(points, 2, seed=9)
        b = kmeans(points, 2, seed=9)
        assert np.array_equal(a.centroids, b.centroids)

    def test_k_equals_n(self):
        points = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
        result = kmeans(points, 3)
        assert result.inertia == pytest.approx(0.0, abs=1e-9)

    def test_identical_points(self):
        points = np.ones((20, 2))
        result = kmeans(points, 3)
        assert result.k == 3
        assert result.inertia == pytest.approx(0.0)

    def test_n_init_improves_or_matches(self):
        points = two_blobs(seed=5)
        single = kmeans(points, 4, seed=5, n_init=1)
        multi = kmeans(points, 4, seed=5, n_init=5)
        assert multi.inertia <= single.inertia + 1e-9


class TestLloyd:
    def test_respects_starting_centroids(self):
        points = two_blobs()
        start = np.array([[0.0, 0.0], [100.0, 100.0]])
        result = lloyd(points, start)
        assert result.k == 2
        assert result.iterations >= 1

    def test_empty_cluster_reseeded(self):
        points = np.array([[0.0, 0.0], [1.0, 0.0], [100.0, 0.0]])
        # Second centroid starts far away from every point -> empty.
        start = np.array([[0.5, 0.0], [1e6, 1e6]])
        result = lloyd(points, start)
        labels = set(result.labels.tolist())
        assert labels == {0, 1}  # both clusters end up non-empty

    def test_more_centroids_than_points(self):
        with pytest.raises(ValueError):
            lloyd(np.zeros((2, 2)), np.zeros((3, 2)))


class TestSeeding:
    def test_seed_count(self):
        rng = np.random.default_rng(0)
        points = two_blobs()
        seeds = kmeans_pp_seeds(points, 5, rng)
        assert seeds.shape == (5, 2)

    def test_seeds_are_data_points(self):
        rng = np.random.default_rng(0)
        points = two_blobs()
        seeds = kmeans_pp_seeds(points, 3, rng)
        for s in seeds:
            assert np.min(np.sum((points - s) ** 2, axis=1)) == pytest.approx(0.0)

    def test_duplicate_points_handled(self):
        rng = np.random.default_rng(0)
        points = np.ones((5, 2))
        seeds = kmeans_pp_seeds(points, 3, rng)
        assert seeds.shape == (3, 2)
