"""Tests for repro.models.kernel."""

import numpy as np
import pytest

from repro.data.tuples import TupleBatch
from repro.models.kernel import KernelModel


class TestFit:
    def test_interpolates_near_kept_points(self, tiny_batch):
        model = KernelModel.fit(tiny_batch)
        # At a kept point the prediction should be near the local values.
        pred = model.predict(0, tiny_batch.x[0], tiny_batch.y[0])
        assert abs(pred - tiny_batch.s[0]) < 60.0

    def test_subsamples_large_batches(self):
        n = 500
        batch = TupleBatch(
            np.arange(n, dtype=float),
            np.random.default_rng(0).uniform(0, 1000, n),
            np.random.default_rng(1).uniform(0, 1000, n),
            np.full(n, 450.0),
        )
        model = KernelModel.fit(batch, max_kept=24)
        # 2 header floats + 3 per kept point.
        assert len(model.coefficients()) == 2 + 3 * 24

    def test_far_query_falls_back_to_mean(self, tiny_batch):
        model = KernelModel.fit(tiny_batch)
        far = model.predict(0, 1e7, 1e7)
        assert far == pytest.approx(float(np.mean(model.coefficients()[2 + 2 * 12:])), abs=1e-6)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            KernelModel.fit(TupleBatch.empty())

    def test_constant_field_predicts_constant(self):
        n = 40
        rng = np.random.default_rng(2)
        batch = TupleBatch(
            np.zeros(n), rng.uniform(0, 100, n), rng.uniform(0, 100, n), np.full(n, 500.0)
        )
        model = KernelModel.fit(batch)
        assert model.predict(0, 50, 50) == pytest.approx(500.0)


class TestWire:
    def test_round_trip(self, tiny_batch):
        model = KernelModel.fit(tiny_batch)
        rebuilt = KernelModel.from_coefficients(model.coefficients())
        assert rebuilt.predict(0, 150, 150) == pytest.approx(model.predict(0, 150, 150))

    def test_arity_checks(self):
        with pytest.raises(ValueError):
            KernelModel.from_coefficients((1.0,))
        with pytest.raises(ValueError):
            # Claims 3 points but provides data for 2.
            KernelModel.from_coefficients((50.0, 3.0) + (1.0,) * 6)

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            KernelModel([1.0], [1.0], [1.0], bandwidth_m=0.0)

    def test_mismatched_arrays(self):
        with pytest.raises(ValueError):
            KernelModel([1.0, 2.0], [1.0], [1.0], bandwidth_m=10.0)
