"""Tests for repro.data.multipollutant."""

import numpy as np
import pytest

from repro.data.lausanne import LausanneConfig
from repro.data.multipollutant import (
    field_for_pollutant,
    generate_all_pollutants,
    generate_pollutant_dataset,
    tau_for_pollutant,
)


class TestFields:
    def test_unknown_pollutant(self):
        with pytest.raises(KeyError):
            field_for_pollutant("ozone")

    def test_co2_matches_reference_scale(self):
        field = field_for_pollutant("co2")
        v = field.value(8 * 3600.0, 1500.0, 1200.0)
        assert 400.0 < v < 900.0

    def test_co_is_single_digit_ppm(self):
        field = field_for_pollutant("co")
        v = field.value(8 * 3600.0, 1500.0, 1200.0)
        assert 0.0 < v < 10.0

    def test_pm_in_tens(self):
        field = field_for_pollutant("pm")
        v = field.value(8 * 3600.0, 1500.0, 1200.0)
        assert 10.0 < v < 150.0

    def test_shared_emission_geometry(self):
        """All pollutants peak at the same junctions."""
        co2 = field_for_pollutant("co2")
        co = field_for_pollutant("co")
        t = 8 * 3600.0
        at_plume_co2 = co2.value(t, 1500.0, 1200.0) - co2.value(t, 5900.0, 200.0)
        at_plume_co = co.value(t, 1500.0, 1200.0) - co.value(t, 5900.0, 200.0)
        assert at_plume_co2 > 0
        assert at_plume_co > 0


class TestDatasets:
    def test_per_pollutant_dataset(self):
        cfg = LausanneConfig(days=1, target_tuples=0)
        ds = generate_pollutant_dataset("co", cfg)
        assert len(ds) > 1000
        assert np.all(ds.tuples.s >= 0.0)
        # CO values live on the CO scale, not the CO2 scale.
        assert float(np.median(ds.tuples.s)) < 20.0

    def test_trajectories_shared_across_pollutants(self):
        cfg = LausanneConfig(days=1, target_tuples=0)
        co2 = generate_pollutant_dataset("co2", cfg)
        pm = generate_pollutant_dataset("pm", cfg)
        assert np.array_equal(co2.tuples.t, pm.tuples.t)
        assert np.array_equal(co2.tuples.x, pm.tuples.x)

    def test_generate_all(self):
        cfg = LausanneConfig(days=1, target_tuples=0)
        all_ds = generate_all_pollutants(cfg)
        assert set(all_ds) == {"co", "co2", "pm"}


class TestAdKMNIntegration:
    def test_tau_kwargs(self):
        kwargs = tau_for_pollutant("co", tau_pct=3.0)
        assert kwargs["tau_n_pct"] == 3.0
        assert kwargs["normal_range"] == (0.0, 30.0)

    def test_cover_fits_on_co_data(self):
        from repro.core.adkmn import AdKMNConfig, fit_adkmn
        from repro.data.windows import window

        cfg = LausanneConfig(days=1, target_tuples=0)
        ds = generate_pollutant_dataset("co", cfg)
        c = int(np.searchsorted(ds.tuples.t, 10 * 3600.0)) // 240
        w = window(ds.tuples, c, 240)
        result = fit_adkmn(w, AdKMNConfig(**tau_for_pollutant("co")))
        assert result.cover.size >= 1
        # Predictions are on the CO scale.
        v = result.cover.predict(float(w.t[0]), 2000.0, 1500.0)
        assert -2.0 < v < 15.0
