"""Scatter pruning: zone-map sketches, geometry, and byte identity.

The contract under test is the tentpole guarantee of the pruning pass
(``repro/query/pipeline/executor.py``): a pruned plan answers
**byte-identically** to the full scatter at any shard count, because the
pass only ever drops (shard, window) scans that provably contribute zero
hits — grid geometry and per-(shard, window) :class:`WindowSketch` zone
maps are superset-safe, and the exact gather orders hits canonically.
The hypothesis suites drive tuples and queries onto the adversarial
boundaries (region-cell edges, exact radius distance, window cuts); the
free-running test asserts the same identity over one *shared* binding
while a writer ingests flat out (the pattern of ``tests/concurrency.py``
scaled down to plan granularity).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.data.tuples import TupleBatch
from repro.geo.coords import BoundingBox
from repro.geo.region import RegionGrid
from repro.query.base import QueryBatch
from repro.query.engine import QueryEngine
from repro.query.pipeline.executor import build_sharded_plan
from repro.query.pipeline.plan import PruneStats, format_plan
from repro.query.sharded import ShardedQueryEngine
from repro.storage.shards import ShardRouter
from repro.storage.sketch import WindowSketch

BOUNDS = BoundingBox(0.0, 0.0, 3000.0, 2000.0)
RADIUS = 400.0


def fingerprint(result):
    """NaN-stable byte identity of a BatchResult."""
    return (
        result.values.tobytes(),
        result.support.tobytes(),
        result.answered.tobytes(),
    )


def build_router(batch: TupleBatch, n_shards: int, h: int) -> ShardRouter:
    router = ShardRouter(
        RegionGrid.for_shard_count(BOUNDS, n_shards), h=h
    )
    step = max(len(batch) // 3, 1)
    for start in range(0, len(batch), step):
        router.ingest(batch.slice(start, min(start + step, len(batch))))
    return router


# -- WindowSketch unit behaviour -------------------------------------------


class TestWindowSketch:
    def test_empty_sentinel(self):
        assert WindowSketch.EMPTY.is_empty
        assert WindowSketch.EMPTY.n_rows == 0
        hits = WindowSketch.EMPTY.disk_overlaps(
            np.array([0.0, 5.0]), np.array([0.0, 5.0]), 1e12
        )
        assert not hits.any()

    def test_of_matches_batch_extremes(self, daytime_window):
        sketch = WindowSketch.of(daytime_window)
        assert sketch.n_rows == len(daytime_window)
        assert sketch.min_x == float(daytime_window.x.min())
        assert sketch.max_x == float(daytime_window.x.max())
        assert sketch.min_y == float(daytime_window.y.min())
        assert sketch.max_y == float(daytime_window.y.max())
        assert sketch.min_t == float(daytime_window.t.min())
        assert sketch.max_t == float(daytime_window.t.max())

    def test_of_empty_batch_is_empty(self, daytime_window):
        assert WindowSketch.of(daytime_window.slice(0, 0)) is WindowSketch.EMPTY

    def test_extended_only_widens(self, daytime_window):
        first = WindowSketch.of(daytime_window.slice(0, 100))
        rest = daytime_window.slice(100, len(daytime_window))
        grown = first.extended(rest.t, rest.x, rest.y, rest.s)
        whole = WindowSketch.of(daytime_window)
        assert grown == whole
        assert grown.min_x <= first.min_x and grown.max_x >= first.max_x

    def test_extended_with_empty_delta_is_self(self, daytime_window):
        sketch = WindowSketch.of(daytime_window)
        e = np.empty(0)
        assert sketch.extended(e, e, e, e) is sketch

    def test_merge(self, daytime_window):
        a = WindowSketch.of(daytime_window.slice(0, 80))
        b = WindowSketch.of(daytime_window.slice(80, len(daytime_window)))
        assert a.merge(b) == WindowSketch.of(daytime_window)
        assert a.merge(WindowSketch.EMPTY) == a
        assert WindowSketch.EMPTY.merge(b) == b

    def test_disk_overlap_boundary_is_exactly_the_scan_predicate(self):
        # One tuple at the origin; a query at exactly radius distance
        # must stay (the scan's predicate is <= r^2), one ulp past must
        # prune.  This is the superset-safety boundary.
        t = x = y = s = np.zeros(1)
        sketch = WindowSketch.of(TupleBatch(t, x, y, s))
        r = 250.0
        on = sketch.disk_overlaps(np.array([r]), np.array([0.0]), r)
        past = sketch.disk_overlaps(
            np.array([np.nextafter(r, np.inf)]), np.array([0.0]), r
        )
        assert on[0]
        assert not past[0]

    def test_overlap_never_misses_a_scan_hit(self, daytime_window):
        # Superset safety on real data: any query with >= 1 raw tuple
        # inside the radius must also overlap the sketch's box.
        sketch = WindowSketch.of(daytime_window)
        rng = np.random.default_rng(3)
        qx = rng.uniform(BOUNDS.min_x - 500, BOUNDS.max_x + 500, 200)
        qy = rng.uniform(BOUNDS.min_y - 500, BOUNDS.max_y + 500, 200)
        keep = sketch.disk_overlaps(qx, qy, RADIUS)
        d2 = (daytime_window.x[None, :] - qx[:, None]) ** 2 + (
            daytime_window.y[None, :] - qy[:, None]
        ) ** 2
        has_hit = (d2 <= RADIUS * RADIUS).any(axis=1)
        assert not (has_hit & ~keep).any()


# -- incrementally-maintained router sketches ------------------------------


class TestRouterSketches:
    def test_incremental_equals_recomputed(self, small_batch):
        router = build_router(small_batch, n_shards=4, h=240)
        for s in range(router.n_shards):
            for c in range(router.global_window_count()):
                expected = WindowSketch.of(router.shard_window(s, c))
                assert router.shard_window_sketch(s, c) == expected

    def test_empty_slice_maps_to_empty_sentinel(self, small_batch):
        router = build_router(small_batch, n_shards=4, h=240)
        # A window index past the stream maps to EMPTY (no KeyError).
        assert (
            router.shard_window_sketch(0, router.global_window_count() + 5)
            is WindowSketch.EMPTY
        )

    def test_snapshot_quadruple_is_coherent(self, small_batch):
        router = build_router(small_batch, n_shards=4, h=240)
        for s in range(router.n_shards):
            stamp, sub, gids, sketch = router.snapshot_window_sketch(s, 0)
            assert stamp == router.shard_window_epoch(s, 0)
            assert sketch == WindowSketch.of(sub)
            assert len(gids) == len(sub)

    def test_window_stats_match_sketches(self, small_batch):
        router = build_router(small_batch, n_shards=4, h=240)
        stats = router.window_stats(0)
        assert len(stats) == router.n_shards
        for s, (stamp, n_rows, read_epoch) in enumerate(stats):
            assert stamp == router.shard_window_epoch(s, 0)
            assert n_rows == len(router.shard_window(s, 0))
            # Quiescent router: the rows were read at the live epoch.
            assert read_epoch == router.epoch


# -- vectorised region geometry --------------------------------------------


class TestRegionGeometry:
    @pytest.fixture(scope="class")
    def grid(self):
        return RegionGrid.for_shard_count(BOUNDS, 6)

    def test_disk_shards_matches_list_api(self, grid):
        rng = np.random.default_rng(11)
        cell_w = (BOUNDS.max_x - BOUNDS.min_x) / grid.nx
        edges = [BOUNDS.min_x + i * cell_w for i in range(grid.nx + 1)]
        xs = np.concatenate([rng.uniform(-500, 3500, 50), np.array(edges)])
        for x in xs:
            for y in (0.0, 999.9, 1000.0, 2000.0):
                for r in (0.0, 1.0, 400.0, 5000.0):
                    assert grid.shards_overlapping_disk(x, y, r) == grid.disk_shards(
                        float(x), y, r
                    ).tolist()

    def test_disks_shard_mask_rows_match_scalar_api(self, grid):
        rng = np.random.default_rng(12)
        xs = rng.uniform(-500, 3500, 80)
        ys = rng.uniform(-500, 2500, 80)
        mask = grid.disks_shard_mask(xs, ys, RADIUS)
        assert mask.shape == (80, grid.nx * grid.ny)
        for i in range(80):
            expected = np.zeros(grid.nx * grid.ny, dtype=bool)
            expected[grid.shards_overlapping_disk(float(xs[i]), float(ys[i]), RADIUS)] = True
            np.testing.assert_array_equal(mask[i], expected)

    def test_mask_on_exact_cell_edges(self, grid):
        # A disk centred exactly on a cell edge must reach both cells.
        cell_w = (BOUNDS.max_x - BOUNDS.min_x) / grid.nx
        x_edge = BOUNDS.min_x + cell_w  # boundary between cells 0 and 1
        mask = grid.disks_shard_mask(
            np.array([x_edge]), np.array([500.0]), 1.0
        )[0]
        assert mask[0] and mask[1]


# -- byte identity: pruned == full scatter ---------------------------------


def _adversarial_coord_pool():
    """x/y values sitting exactly on region-cell edges for the 2x2, 2x3
    and 3x2 grids over BOUNDS, plus interior and out-of-range points."""
    xs = [0.0, 750.0, 1000.0, 1500.0, 2000.0, 2250.0, 3000.0, -350.0, 3350.0]
    ys = [0.0, 500.0, 666.6666666666666, 1000.0, 1333.3333333333333, 2000.0, -350.0, 2350.0]
    return xs, ys


_XS, _YS = _adversarial_coord_pool()

_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@st.composite
def pruning_scenarios(draw):
    """(tuples, queries) with coordinates on cell edges, queries at exact
    radius distance from tuples, and timestamps on window cuts."""
    n = draw(st.integers(min_value=1, max_value=120))
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    # Tuples: half from the adversarial edge pool, half uniform inside.
    tx = np.where(
        rng.random(n) < 0.5,
        rng.choice(np.array(_XS[:7]), n),
        rng.uniform(BOUNDS.min_x, BOUNDS.max_x, n),
    )
    ty = np.where(
        rng.random(n) < 0.5,
        rng.choice(np.array(_YS[:6]), n),
        rng.uniform(BOUNDS.min_y, BOUNDS.max_y, n),
    )
    tt = np.sort(rng.uniform(0.0, 86400.0, n))
    ts = rng.normal(400.0, 30.0, n)
    batch = TupleBatch(tt, tx, ty, ts)

    nq = draw(st.integers(min_value=1, max_value=40))
    qx = rng.choice(np.array(_XS), nq)
    qy = rng.choice(np.array(_YS), nq)
    # A third of the queries at *exactly* radius distance from a tuple.
    exact = rng.random(nq) < 0.34
    anchor = rng.integers(0, n, nq)
    qx = np.where(exact, tx[anchor] + RADIUS, qx)
    qy = np.where(exact, ty[anchor], qy)
    # Timestamps: tuple times (window-cut boundaries) or uniform.
    qt = np.where(
        rng.random(nq) < 0.5,
        tt[rng.integers(0, n, nq)],
        rng.uniform(0.0, 86400.0, nq),
    )
    return batch, QueryBatch(qt, qx, qy)


class TestPrunedPlansAreByteIdentical:
    def _assert_identical(self, batch, queries, n_shards, h):
        router = build_router(batch, n_shards=n_shards, h=h)
        with ShardedQueryEngine(router, radius_m=RADIUS, max_workers=1) as engine:
            # One *shared* binding: both plans must pin the same rows.
            binding = engine.binding()
            kwargs = dict(
                method="naive", planner=engine.planner, radius_m=RADIUS
            )
            full = build_sharded_plan(binding, queries, prune=False, **kwargs)
            lean = build_sharded_plan(binding, queries, prune=True, **kwargs)
            assert lean.ops_kept <= full.ops_kept
            assert fingerprint(engine.execute(lean)) == fingerprint(
                engine.execute(full)
            )

    @_SETTINGS
    @given(scenario=pruning_scenarios(), n_shards=st.sampled_from([1, 4, 6]))
    def test_continuous_any_shard_count(self, scenario, n_shards):
        batch, queries = scenario
        self._assert_identical(batch, queries, n_shards, h=max(len(batch) // 5, 1))

    @_SETTINGS
    @given(scenario=pruning_scenarios(), h=st.sampled_from([1, 7, 10**6]))
    def test_point_and_window_cut_boundaries(self, scenario, h):
        # h=1: every tuple its own window; huge h: one window.
        batch, queries = scenario
        self._assert_identical(batch, queries.take(np.array([0])), 4, h=h)
        self._assert_identical(batch, queries, 4, h=h)

    @_SETTINGS
    @given(seed=st.integers(0, 2**31 - 1), n_shards=st.sampled_from([4, 6]))
    def test_heatmap_grids(self, seed, n_shards, small_batch):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(50, 400))
        start = int(rng.integers(0, len(small_batch) - n))
        batch = small_batch.slice(start, start + n)
        probes = QueryBatch.from_grid(
            float(batch.t[-1]),
            BOUNDS.min_x - 200.0,
            BOUNDS.min_y - 200.0,
            (BOUNDS.max_x - BOUNDS.min_x) + 400.0,
            (BOUNDS.max_y - BOUNDS.min_y) + 400.0,
            9,
            7,
        )
        self._assert_identical(batch, probes, n_shards, h=max(n // 4, 1))

    def test_cover_plans_thread_pruning_into_fallback(self, small_batch):
        router = build_router(small_batch, n_shards=4, h=240)
        with ShardedQueryEngine(router, radius_m=RADIUS, max_workers=1) as engine:
            queries = QueryBatch(
                small_batch.t[::37].copy(),
                small_batch.x[::37].copy(),
                small_batch.y[::37].copy(),
            )
            binding = engine.binding()
            kwargs = dict(
                method="model-cover", planner=engine.planner, radius_m=RADIUS
            )
            full = build_sharded_plan(binding, queries, prune=False, **kwargs)
            lean = build_sharded_plan(binding, queries, prune=True, **kwargs)
            assert fingerprint(engine.execute(lean)) == fingerprint(
                engine.execute(full)
            )


class TestFreeRunningIngestIdentity:
    def test_shared_binding_pins_pruning_and_scans_together(self, small_batch):
        """Writer ingests flat out; every round builds a pruned and an
        unpruned plan over ONE shared binding — the binding pins slice,
        gids and sketch in one locked read, so the two plans must agree
        byte-for-byte no matter where the writer is."""
        router = ShardRouter(RegionGrid.for_shard_count(BOUNDS, 4), h=200)
        router.ingest(small_batch.slice(0, 400))
        stop = threading.Event()
        position = 400

        def writer():
            nonlocal position
            while not stop.is_set() and position < len(small_batch):
                nxt = min(position + 97, len(small_batch))
                router.ingest(small_batch.slice(position, nxt))
                position = nxt

        rng = np.random.default_rng(5)
        with ShardedQueryEngine(router, radius_m=RADIUS, max_workers=2) as engine:
            thread = threading.Thread(target=writer)
            thread.start()
            try:
                for _ in range(25):
                    span = float(small_batch.t[min(position, len(small_batch) - 1)])
                    queries = QueryBatch(
                        rng.uniform(0.0, span, 30),
                        rng.choice(np.array(_XS), 30),
                        rng.choice(np.array(_YS), 30),
                    )
                    binding = engine.binding()
                    kwargs = dict(
                        method="naive", planner=engine.planner, radius_m=RADIUS
                    )
                    lean = build_sharded_plan(
                        binding, queries, prune=True, **kwargs
                    )
                    full = build_sharded_plan(
                        binding, queries, prune=False, **kwargs
                    )
                    assert fingerprint(engine.execute(lean)) == fingerprint(
                        engine.execute(full)
                    )
            finally:
                stop.set()
                thread.join()


# -- process-parallel path: pruned plans on the worker pool ----------------


class TestProcessParallelPath:
    def test_pruned_plan_identical_through_worker_pool(self, small_batch):
        from repro.query.pipeline.parallel import ProcessPlanExecutor

        router = build_router(small_batch, n_shards=4, h=240)
        with ShardedQueryEngine(router, radius_m=RADIUS, max_workers=1) as engine:
            t_mid = float(small_batch.t[len(small_batch) // 2])
            i = len(small_batch) // 2
            queries = QueryBatch(
                np.full(10, t_mid),
                float(small_batch.x[i]) + np.linspace(-50.0, 50.0, 10),
                np.full(10, float(small_batch.y[i])),
            )
            lean = engine.plan(queries, "naive", prune=True)
            assert lean.ops_pruned > 0  # fewer ops ever reach the workers
            expected = engine.execute(engine.plan(queries, "naive", prune=False))
            with ProcessPlanExecutor(engine, processes=2) as executor:
                got = executor.execute(lean)
                assert executor.fallbacks == 0
            assert fingerprint(got) == fingerprint(expected)


# -- unsharded engine: whole-group zone-map pruning ------------------------


class TestUnshardedGroupPruning:
    def test_far_groups_pruned_and_identical(self, small_batch):
        engine = QueryEngine(small_batch, h=240, radius_m=RADIUS)
        t_mid = float(small_batch.t[len(small_batch) // 2])
        # Far from every tuple: the whole group is provably hitless.
        far = QueryBatch(
            np.full(8, t_mid), np.full(8, 10.0**7), np.full(8, -10.0**7)
        )
        lean = engine.plan(far, "naive", prune=True)
        full = engine.plan(far, "naive", prune=False)
        assert lean.ops_pruned == 1 and lean.ops_kept == 0
        assert full.ops_pruned == 0
        assert fingerprint(engine.execute(lean)) == fingerprint(
            engine.execute(full)
        )

    def test_near_groups_never_pruned(self, small_batch):
        engine = QueryEngine(small_batch, h=240, radius_m=RADIUS)
        t_mid = float(small_batch.t[len(small_batch) // 2])
        i = len(small_batch) // 2
        near = QueryBatch(
            np.full(4, t_mid),
            np.full(4, float(small_batch.x[i])),
            np.full(4, float(small_batch.y[i])),
        )
        lean = engine.plan(near, "naive", prune=True)
        assert lean.ops_pruned == 0
        assert fingerprint(engine.execute(lean)) == fingerprint(
            engine.execute(engine.plan(near, "naive", prune=False))
        )

    def test_sealed_window_sketch_cached_across_plans(self, small_batch):
        engine = QueryEngine(small_batch, h=240, radius_m=RADIUS)
        t0 = float(small_batch.t[10])
        far = QueryBatch(np.full(4, t0), np.full(4, 1e7), np.full(4, 1e7))
        engine.plan(far, "naive", prune=True)
        hits_before = engine._sketch_cache.stats.hits
        engine.plan(far, "naive", prune=True)
        assert engine._sketch_cache.stats.hits > hits_before


# -- observability ---------------------------------------------------------


class TestObservability:
    def test_prune_stats_accumulate(self, small_batch):
        router = build_router(small_batch, n_shards=4, h=240)
        with ShardedQueryEngine(router, radius_m=RADIUS, max_workers=1) as engine:
            t_mid = float(small_batch.t[len(small_batch) // 2])
            local = QueryBatch(
                np.full(6, t_mid), np.full(6, 100.0), np.full(6, 100.0)
            )
            plan = engine.plan(local, "naive")
            stats = engine.prune_stats.as_dict()
            assert stats["plans"] == 1
            assert stats["ops_pruned"] == plan.ops_pruned
            assert stats["ops_kept"] == plan.ops_kept
            engine.plan(local, "naive", prune=False)
            assert engine.prune_stats.as_dict()["plans"] == 2

    def test_report_counts_and_format(self, small_batch):
        router = build_router(small_batch, n_shards=4, h=240)
        with ShardedQueryEngine(router, radius_m=RADIUS, max_workers=1) as engine:
            t_mid = float(small_batch.t[len(small_batch) // 2])
            local = QueryBatch(
                np.full(6, t_mid), np.full(6, 100.0), np.full(6, 100.0)
            )
            plan = engine.plan(local, "naive")
            assert plan.ops_pruned > 0  # a local query must prune shards
            from repro.query.pipeline.plan import PlanReport

            report = PlanReport()
            engine.execute(plan, report)
            assert report.ops_pruned == plan.ops_pruned
            assert report.ops_kept == plan.ops_kept
            text = format_plan(plan)
            assert f"pruned={plan.ops_pruned}" in text
            assert "pruned[" in text and "~" in text
            assert f"{plan.ops_pruned} op(s) pruned" in text

    def test_prune_stats_start_empty(self):
        stats = PruneStats()
        assert stats.as_dict() == {"plans": 0, "ops_pruned": 0, "ops_kept": 0}


class TestExplainCli:
    def test_focused_explain_reports_pruning(self, capsys):
        from repro.cli import main

        rc = main(
            [
                "explain", "--shards", "16", "--queries", "40",
                "--method", "naive", "--focus", "0.1",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "pruning: ops_pruned=" in out
        assert "ops_pruned=0 " not in out  # focused workload must prune
        assert "pruned[" in out

    def test_no_prune_flag_disables_pass(self, capsys):
        from repro.cli import main

        rc = main(
            [
                "explain", "--shards", "4", "--queries", "40",
                "--method", "naive", "--focus", "0.25", "--no-prune",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "ops_pruned=0" in out

    def test_focus_validated(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["explain", "--focus", "1.5"])
