"""Tests for repro.index.vptree."""

import random

import pytest

from repro.index.base import brute_force_radius
from repro.index.vptree import VPTree, _median


def random_points(n, seed=0, extent=1000.0):
    rng = random.Random(seed)
    xs = [rng.uniform(0, extent) for _ in range(n)]
    ys = [rng.uniform(0, extent) for _ in range(n)]
    return xs, ys


class TestMedian:
    def test_odd(self):
        assert _median([3.0, 1.0, 2.0]) == 2.0

    def test_even(self):
        assert _median([1.0, 2.0, 3.0, 10.0]) == 2.5

    def test_single(self):
        assert _median([4.0]) == 4.0


class TestConstruction:
    def test_empty(self):
        tree = VPTree([], [])
        assert len(tree) == 0
        assert tree.query_radius(0, 0, 10) == []

    def test_single(self):
        tree = VPTree([1.0], [2.0])
        assert tree.query_radius(1, 2, 0) == [0]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            VPTree([1.0], [])

    def test_deterministic_given_seed(self):
        xs, ys = random_points(100)
        a = VPTree(xs, ys, seed=5)
        b = VPTree(xs, ys, seed=5)
        assert a.query_radius(500, 500, 200) == b.query_radius(500, 500, 200)

    def test_balancedish_height(self):
        xs, ys = random_points(512)
        tree = VPTree(xs, ys)
        # Perfectly balanced would be ~9; allow slack for median ties.
        assert tree.height <= 20
        assert tree.count_nodes() == 512


class TestRadiusQuery:
    def test_matches_brute_force(self):
        xs, ys = random_points(400, seed=1)
        tree = VPTree(xs, ys)
        rng = random.Random(2)
        for _ in range(100):
            qx, qy = rng.uniform(-100, 1100), rng.uniform(-100, 1100)
            r = rng.uniform(0, 400)
            assert sorted(tree.query_radius(qx, qy, r)) == brute_force_radius(
                xs, ys, qx, qy, r
            )

    def test_all_identical_points(self):
        # Degenerate case: every point at the same position (forced split).
        xs = [5.0] * 30
        ys = [7.0] * 30
        tree = VPTree(xs, ys)
        assert sorted(tree.query_radius(5, 7, 0.5)) == list(range(30))
        assert tree.query_radius(50, 50, 1) == []

    def test_negative_radius(self):
        with pytest.raises(ValueError):
            VPTree([0.0], [0.0]).query_radius(0, 0, -1)

    def test_boundary_inclusive(self):
        tree = VPTree([0.0, 3.0], [0.0, 4.0])
        assert sorted(tree.query_radius(0, 0, 5.0)) == [0, 1]


class TestDegenerateInputs:
    def test_thousands_of_duplicate_points(self):
        """A stationary sensor's co-located points build an O(N)-deep
        chain; construction and queries must survive it (no recursion)."""
        n = 3000
        tree = VPTree([1.0] * n, [2.0] * n)
        assert tree.count_nodes() == n
        assert tree.height == n  # the degenerate chain, built iteratively
        assert sorted(tree.query_radius(1.0, 2.0, 0.0)) == list(range(n))
        assert tree.query_radius(5.0, 5.0, 1.0) == []
