"""Tests for repro.core.cover."""

import numpy as np
import pytest

from repro.core.cover import ModelCover
from repro.models.linear import LinearModel
from repro.models.mean import MeanModel


def make_cover(valid_until=1000.0):
    models = [MeanModel(400.0), MeanModel(600.0), MeanModel(800.0)]
    centroids = np.array([[0.0, 0.0], [1000.0, 0.0], [0.0, 1000.0]])
    return ModelCover(
        centroids=centroids,
        models=models,
        valid_until=valid_until,
        family="mean",
        window_c=3,
    )


class TestValidation:
    def test_mismatched_counts(self):
        with pytest.raises(ValueError):
            ModelCover(
                centroids=np.zeros((2, 2)),
                models=[MeanModel(1.0)],
                valid_until=0.0,
                family="mean",
            )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ModelCover(
                centroids=np.zeros((0, 2)), models=[], valid_until=0.0, family="mean"
            )

    def test_bad_centroid_shape(self):
        with pytest.raises(ValueError):
            ModelCover(
                centroids=np.zeros((1, 3)),
                models=[MeanModel(1.0)],
                valid_until=0.0,
                family="mean",
            )


class TestQuerying:
    def test_nearest_index(self):
        cover = make_cover()
        assert cover.nearest_index(10, 10) == 0
        assert cover.nearest_index(900, 100) == 1
        assert cover.nearest_index(100, 900) == 2

    def test_predict_uses_owner_model(self):
        cover = make_cover()
        assert cover.predict(0, 10, 10) == 400.0
        assert cover.predict(0, 990, 0) == 600.0

    def test_predict_batch_matches_scalar(self):
        cover = make_cover()
        xs = np.array([10.0, 990.0, 100.0])
        ys = np.array([10.0, 0.0, 900.0])
        ts = np.zeros(3)
        out = cover.predict_batch(ts, xs, ys)
        assert out.tolist() == [400.0, 600.0, 800.0]

    def test_validity(self):
        cover = make_cover(valid_until=500.0)
        assert cover.is_valid_at(500.0)  # t_l <= t_n
        assert not cover.is_valid_at(500.1)


class TestSerialization:
    def test_round_trip_mean(self):
        cover = make_cover()
        rebuilt = ModelCover.from_blob(cover.to_blob())
        assert rebuilt.size == cover.size
        assert rebuilt.family == "mean"
        assert rebuilt.window_c == 3
        assert rebuilt.valid_until == cover.valid_until
        assert np.array_equal(rebuilt.centroids, cover.centroids)
        assert rebuilt.predict(0, 10, 10) == cover.predict(0, 10, 10)

    def test_round_trip_linear(self, tiny_batch):
        model = LinearModel.fit(tiny_batch)
        cover = ModelCover(
            centroids=np.array([[150.0, 100.0]]),
            models=[model],
            valid_until=42.0,
            family="linear",
        )
        rebuilt = ModelCover.from_blob(cover.to_blob())
        assert rebuilt.predict(0, 120, 80) == pytest.approx(cover.predict(0, 120, 80))

    def test_not_a_blob(self):
        with pytest.raises(ValueError, match="not a model-cover blob"):
            ModelCover.from_blob(b"garbage!")

    def test_trailing_bytes_rejected(self):
        blob = make_cover().to_blob() + b"\x00"
        with pytest.raises(ValueError, match="trailing"):
            ModelCover.from_blob(blob)

    def test_wire_size_small(self):
        # 3 mean models: the whole cover fits in well under 200 bytes —
        # the quantitative heart of Figures 7(a)/(b).
        assert make_cover().wire_size_bytes() < 200
