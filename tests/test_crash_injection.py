"""Crash-injection matrix for the durable tier.

The harness (:mod:`tests.faultfs`) first runs the ingest workload once to
count its durability boundaries — every fsync and atomic rename crossed
by WAL appends, segment writes, manifest replaces and WAL checkpoints —
then replays the workload once per ``(boundary, mode)`` cell, killing
the writer at exactly that point:

* ``before`` — the syscall never executed (its write is not durable);
* ``after``  — the syscall executed, nothing later ran;
* ``torn``   — the preceding buffered write is additionally cut in half
  (the torn-sector crash WAL replay must detect).

After each simulated kill the directory is reopened cold and checked
against the *replay oracle*: recovery must yield a byte-for-byte batch
prefix of the reference stream, at least as long as everything the
writer acknowledged, and bit-identical — rows, gids, cuts, sketches and
query answers — to a shadow in-memory router fed exactly that prefix.
"""

import numpy as np
import pytest

from faultfs import FaultInjector, SimulatedCrash, count_boundaries
from repro.data.tuples import TupleBatch
from repro.geo.coords import BoundingBox
from repro.geo.region import RegionGrid
from repro.query.base import QueryBatch
from repro.query.sharded import ShardedQueryEngine
from repro.storage import fsio
from repro.storage.shards import ShardRouter
from repro.storage.tiered import TieredShardRouter

BOUNDS = BoundingBox(0.0, 0.0, 6000.0, 4000.0)
H = 25
N_BATCHES = 4
BATCH_ROWS = 27  # 4 * 27 = 108 rows = 4 sealed windows + an 8-row tail


def make_stream(n: int, seed: int = 0) -> TupleBatch:
    rng = np.random.default_rng(seed)
    return TupleBatch(
        np.cumsum(rng.uniform(1.0, 30.0, n)),
        rng.uniform(0.0, 6000.0, n),
        rng.uniform(0.0, 4000.0, n),
        rng.uniform(350.0, 600.0, n),
    )


STREAM = make_stream(N_BATCHES * BATCH_ROWS)
GRID = RegionGrid(BOUNDS, nx=2, ny=1)


def run_workload(data_dir, acked) -> None:
    """Create the store, then ingest the stream batch by batch, recording
    in ``acked`` how many rows each returned ``ingest`` made durable."""
    with TieredShardRouter(GRID, h=H, data_dir=data_dir) as router:
        for k in range(N_BATCHES):
            router.ingest(STREAM.slice(k * BATCH_ROWS, (k + 1) * BATCH_ROWS))
            acked[0] = (k + 1) * BATCH_ROWS


def shadow_router(n_rows: int) -> ShardRouter:
    """The oracle: a plain in-memory router over the recovered prefix."""
    shadow = ShardRouter(GRID, h=H)
    if n_rows:
        shadow.ingest(STREAM.slice(0, n_rows))
    return shadow


def assert_recovered_state_matches_shadow(recovered, shadow) -> None:
    assert recovered.shard_counts() == shadow.shard_counts()
    for s in range(shadow.n_shards):
        assert recovered.cuts(s) == shadow.cuts(s)
    for c in range(shadow.global_window_count()):
        for s in range(shadow.n_shards):
            a, b = recovered.shard_window(s, c), shadow.shard_window(s, c)
            for name in ("t", "x", "y", "s"):
                assert getattr(a, name).tobytes() == getattr(b, name).tobytes()
            assert (
                recovered.shard_window_gids(s, c).tobytes()
                == shadow.shard_window_gids(s, c).tobytes()
            )
            assert recovered.shard_window_sketch(
                s, c
            ) == shadow.shard_window_sketch(s, c)
    if shadow.global_count():
        probes = np.linspace(STREAM.t[0] - 1.0, STREAM.t[-1] + 1.0, 23)
        np.testing.assert_array_equal(
            recovered.windows_for_times(probes),
            shadow.windows_for_times(probes),
        )


def assert_answers_match_shadow(recovered, shadow) -> None:
    if not shadow.global_count():
        return
    rng = np.random.default_rng(99)
    n = 10
    queries = QueryBatch(
        rng.uniform(float(STREAM.t[0]), float(STREAM.t[-1]), n),
        rng.uniform(BOUNDS.min_x, BOUNDS.max_x, n),
        rng.uniform(BOUNDS.min_y, BOUNDS.max_y, n),
    )
    hot = ShardedQueryEngine(recovered, radius_m=2000.0)
    cold = ShardedQueryEngine(shadow, radius_m=2000.0)
    try:
        a = hot.continuous_query_batch(queries)
        b = cold.continuous_query_batch(queries)
        assert a.values.tobytes() == b.values.tobytes()
        np.testing.assert_array_equal(a.answered, b.answered)
        np.testing.assert_array_equal(a.support, b.support)
    finally:
        hot.close()
        cold.close()


def crash_and_recover(tmp_path, boundary: int, mode: str, torn: bool):
    """One matrix cell: run to the boundary, kill, recover, check."""
    data_dir = tmp_path / "tier"
    acked = [0]
    with FaultInjector(crash_at=boundary, mode=mode, torn=torn) as injector:
        with pytest.raises(SimulatedCrash):
            run_workload(data_dir, acked)
    assert injector.crashed

    try:
        recovered = TieredShardRouter.open(data_dir)
    except ValueError:
        # A kill before the very first manifest commit leaves a directory
        # that is not yet self-describing; the operator re-supplies the
        # configuration (nothing was acknowledged by then).
        assert acked[0] == 0
        recovered = TieredShardRouter(GRID, h=H, data_dir=data_dir)
    try:
        n_rows = recovered.global_count()
        # Prefix durability: everything acknowledged survived; nothing
        # beyond the stream was invented; whole batches only (the WAL
        # logs ingest batches atomically).
        assert acked[0] <= n_rows <= len(STREAM)
        assert n_rows % BATCH_ROWS == 0
        shadow = shadow_router(n_rows)
        assert_recovered_state_matches_shadow(recovered, shadow)
        assert_answers_match_shadow(recovered, shadow)
    finally:
        recovered.close()
    return n_rows


def _matrix_size() -> int:
    def workload():
        import tempfile

        with tempfile.TemporaryDirectory() as d:
            run_workload(d, [0])

    return count_boundaries(workload)


N_BOUNDARIES = _matrix_size()


class TestCrashMatrix:
    """Every (durability boundary × crash mode) cell recovers exactly."""

    @pytest.mark.parametrize("boundary", range(N_BOUNDARIES))
    def test_kill_before_boundary(self, tmp_path, boundary):
        crash_and_recover(tmp_path, boundary, "before", torn=False)

    @pytest.mark.parametrize("boundary", range(N_BOUNDARIES))
    def test_kill_after_boundary(self, tmp_path, boundary):
        crash_and_recover(tmp_path, boundary, "after", torn=False)

    @pytest.mark.parametrize("boundary", range(N_BOUNDARIES))
    def test_torn_write_at_boundary(self, tmp_path, boundary):
        crash_and_recover(tmp_path, boundary, "before", torn=True)

    def test_matrix_covers_all_record_kinds(self):
        """The workload really crosses every durability structure: WAL
        appends, per-shard segment writes, manifest replaces and WAL
        checkpoints all contribute boundaries."""
        # Per ingest batch: 1 WAL-append fsync.  Per seal: one fsync +
        # rename per segment file, one pair for the manifest, one pair
        # for the WAL checkpoint.  The creation-time manifest adds one
        # more pair.  Every kind must be present for the matrix to mean
        # anything.
        assert N_BOUNDARIES > N_BATCHES + 4 * 2 + 2

    def test_double_crash_then_recovery(self, tmp_path):
        """A crash during *recovery's own* re-seal is just another crash:
        a second cold open still lands on the oracle state."""
        data_dir = tmp_path / "tier"
        acked = [0]
        # Boundary 3 is the first seal's first segment fsync (0, 1 are the
        # creation-time manifest, 2 is batch 1's WAL append): the kill
        # leaves window 0 complete in the WAL but unsealed, so recovery
        # must re-run the seal — which we then kill too.
        with FaultInjector(crash_at=3, mode="before") as injector:
            with pytest.raises(SimulatedCrash):
                run_workload(data_dir, acked)
        assert injector.crashed
        # Second crash: kill the recovery while it re-seals.
        with FaultInjector(crash_at=1, mode="before") as injector:
            with pytest.raises(SimulatedCrash):
                TieredShardRouter.open(data_dir)
        recovered = TieredShardRouter.open(data_dir)
        try:
            n_rows = recovered.global_count()
            assert acked[0] <= n_rows <= len(STREAM)
            assert_recovered_state_matches_shadow(recovered, shadow_router(n_rows))
        finally:
            recovered.close()

    def test_recovered_store_keeps_ingesting(self, tmp_path):
        """After a crash + recovery the store accepts the rest of the
        stream and ends bit-identical to a never-crashed shadow."""
        data_dir = tmp_path / "tier"
        acked = [0]
        with FaultInjector(crash_at=N_BOUNDARIES // 2, mode="before") as injector:
            with pytest.raises(SimulatedCrash):
                run_workload(data_dir, acked)
        assert injector.crashed
        recovered = TieredShardRouter.open(data_dir)
        try:
            n_rows = recovered.global_count()
            recovered.ingest(STREAM.slice(n_rows, len(STREAM)))
            assert_recovered_state_matches_shadow(
                recovered, shadow_router(len(STREAM))
            )
        finally:
            recovered.close()


class TestInjectorSemantics:
    """The harness itself: boundary counting and kill modes do what the
    matrix assumes they do."""

    def test_atomic_write_boundaries(self, tmp_path):
        path = tmp_path / "blob.bin"

        def workload():
            fsio.atomic_write_bytes(path, b"payload")

        assert count_boundaries(workload) == 2  # fsync(tmp), rename
        path.unlink()

    def test_kill_before_rename_leaves_no_file(self, tmp_path):
        path = tmp_path / "blob.bin"
        with FaultInjector(crash_at=1, mode="before"):
            with pytest.raises(SimulatedCrash):
                fsio.atomic_write_bytes(path, b"payload")
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []  # temp cleaned up

    def test_kill_after_rename_leaves_the_file(self, tmp_path):
        path = tmp_path / "blob.bin"
        with FaultInjector(crash_at=1, mode="after"):
            with pytest.raises(SimulatedCrash):
                fsio.atomic_write_bytes(path, b"payload")
        assert path.read_bytes() == b"payload"

    def test_torn_write_halves_the_tail(self, tmp_path):
        path = tmp_path / "log.bin"
        f = open(path, "ab")
        with FaultInjector(crash_at=0, mode="before", torn=True):
            with pytest.raises(SimulatedCrash):
                fsio.write(f, b"0123456789")
                fsio.fsync(f)
        f.close()
        assert path.read_bytes() == b"01234"

    def test_seams_restored_after_exit(self, tmp_path):
        before = (fsio.write, fsio.fsync, fsio.replace, fsio.fsync_dir)
        with FaultInjector(crash_at=0):
            assert fsio.fsync is not before[1]
        assert (fsio.write, fsio.fsync, fsio.replace, fsio.fsync_dir) == before
