"""Tests for repro.models.base (registry and protocol)."""

import pytest

from repro.models.base import (
    Model,
    model_factory,
    rebuild_model,
    register_family,
    registered_families,
)
from repro.models.linear import LinearModel
from repro.models.mean import MeanModel


class TestRegistry:
    def test_builtin_families_registered(self):
        fams = registered_families()
        for name in ("mean", "linear", "poly2", "kernel"):
            assert name in fams

    def test_factory_returns_fitting_fn(self, tiny_batch):
        fit = model_factory("mean")
        model = fit(tiny_batch)
        assert isinstance(model, MeanModel)

    def test_unknown_family(self):
        with pytest.raises(KeyError, match="unknown model family"):
            model_factory("does-not-exist")
        with pytest.raises(KeyError, match="unknown model family"):
            rebuild_model("does-not-exist", (1.0,))

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_family("mean", MeanModel.fit, MeanModel.from_coefficients)

    def test_rebuild_round_trip(self, tiny_batch):
        original = LinearModel.fit(tiny_batch)
        rebuilt = rebuild_model("linear", original.coefficients())
        assert rebuilt.predict(0, 130, 140) == pytest.approx(
            original.predict(0, 130, 140)
        )


class TestProtocol:
    def test_models_satisfy_protocol(self, tiny_batch):
        for family in registered_families():
            model = model_factory(family)(tiny_batch)
            assert isinstance(model, Model)
            assert model.family == family
