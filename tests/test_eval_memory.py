"""Tests for repro.eval.memory (the Pympler substitute)."""

import sys

import numpy as np

from repro.eval.memory import deep_sizeof, deep_sizeof_kb


class SlottedPoint:
    __slots__ = ("x", "y")

    def __init__(self, x, y):
        self.x = x
        self.y = y


class DictObject:
    def __init__(self, payload):
        self.payload = payload


class TestDeepSizeof:
    def test_atoms(self):
        assert deep_sizeof(42) == sys.getsizeof(42)
        assert deep_sizeof("hello") == sys.getsizeof("hello")

    def test_list_includes_elements(self):
        values = [10_000 + i for i in range(100)]  # non-cached ints
        total = deep_sizeof(values)
        assert total > sys.getsizeof(values)
        assert total >= sys.getsizeof(values) + 100 * sys.getsizeof(10_000)

    def test_shared_objects_counted_once(self):
        shared = list(range(1000, 1100))
        a = [shared, shared]
        b = [shared]
        assert deep_sizeof(a) < 2 * deep_sizeof(b) + sys.getsizeof(a)

    def test_cycles_terminate(self):
        a = []
        a.append(a)
        assert deep_sizeof(a) >= sys.getsizeof(a)

    def test_dict_keys_and_values(self):
        d = {"key-%d" % i: i * 1.5 for i in range(50)}
        assert deep_sizeof(d) > sys.getsizeof(d)

    def test_slotted_object(self):
        p = SlottedPoint(1.5, 2.5)
        assert deep_sizeof(p) >= sys.getsizeof(p) + 2 * sys.getsizeof(1.5)

    def test_dict_object(self):
        o = DictObject([1.0] * 10)
        assert deep_sizeof(o) > sys.getsizeof(o)

    def test_numpy_array_counts_buffer(self):
        arr = np.zeros(100_000)
        assert deep_sizeof(arr) >= arr.nbytes

    def test_numpy_view_charges_base_once(self):
        base = np.zeros(100_000)
        views = [base[10:20], base[30:40]]
        total = deep_sizeof(views)
        assert total < 2 * base.nbytes  # not double-counted
        assert total >= base.nbytes     # but the base is included

    def test_class_objects_excluded(self):
        # A plain instance should not drag in its type/module machinery.
        assert deep_sizeof(DictObject([])) < 10_000

    def test_kb_helper(self):
        assert deep_sizeof_kb([0] * 10) == deep_sizeof([0] * 10) / 1024.0

    def test_bigger_structure_bigger_size(self):
        small = [SlottedPoint(float(i), float(i)) for i in range(10)]
        large = [SlottedPoint(float(i), float(i)) for i in range(100)]
        assert deep_sizeof(large) > 5 * deep_sizeof(small)
