"""Tests for repro.client.routes."""

import pytest

from repro.client.routes import RecordedRoute, RoutePoint, RouteRecorder


class TestRoutePoint:
    def test_level_and_color(self):
        p = RoutePoint(t=0, x=0, y=0, co2_ppm=420.0)
        assert p.level is not None
        assert p.marker_color.startswith("#")

    def test_missing_reading(self):
        p = RoutePoint(t=0, x=0, y=0, co2_ppm=None)
        assert p.level is None
        assert p.marker_color is None


class TestRecordedRoute:
    def test_average(self):
        route = RecordedRoute(
            "home",
            [RoutePoint(0, 0, 0, 400.0), RoutePoint(1, 0, 0, 500.0)],
        )
        assert route.average_ppm == 450.0
        assert route.peak_ppm == 500.0
        assert route.acceptable is True

    def test_skips_missing_readings(self):
        route = RecordedRoute(
            "gap",
            [RoutePoint(0, 0, 0, 400.0), RoutePoint(1, 0, 0, None)],
        )
        assert route.average_ppm == 400.0

    def test_all_missing(self):
        route = RecordedRoute("void", [RoutePoint(0, 0, 0, None)])
        assert route.average_ppm is None
        assert route.acceptable is None
        assert "no pollution data" in route.summary_text()

    def test_summary_text_verdict(self):
        ok = RecordedRoute("a", [RoutePoint(0, 0, 0, 450.0)])
        assert "acceptable" in ok.summary_text()
        bad = RecordedRoute("b", [RoutePoint(0, 0, 0, 20_000.0)])
        assert "NOT acceptable" in bad.summary_text()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RecordedRoute("empty", [])


class TestRecorder:
    def test_full_cycle(self):
        readings = iter([410.0, 430.0, None])
        recorder = RouteRecorder(lambda q: next(readings))
        recorder.start("commute")
        assert recorder.recording
        recorder.update_position(0.0, 10.0, 20.0)
        recorder.update_position(60.0, 30.0, 40.0)
        recorder.update_position(120.0, 50.0, 60.0)
        route = recorder.stop()
        assert not recorder.recording
        assert len(route.points) == 3
        assert route.average_ppm == 420.0

    def test_double_start_rejected(self):
        recorder = RouteRecorder(lambda q: 400.0)
        recorder.start("a")
        with pytest.raises(RuntimeError):
            recorder.start("b")

    def test_update_without_start(self):
        recorder = RouteRecorder(lambda q: 400.0)
        with pytest.raises(RuntimeError):
            recorder.update_position(0, 0, 0)

    def test_stop_without_points(self):
        recorder = RouteRecorder(lambda q: 400.0)
        recorder.start("a")
        with pytest.raises(RuntimeError):
            recorder.stop()

    def test_stop_without_start(self):
        recorder = RouteRecorder(lambda q: 400.0)
        with pytest.raises(RuntimeError):
            recorder.stop()
