"""Tests for repro.query.sharded (engine behaviour; the byte-level
equivalence contract lives in ``tests/test_engine_equivalence.py``)."""

import numpy as np
import pytest

from repro.data.tuples import QueryTuple
from repro.geo.coords import BoundingBox
from repro.query.base import QueryBatch
from repro.query.engine import QueryEngine
from repro.query.planner import QueryProfile
from repro.query.sharded import (
    SHARDED_METHODS,
    ShardedQueryEngine,
    merge_hit_partials,
    scan_hits,
)
from repro.geo.region import RegionGrid
from repro.storage.shards import ShardRouter


@pytest.fixture(scope="module")
def router(small_batch):
    # Fixed bounds keep the partition deterministic for the module.
    grid = RegionGrid.for_shard_count(BoundingBox(0.0, 0.0, 6000.0, 4000.0), 4)
    r = ShardRouter(grid, h=240)
    step = 1200
    for start in range(0, len(small_batch), step):
        r.ingest(small_batch.slice(start, min(start + step, len(small_batch))))
    return r


@pytest.fixture(scope="module")
def engine(router):
    return ShardedQueryEngine(router, radius_m=1000.0)


@pytest.fixture(scope="module")
def t_mid(small_batch):
    return float(small_batch.t[500])


class TestConstruction:
    def test_validation(self, router):
        with pytest.raises(ValueError):
            ShardedQueryEngine(router, radius_m=-1.0)
        with pytest.raises(ValueError):
            ShardedQueryEngine(router, cache_capacity=0)

    def test_unknown_method_rejected(self, engine, t_mid):
        with pytest.raises(ValueError):
            engine.point_query(t_mid, 100.0, 100.0, method="quantum")

    def test_context_manager_closes_pool(self, router):
        with ShardedQueryEngine(router) as eng:
            assert eng.n_shards == 4
        assert eng.executor._pool is None


class TestPointQuery:
    def test_matches_unsharded_naive(self, engine, small_batch, t_mid):
        unsharded = QueryEngine(small_batch, h=240, radius_m=1000.0)
        c = unsharded.window_for_time(t_mid)
        proc = unsharded.processor("naive", c)
        for x, y in ((2500.0, 1800.0), (900.0, 3000.0), (5200.0, 500.0)):
            ours = engine.point_query(t_mid, x, y, method="naive")
            ref = proc.process(QueryTuple(t=t_mid, x=x, y=y))
            assert ours.answered == ref.answered
            assert ours.support == ref.support
            if ref.answered:
                assert ours.value == pytest.approx(ref.value, rel=1e-9)

    def test_far_query_unanswered(self, engine, t_mid):
        res = engine.point_query(t_mid, 1e6, -1e6, method="naive")
        assert not res.answered
        assert res.support == 0

    def test_every_method_answers_central_query(self, engine, t_mid):
        for method in SHARDED_METHODS:
            res = engine.point_query(t_mid, 2500.0, 1800.0, method=method)
            assert res.answered, method


class TestContinuousQuery:
    def test_results_in_stream_order(self, engine, small_batch):
        t0, t1 = small_batch.time_span()
        queries = [
            QueryTuple(t=t0 + frac * (t1 - t0), x=2000.0 + 40.0 * i, y=1500.0)
            for i, frac in enumerate(np.linspace(0.05, 0.95, 25))
        ]
        results = engine.continuous_query(queries, method="naive")
        assert len(results) == len(queries)
        for q, r in zip(queries, results):
            assert r.query == q

    def test_empty_batch(self, engine):
        result = engine.continuous_query_batch(QueryBatch.from_queries([]))
        assert len(result) == 0
        assert result.results() == []


class TestHeatmap:
    def test_shape_and_agreement_with_unsharded(self, engine, small_batch, t_mid):
        bounds = BoundingBox(0.0, 0.0, 6000.0, 4000.0)
        grid = engine.heatmap_grid(t_mid, bounds, nx=16, ny=12, method="naive")
        assert grid.shape == (12, 16)
        unsharded = QueryEngine(small_batch, h=240, radius_m=1000.0)
        expected = unsharded.heatmap_grid(t_mid, bounds, nx=16, ny=12, method="naive")
        np.testing.assert_allclose(
            grid, expected, rtol=1e-9, atol=1e-9, equal_nan=True
        )

    def test_degenerate_axes_probe_center(self, engine, t_mid):
        bounds = BoundingBox(0.0, 0.0, 6000.0, 4000.0)
        grid = engine.heatmap_grid(t_mid, bounds, nx=1, ny=1, method="naive")
        assert grid.shape == (1, 1)
        center = engine.point_query(t_mid, 3000.0, 2000.0, method="naive")
        if center.answered:
            assert grid[0, 0] == pytest.approx(center.value)
        else:
            assert np.isnan(grid[0, 0])


class TestPlannerIntegration:
    def test_auto_consults_planner_per_shard(self, router, t_mid):
        engine = ShardedQueryEngine(
            router,
            radius_m=1000.0,
            profile=QueryProfile(expected_queries=100_000, radius_m=1000.0),
        )
        engine.point_query(t_mid, 2500.0, 1800.0, method="auto")
        c = router.window_for_time(t_mid)
        owner = router.grid.shard_of(2500.0, 1800.0)
        stamp = router.shard_window_epoch(owner, c)
        sub = router.shard_window(owner, c)
        planned = engine._planned_method(owner, c, exact=False, stamp=stamp, sub=sub)
        assert planned in ("naive", "rtree", "vptree", "model-cover")
        # A long workload over a populated shard amortises the fit.
        if len(router.shard_window(owner, c)) >= 16:
            assert planned == "model-cover"

    def test_auto_exact_profile_stays_raw(self, router, t_mid):
        engine = ShardedQueryEngine(
            router,
            radius_m=1000.0,
            profile=QueryProfile(
                expected_queries=100_000, needs_exact_average=True, radius_m=1000.0
            ),
        )
        res = engine.point_query(t_mid, 2500.0, 1800.0, method="auto")
        exact = engine.point_query(t_mid, 2500.0, 1800.0, method="naive")
        assert res.value == exact.value
        assert res.support == exact.support

    def test_single_query_profile_plans_naive(self, router, t_mid):
        engine = ShardedQueryEngine(
            router,
            radius_m=1000.0,
            profile=QueryProfile(expected_queries=1, radius_m=1000.0),
        )
        c = router.window_for_time(t_mid)
        owner = router.grid.shard_of(2500.0, 1800.0)
        stamp = router.shard_window_epoch(owner, c)
        sub = router.shard_window(owner, c)
        if len(sub):
            assert (
                engine._planned_method(owner, c, exact=False, stamp=stamp, sub=sub)
                == "naive"
            )


class TestMergeInternals:
    def test_merge_empty_partials(self):
        queries = QueryBatch(np.zeros(3), np.zeros(3), np.zeros(3))
        result = merge_hit_partials(3, 10, [], queries)
        assert result.n_answered == 0
        assert np.all(np.isnan(result.values))

    def test_scan_hits_counts_match_naive(self, small_batch):
        from repro.query.naive import NaiveProcessor

        window = small_batch.slice(0, 240)
        gids = np.arange(240, dtype=np.int64)
        queries = QueryBatch(
            np.full(5, float(window.t[0])),
            np.linspace(500.0, 5500.0, 5),
            np.full(5, 2000.0),
        )
        probe, gid, vals = scan_hits(window, gids, queries, 1000.0)
        naive = NaiveProcessor(window, radius_m=1000.0).process_batch(queries)
        counts = np.bincount(probe, minlength=5)
        np.testing.assert_array_equal(counts, naive.support)
        assert len(gid) == len(vals) == len(probe)

    def test_cache_is_bounded(self, router, t_mid):
        engine = ShardedQueryEngine(router, radius_m=1000.0, cache_capacity=2)
        for method in ("kdtree", "vptree", "rtree"):
            engine.point_query(t_mid, 2500.0, 1800.0, method=method)
        assert len(engine._cache) <= 2


class TestOpenWindowIngest:
    def test_caches_never_serve_stale_open_window(self, small_batch):
        """Regression: an index/cover/plan built over a partial open
        window must not answer queries after the window gains tuples —
        every method must agree with a fresh naive scan."""
        grid = RegionGrid.for_shard_count(BoundingBox(0.0, 0.0, 6000.0, 4000.0), 4)
        router = ShardRouter(grid, h=240)
        router.ingest(small_batch.slice(0, 100))  # window 0 stays open
        engine = ShardedQueryEngine(router, radius_m=1500.0)
        t = float(small_batch.t[220])
        q = (t, 2500.0, 1800.0)
        for method in ("vptree", "model-cover", "auto"):
            engine.point_query(*q, method=method)  # warm caches on 100 rows
        exact_auto = ShardedQueryEngine(
            router,
            radius_m=1500.0,
            profile=QueryProfile(needs_exact_average=True, radius_m=1500.0),
        )
        exact_auto.point_query(*q, method="auto")  # warm on 100 rows too
        router.ingest(small_batch.slice(100, 220))  # same window grows
        fresh = engine.point_query(*q, method="naive")
        assert fresh.support > 0
        for method in ("vptree", "kdtree"):
            res = engine.point_query(*q, method=method)
            assert res.support == fresh.support, method
            assert res.value == fresh.value, method
        auto = exact_auto.point_query(*q, method="auto")
        assert auto.support == fresh.support
        assert auto.value == fresh.value
        mc = engine.point_query(*q, method="model-cover")
        # The owner's cover must now be fitted on the grown slice: its
        # prediction is a model answer (support 1) from a fresh fit, not
        # the 100-row cover (different fits disagree on this workload) —
        # at minimum the query stays answered and no stale index crashes.
        assert mc.answered
