"""Regression tests for the async front end's input validation and
WebSocket framing.

Each class pins one formerly wrong behaviour (all four were 500s or
silent connection teardowns before being fixed):

* non-numeric ``Content-Length`` → uncaught ``ValueError`` killed the
  connection with no response at all;
* invalid ``duration_s`` escaped ``float()``/``waypoint_trajectory`` as
  a 500 on both services;
* ``_optional_int`` had no upper bound — one heatmap request could ask
  for a terabyte-scale grid;
* ``_read_frame`` ignored FIN and dropped continuation frames, silently
  corrupting fragmented WebSocket messages.
"""

import asyncio
import base64
import hashlib
import http.client
import json
import socket
import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.app.webapp import WebInterface
from repro.geo.coords import BoundingBox
from repro.geo.region import RegionGrid
from repro.query.engine import QueryEngine
from repro.query.sharded import ShardedQueryEngine
from repro.query.subscriptions import registry_for
from repro.server.async_server import (
    AsyncQueryServer,
    BackgroundServer,
    EngineQueryService,
    WebAppService,
)
from repro.storage.shards import ShardRouter

_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"


@pytest.fixture(scope="module")
def web_served(small_batch):
    web = WebInterface(QueryEngine(small_batch, h=240))
    with BackgroundServer(WebAppService(web)) as background:
        yield background


@pytest.fixture()
def engine_served(small_batch):
    """An engine service with a live subscription registry and a
    held-back tail so tests can drive ingest themselves."""
    pad = 500.0
    bbox = BoundingBox(
        float(small_batch.x.min()) - pad,
        float(small_batch.y.min()) - pad,
        float(small_batch.x.max()) + pad,
        float(small_batch.y.max()) + pad,
    )
    cut = int(0.8 * len(small_batch))
    router = ShardRouter(RegionGrid(bbox, nx=2, ny=2), h=240)
    router.ingest(small_batch.slice(0, cut))
    engine = ShardedQueryEngine(router)
    registry = registry_for(engine)
    service = EngineQueryService(engine, subscriptions=registry)
    with BackgroundServer(service) as background:
        yield background, router, registry, cut


@pytest.fixture(scope="module")
def t_mid(small_batch):
    return float(small_batch.t[500])


def _post(port, path, payload):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request(
            "POST",
            path,
            body=json.dumps(payload),
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def _raw_exchange(port, request: bytes):
    """Send raw bytes, read until the server closes the connection."""
    sock = socket.create_connection(("127.0.0.1", port), timeout=30)
    try:
        sock.sendall(request)
        sock.shutdown(socket.SHUT_WR)
        data = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                return data
            data += chunk
    finally:
        sock.close()


class TestContentLengthValidation:
    @pytest.mark.parametrize(
        "value", ["banana", "-5", "+10", "1_0", "0x10", "12 34"]
    )
    def test_malformed_content_length_is_a_400_not_a_hangup(
        self, web_served, value
    ):
        response = _raw_exchange(
            web_served.port,
            (
                f"POST /query/point HTTP/1.1\r\n"
                f"Host: t\r\n"
                f"Content-Length: {value}\r\n"
                f"\r\n"
            ).encode(),
        )
        # Before the fix the int() call raised and the connection died
        # with zero bytes written.
        assert response.startswith(b"HTTP/1.1 400"), response[:60]
        assert b"Content-Length" in response

    def test_valid_content_length_still_served(self, web_served, t_mid):
        status, _body = _post(
            web_served.port, "/query/point", {"t": t_mid, "x": 2000.0, "y": 1500.0}
        )
        assert status == 200


_BAD_DURATIONS = ["soon", 0, -600.0, True, float("nan"), float("inf")]


class TestDurationValidation:
    @pytest.mark.parametrize("duration", _BAD_DURATIONS)
    def test_webapp_service_rejects_bad_duration(
        self, web_served, t_mid, duration
    ):
        status, body = _post(
            web_served.port,
            "/query/continuous",
            {
                "route": [[1000.0, 1000.0], [3000.0, 2200.0]],
                "t_start": t_mid,
                "duration_s": duration,
            },
        )
        assert status == 400, body
        assert "duration_s" in body["error"]

    @pytest.mark.parametrize("duration", _BAD_DURATIONS)
    def test_engine_service_rejects_bad_duration(
        self, engine_served, t_mid, duration
    ):
        served, _router, _registry, _cut = engine_served
        status, body = _post(
            served.port,
            "/query/continuous",
            {
                "route": [[1000.0, 1000.0], [3000.0, 2200.0]],
                "t_start": t_mid,
                "duration_s": duration,
            },
        )
        assert status == 400, body
        assert "duration_s" in body["error"]

    def test_valid_duration_still_served(self, web_served, t_mid):
        status, body = _post(
            web_served.port,
            "/query/continuous",
            {
                "route": [[1000.0, 1000.0], [3000.0, 2200.0]],
                "t_start": t_mid,
                "duration_s": 600.0,
                "updates": 4,
            },
        )
        assert status == 200
        assert len(body["readings"]) == 4


class TestRequestLimits:
    def test_giant_heatmap_grid_is_rejected(self, web_served, t_mid):
        status, body = _post(
            web_served.port,
            "/query/heatmap",
            {"t": t_mid, "bounds": [0, 0, 6000, 4000], "nx": 10**6, "ny": 10**6},
        )
        assert status == 400
        assert "nx" in body["error"]

    def test_axis_just_over_the_cap_is_rejected(self, web_served, t_mid):
        status, body = _post(
            web_served.port,
            "/query/heatmap",
            {"t": t_mid, "bounds": [0, 0, 6000, 4000], "nx": 4, "ny": 513},
        )
        assert status == 400
        assert "513" not in body["error"] or "ny" in body["error"]

    def test_giant_update_count_is_rejected(self, web_served, t_mid):
        status, body = _post(
            web_served.port,
            "/query/continuous",
            {
                "route": [[1000.0, 1000.0], [3000.0, 2200.0]],
                "t_start": t_mid,
                "updates": 10_001,
            },
        )
        assert status == 400
        assert "updates" in body["error"]


class TestKeepAliveAfter400:
    def test_connection_survives_a_400(self, web_served, t_mid):
        conn = http.client.HTTPConnection("127.0.0.1", web_served.port, timeout=30)
        try:
            conn.request(
                "POST",
                "/query/continuous",
                body=json.dumps(
                    {
                        "route": [[0.0, 0.0], [1.0, 1.0]],
                        "t_start": t_mid,
                        "duration_s": -1,
                    }
                ),
            )
            response = conn.getresponse()
            assert response.status == 400
            response.read()
            # Same socket, next request: a 400 must not poison the
            # connection.
            conn.request(
                "POST",
                "/query/point",
                body=json.dumps({"t": t_mid, "x": 2000.0, "y": 1500.0}),
            )
            response = conn.getresponse()
            assert response.status == 200
            json.loads(response.read())
        finally:
            conn.close()

    def test_pipelined_requests_after_400(self, web_served, t_mid):
        bad = json.dumps(
            {"route": [[0.0, 0.0], [1.0, 1.0]], "t_start": t_mid, "duration_s": 0}
        ).encode()
        good = json.dumps({"t": t_mid, "x": 2000.0, "y": 1500.0}).encode()
        request = (
            b"POST /query/continuous HTTP/1.1\r\nHost: t\r\n"
            + f"Content-Length: {len(bad)}\r\n\r\n".encode()
            + bad
            + b"POST /query/point HTTP/1.1\r\nHost: t\r\nConnection: close\r\n"
            + f"Content-Length: {len(good)}\r\n\r\n".encode()
            + good
        )
        response = _raw_exchange(web_served.port, request)
        assert response.startswith(b"HTTP/1.1 400")
        assert b"HTTP/1.1 200" in response


def _encode_frame(fin: bool, opcode: int, payload: bytes, mask: bytes) -> bytes:
    head = bytes([(0x80 if fin else 0x00) | opcode])
    n = len(payload)
    if n < 126:
        head += bytes([0x80 | n])
    elif n < 1 << 16:
        head += bytes([0x80 | 126]) + struct.pack(">H", n)
    else:
        head += bytes([0x80 | 127]) + struct.pack(">Q", n)
    masked = bytes(b ^ mask[i % 4] for i, b in enumerate(payload))
    return head + mask + masked


class _WsClient:
    """RFC 6455 client with frame-level control (fragmentation, pings)."""

    def __init__(self, port, timeout=30):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=timeout)
        key = base64.b64encode(b"fedcba9876543210").decode()
        self.sock.sendall(
            (
                "GET /ws HTTP/1.1\r\n"
                f"Host: 127.0.0.1:{port}\r\n"
                "Upgrade: websocket\r\n"
                "Connection: Upgrade\r\n"
                f"Sec-WebSocket-Key: {key}\r\n"
                "Sec-WebSocket-Version: 13\r\n"
                "\r\n"
            ).encode()
        )
        head = b""
        while not head.endswith(b"\r\n\r\n"):
            chunk = self.sock.recv(4096)
            assert chunk, "server closed during handshake"
            head += chunk
        assert b"101" in head.split(b"\r\n", 1)[0]
        expected = base64.b64encode(
            hashlib.sha1((key + _WS_GUID).encode()).digest()
        ).decode()
        assert f"Sec-WebSocket-Accept: {expected}".encode() in head

    def send(self, fin, opcode, payload):
        self.sock.sendall(_encode_frame(fin, opcode, payload, b"\xaa\xbb\xcc\xdd"))

    def _recv_exactly(self, n):
        data = b""
        while len(data) < n:
            chunk = self.sock.recv(n - len(data))
            assert chunk, "server closed mid-frame"
            data += chunk
        return data

    def recv_frame(self):
        b0, b1 = self._recv_exactly(2)
        assert not (b1 & 0x80), "server frames must be unmasked"
        length = b1 & 0x7F
        if length == 126:
            (length,) = struct.unpack(">H", self._recv_exactly(2))
        elif length == 127:
            (length,) = struct.unpack(">Q", self._recv_exactly(8))
        return b0 & 0x0F, self._recv_exactly(length)

    def recv_json(self):
        opcode, data = self.recv_frame()
        assert opcode == 0x1
        return json.loads(data)

    def request(self, payload):
        self.send(True, 0x1, json.dumps(payload).encode())
        return self.recv_json()

    def closed_by_server(self):
        try:
            self.sock.settimeout(10)
            return self.sock.recv(1) == b""
        except (ConnectionError, OSError):
            return True

    def close(self):
        try:
            self.send(True, 0x8, b"")
            self.recv_frame()
        except (AssertionError, ConnectionError, OSError):
            pass
        self.sock.close()


class TestFragmentedMessages:
    def test_fragmented_request_is_reassembled(self, web_served, t_mid):
        payload = json.dumps(
            {"mode": "point", "t": t_mid, "x": 2000.0, "y": 1500.0}
        ).encode()
        client = _WsClient(web_served.port)
        try:
            third = len(payload) // 3
            client.send(False, 0x1, payload[:third])
            client.send(False, 0x0, payload[third : 2 * third])
            client.send(True, 0x0, payload[2 * third :])
            body = client.recv_json()
        finally:
            client.close()
        # Before the fix the continuations were dropped on the floor and
        # the truncated first fragment failed to parse.
        assert "error" not in body
        assert body["mode"] == "point"

    def test_ping_interleaved_mid_message(self, web_served, t_mid):
        payload = json.dumps(
            {"mode": "point", "t": t_mid, "x": 2000.0, "y": 1500.0}
        ).encode()
        client = _WsClient(web_served.port)
        try:
            half = len(payload) // 2
            client.send(False, 0x1, payload[:half])
            client.send(True, 0x9, b"heartbeat")
            opcode, pong = client.recv_frame()
            assert (opcode, pong) == (0xA, b"heartbeat")
            client.send(True, 0x0, payload[half:])
            body = client.recv_json()
            assert body["mode"] == "point"
        finally:
            client.close()

    def test_bare_continuation_is_a_protocol_error(self, web_served):
        client = _WsClient(web_served.port)
        client.send(True, 0x0, b"orphan")
        assert client.closed_by_server()
        client.sock.close()

    def test_fragmented_control_frame_is_a_protocol_error(self, web_served):
        client = _WsClient(web_served.port)
        client.send(False, 0x9, b"bad ping")
        assert client.closed_by_server()
        client.sock.close()


class _RecordingWriter:
    def __init__(self):
        self.sent = b""

    def write(self, data):
        self.sent += data

    async def drain(self):
        pass


class TestFrameRoundTripProperty:
    @settings(max_examples=60, deadline=None)
    @given(
        payload=st.binary(max_size=400),
        cuts=st.lists(st.integers(min_value=0, max_value=400), max_size=4),
        mask=st.binary(min_size=4, max_size=4),
        ping_after=st.one_of(st.none(), st.integers(min_value=0, max_value=4)),
    )
    def test_fragmented_masked_encode_decode(
        self, payload, cuts, mask, ping_after
    ):
        """Any fragmentation of any masked payload — optionally with a
        ping interleaved mid-message — decodes back to the exact bytes."""
        points = sorted({c for c in cuts if 0 < c < len(payload)})
        bounds = [0, *points, len(payload)]
        parts = [payload[a:b] for a, b in zip(bounds, bounds[1:])] or [payload]
        wire = b""
        for i, part in enumerate(parts):
            fin = i == len(parts) - 1
            wire += _encode_frame(fin, 0x1 if i == 0 else 0x0, part, mask)
            if ping_after == i and not fin:
                wire += _encode_frame(True, 0x9, b"hb", mask)

        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(wire)
            reader.feed_eof()
            writer = _RecordingWriter()
            server = AsyncQueryServer(service=None)
            message = await server._read_message(reader, writer, asyncio.Lock())
            assert message == payload
            if ping_after is not None and ping_after < len(parts) - 1:
                assert writer.sent == bytes([0x8A, 2]) + b"hb"
            else:
                assert writer.sent == b""

        asyncio.run(run())


class TestWebSocketSubscribe:
    def test_subscribe_push_unsubscribe(self, engine_served, small_batch):
        served, router, registry, cut = engine_served
        xm, ym = float(np.mean(small_batch.x)), float(np.mean(small_batch.y))
        t_tail = float(small_batch.t[cut - 1])
        client = _WsClient(served.port)
        try:
            reply = client.request(
                {
                    "mode": "subscribe",
                    "route": [[xm - 300.0, ym - 300.0], [xm + 300.0, ym + 300.0]],
                    "t_start": t_tail,
                    "interval_s": 60.0,
                    "updates": 10,
                }
            )
            assert reply["mode"] == "subscribed"
            assert reply["seq"] == 0
            assert len(reply["changes"]) == 10
            sub_id = reply["subscription"]
            state = {c["i"]: c for c in reply["changes"]}

            # The ingest-hook -> asyncio bridge: grow the store, notify,
            # and the pushed update frame arrives without any request.
            router.ingest(small_batch.slice(cut, len(small_batch)))
            registry.notify_ingest()
            update = client.recv_json()
            assert update["mode"] == "update"
            assert update["subscription"] == sub_id
            assert update["seq"] == 1
            assert update["changes"]
            for change in update["changes"]:
                state[change["i"]] = change

            # The pushed stream lands exactly on from-scratch execution.
            sub = registry.subscription(sub_id)
            ref_v, _ref_s = registry.reference_answers(sub.batch, sub.method)
            got = np.array(
                [
                    np.nan if state[i]["value"] is None else state[i]["value"]
                    for i in range(10)
                ]
            )
            assert np.array_equal(got, ref_v, equal_nan=True)
            sup = np.array([state[i]["support"] for i in range(10)])
            assert np.array_equal(
                sup, registry.reference_answers(sub.batch, sub.method)[1]
            )

            bye = client.request({"mode": "unsubscribe", "subscription": sub_id})
            assert bye == {"mode": "unsubscribed", "subscription": sub_id}
            with pytest.raises(KeyError):
                registry.subscription(sub_id)
        finally:
            client.close()

    def test_invalid_subscribe_interval_is_an_error_frame(self, engine_served):
        served, _router, _registry, _cut = engine_served
        client = _WsClient(served.port)
        try:
            reply = client.request(
                {
                    "mode": "subscribe",
                    "route": [[0.0, 0.0], [1.0, 1.0]],
                    "t_start": 0.0,
                    "interval_s": -60.0,
                }
            )
            assert "interval_s" in reply["error"]
        finally:
            client.close()

    def test_subscribe_without_registry_is_an_error_frame(self, web_served):
        client = _WsClient(web_served.port)
        try:
            reply = client.request(
                {
                    "mode": "subscribe",
                    "route": [[0.0, 0.0], [1.0, 1.0]],
                    "t_start": 0.0,
                }
            )
            assert "not enabled" in reply["error"]
        finally:
            client.close()

    def test_disconnect_unregisters_subscriptions(self, engine_served, small_batch):
        served, _router, registry, cut = engine_served
        xm, ym = float(np.mean(small_batch.x)), float(np.mean(small_batch.y))
        client = _WsClient(served.port)
        reply = client.request(
            {
                "mode": "subscribe",
                "route": [[xm - 200.0, ym - 200.0], [xm + 200.0, ym + 200.0]],
                "t_start": float(small_batch.t[cut - 1]),
            }
        )
        sub_id = reply["subscription"]
        client.close()
        # The session teardown must reclaim the registration.
        for _ in range(100):
            try:
                registry.subscription(sub_id)
            except KeyError:
                break
            import time

            time.sleep(0.05)
        with pytest.raises(KeyError):
            registry.subscription(sub_id)
