"""Tests for repro.server.stream."""

import numpy as np
import pytest

from repro.data.tuples import TupleBatch
from repro.network.messages import QueryRequest
from repro.server.server import EnviroMeterServer
from repro.server.stream import StreamReplayer


class TestSlices:
    def test_partition_is_complete(self, small_batch):
        replayer = StreamReplayer(EnviroMeterServer(), batch_interval_s=1800.0)
        total = sum(len(piece) for _, piece in replayer.slices(small_batch))
        assert total == len(small_batch)

    def test_slices_time_ordered(self, small_batch):
        replayer = StreamReplayer(EnviroMeterServer(), batch_interval_s=1800.0)
        times = [t for t, _ in replayer.slices(small_batch)]
        assert times == sorted(times)

    def test_empty_intervals_skipped(self):
        # Two bursts separated by a long gap.
        t = np.array([0.0, 10.0, 10_000.0])
        batch = TupleBatch(t, np.zeros(3), np.zeros(3), np.full(3, 400.0))
        replayer = StreamReplayer(EnviroMeterServer(), batch_interval_s=100.0)
        pieces = list(replayer.slices(batch))
        assert len(pieces) == 2  # no empty deliveries in between

    def test_unsorted_rejected(self):
        t = np.array([10.0, 0.0])
        batch = TupleBatch(t, np.zeros(2), np.zeros(2), np.zeros(2))
        replayer = StreamReplayer(EnviroMeterServer())
        with pytest.raises(ValueError, match="time-sorted"):
            list(replayer.slices(batch))

    def test_empty_stream(self):
        replayer = StreamReplayer(EnviroMeterServer())
        assert list(replayer.slices(TupleBatch.empty())) == []

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            StreamReplayer(EnviroMeterServer(), batch_interval_s=0)


class TestRun:
    def test_full_replay_ingests_everything(self, small_batch):
        server = EnviroMeterServer(h=240)
        stats = StreamReplayer(server, batch_interval_s=3600.0).run(small_batch)
        assert stats.tuples == len(small_batch)
        assert len(server.db.raw_tuples()) == len(small_batch)
        assert stats.batches >= 10

    def test_queries_force_lazy_cover_builds(self, small_batch):
        server = EnviroMeterServer(h=240)
        stats = StreamReplayer(server, batch_interval_s=1800.0).run(
            small_batch, query_every_s=4 * 3600.0
        )
        assert server.served_values >= 2
        assert stats.covers_built >= 2  # distinct windows were materialised

    def test_no_queries_no_covers(self, small_batch):
        server = EnviroMeterServer(h=240)
        stats = StreamReplayer(server, batch_interval_s=3600.0).run(small_batch)
        assert stats.covers_built == 0  # lazy: nothing asked, nothing built

    def test_sealed_window_stats(self, small_batch):
        server = EnviroMeterServer(h=240)
        stats = StreamReplayer(server, batch_interval_s=3600.0).run(small_batch)
        assert stats.windows_sealed == len(small_batch) // 240
        assert stats.covers_fitted == 0  # no queries -> no fits

    def test_progress_callback(self, small_batch):
        server = EnviroMeterServer(h=240)
        seen = []
        StreamReplayer(server, batch_interval_s=3600.0).run(
            small_batch, on_progress=lambda t, n: seen.append((t, n))
        )
        assert seen
        assert seen[-1][1] == len(small_batch)


class TestRepeatedIngestEquivalence:
    """Many small ingest batches must behave exactly like one big ingest:
    identical stored covers (byte for byte), identical query answers, and
    no refitting of windows that were already sealed."""

    def _query_times(self, batch, n=6):
        span = len(batch) - 1
        return [float(batch.t[i * span // (n - 1)]) for i in range(n)]

    def test_covers_and_answers_byte_identical(self, small_batch):
        one_shot = EnviroMeterServer(h=240)
        one_shot.ingest(small_batch)
        replayed = EnviroMeterServer(h=240)
        StreamReplayer(replayed, batch_interval_s=600.0).run(small_batch)
        assert len(replayed.db.raw_tuples()) == len(small_batch)

        requests = [
            QueryRequest(t=t, x=2500.0, y=1800.0)
            for t in self._query_times(small_batch)
        ]
        answers_a = [one_shot.handle(r) for r in requests]
        answers_b = [replayed.handle(r) for r in requests]
        for a, b in zip(answers_a, answers_b):
            assert a.t == b.t
            assert a.value == pytest.approx(b.value, abs=0.0)

        table_a = one_shot.db.table("model_cover")
        table_b = replayed.db.table("model_cover")
        assert len(table_a) == len(table_b) > 0
        assert table_a.column("cover_blob") == table_b.column("cover_blob")
        assert np.array_equal(
            table_a.column("window_c"), table_b.column("window_c")
        )

    def test_sealed_windows_never_refit(self, small_batch):
        server = EnviroMeterServer(h=240)
        StreamReplayer(server, batch_interval_s=600.0).run(small_batch)
        times = self._query_times(small_batch)
        for t in times:
            server.handle(QueryRequest(t=t, x=2500.0, y=1800.0))
        distinct = {server.current_window(t) for t in times}
        assert server.builder_fit_count == len(distinct)
        # Asking again (and ingesting more data past the sealed windows)
        # must not trigger a single further fit for them.
        fits = server.builder_fit_count
        tail = small_batch.slice(len(small_batch) - 10, len(small_batch))
        server.ingest(tail)
        for t in times[:-1]:  # all sealed windows
            server.handle(QueryRequest(t=t, x=2500.0, y=1800.0))
        assert server.builder_fit_count == fits
