"""Tests for repro.storage.shm — shared-memory shard exports."""

import numpy as np
import pytest

from repro.data.tuples import TupleBatch
from repro.storage.shm import (
    ShardExportRegistry,
    attach_shard,
    export_shard,
)


def _batch(n, offset=0.0):
    t = offset + np.arange(n, dtype=float)
    return TupleBatch(t, t + 0.5, t + 0.25, t + 400.0)


class TestExportAttachRoundTrip:
    def test_columns_round_trip(self):
        batch = _batch(100)
        gids = np.arange(100, dtype=np.int64) * 3
        export = export_shard(batch, gids)
        try:
            attached = attach_shard(export.descriptor(), untrack=False)
            assert np.array_equal(attached.batch.t, batch.t)
            assert np.array_equal(attached.batch.x, batch.x)
            assert np.array_equal(attached.batch.y, batch.y)
            assert np.array_equal(attached.batch.s, batch.s)
            assert np.array_equal(attached.gids, gids)
            assert attached.gids.dtype == np.int64
        finally:
            export.destroy()

    def test_attached_views_are_read_only(self):
        export = export_shard(_batch(10), np.arange(10, dtype=np.int64))
        try:
            attached = attach_shard(export.descriptor(), untrack=False)
            with pytest.raises(ValueError):
                attached.batch.t[0] = 99.0
            with pytest.raises(ValueError):
                attached.gids[0] = 99
        finally:
            export.destroy()

    def test_window_slices_are_zero_copy(self):
        export = export_shard(_batch(50), np.arange(50, dtype=np.int64))
        try:
            attached = attach_shard(export.descriptor(), untrack=False)
            sub = attached.batch.slice(10, 30)
            assert len(sub) == 20
            assert sub.t.base is not None  # a view, not a copy
            assert np.array_equal(sub.t, attached.batch.t[10:30])
        finally:
            export.destroy()

    def test_empty_shard_exports(self):
        export = export_shard(TupleBatch.empty(), np.empty(0, dtype=np.int64))
        try:
            attached = attach_shard(export.descriptor(), untrack=False)
            assert len(attached.batch) == 0
            assert len(attached.gids) == 0
        finally:
            export.destroy()

    def test_gids_longer_than_batch_are_clamped(self):
        export = export_shard(_batch(5), np.arange(9, dtype=np.int64))
        try:
            attached = attach_shard(export.descriptor(), untrack=False)
            assert np.array_equal(attached.gids, np.arange(5))
        finally:
            export.destroy()

    def test_gids_shorter_than_batch_rejected(self):
        with pytest.raises(ValueError, match="gids"):
            export_shard(_batch(5), np.arange(3, dtype=np.int64))

    def test_destroy_is_idempotent(self):
        export = export_shard(_batch(3), np.arange(3, dtype=np.int64))
        export.destroy()
        export.destroy()

    def test_attach_after_destroy_fails(self):
        export = export_shard(_batch(3), np.arange(3, dtype=np.int64))
        descriptor = export.descriptor()
        export.destroy()
        with pytest.raises(FileNotFoundError):
            attach_shard(descriptor, untrack=False)


class TestShardExportRegistry:
    def test_reuses_export_while_large_enough(self):
        registry = ShardExportRegistry()
        reads = []

        def read_prefix():
            reads.append(1)
            return _batch(40), np.arange(40, dtype=np.int64)

        try:
            d1 = registry.ensure(0, 30, read_prefix)
            d2 = registry.ensure(0, 40, read_prefix)
            assert d1.shm_name == d2.shm_name
            assert len(reads) == 1
        finally:
            registry.close()

    def test_grows_and_retires_when_too_short(self):
        registry = ShardExportRegistry()
        try:
            d1 = registry.ensure(0, 10, lambda: (_batch(10), np.arange(10, dtype=np.int64)))
            d2 = registry.ensure(0, 25, lambda: (_batch(30), np.arange(30, dtype=np.int64)))
            assert d1.shm_name != d2.shm_name
            assert d2.n_rows == 30
            # The retired block is unlinked: a fresh attach must fail.
            with pytest.raises(FileNotFoundError):
                attach_shard(d1, untrack=False)
            attached = attach_shard(d2, untrack=False)
            assert len(attached.batch) == 30
        finally:
            registry.close()

    def test_short_prefix_read_is_an_error(self):
        registry = ShardExportRegistry()
        try:
            with pytest.raises(RuntimeError, match="prefix read"):
                registry.ensure(
                    0, 50, lambda: (_batch(10), np.arange(10, dtype=np.int64))
                )
        finally:
            registry.close()

    def test_independent_shards_get_independent_blocks(self):
        registry = ShardExportRegistry()
        try:
            d0 = registry.ensure(0, 5, lambda: (_batch(5), np.arange(5, dtype=np.int64)))
            d1 = registry.ensure(1, 5, lambda: (_batch(5, offset=100.0), np.arange(5, dtype=np.int64)))
            assert d0.shm_name != d1.shm_name
            assert np.array_equal(attach_shard(d1, untrack=False).batch.t, 100.0 + np.arange(5))
        finally:
            registry.close()

    def test_close_unlinks_everything(self):
        registry = ShardExportRegistry()
        d = registry.ensure(0, 5, lambda: (_batch(5), np.arange(5, dtype=np.int64)))
        registry.close()
        with pytest.raises(FileNotFoundError):
            attach_shard(d, untrack=False)
        registry.close()  # idempotent
