"""Reusable crash-injection harness for the durable tier.

Every durability-bearing syscall in the storage layer goes through the
seams in :mod:`repro.storage.fsio` (buffered write, fsync, atomic
rename, directory fsync).  :class:`FaultInjector` interposes on all of
them at once and simulates a process kill at an exact point in the
write sequence:

* ``count`` mode runs a workload untouched while counting its
  *boundaries* (every fsync and rename — the points where durability
  state changes), so a test can enumerate the whole crash matrix;
* ``crash_at=k`` raises :class:`SimulatedCrash` at the k-th boundary,
  either *before* the syscall executes (the write never became durable)
  or *after* it (durable, but nothing later ran);
* ``torn=True`` additionally cuts the last buffered write short at the
  crash point — the torn-sector case WAL replay must detect.

A simulated crash abandons the workload mid-flight, exactly like a
kill: nothing that would have run after the chosen syscall runs.  The
oracle then reopens the directory and asserts recovery yields exactly
the durable prefix (see ``tests/test_crash_injection.py``).

Use as a context manager so the seams are always restored::

    with FaultInjector(crash_at=3, mode="after") as inj:
        try:
            workload()
        except SimulatedCrash:
            ...
"""

from __future__ import annotations

from typing import Optional

from repro.storage import fsio


class SimulatedCrash(BaseException):
    """The injected process kill.

    A ``BaseException`` so no library-level ``except Exception`` can
    absorb it and keep writing past the simulated kill point; cleanup
    handlers (``finally`` blocks) still run, which only ever removes
    temp files a real crash would have left invisible to recovery.
    """


class FaultInjector:
    """Counts durability boundaries and kills the writer at one of them."""

    def __init__(
        self,
        crash_at: Optional[int] = None,
        mode: str = "before",
        torn: bool = False,
    ) -> None:
        if mode not in ("before", "after"):
            raise ValueError("mode must be 'before' or 'after'")
        self.crash_at = crash_at
        self.mode = mode
        self.torn = torn
        self.boundaries = 0  # fsync/rename calls seen so far
        self.crashed = False
        self._last_write: Optional[tuple] = None  # (file, data) of last write
        self._originals = None

    # -- seam wrappers -----------------------------------------------------

    def _boundary(self, execute, describe) -> None:
        """Count one durability boundary, crashing if it is the chosen one."""
        k = self.boundaries
        self.boundaries += 1
        if self.crash_at is not None and k == self.crash_at and not self.crashed:
            self.crashed = True
            if self.torn and self._last_write is not None:
                # Re-model the preceding buffered write as torn: the
                # file already contains the full data (buffered writes
                # apply immediately), so truncate the file back to cut
                # the tail of that write in half.
                f, data = self._last_write
                try:
                    f.flush()
                    f.truncate(f.tell() - (len(data) - len(data) // 2))
                except (OSError, ValueError):  # closed/unseekable: skip
                    pass
            if self.mode == "after" and not self.torn:
                execute()
            raise SimulatedCrash(f"boundary {k}: {describe}")
        execute()

    def _write(self, f, data):
        self._last_write = (f, data)
        return self._orig_write(f, data)

    def _fsync(self, f):
        self._boundary(lambda: self._orig_fsync(f), f"fsync {getattr(f, 'name', f)}")

    def _replace(self, src, dst):
        self._boundary(lambda: self._orig_replace(src, dst), f"rename -> {dst}")

    def _fsync_dir(self, path):
        # Directory fsync is best-effort (never a correctness boundary);
        # let it through uncounted so matrices stay platform-stable.
        self._orig_fsync_dir(path)

    # -- install / restore -------------------------------------------------

    def __enter__(self) -> "FaultInjector":
        self._orig_write = fsio.write
        self._orig_fsync = fsio.fsync
        self._orig_replace = fsio.replace
        self._orig_fsync_dir = fsio.fsync_dir
        fsio.write = self._write
        fsio.fsync = self._fsync
        fsio.replace = self._replace
        fsio.fsync_dir = self._fsync_dir
        return self

    def __exit__(self, *exc_info) -> None:
        fsio.write = self._orig_write
        fsio.fsync = self._orig_fsync
        fsio.replace = self._orig_replace
        fsio.fsync_dir = self._orig_fsync_dir


def count_boundaries(workload) -> int:
    """Run ``workload`` once, untouched, returning how many durability
    boundaries (fsyncs and renames) it crosses — the crash-matrix size."""
    with FaultInjector(crash_at=None) as injector:
        workload()
    return injector.boundaries
