"""Tests for repro.models.errors."""

import numpy as np
import pytest

from repro.models.errors import (
    CO2_NORMAL_RANGE_PPM,
    approximation_error_pct,
    normal_range_width,
    nrmse_pct,
    rmse,
)


class TestApproximationError:
    def test_footnote1_definition(self):
        # mean |pred - actual| / range width * 100
        pred = np.array([410.0, 420.0])
        actual = np.array([400.0, 400.0])
        width = normal_range_width(CO2_NORMAL_RANGE_PPM)
        expected = np.mean([10.0, 20.0]) / width * 100.0
        assert approximation_error_pct(pred, actual) == pytest.approx(expected)

    def test_perfect_prediction(self):
        v = np.array([400.0, 500.0])
        assert approximation_error_pct(v, v) == 0.0

    def test_custom_range(self):
        pred = np.array([10.0])
        actual = np.array([0.0])
        assert approximation_error_pct(pred, actual, normal_range=(0, 100)) == 10.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            approximation_error_pct(np.zeros(2), np.zeros(3))

    def test_empty(self):
        with pytest.raises(ValueError):
            approximation_error_pct(np.array([]), np.array([]))

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            normal_range_width((100.0, 100.0))


class TestNRMSE:
    def test_range_normalised(self):
        actual = np.array([0.0, 100.0])
        pred = actual + 10.0
        assert nrmse_pct(pred, actual) == pytest.approx(10.0)

    def test_zero_for_perfect(self):
        v = np.array([1.0, 2.0, 3.0])
        assert nrmse_pct(v, v) == 0.0

    def test_zero_spread_raises(self):
        v = np.array([5.0, 5.0])
        with pytest.raises(ValueError, match="spread"):
            nrmse_pct(v + 1, v)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            nrmse_pct(np.zeros(2), np.zeros(3))

    def test_empty(self):
        with pytest.raises(ValueError):
            nrmse_pct(np.array([]), np.array([]))


class TestRMSE:
    def test_known_value(self):
        assert rmse(np.array([3.0, 5.0]), np.array([0.0, 0.0])) == pytest.approx(
            np.sqrt(17.0)
        )

    def test_empty(self):
        with pytest.raises(ValueError):
            rmse(np.array([]), np.array([]))
