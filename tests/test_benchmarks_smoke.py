"""Smoke tests: every ``benchmarks/bench_*.py`` imports and runs.

The perf scripts are not collected by the tier-1 run (they carry the
full-scale dataset fixture and pytest-benchmark hooks), which historically
lets them rot silently.  Here every module is imported and one tiny
parameter cell is executed against the 1-day dataset with the workload
constants shrunk, through a stub ``benchmark`` fixture — seconds, not
minutes, but any API drift in the code they exercise fails loudly.
"""

from __future__ import annotations

import importlib
import pathlib
import sys

import pytest

BENCH_DIR = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"

ALL_BENCH_MODULES = sorted(p.stem for p in BENCH_DIR.glob("bench_*.py"))

# ``benchmarks`` is a namespace package rooted at the repo top; make sure
# the root is importable even when pytest is launched from elsewhere.
_ROOT = str(BENCH_DIR.parent)
if _ROOT not in sys.path:
    sys.path.insert(0, _ROOT)


class StubBenchmark:
    """Duck-typed pytest-benchmark fixture: runs the callable once."""

    def __init__(self):
        self.group = None
        self.extra_info = {}

    def __call__(self, fn, *args, **kwargs):
        return fn(*args, **kwargs)

    def pedantic(self, fn, args=(), kwargs=None, rounds=1, iterations=1):
        return fn(*args, **(kwargs or {}))


def _load(name):
    return importlib.import_module(f"benchmarks.{name}")


def _fixture_value(module, name, *args):
    """Call a module-level pytest fixture's underlying function."""
    return getattr(module, name).__wrapped__(*args)


@pytest.fixture(scope="module")
def tiny_dataset(small_dataset):
    """The shared 1-day dataset under the name the bench modules expect."""
    return small_dataset


# One entry per bench module: shrink its workload constants, then run one
# parameter cell.  Adding a benchmarks/bench_*.py without registering it
# here fails test_every_module_has_a_smoke_entry.
def _run_ablation_adaptive_methods(m, ds, bm):
    m.N_QUERIES = 20
    m.bench_adaptive_method(bm, ds, tau_n=2.0, name=sorted(m.FITTERS)[0])


def _run_ablation_cache_ttl(m, ds, bm):
    m.N_QUERIES = 10
    queries = _fixture_value(m, "queries", ds)
    m.bench_cache_ttl(bm, ds, queries, horizon_s=m.HORIZONS_S[0])


def _run_ablation_indexes(m, ds, bm):
    m.N_QUERIES = 20
    m.bench_index_kind(bm, ds, radius_m=1000.0, kind="kdtree")


def _run_ablation_models(m, ds, bm):
    m.N_QUERIES = 20
    m.bench_model_family(bm, ds, tau_n=2.0, family="linear")


def _run_ablation_tau(m, ds, bm):
    m.N_QUERIES = 20
    m.bench_tau_sweep(bm, ds, tau=2.0)


def _run_adaptive_shards(m, ds, bm):
    m.N_TUPLES, m.BATCH_QUERIES = 4_000, 10
    m.bench_adaptive_scatter(bm, adaptive=False)
    m.bench_adaptive_scatter(bm, adaptive=True)


def _run_batch_execution(m, ds, bm):
    m.bench_heatmap(bm, ds, method="model-cover", path="batched")
    m.bench_continuous(bm, ds, path="batched")


def _run_concurrent(m, ds, bm):
    m.N_INGEST_BATCHES, m.N_CHUNKS, m.CHUNK_SIZE = 4, 4, 40
    m.UPLINK_S = m.CLIENT_RTT_S = 0.001
    m.bench_concurrent_serving(bm, ds, mode="concurrent")


def _run_fig6a_efficiency(m, ds, bm):
    m.N_QUERIES = 20
    m.bench_point_queries(bm, ds, radius_m=1000.0, tau_n=2.0, method="adkmn", h=40)


def _run_fig6b_accuracy(m, ds, bm):
    m.N_QUERIES = 20
    m.bench_nrmse(bm, ds, radius_m=1000.0, tau_n=2.0, h=40)


def _run_fig7a_memory(m, ds, bm):
    m.bench_memory_naive_points(bm, ds)


def _run_fig7b_bandwidth(m, ds, bm):
    server = _fixture_value(m, "server", ds)
    queries = _fixture_value(m, "queries", ds)[:10]
    m.bench_baseline_client(bm, server, queries)


def _run_fleet_scaling(m, ds, bm):
    m.QUERIES_PER_MEMBER = 3
    m.bench_fleet(bm, ds, strategy="baseline", n_members=2)


def _run_ingest(m, ds, bm):
    m.bench_bulk_append(bm, ds, path="vectorized")
    m.bench_bulk_append(bm, ds, path="seed")
    m.bench_ingest_query_steady_state(bm, ds)


def _run_process_parallel(m, ds, bm):
    m.GRID_NX, m.GRID_NY = 12, 9
    m.bench_process_heatmap(bm, ds, processes=2)


def _run_scatter_pruning(m, ds, bm):
    m.N_QUERIES = 20
    m.bench_pruned_continuous(bm, ds, prune=True)
    m.bench_pruned_continuous(bm, ds, prune=False)


def _run_sharded(m, ds, bm):
    m.GRID_NX, m.GRID_NY = 12, 9
    m.bench_sharded_heatmap(bm, ds, n_shards=2)


def _run_subscriptions(m, ds, bm):
    m.bench_quiet_epoch_maintain(bm, ds, n_subs=4)


def _run_tiered(m, ds, bm):
    m.bench_tiered_hot_window(bm, ds, replicas=2)


SMOKE_RUNNERS = {
    "bench_ablation_adaptive_methods": _run_ablation_adaptive_methods,
    "bench_ablation_cache_ttl": _run_ablation_cache_ttl,
    "bench_ablation_indexes": _run_ablation_indexes,
    "bench_ablation_models": _run_ablation_models,
    "bench_ablation_tau": _run_ablation_tau,
    "bench_adaptive_shards": _run_adaptive_shards,
    "bench_batch_execution": _run_batch_execution,
    "bench_concurrent": _run_concurrent,
    "bench_fig6a_efficiency": _run_fig6a_efficiency,
    "bench_fig6b_accuracy": _run_fig6b_accuracy,
    "bench_fig7a_memory": _run_fig7a_memory,
    "bench_fig7b_bandwidth": _run_fig7b_bandwidth,
    "bench_fleet_scaling": _run_fleet_scaling,
    "bench_ingest": _run_ingest,
    "bench_process_parallel": _run_process_parallel,
    "bench_scatter_pruning": _run_scatter_pruning,
    "bench_sharded": _run_sharded,
    "bench_subscriptions": _run_subscriptions,
    "bench_tiered": _run_tiered,
}


def test_every_module_has_a_smoke_entry():
    assert set(ALL_BENCH_MODULES) == set(SMOKE_RUNNERS)


@pytest.mark.parametrize("name", ALL_BENCH_MODULES)
def test_bench_module_imports(name):
    module = _load(name)
    bench_fns = [n for n in dir(module) if n.startswith("bench_")]
    assert bench_fns, f"{name} exposes no bench_* functions"


@pytest.mark.parametrize("name", sorted(SMOKE_RUNNERS))
def test_bench_module_runs_tiny_iteration(name, tiny_dataset):
    module = _load(name)
    runner = SMOKE_RUNNERS[name]
    # Runners shrink module workload constants in place; restore them so
    # a later real benchmark run in the same process sees the originals.
    original = {
        attr: getattr(module, attr)
        for attr in (
            "N_QUERIES",
            "N_TUPLES",
            "BATCH_QUERIES",
            "QUERIES_PER_MEMBER",
            "GRID_NX",
            "GRID_NY",
            "N_INGEST_BATCHES",
            "N_CHUNKS",
            "CHUNK_SIZE",
            "UPLINK_S",
            "CLIENT_RTT_S",
        )
        if hasattr(module, attr)
    }
    try:
        runner(module, tiny_dataset, StubBenchmark())
    finally:
        for attr, value in original.items():
            setattr(module, attr, value)
