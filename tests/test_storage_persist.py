"""Tests for repro.storage.persist."""

import os
import threading

import numpy as np
import pytest

from repro.data.tuples import TupleBatch
from repro.storage.engine import Database
from repro.storage.persist import load_database, save_database, serialize_database
from repro.storage.schema import ColumnType, Schema


class TestRoundTrip:
    def test_enviro_meter_database(self, tmp_path):
        db = Database.for_enviro_meter()
        db.ingest_tuples(TupleBatch([1.0, 2.0], [3.0, 4.0], [5.0, 6.0], [7.0, 8.0]))
        db.store_cover_blob(0, 99.5, b"\x00\x01\x02cover")
        path = tmp_path / "state.emdb"
        save_database(db, path)
        loaded = load_database(path)
        assert loaded.table_names() == db.table_names()
        out = loaded.raw_tuples()
        assert np.array_equal(out.t, np.array([1.0, 2.0]))
        assert loaded.latest_cover_blob() == (0, 99.5, b"\x00\x01\x02cover")

    def test_empty_database(self, tmp_path):
        path = tmp_path / "empty.emdb"
        save_database(Database(), path)
        assert load_database(path).table_names() == ()

    def test_custom_schema(self, tmp_path):
        db = Database()
        table = db.create_table(
            "mixed",
            Schema.of(
                ("k", ColumnType.INT64),
                ("v", ColumnType.FLOAT64),
                ("blob", ColumnType.BYTES),
            ),
        )
        table.insert((1, 2.5, b"abc"))
        table.insert((2, -1.0, b""))
        path = tmp_path / "mixed.emdb"
        save_database(db, path)
        loaded = load_database(path).table("mixed")
        assert loaded.row(0) == (1, 2.5, b"abc")
        assert loaded.row(1) == (2, -1.0, b"")


class TestPartitionedRoundTrip:
    def _partitioned_db(self):
        db = Database.for_enviro_meter(partition_h=4)
        t = np.arange(10, dtype=float)
        db.ingest_tuples(TupleBatch(t, t + 0.5, t + 0.25, np.full(10, 400.0)))
        db.store_cover_blob(0, 10.0, b"w0-old")
        db.store_cover_blob(1, 20.0, b"w1")
        db.store_cover_blob(0, 30.0, b"w0-new")
        return db

    def test_partition_h_preserved(self, tmp_path):
        db = self._partitioned_db()
        path = tmp_path / "part.emdb"
        save_database(db, path)
        loaded = load_database(path)
        assert loaded.partition_h == 4

    def test_window_boundaries_preserved(self, tmp_path):
        db = self._partitioned_db()
        path = tmp_path / "part.emdb"
        save_database(db, path)
        loaded = load_database(path)
        assert list(loaded.sealed_window_ids()) == list(db.sealed_window_ids())
        for c in range(3):
            assert np.array_equal(loaded.window_view(c).t, db.window_view(c).t)

    def test_latest_cover_index_preserved(self, tmp_path):
        db = self._partitioned_db()
        path = tmp_path / "part.emdb"
        save_database(db, path)
        loaded = load_database(path)
        assert loaded.cover_index() == db.cover_index()
        assert loaded.cover_blob_for_window(0) == (0, 30.0, b"w0-new")
        assert loaded.cover_blob_for_window(1) == (1, 20.0, b"w1")
        assert loaded.cover_blob_for_window(2) is None

    def test_unpartitioned_database_round_trips(self, tmp_path):
        db = Database()
        db.create_table("misc", Schema.of(("v", ColumnType.FLOAT64)))
        db.table("misc").insert((1.5,))
        path = tmp_path / "plain.emdb"
        save_database(db, path)
        loaded = load_database(path)
        assert loaded.partition_h is None
        assert loaded.table("misc").row(0) == (1.5,)


class TestAtomicSave:
    """Crash-injection: a failed save must never damage the previous file."""

    def _good_db(self):
        db = Database.for_enviro_meter(partition_h=4)
        t = np.arange(8, dtype=float)
        db.ingest_tuples(TupleBatch(t, t + 1.0, t + 2.0, np.full(8, 410.0)))
        db.store_cover_blob(0, 5.0, b"cover-0")
        return db

    def _crash_save(self, db, path, monkeypatch, attr, exc):
        def boom(*args, **kwargs):
            raise exc

        monkeypatch.setattr(os, attr, boom)
        with pytest.raises(type(exc)):
            save_database(db, path)

    @pytest.mark.parametrize("attr", ["fsync", "replace"])
    def test_crash_mid_save_preserves_old_file(self, tmp_path, monkeypatch, attr):
        db = self._good_db()
        path = tmp_path / "state.emdb"
        save_database(db, path)
        before = path.read_bytes()

        bigger = self._good_db()
        bigger.ingest_tuples(TupleBatch([100.0], [1.0], [1.0], [1.0]))
        self._crash_save(bigger, path, monkeypatch, attr, OSError("injected crash"))

        assert path.read_bytes() == before
        loaded = load_database(path)
        assert len(loaded.raw_tuples()) == 8

    @pytest.mark.parametrize("attr", ["fsync", "replace"])
    def test_crash_mid_save_leaves_no_temp_files(self, tmp_path, monkeypatch, attr):
        path = tmp_path / "state.emdb"
        self._crash_save(self._good_db(), path, monkeypatch, attr, OSError("injected"))
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []

    def test_successful_save_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "state.emdb"
        save_database(self._good_db(), path)
        assert [p.name for p in tmp_path.iterdir()] == ["state.emdb"]

    def test_save_overwrites_previous_file_atomically(self, tmp_path):
        db = self._good_db()
        path = tmp_path / "state.emdb"
        save_database(db, path)
        db.ingest_tuples(TupleBatch([50.0], [2.0], [3.0], [420.0]))
        save_database(db, path)
        assert len(load_database(path).raw_tuples()) == 9


class TestSaveUnderIngest:
    """Torn-save regression: saving while a writer free-runs must capture a
    single epoch-consistent prefix — never columns at different lengths."""

    CHUNK = 7

    def _writer(self, db, stop, error):
        i = 0
        try:
            while not stop.is_set():
                base = float(i * self.CHUNK)
                t = base + np.arange(self.CHUNK, dtype=float)
                db.ingest_tuples(TupleBatch(t, t + 0.5, t + 0.25, t + 400.0))
                if i % 3 == 0:
                    db.store_cover_blob(i % 5, base, b"cover-%d" % i)
                i += 1
        except Exception as exc:  # pragma: no cover - surfaced in main thread
            error.append(exc)

    def test_every_save_is_a_consistent_prefix(self, tmp_path):
        db = Database.for_enviro_meter(partition_h=1000)
        stop, error = threading.Event(), []
        writer = threading.Thread(target=self._writer, args=(db, stop, error))
        writer.start()
        try:
            payloads = []
            for k in range(25):
                path = tmp_path / f"save-{k}.emdb"
                save_database(db, path)
                payloads.append(path)
        finally:
            stop.set()
            writer.join(timeout=30.0)
        assert not error
        final_t = db.snapshot().batch.t
        for path in payloads:
            loaded = load_database(path)
            batch = loaded.raw_tuples()
            n = len(batch)
            # All raw columns captured at one committed length (no tear) and
            # the capture is an exact prefix of the final stream.
            assert len(batch.t) == len(batch.x) == len(batch.y) == len(batch.s)
            assert n % self.CHUNK == 0
            assert np.array_equal(batch.t, final_t[:n])
            # Cover index only points at serialized model_cover rows.
            n_cover_rows = len(loaded.table("model_cover").scan()["window_c"])
            for rid in loaded.cover_index().values():
                assert rid < n_cover_rows

    def test_serialize_is_stable_when_quiescent(self, small_batch):
        db = Database.for_enviro_meter(partition_h=240)
        db.ingest_tuples(small_batch.slice(0, 500))
        db.store_cover_blob(0, 1.0, b"c")
        assert serialize_database(db) == serialize_database(db)


class TestCorruption:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "junk.emdb"
        path.write_bytes(b"NOPE" + b"\x00" * 16)
        with pytest.raises(ValueError, match="not an EnviroMeter"):
            load_database(path)

    def test_truncated(self, tmp_path):
        db = Database.for_enviro_meter()
        db.ingest_tuples(TupleBatch([1.0], [1.0], [1.0], [1.0]))
        path = tmp_path / "ok.emdb"
        save_database(db, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(ValueError, match="truncated"):
            load_database(path)

    def test_unsupported_version(self, tmp_path):
        path = tmp_path / "future.emdb"
        path.write_bytes(b"EMDB" + (99).to_bytes(4, "little") + b"\x00" * 4)
        with pytest.raises(ValueError, match="version"):
            load_database(path)


class TestErrorPaths:
    """Satellite coverage: corrupt inputs fail with actionable messages
    (path + offset), and trailing garbage is rejected instead of being
    silently ignored."""

    def _saved(self, tmp_path):
        db = Database.for_enviro_meter(partition_h=4)
        t = np.arange(6, dtype=float)
        db.ingest_tuples(TupleBatch(t, t + 1.0, t + 2.0, np.full(6, 400.0)))
        db.store_cover_blob(0, 3.0, b"cover")
        path = tmp_path / "state.emdb"
        save_database(db, path)
        return path

    def test_every_truncation_fails_loudly(self, tmp_path):
        """Any truncation point yields ValueError — never a partial load,
        never a raw struct/numpy error."""
        path = self._saved(tmp_path)
        pristine = path.read_bytes()
        for length in range(len(pristine)):
            path.write_bytes(pristine[:length])
            with pytest.raises(ValueError):
                load_database(path)

    def test_truncation_message_names_path_and_offset(self, tmp_path):
        path = self._saved(tmp_path)
        pristine = path.read_bytes()
        path.write_bytes(pristine[: len(pristine) - 3])
        with pytest.raises(ValueError) as excinfo:
            load_database(path)
        message = str(excinfo.value)
        assert str(path) in message
        assert "offset" in message
        assert "truncated" in message

    def test_trailing_garbage_rejected(self, tmp_path):
        path = self._saved(tmp_path)
        path.write_bytes(path.read_bytes() + b"\x00garbage")
        with pytest.raises(ValueError, match="trailing garbage"):
            load_database(path)

    def test_single_trailing_byte_rejected(self, tmp_path):
        path = self._saved(tmp_path)
        path.write_bytes(path.read_bytes() + b"\x00")
        with pytest.raises(ValueError, match="byte offset"):
            load_database(path)


class TestGoldenBlob:
    """A hard-coded byte image of the current on-disk format: if the
    writer ever drifts (or a reader branch for old versions rots), this
    fails even though fresh round-trips still pass."""

    # Database.for_enviro_meter(partition_h=4), five tuples
    # t=10..50, x=1..5, y=6..10, s=400..440, one cover blob
    # (window 0, valid_until 12.5, b"model-bytes"), serialized 2026-08.
    GOLDEN_HEX = (
        "454d444202000000040000000000000001000000000000000000000000000000"
        "00000000020000000b0000006d6f64656c5f636f766572030000000800000077"
        "696e646f775f63010b00000076616c69645f756e74696c000a000000636f7665"
        "725f626c6f62020100000000000000000000000000000000000000000029400b"
        "0000006d6f64656c2d62797465730a0000007261775f7475706c657304000000"
        "0100000074000100000078000100000079000100000073000500000000000000"
        "000000000000244000000000000034400000000000003e400000000000004440"
        "0000000000004940000000000000f03f00000000000000400000000000000840"
        "0000000000001040000000000000144000000000000018400000000000001c40"
        "0000000000002040000000000000224000000000000024400000000000007940"
        "0000000000a079400000000000407a400000000000e07a400000000000807b40"
    )

    def _golden_db(self):
        db = Database.for_enviro_meter(partition_h=4)
        db.ingest_tuples(
            TupleBatch(
                np.array([10.0, 20.0, 30.0, 40.0, 50.0]),
                np.array([1.0, 2.0, 3.0, 4.0, 5.0]),
                np.array([6.0, 7.0, 8.0, 9.0, 10.0]),
                np.array([400.0, 410.0, 420.0, 430.0, 440.0]),
            )
        )
        db.store_cover_blob(0, 12.5, b"model-bytes")
        return db

    def test_golden_blob_loads(self, tmp_path):
        path = tmp_path / "golden.emdb"
        path.write_bytes(bytes.fromhex(self.GOLDEN_HEX))
        db = load_database(path)
        batch = db.raw_tuples()
        assert batch.t.tolist() == [10.0, 20.0, 30.0, 40.0, 50.0]
        assert batch.s.tolist() == [400.0, 410.0, 420.0, 430.0, 440.0]
        assert db.partition_h == 4
        assert db.cover_blob_for_window(0) == (0, 12.5, b"model-bytes")

    def test_writer_still_produces_the_golden_bytes(self):
        assert serialize_database(self._golden_db()).hex() == self.GOLDEN_HEX
