"""Tests for repro.network.messages."""

import math

import numpy as np
import pytest

from repro.core.cover import ModelCover
from repro.models.mean import MeanModel
from repro.network.messages import (
    ModelCoverResponse,
    ModelRequest,
    QueryRequest,
    ValueResponse,
    decode_message,
    encode_message,
)


def sample_cover():
    return ModelCover(
        centroids=np.array([[1.0, 2.0]]),
        models=[MeanModel(430.0)],
        valid_until=500.0,
        family="mean",
    )


class TestRoundTrips:
    def test_query_request(self):
        msg = QueryRequest(t=1.5, x=-2.5, y=3.5)
        assert decode_message(encode_message(msg)) == msg

    def test_value_response(self):
        msg = ValueResponse(t=9.0, value=442.25)
        assert decode_message(encode_message(msg)) == msg

    def test_value_response_nan(self):
        msg = ValueResponse(t=9.0, value=math.nan)
        decoded = decode_message(encode_message(msg))
        assert math.isnan(decoded.value)

    def test_model_request(self):
        msg = ModelRequest(t=0.0, x=100.0, y=200.0)
        assert decode_message(encode_message(msg)) == msg

    def test_model_cover_response(self):
        cover = sample_cover()
        msg = ModelCoverResponse(blob=cover.to_blob())
        decoded = decode_message(encode_message(msg))
        assert isinstance(decoded, ModelCoverResponse)
        rebuilt = decoded.cover()
        assert rebuilt.predict(0, 0, 0) == 430.0
        assert rebuilt.valid_until == 500.0


class TestSizes:
    def test_query_request_is_compact(self):
        # 1 type byte + 3 doubles = 25 bytes.
        assert len(QueryRequest(0, 0, 0).body()) == 25

    def test_value_response_is_compact(self):
        assert len(ValueResponse(0, 0).body()) == 17

    def test_cover_response_scales_with_models(self):
        small = ModelCoverResponse(blob=sample_cover().to_blob())
        big_cover = ModelCover(
            centroids=np.arange(40, dtype=float).reshape(20, 2),
            models=[MeanModel(float(i)) for i in range(20)],
            valid_until=1.0,
            family="mean",
        )
        big = ModelCoverResponse(blob=big_cover.to_blob())
        assert len(big.body()) > len(small.body())


class TestErrors:
    def test_empty(self):
        with pytest.raises(ValueError):
            decode_message(b"")

    def test_unknown_type(self):
        with pytest.raises(ValueError, match="unknown message type"):
            decode_message(b"\xff" + b"\x00" * 24)

    def test_truncated_cover(self):
        msg = ModelCoverResponse(blob=sample_cover().to_blob())
        data = encode_message(msg)[:-3]
        with pytest.raises(ValueError, match="truncated"):
            decode_message(data)

    def test_trailing_bytes_in_cover(self):
        data = encode_message(ModelCoverResponse(blob=sample_cover().to_blob()))
        with pytest.raises(ValueError, match="trailing"):
            decode_message(data + b"\x00")
