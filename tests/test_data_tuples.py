"""Tests for repro.data.tuples."""

import numpy as np
import pytest

from repro.data.tuples import QueryTuple, RawTuple, TupleBatch


class TestRawTuple:
    def test_fields_and_position(self):
        b = RawTuple(t=1.0, x=2.0, y=3.0, s=450.0)
        assert b.position() == (2.0, 3.0)
        assert b.s == 450.0

    def test_frozen(self):
        b = RawTuple(1, 2, 3, 4)
        with pytest.raises(AttributeError):
            b.s = 5.0


class TestQueryTuple:
    def test_position(self):
        q = QueryTuple(t=9.0, x=-1.0, y=4.0)
        assert q.position() == (-1.0, 4.0)


class TestTupleBatchConstruction:
    def test_basic(self):
        batch = TupleBatch([1, 2], [3, 4], [5, 6], [7, 8])
        assert len(batch) == 2
        assert batch.t.dtype == np.float64

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            TupleBatch([1], [1, 2], [1], [1])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            TupleBatch(np.zeros((2, 2)), np.zeros(2), np.zeros(2), np.zeros(2))

    def test_columns_read_only(self):
        batch = TupleBatch([1], [2], [3], [4])
        with pytest.raises(ValueError):
            batch.t[0] = 99.0

    def test_from_rows_round_trip(self):
        rows = [RawTuple(1, 2, 3, 4), RawTuple(5, 6, 7, 8)]
        batch = TupleBatch.from_rows(rows)
        assert batch.rows() == rows

    def test_empty(self):
        batch = TupleBatch.empty()
        assert len(batch) == 0
        assert batch.rows() == []


class TestTupleBatchOps:
    def setup_method(self):
        self.batch = TupleBatch(
            [0.0, 10.0, 20.0, 30.0],
            [1.0, 2.0, 3.0, 4.0],
            [5.0, 6.0, 7.0, 8.0],
            [400.0, 410.0, 420.0, 430.0],
        )

    def test_row(self):
        assert self.batch.row(2) == RawTuple(20.0, 3.0, 7.0, 420.0)

    def test_iteration(self):
        assert [r.s for r in self.batch] == [400.0, 410.0, 420.0, 430.0]

    def test_slice_is_view(self):
        sl = self.batch.slice(1, 3)
        assert len(sl) == 2
        assert sl.t[0] == 10.0
        assert sl.t.base is not None  # zero-copy

    def test_take(self):
        taken = self.batch.take([3, 0])
        assert taken.t.tolist() == [30.0, 0.0]

    def test_select_mask(self):
        out = self.batch.select_mask(self.batch.s > 405)
        assert len(out) == 3

    def test_select_mask_wrong_length(self):
        with pytest.raises(ValueError):
            self.batch.select_mask(np.array([True]))

    def test_positions_shape(self):
        pos = self.batch.positions()
        assert pos.shape == (4, 2)
        assert pos[1].tolist() == [2.0, 6.0]

    def test_time_span(self):
        assert self.batch.time_span() == (0.0, 30.0)

    def test_time_span_empty_raises(self):
        with pytest.raises(ValueError):
            TupleBatch.empty().time_span()

    def test_is_time_sorted(self):
        assert self.batch.is_time_sorted()
        shuffled = self.batch.take([2, 0, 1, 3])
        assert not shuffled.is_time_sorted()

    def test_single_sorted(self):
        assert TupleBatch([5], [0], [0], [0]).is_time_sorted()

    def test_concat(self):
        merged = self.batch.concat(self.batch.slice(0, 1))
        assert len(merged) == 5
        assert merged.t[-1] == 0.0


class TestIsViewOf:
    def test_slice_is_view(self):
        batch = TupleBatch([1.0, 2.0, 3.0], [0.0] * 3, [0.0] * 3, [4.0] * 3)
        assert batch.slice(0, 2).is_view_of(batch)

    def test_copy_is_not_view(self):
        batch = TupleBatch([1.0, 2.0], [0.0] * 2, [0.0] * 2, [4.0] * 2)
        other = TupleBatch.from_rows(batch.rows())
        assert not other.is_view_of(batch)

    def test_empty_is_not_view(self):
        batch = TupleBatch([1.0], [0.0], [0.0], [4.0])
        assert not batch.slice(0, 0).is_view_of(batch)
