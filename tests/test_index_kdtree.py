"""Tests for repro.index.kdtree."""

import random

import pytest

from repro.index.base import brute_force_radius
from repro.index.kdtree import KDTree


def random_points(n, seed=0, extent=1000.0):
    rng = random.Random(seed)
    xs = [rng.uniform(0, extent) for _ in range(n)]
    ys = [rng.uniform(0, extent) for _ in range(n)]
    return xs, ys


class TestConstruction:
    def test_empty(self):
        tree = KDTree([], [])
        assert len(tree) == 0
        assert tree.query_radius(0, 0, 5) == []

    def test_balanced_height(self):
        xs, ys = random_points(1023)
        tree = KDTree(xs, ys)
        assert tree.height == 10  # median splits give a perfect tree

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            KDTree([1.0, 2.0], [1.0])


class TestRadiusQuery:
    def test_matches_brute_force(self):
        xs, ys = random_points(400, seed=1)
        tree = KDTree(xs, ys)
        rng = random.Random(2)
        for _ in range(100):
            qx, qy = rng.uniform(-100, 1100), rng.uniform(-100, 1100)
            r = rng.uniform(0, 400)
            assert sorted(tree.query_radius(qx, qy, r)) == brute_force_radius(
                xs, ys, qx, qy, r
            )

    def test_collinear_points(self):
        xs = [float(i) for i in range(100)]
        ys = [0.0] * 100
        tree = KDTree(xs, ys)
        assert sorted(tree.query_radius(50.0, 0.0, 2.5)) == [48, 49, 50, 51, 52]

    def test_duplicates(self):
        tree = KDTree([1.0] * 10, [1.0] * 10)
        assert sorted(tree.query_radius(1, 1, 0)) == list(range(10))

    def test_negative_radius(self):
        with pytest.raises(ValueError):
            KDTree([0.0], [0.0]).query_radius(0, 0, -1)
