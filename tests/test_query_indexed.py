"""Tests for repro.query.indexed."""

import random

import numpy as np
import pytest

from repro.data.tuples import QueryTuple, TupleBatch
from repro.query.indexed import IndexedProcessor, available_index_kinds
from repro.query.naive import NaiveProcessor


def random_window(n=300, seed=0):
    rng = random.Random(seed)
    return TupleBatch(
        np.arange(n, dtype=float),
        [rng.uniform(0, 3000) for _ in range(n)],
        [rng.uniform(0, 3000) for _ in range(n)],
        [rng.uniform(380, 700) for _ in range(n)],
    )


class TestSemantics:
    @pytest.mark.parametrize("kind", available_index_kinds())
    def test_identical_to_naive(self, kind):
        """The paper's accuracy experiment relies on indexes producing
        the same result as the naive method — enforce it exactly."""
        window = random_window()
        naive = NaiveProcessor(window, radius_m=800.0)
        indexed = IndexedProcessor(window, kind=kind, radius_m=800.0)
        rng = random.Random(1)
        for _ in range(60):
            q = QueryTuple(0.0, rng.uniform(-200, 3200), rng.uniform(-200, 3200))
            a = naive.process(q)
            b = indexed.process(q)
            assert a.support == b.support
            if a.value is None:
                assert b.value is None
            else:
                assert b.value == pytest.approx(a.value)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown index kind"):
            IndexedProcessor(random_window(), kind="btree")

    def test_negative_radius(self):
        with pytest.raises(ValueError):
            IndexedProcessor(random_window(), radius_m=-5)

    def test_name_is_kind(self):
        assert IndexedProcessor(random_window(), kind="vptree").name == "vptree"

    def test_no_data(self):
        proc = IndexedProcessor(random_window(), kind="rtree", radius_m=10.0)
        assert proc.process(QueryTuple(0, -9999, -9999)).value is None
