"""Tests for repro.index.grid."""

import random

import pytest

from repro.index.base import brute_force_radius
from repro.index.grid import GridIndex


def random_points(n, seed=0, extent=1000.0):
    rng = random.Random(seed)
    xs = [rng.uniform(0, extent) for _ in range(n)]
    ys = [rng.uniform(0, extent) for _ in range(n)]
    return xs, ys


class TestConstruction:
    def test_empty(self):
        gi = GridIndex([], [])
        assert len(gi) == 0
        assert gi.cell_count == 0
        assert gi.query_radius(0, 0, 100) == []

    def test_invalid_cell_size(self):
        with pytest.raises(ValueError):
            GridIndex([], [], cell_m=0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            GridIndex([1.0], [])

    def test_cell_count(self):
        gi = GridIndex([0.0, 1.0, 500.0], [0.0, 1.0, 500.0], cell_m=250.0)
        assert gi.cell_count == 2  # (0,0) holds the first two points


class TestRadiusQuery:
    def test_matches_brute_force(self):
        xs, ys = random_points(400, seed=1)
        gi = GridIndex(xs, ys, cell_m=130.0)
        rng = random.Random(2)
        for _ in range(100):
            qx, qy = rng.uniform(-100, 1100), rng.uniform(-100, 1100)
            r = rng.uniform(0, 400)
            assert sorted(gi.query_radius(qx, qy, r)) == brute_force_radius(
                xs, ys, qx, qy, r
            )

    def test_negative_coordinates(self):
        gi = GridIndex([-500.0, -10.0], [-500.0, -10.0], cell_m=100.0)
        assert sorted(gi.query_radius(-255.0, -255.0, 400.0)) == [0, 1]

    def test_negative_radius(self):
        with pytest.raises(ValueError):
            GridIndex([0.0], [0.0]).query_radius(0, 0, -0.1)

    def test_radius_smaller_than_cell(self):
        xs, ys = random_points(200, seed=4)
        gi = GridIndex(xs, ys, cell_m=500.0)
        assert sorted(gi.query_radius(500, 500, 20)) == brute_force_radius(
            xs, ys, 500, 500, 20
        )
