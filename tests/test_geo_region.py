"""Tests for repro.geo.region."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.coords import BoundingBox
from repro.geo.region import Region, RegionGrid, SubRegion, nearest_subregion


class TestRegion:
    def test_contains(self):
        region = Region("r", BoundingBox(0, 0, 10, 10))
        assert region.contains(5, 5)
        assert not region.contains(11, 5)


class TestSubRegion:
    def test_size_and_distance(self):
        sub = SubRegion(centroid=(0.0, 0.0), member_indices=[1, 2, 3])
        assert sub.size == 3
        assert sub.distance_to(3, 4) == pytest.approx(5.0)

    def test_default_empty_members(self):
        assert SubRegion(centroid=(1.0, 1.0)).size == 0


class TestNearestSubregion:
    def test_picks_nearest(self):
        subs = [
            SubRegion(centroid=(0.0, 0.0)),
            SubRegion(centroid=(10.0, 0.0)),
            SubRegion(centroid=(5.0, 5.0)),
        ]
        assert nearest_subregion(subs, 9.0, 1.0) == 1
        assert nearest_subregion(subs, 0.5, 0.5) == 0
        assert nearest_subregion(subs, 5.0, 4.0) == 2

    def test_tie_prefers_first(self):
        subs = [SubRegion(centroid=(0.0, 0.0)), SubRegion(centroid=(2.0, 0.0))]
        assert nearest_subregion(subs, 1.0, 0.0) == 0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            nearest_subregion([], 0, 0)


class TestRegionGrid:
    BOUNDS = BoundingBox(0.0, 0.0, 6000.0, 4000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RegionGrid(self.BOUNDS, nx=0, ny=1)
        with pytest.raises(ValueError):
            RegionGrid(BoundingBox(0.0, 0.0, 0.0, 4000.0), nx=1, ny=1)
        with pytest.raises(ValueError):
            RegionGrid.for_shard_count(self.BOUNDS, 0)

    def test_for_shard_count_factorises_squarely(self):
        grid = RegionGrid.for_shard_count(self.BOUNDS, 4)
        assert (grid.nx, grid.ny) == (2, 2)
        grid = RegionGrid.for_shard_count(self.BOUNDS, 6)
        assert (grid.nx, grid.ny) == (3, 2)  # wider box -> wider grid
        tall = BoundingBox(0.0, 0.0, 4000.0, 6000.0)
        assert (RegionGrid.for_shard_count(tall, 6).nx,
                RegionGrid.for_shard_count(tall, 6).ny) == (2, 3)
        prime = RegionGrid.for_shard_count(self.BOUNDS, 5)
        assert prime.n_regions == 5 and prime.ny == 1

    def test_regions_tile_the_bounds(self):
        grid = RegionGrid(self.BOUNDS, nx=3, ny=2)
        assert grid.n_regions == 6
        total_area = sum(grid.region(k).bounds.area for k in range(6))
        assert total_area == pytest.approx(self.BOUNDS.area)
        with pytest.raises(ValueError):
            grid.region(6)

    def test_ownership_is_total_and_clamped(self):
        grid = RegionGrid(self.BOUNDS, nx=2, ny=2)
        # Interior points land in their cell.
        assert grid.shard_of(100.0, 100.0) == 0
        assert grid.shard_of(5900.0, 100.0) == 1
        assert grid.shard_of(100.0, 3900.0) == 2
        assert grid.shard_of(5900.0, 3900.0) == 3
        # Out-of-bounds points are owned by the nearest edge cell.
        assert grid.shard_of(-1e6, -1e6) == 0
        assert grid.shard_of(1e6, 1e6) == 3
        assert grid.shard_of(3000.0, -500.0) in (0, 1)

    def test_scalar_and_vector_ownership_agree(self):
        grid = RegionGrid(self.BOUNDS, nx=3, ny=2)
        rng = np.random.default_rng(3)
        xs = rng.uniform(-2000.0, 8000.0, 200)
        ys = rng.uniform(-2000.0, 6000.0, 200)
        vector = grid.shards_of(xs, ys)
        for x, y, s in zip(xs, ys, vector):
            assert grid.shard_of(float(x), float(y)) == int(s)

    @given(
        x=st.floats(min_value=-20_000, max_value=20_000, allow_nan=False),
        y=st.floats(min_value=-20_000, max_value=20_000, allow_nan=False),
        r=st.floats(min_value=0.0, max_value=5_000.0, allow_nan=False),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_disk_scatter_set_covers_all_possible_owners(self, x, y, r, seed):
        """Any point within the disk is owned by a cell in the scatter
        set — the correctness contract of disk-range pruning."""
        grid = RegionGrid(self.BOUNDS, nx=3, ny=2)
        scatter = set(grid.shards_overlapping_disk(x, y, r))
        assert scatter  # never empty: ownership is total
        rng = np.random.default_rng(seed)
        angles = rng.uniform(0.0, 2.0 * np.pi, 64)
        radii = r * np.sqrt(rng.uniform(0.0, 1.0, 64))
        px = x + radii * np.cos(angles)
        py = y + radii * np.sin(angles)
        owners = set(int(s) for s in grid.shards_of(px, py))
        assert owners <= scatter

    def test_disk_ranges_reject_negative_radius(self):
        grid = RegionGrid(self.BOUNDS, nx=2, ny=2)
        with pytest.raises(ValueError):
            grid.disk_cell_ranges(np.array([0.0]), np.array([0.0]), -1.0)


# -- property suites: factorisation and degenerate strip grids --------------
#
# ``for_shard_count`` backs every CLI/benchmark "give me n shards" entry
# point, and 1xn / nx1 strips are what prime counts degrade to — their
# edge cells own unbounded slabs on *three* sides, the adversarial case
# for the scatter-mask geometry.

_PROP = settings(max_examples=60, deadline=None)

_shard_counts = st.integers(min_value=1, max_value=420)
_boxes = st.tuples(
    st.floats(min_value=-1e4, max_value=1e4),
    st.floats(min_value=-1e4, max_value=1e4),
    st.floats(min_value=1.0, max_value=2e4),
    st.floats(min_value=1.0, max_value=2e4),
).map(lambda t: BoundingBox(t[0], t[1], t[0] + t[2], t[1] + t[3]))


def _is_prime(n: int) -> bool:
    return n > 1 and all(n % d for d in range(2, int(math.isqrt(n)) + 1))


class TestForShardCountProperties:
    @given(n=_shard_counts, box=_boxes)
    @_PROP
    def test_factorisation_is_exact_and_most_square(self, n, box):
        grid = RegionGrid.for_shard_count(box, n)
        assert grid.nx * grid.ny == n
        # The smaller factor is the largest divisor not above sqrt(n) —
        # no factor pair of n is closer to square.
        small = min(grid.nx, grid.ny)
        best = max(d for d in range(1, math.isqrt(n) + 1) if n % d == 0)
        assert small == best

    @given(n=_shard_counts, box=_boxes)
    @_PROP
    def test_aspect_follows_the_bounds(self, n, box):
        grid = RegionGrid.for_shard_count(box, n)
        if box.width >= box.height:
            assert grid.nx >= grid.ny
        else:
            assert grid.ny >= grid.nx

    @given(n=_shard_counts.filter(_is_prime), box=_boxes)
    @_PROP
    def test_prime_count_degrades_to_a_strip(self, n, box):
        grid = RegionGrid.for_shard_count(box, n)
        assert sorted((grid.nx, grid.ny)) == [1, n]


class TestDegenerateStripScatterMask:
    @given(
        n=st.integers(min_value=1, max_value=13),
        tall=st.booleans(),
        r=st.floats(min_value=0.0, max_value=12_000.0, allow_nan=False),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @_PROP
    def test_strip_masks_are_superset_safe_across_edge_slabs(
        self, n, tall, r, seed
    ):
        """On a 1xn / nx1 strip, any tuple inside a query's disk is
        owned by a masked cell — including tuples and query centres deep
        in the unbounded edge slabs outside the bounding box."""
        box = BoundingBox(0.0, 0.0, 6000.0, 4000.0)
        grid = (
            RegionGrid(box, nx=1, ny=n) if tall else RegionGrid(box, nx=n, ny=1)
        )
        rng = np.random.default_rng(seed)
        # Both populations straddle the box and its far outside.
        tx = rng.uniform(-15_000.0, 21_000.0, 256)
        ty = rng.uniform(-15_000.0, 19_000.0, 256)
        qx = rng.uniform(-15_000.0, 21_000.0, 24)
        qy = rng.uniform(-15_000.0, 19_000.0, 24)
        mask = grid.disks_shard_mask(qx, qy, r)
        assert mask.shape == (24, n)
        assert mask.any(axis=1).all()  # ownership is total
        owners = grid.shards_of(tx, ty)
        for q in range(len(qx)):
            inside = (tx - qx[q]) ** 2 + (ty - qy[q]) ** 2 <= r * r
            hit_owners = set(int(s) for s in np.unique(owners[inside]))
            assert hit_owners <= set(np.flatnonzero(mask[q]))

    @given(
        n=st.integers(min_value=1, max_value=13),
        tall=st.booleans(),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @_PROP
    def test_zero_radius_mask_is_exactly_the_owner(self, n, tall, seed):
        box = BoundingBox(0.0, 0.0, 6000.0, 4000.0)
        grid = (
            RegionGrid(box, nx=1, ny=n) if tall else RegionGrid(box, nx=n, ny=1)
        )
        rng = np.random.default_rng(seed)
        qx = rng.uniform(-15_000.0, 21_000.0, 64)
        qy = rng.uniform(-15_000.0, 19_000.0, 64)
        mask = grid.disks_shard_mask(qx, qy, 0.0)
        owners = grid.shards_of(qx, qy)
        assert mask.sum(axis=1).tolist() == [1] * 64
        assert np.array_equal(np.argmax(mask, axis=1), owners)
