"""Tests for repro.geo.region."""

import pytest

from repro.geo.coords import BoundingBox
from repro.geo.region import Region, SubRegion, nearest_subregion


class TestRegion:
    def test_contains(self):
        region = Region("r", BoundingBox(0, 0, 10, 10))
        assert region.contains(5, 5)
        assert not region.contains(11, 5)


class TestSubRegion:
    def test_size_and_distance(self):
        sub = SubRegion(centroid=(0.0, 0.0), member_indices=[1, 2, 3])
        assert sub.size == 3
        assert sub.distance_to(3, 4) == pytest.approx(5.0)

    def test_default_empty_members(self):
        assert SubRegion(centroid=(1.0, 1.0)).size == 0


class TestNearestSubregion:
    def test_picks_nearest(self):
        subs = [
            SubRegion(centroid=(0.0, 0.0)),
            SubRegion(centroid=(10.0, 0.0)),
            SubRegion(centroid=(5.0, 5.0)),
        ]
        assert nearest_subregion(subs, 9.0, 1.0) == 1
        assert nearest_subregion(subs, 0.5, 0.5) == 0
        assert nearest_subregion(subs, 5.0, 4.0) == 2

    def test_tie_prefers_first(self):
        subs = [SubRegion(centroid=(0.0, 0.0)), SubRegion(centroid=(2.0, 0.0))]
        assert nearest_subregion(subs, 1.0, 0.0) == 0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            nearest_subregion([], 0, 0)
