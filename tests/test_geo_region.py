"""Tests for repro.geo.region."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geo.coords import BoundingBox
from repro.geo.region import Region, RegionGrid, SubRegion, nearest_subregion


class TestRegion:
    def test_contains(self):
        region = Region("r", BoundingBox(0, 0, 10, 10))
        assert region.contains(5, 5)
        assert not region.contains(11, 5)


class TestSubRegion:
    def test_size_and_distance(self):
        sub = SubRegion(centroid=(0.0, 0.0), member_indices=[1, 2, 3])
        assert sub.size == 3
        assert sub.distance_to(3, 4) == pytest.approx(5.0)

    def test_default_empty_members(self):
        assert SubRegion(centroid=(1.0, 1.0)).size == 0


class TestNearestSubregion:
    def test_picks_nearest(self):
        subs = [
            SubRegion(centroid=(0.0, 0.0)),
            SubRegion(centroid=(10.0, 0.0)),
            SubRegion(centroid=(5.0, 5.0)),
        ]
        assert nearest_subregion(subs, 9.0, 1.0) == 1
        assert nearest_subregion(subs, 0.5, 0.5) == 0
        assert nearest_subregion(subs, 5.0, 4.0) == 2

    def test_tie_prefers_first(self):
        subs = [SubRegion(centroid=(0.0, 0.0)), SubRegion(centroid=(2.0, 0.0))]
        assert nearest_subregion(subs, 1.0, 0.0) == 0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            nearest_subregion([], 0, 0)


class TestRegionGrid:
    BOUNDS = BoundingBox(0.0, 0.0, 6000.0, 4000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RegionGrid(self.BOUNDS, nx=0, ny=1)
        with pytest.raises(ValueError):
            RegionGrid(BoundingBox(0.0, 0.0, 0.0, 4000.0), nx=1, ny=1)
        with pytest.raises(ValueError):
            RegionGrid.for_shard_count(self.BOUNDS, 0)

    def test_for_shard_count_factorises_squarely(self):
        grid = RegionGrid.for_shard_count(self.BOUNDS, 4)
        assert (grid.nx, grid.ny) == (2, 2)
        grid = RegionGrid.for_shard_count(self.BOUNDS, 6)
        assert (grid.nx, grid.ny) == (3, 2)  # wider box -> wider grid
        tall = BoundingBox(0.0, 0.0, 4000.0, 6000.0)
        assert (RegionGrid.for_shard_count(tall, 6).nx,
                RegionGrid.for_shard_count(tall, 6).ny) == (2, 3)
        prime = RegionGrid.for_shard_count(self.BOUNDS, 5)
        assert prime.n_regions == 5 and prime.ny == 1

    def test_regions_tile_the_bounds(self):
        grid = RegionGrid(self.BOUNDS, nx=3, ny=2)
        assert grid.n_regions == 6
        total_area = sum(grid.region(k).bounds.area for k in range(6))
        assert total_area == pytest.approx(self.BOUNDS.area)
        with pytest.raises(ValueError):
            grid.region(6)

    def test_ownership_is_total_and_clamped(self):
        grid = RegionGrid(self.BOUNDS, nx=2, ny=2)
        # Interior points land in their cell.
        assert grid.shard_of(100.0, 100.0) == 0
        assert grid.shard_of(5900.0, 100.0) == 1
        assert grid.shard_of(100.0, 3900.0) == 2
        assert grid.shard_of(5900.0, 3900.0) == 3
        # Out-of-bounds points are owned by the nearest edge cell.
        assert grid.shard_of(-1e6, -1e6) == 0
        assert grid.shard_of(1e6, 1e6) == 3
        assert grid.shard_of(3000.0, -500.0) in (0, 1)

    def test_scalar_and_vector_ownership_agree(self):
        grid = RegionGrid(self.BOUNDS, nx=3, ny=2)
        rng = np.random.default_rng(3)
        xs = rng.uniform(-2000.0, 8000.0, 200)
        ys = rng.uniform(-2000.0, 6000.0, 200)
        vector = grid.shards_of(xs, ys)
        for x, y, s in zip(xs, ys, vector):
            assert grid.shard_of(float(x), float(y)) == int(s)

    @given(
        x=st.floats(min_value=-20_000, max_value=20_000, allow_nan=False),
        y=st.floats(min_value=-20_000, max_value=20_000, allow_nan=False),
        r=st.floats(min_value=0.0, max_value=5_000.0, allow_nan=False),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_disk_scatter_set_covers_all_possible_owners(self, x, y, r, seed):
        """Any point within the disk is owned by a cell in the scatter
        set — the correctness contract of disk-range pruning."""
        grid = RegionGrid(self.BOUNDS, nx=3, ny=2)
        scatter = set(grid.shards_overlapping_disk(x, y, r))
        assert scatter  # never empty: ownership is total
        rng = np.random.default_rng(seed)
        angles = rng.uniform(0.0, 2.0 * np.pi, 64)
        radii = r * np.sqrt(rng.uniform(0.0, 1.0, 64))
        px = x + radii * np.cos(angles)
        py = y + radii * np.sin(angles)
        owners = set(int(s) for s in grid.shards_of(px, py))
        assert owners <= scatter

    def test_disk_ranges_reject_negative_radius(self):
        grid = RegionGrid(self.BOUNDS, nx=2, ny=2)
        with pytest.raises(ValueError):
            grid.disk_cell_ranges(np.array([0.0]), np.array([0.0]), -1.0)
