"""Tests for repro.geo.streetgraph."""

import pytest

from repro.geo.coords import euclidean
from repro.geo.streetgraph import StreetGraph, lausanne_street_graph


@pytest.fixture()
def square():
    """A 4-junction square with one diagonal."""
    g = StreetGraph()
    g.add_junction("a", 0, 0)
    g.add_junction("b", 100, 0)
    g.add_junction("c", 100, 100)
    g.add_junction("d", 0, 100)
    g.add_street("a", "b")
    g.add_street("b", "c")
    g.add_street("c", "d")
    g.add_street("d", "a")
    g.add_street("a", "c")  # diagonal
    return g


class TestConstruction:
    def test_duplicate_junction(self, square):
        with pytest.raises(ValueError):
            square.add_junction("a", 5, 5)

    def test_street_between_unknown(self, square):
        with pytest.raises(KeyError):
            square.add_street("a", "zzz")

    def test_self_loop_rejected(self, square):
        with pytest.raises(ValueError):
            square.add_street("a", "a")

    def test_street_length_is_distance(self, square):
        assert square.add_street("b", "d") == pytest.approx(
            euclidean(100, 0, 0, 100)
        )

    def test_counts(self, square):
        assert square.junction_count == 4
        assert square.street_count == 5


class TestQueries:
    def test_position(self, square):
        assert square.position("c") == (100.0, 100.0)
        with pytest.raises(KeyError):
            square.position("zzz")

    def test_nearest_junction(self, square):
        assert square.nearest_junction(90.0, 10.0) == "b"
        assert square.nearest_junction(10.0, 90.0) == "d"

    def test_nearest_on_empty(self):
        with pytest.raises(ValueError):
            StreetGraph().nearest_junction(0, 0)

    def test_shortest_path_prefers_diagonal(self, square):
        path = square.shortest_path("a", "c")
        assert path.nodes == ("a", "c")
        assert path.length_m == pytest.approx(euclidean(0, 0, 100, 100))

    def test_shortest_path_multi_hop(self, square):
        path = square.shortest_path("b", "d")
        assert path.length_m == pytest.approx(200.0)  # via a or c
        assert len(path.nodes) == 3

    def test_no_path(self):
        g = StreetGraph()
        g.add_junction("x", 0, 0)
        g.add_junction("y", 10, 10)
        with pytest.raises(ValueError, match="no street route"):
            g.shortest_path("x", "y")

    def test_unknown_junction_in_path(self, square):
        with pytest.raises(KeyError):
            square.shortest_path("a", "zzz")

    def test_route_via_concatenates(self, square):
        route = square.route_via(["b", "a", "d"])
        assert route.nodes == ("b", "a", "d")
        assert route.length_m == pytest.approx(200.0)
        assert route.waypoints[0] == (100.0, 0.0)

    def test_route_via_needs_two_stops(self, square):
        with pytest.raises(ValueError):
            square.route_via(["a"])


class TestLausanneGraph:
    def test_connected(self):
        g = lausanne_street_graph()
        assert g.is_connected()
        assert g.junction_count == 20

    def test_cross_city_route_exists(self):
        g = lausanne_street_graph()
        path = g.shortest_path("w-terminus", "ne-terminus")
        assert path.length_m > 4000
        assert path.nodes[0] == "w-terminus"
        assert path.nodes[-1] == "ne-terminus"

    def test_bus_line_a_corridor(self):
        # The line-A corridor follows the graph's gare -> centre artery.
        g = lausanne_street_graph()
        route = g.route_via(["w-terminus", "gare", "centre", "ne-terminus"])
        assert {"gare", "centre"} <= set(route.nodes)
