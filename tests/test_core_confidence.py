"""Tests for repro.core.confidence."""

import numpy as np
import pytest

from repro.core.adkmn import AdKMNConfig, fit_adkmn
from repro.core.confidence import ConfidenceCover, ConfidentValue
from repro.data.tuples import TupleBatch


def noisy_window(noise=10.0, n=200, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 2000, n)
    y = rng.uniform(0, 2000, n)
    s = 450.0 + 0.05 * x + rng.normal(0, noise, n)
    return TupleBatch(np.arange(n) * 10.0, x, y, s)


class TestConfidentValue:
    def test_interval_symmetric(self):
        cv = ConfidentValue(value=500.0, std=10.0, region=0, support=20)
        lo, hi = cv.interval()
        assert lo == pytest.approx(500.0 - 1.96 * 10.0, rel=1e-3)
        assert hi == pytest.approx(500.0 + 1.96 * 10.0, rel=1e-3)

    def test_custom_z(self):
        cv = ConfidentValue(value=0.0, std=1.0, region=0, support=5)
        assert cv.interval(z=1.0) == (-1.0, 1.0)

    def test_negative_z_rejected(self):
        with pytest.raises(ValueError):
            ConfidentValue(0, 1, 0, 1).interval(z=-1)


class TestConfidenceCover:
    def test_std_tracks_sensor_noise(self):
        w = noisy_window(noise=10.0)
        result = fit_adkmn(w, AdKMNConfig(tau_n_pct=5.0))
        conf = ConfidenceCover(result, w)
        cv = conf.predict(0.0, 1000.0, 1000.0)
        # Residual std should be near the injected noise level.
        assert 5.0 < cv.std < 20.0
        assert cv.support > 0

    def test_noisier_data_wider_intervals(self):
        quiet = noisy_window(noise=5.0, seed=1)
        loud = noisy_window(noise=40.0, seed=1)
        cfg = AdKMNConfig(tau_n_pct=10.0)
        conf_q = ConfidenceCover(fit_adkmn(quiet, cfg), quiet)
        conf_l = ConfidenceCover(fit_adkmn(loud, cfg), loud)
        assert conf_l.predict(0, 1000, 1000).std > conf_q.predict(0, 1000, 1000).std

    def test_prediction_matches_plain_cover(self):
        w = noisy_window()
        result = fit_adkmn(w, AdKMNConfig(tau_n_pct=5.0))
        conf = ConfidenceCover(result, w)
        cv = conf.predict(0.0, 500.0, 1500.0)
        assert cv.value == pytest.approx(result.cover.predict(0.0, 500.0, 1500.0))

    def test_region_std_bounds(self):
        w = noisy_window()
        result = fit_adkmn(w, AdKMNConfig(tau_n_pct=5.0))
        conf = ConfidenceCover(result, w)
        for k in range(result.cover.size):
            assert conf.region_std(k) >= 0.0
        with pytest.raises(IndexError):
            conf.region_std(result.cover.size)

    def test_labels_window_mismatch(self):
        w = noisy_window()
        result = fit_adkmn(w, AdKMNConfig(tau_n_pct=5.0))
        with pytest.raises(ValueError):
            ConfidenceCover(result, w.slice(0, 10))

    def test_worst_region_is_argmax(self):
        w = noisy_window()
        result = fit_adkmn(w, AdKMNConfig(tau_n_pct=5.0))
        conf = ConfidenceCover(result, w)
        worst = conf.worst_region()
        assert conf.region_std(worst) == max(
            conf.region_std(k) for k in range(result.cover.size)
        )
