"""Tests for repro.eval.experiments — scaled-down figure regenerators.

Each experiment runs on the small 1-day dataset with reduced query counts
so the whole module stays fast; the *shape* assertions mirror what
EXPERIMENTS.md checks at full scale.
"""

import pytest

from repro.eval.experiments import (
    run_fig6a,
    run_fig6b,
    run_fig7a,
    run_fig7b,
)
from repro.eval.report import (
    format_fig6a,
    format_fig6b,
    format_fig7a,
    format_fig7b,
)


@pytest.fixture(scope="module")
def fig6a_rows(small_dataset):
    return run_fig6a(small_dataset, h_values=(40, 240), n_queries=150)


@pytest.fixture(scope="module")
def fig6b_rows(small_dataset):
    return run_fig6b(small_dataset, h_values=(40, 240), n_queries=300)


@pytest.fixture(scope="module")
def fig7a_rows(small_dataset):
    return run_fig7a(small_dataset, h=1500, runs=2)


@pytest.fixture(scope="module")
def fig7b_rows(small_dataset):
    return run_fig7b(small_dataset, n_queries=50)


class TestFig6a:
    def test_row_grid_complete(self, fig6a_rows):
        assert len(fig6a_rows) == 2 * 4  # 2 H values x 4 methods

    def test_model_cover_fastest(self, fig6a_rows):
        for h in (40, 240):
            by = {r.method: r.elapsed_s for r in fig6a_rows if r.h == h}
            assert by["adkmn"] < by["naive"]
            assert by["adkmn"] < by["rtree"]
            assert by["adkmn"] < by["vptree"]

    def test_naive_grows_with_h(self, fig6a_rows):
        by_h = {r.h: r.elapsed_s for r in fig6a_rows if r.method == "naive"}
        assert by_h[240] > by_h[40]

    def test_formatting(self, fig6a_rows):
        table = format_fig6a(fig6a_rows)
        assert "H=40" in table and "adkmn" in table


class TestFig6b:
    def test_adkmn_beats_naive(self, fig6b_rows):
        for h in (40, 240):
            by = {r.method: r.nrmse_pct for r in fig6b_rows if r.h == h}
            assert by["adkmn"] < by["naive"]

    def test_model_cover_answers_everything(self, fig6b_rows):
        for r in fig6b_rows:
            if r.method == "adkmn":
                assert r.answered == r.n_queries

    def test_formatting(self, fig6b_rows):
        assert "NRMSE" in format_fig6b(fig6b_rows)


class TestFig7a:
    def test_model_cover_smallest_by_far(self, fig7a_rows):
        by = {r.method: r.kilobytes for r in fig7a_rows}
        assert by["adkmn"] * 5 < by["naive"]
        assert by["adkmn"] * 5 < by["rtree"]
        assert by["adkmn"] * 5 < by["vptree"]

    def test_vptree_heaviest_index(self, fig7a_rows):
        by = {r.method: r.kilobytes for r in fig7a_rows}
        assert by["vptree"] > by["rtree"]

    def test_formatting(self, fig7a_rows):
        assert "x model-cover" in format_fig7a(fig7a_rows)


class TestFig7b:
    def test_model_cache_dominates(self, fig7b_rows):
        by = {r.technique: r for r in fig7b_rows}
        base, cache = by["baseline"], by["model-cache"]
        assert base.sent_kb > 20 * cache.sent_kb
        assert base.received_kb > 5 * cache.received_kb
        assert base.total_time_s > 10 * cache.total_time_s

    def test_formatting(self, fig7b_rows):
        table = format_fig7b(fig7b_rows)
        assert "ratios" in table
