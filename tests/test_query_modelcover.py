"""Tests for repro.query.modelcover."""

import numpy as np
import pytest

from repro.core.cover import ModelCover
from repro.data.tuples import QueryTuple
from repro.models.mean import MeanModel
from repro.query.modelcover import ModelCoverProcessor


def make_cover():
    return ModelCover(
        centroids=np.array([[0.0, 0.0], [1000.0, 1000.0]]),
        models=[MeanModel(400.0), MeanModel(700.0)],
        valid_until=100.0,
        family="mean",
    )


class TestProcessing:
    def test_routes_to_nearest_model(self):
        proc = ModelCoverProcessor(make_cover())
        assert proc.process(QueryTuple(0, 10, 10)).value == 400.0
        assert proc.process(QueryTuple(0, 990, 990)).value == 700.0

    def test_always_answers(self):
        proc = ModelCoverProcessor(make_cover())
        res = proc.process(QueryTuple(0, 1e6, -1e6))
        assert res.answered
        assert res.support == 1

    def test_matches_cover_predict(self):
        cover = make_cover()
        proc = ModelCoverProcessor(cover)
        q = QueryTuple(5.0, 300.0, 800.0)
        assert proc.process(q).value == pytest.approx(cover.predict(q.t, q.x, q.y))

    def test_tie_breaks_to_first(self):
        proc = ModelCoverProcessor(make_cover())
        assert proc.process(QueryTuple(0, 500, 500)).value == 400.0

    def test_name(self):
        assert ModelCoverProcessor(make_cover()).name == "model-cover"

    def test_single_model_cover(self):
        cover = ModelCover(
            centroids=np.array([[5.0, 5.0]]),
            models=[MeanModel(555.0)],
            valid_until=0.0,
            family="mean",
        )
        proc = ModelCoverProcessor(cover)
        assert proc.process(QueryTuple(0, -100, 100)).value == 555.0
