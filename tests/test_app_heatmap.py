"""Tests for repro.app.heatmap."""

import numpy as np
import pytest

from repro.app.heatmap import Heatmap, colorize, render_ascii, render_ppm
from repro.geo.coords import BoundingBox


def gradient_heatmap(nx=4, ny=3):
    grid = np.linspace(400, 800, nx * ny).reshape(ny, nx)
    return Heatmap(grid=grid, bounds=BoundingBox(0, 0, 400, 300))


class TestHeatmap:
    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            Heatmap(grid=np.zeros(5), bounds=BoundingBox(0, 0, 1, 1))

    def test_value_range(self):
        hm = gradient_heatmap()
        lo, hi = hm.value_range()
        assert lo == 400.0
        assert hi == 800.0

    def test_value_range_ignores_nan(self):
        grid = np.array([[np.nan, 500.0], [600.0, np.nan]])
        hm = Heatmap(grid=grid, bounds=BoundingBox(0, 0, 1, 1))
        assert hm.value_range() == (500.0, 600.0)

    def test_all_nan_raises(self):
        hm = Heatmap(grid=np.full((2, 2), np.nan), bounds=BoundingBox(0, 0, 1, 1))
        with pytest.raises(ValueError):
            hm.value_range()

    def test_normalised_in_unit_interval(self):
        norm = gradient_heatmap().normalised()
        finite = norm[np.isfinite(norm)]
        assert np.all(finite >= 0.0)
        assert np.all(finite <= 1.0)

    def test_normalised_constant_grid(self):
        hm = Heatmap(grid=np.full((2, 2), 5.0), bounds=BoundingBox(0, 0, 1, 1))
        assert np.all(hm.normalised() == 0.5)

    def test_cell_center(self):
        hm = gradient_heatmap(nx=5, ny=4)
        assert hm.cell_center(0, 0) == (0.0, 0.0)
        assert hm.cell_center(4, 3) == (400.0, 300.0)


class TestRenderers:
    def test_colorize_shape_and_range(self):
        rgb = colorize(gradient_heatmap())
        assert rgb.shape == (3, 4, 3)
        assert rgb.dtype == np.uint8

    def test_colorize_low_is_green_high_is_red(self):
        rgb = colorize(gradient_heatmap())
        low = rgb[0, 0]    # smallest value
        high = rgb[-1, -1]  # largest value
        assert low[1] > low[0]   # green dominant
        assert high[0] > high[1]  # red dominant

    def test_colorize_nan_is_grey(self):
        grid = np.array([[np.nan, 500.0], [600.0, 700.0]])
        rgb = colorize(Heatmap(grid=grid, bounds=BoundingBox(0, 0, 1, 1)))
        assert rgb[0, 0].tolist() == [128, 128, 128]

    def test_ascii_dimensions(self):
        art = render_ascii(gradient_heatmap())
        lines = art.split("\n")
        assert len(lines) == 3
        assert all(len(line) == 4 for line in lines)

    def test_ascii_north_up(self):
        # Highest values are in the last grid row (north); rendered first.
        art = render_ascii(gradient_heatmap())
        assert art.split("\n")[0][-1] == "@"

    def test_ascii_nan_blank(self):
        grid = np.array([[np.nan, 500.0], [600.0, 700.0]])
        art = render_ascii(Heatmap(grid=grid, bounds=BoundingBox(0, 0, 1, 1)))
        assert " " in art

    def test_ppm_file(self, tmp_path):
        path = tmp_path / "map.ppm"
        render_ppm(gradient_heatmap(), path)
        data = path.read_bytes()
        assert data.startswith(b"P6\n4 3\n255\n")
        assert len(data) == len(b"P6\n4 3\n255\n") + 4 * 3 * 3
