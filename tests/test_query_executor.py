"""Tests for repro.query.executor — grouping, chunking, scatter.

These helpers sit under every fan-out path (the thread-pool plan
executor, the concurrent serving layer, the process pool's scatter
replication), so their edge cases are load-bearing: a wrong chunk split
silently reorders a batch, a wrong scatter silently swaps answers
between queries.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query.base import BatchResult, QueryBatch
from repro.query.executor import (
    QueryGroup,
    group_queries_by_window,
    scatter_results,
    split_chunks,
)


class TestSplitChunks:
    def test_more_chunks_than_items_collapses_to_singletons(self):
        chunks = split_chunks([1, 2, 3], 10)
        assert chunks == [[1], [2], [3]]

    def test_empty_input_yields_no_chunks(self):
        assert split_chunks([], 4) == []

    def test_single_chunk_is_the_whole_sequence(self):
        assert split_chunks([1, 2, 3, 4], 1) == [[1, 2, 3, 4]]

    def test_zero_chunks_rejected(self):
        with pytest.raises(ValueError):
            split_chunks([1], 0)

    def test_uneven_split_puts_extras_first(self):
        chunks = split_chunks(list(range(7)), 3)
        assert [len(c) for c in chunks] == [3, 2, 2]
        assert [v for chunk in chunks for v in chunk] == list(range(7))

    @given(
        items=st.lists(st.integers(), max_size=60),
        n=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=200, deadline=None)
    def test_round_trip_property(self, items, n):
        chunks = split_chunks(items, n)
        # Concatenation restores the input exactly, in order.
        assert [v for chunk in chunks for v in chunk] == items
        # No chunk is empty, and no more than n chunks exist.
        assert all(len(chunk) >= 1 for chunk in chunks)
        assert len(chunks) == min(n, len(items))
        # Near-equal: chunk sizes differ by at most one.
        if chunks:
            sizes = [len(chunk) for chunk in chunks]
            assert max(sizes) - min(sizes) <= 1


def _group(window_c, indices, batch):
    idx = np.asarray(indices, dtype=np.int64)
    return QueryGroup(window_c, idx, batch.take(idx))


def _result_for(group, value_of):
    values = np.array([value_of(t) for t in group.queries.t])
    support = np.arange(len(values), dtype=np.int64) + 1
    return BatchResult(group.queries, values, support)


class TestScatterResults:
    def test_mismatched_group_and_result_counts_rejected(self):
        batch = QueryBatch(np.arange(3.0), np.arange(3.0), np.arange(3.0))
        groups = [_group(0, [0, 1, 2], batch)]
        with pytest.raises(ValueError, match="one result per group"):
            scatter_results(groups, [], 3)

    def test_no_groups_yields_all_unanswered(self):
        out = scatter_results([], [], 4)
        assert len(out) == 4
        assert not out.answered.any()
        assert np.all(np.isnan(out.values))

    def test_interleaved_groups_restore_stream_order(self):
        t = np.array([0.0, 10.0, 1.0, 11.0, 2.0])
        batch = QueryBatch(t, t + 100.0, t + 200.0)
        groups = [
            _group(0, [0, 2, 4], batch),
            _group(1, [1, 3], batch),
        ]
        results = [_result_for(g, lambda ti: ti * 2.0) for g in groups]
        out = scatter_results(groups, results, len(batch))
        assert np.array_equal(out.queries.t, t)
        assert np.array_equal(out.queries.x, t + 100.0)
        assert np.array_equal(out.values, t * 2.0)
        assert out.answered.all()

    def test_unanswered_positions_stay_nan(self):
        t = np.array([0.0, 1.0, 2.0])
        batch = QueryBatch(t, t, t)
        groups = [_group(0, [1], batch)]
        out = scatter_results(groups, [_result_for(groups[0], float)], 3)
        assert out.answered.tolist() == [False, True, False]
        assert np.isnan(out.values[0]) and np.isnan(out.values[2])
        assert out.values[1] == 1.0

    @given(
        windows=st.lists(
            st.integers(min_value=0, max_value=4), min_size=1, max_size=50
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_group_then_scatter_round_trip_property(self, windows):
        # Any stream, any window assignment: grouping by window and
        # scattering per-group answers back must restore stream order
        # and answer every query from its own window's function.
        arr = np.array(windows, dtype=np.int64)
        n = len(arr)
        t = np.arange(n, dtype=float) + 0.25
        batch = QueryBatch(t, t * 3.0, t * 5.0)
        groups = group_queries_by_window(
            batch, window_for_time=None, windows_for_times=lambda ts: arr
        )
        assert sorted(int(g.window_c) for g in groups) == sorted(
            set(int(w) for w in windows)
        )
        results = []
        for g in groups:
            values = g.queries.t * 10.0 + float(g.window_c)
            results.append(
                BatchResult(
                    g.queries, values, np.ones(len(values), dtype=np.int64)
                )
            )
        out = scatter_results(groups, results, n)
        assert np.array_equal(out.queries.t, batch.t)
        assert np.array_equal(out.queries.x, batch.x)
        assert np.array_equal(out.queries.y, batch.y)
        assert np.array_equal(out.values, t * 10.0 + arr)
        assert out.answered.all()
