"""Tests for repro.server.async_server — the network front end.

Exercised over real sockets: HTTP via :mod:`http.client`, WebSocket via
a hand-rolled RFC 6455 client on a raw socket (the stdlib has no WS
client), both against a server bound to an ephemeral 127.0.0.1 port.
"""

import base64
import hashlib
import http.client
import json
import socket
import struct

import numpy as np
import pytest

from repro.app.webapp import WebInterface
from repro.geo.coords import BoundingBox
from repro.geo.region import RegionGrid
from repro.query.engine import QueryEngine
from repro.query.pipeline.parallel import ProcessShardedEngine
from repro.query.sharded import ShardedQueryEngine
from repro.server.async_server import (
    BackgroundServer,
    EngineQueryService,
    WebAppService,
)
from repro.storage.shards import ShardRouter

_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"


@pytest.fixture(scope="module")
def web(small_batch):
    return WebInterface(QueryEngine(small_batch, h=240))


@pytest.fixture(scope="module")
def served(web):
    with BackgroundServer(WebAppService(web)) as background:
        yield background


@pytest.fixture(scope="module")
def t_mid(small_batch):
    return float(small_batch.t[500])


def _post(port, path, payload):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request(
            "POST",
            path,
            body=json.dumps(payload),
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def _get(port, path):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


class TestHttpRoutes:
    def test_health(self, served):
        status, body = _get(served.port, "/health")
        assert status == 200
        assert body["status"] == "ok"
        assert set(body["modes"]) == {"point", "continuous", "heatmap"}

    def test_point_query_matches_in_process(self, served, web, t_mid):
        status, body = _post(
            served.port, "/query/point", {"t": t_mid, "x": 2000.0, "y": 1500.0}
        )
        assert status == 200
        expected = web.point_query(t_mid, 2000.0, 1500.0)
        assert body["co2_ppm"] == pytest.approx(expected.co2_ppm)
        assert body["text"] == expected.text

    def test_continuous_route(self, served, t_mid):
        status, body = _post(
            served.port,
            "/query/continuous",
            {
                "route": [[1000.0, 1000.0], [3000.0, 2200.0]],
                "t_start": t_mid,
                "updates": 8,
            },
        )
        assert status == 200
        readings = body["readings"]
        assert len(readings) == 8
        assert (readings[0]["x"], readings[0]["y"]) == (1000.0, 1000.0)
        assert all(r["marker_color"].startswith("#") for r in readings)

    def test_heatmap_grid_and_markers(self, served, web, t_mid):
        status, body = _post(
            served.port,
            "/query/heatmap",
            {"t": t_mid, "bounds": [0, 0, 6000, 4000], "nx": 10, "ny": 8},
        )
        assert status == 200
        grid = np.array(body["grid"], dtype=float)
        assert grid.shape == (8, 10)
        expected = web.heatmap(t_mid, BoundingBox(0, 0, 6000, 4000), nx=10, ny=8)
        assert np.allclose(grid, expected.grid)
        assert len(body["markers"]) >= 1

    def test_keep_alive_serves_sequential_requests(self, served, t_mid):
        conn = http.client.HTTPConnection("127.0.0.1", served.port, timeout=30)
        try:
            for _ in range(3):
                conn.request(
                    "POST",
                    "/query/point",
                    body=json.dumps({"t": t_mid, "x": 2000.0, "y": 1500.0}),
                )
                response = conn.getresponse()
                assert response.status == 200
                json.loads(response.read())
        finally:
            conn.close()

    def test_unknown_route_is_404(self, served):
        status, body = _get(served.port, "/nope")
        assert status == 404
        assert "error" in body

    def test_unknown_mode_is_404(self, served):
        status, body = _post(served.port, "/query/teleport", {"t": 0})
        assert status == 404

    def test_malformed_json_is_400(self, served):
        conn = http.client.HTTPConnection("127.0.0.1", served.port, timeout=30)
        try:
            conn.request("POST", "/query/point", body="{not json")
            response = conn.getresponse()
            assert response.status == 400
            assert "error" in json.loads(response.read())
        finally:
            conn.close()

    def test_missing_field_is_400(self, served):
        status, body = _post(served.port, "/query/point", {"t": 0.0, "x": 1.0})
        assert status == 400
        assert "'y'" in body["error"]


class _WsClient:
    """Minimal RFC 6455 client: handshake + masked text frames."""

    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=30)
        key = base64.b64encode(b"0123456789abcdef").decode()
        self.sock.sendall(
            (
                "GET /ws HTTP/1.1\r\n"
                f"Host: 127.0.0.1:{port}\r\n"
                "Upgrade: websocket\r\n"
                "Connection: Upgrade\r\n"
                f"Sec-WebSocket-Key: {key}\r\n"
                "Sec-WebSocket-Version: 13\r\n"
                "\r\n"
            ).encode()
        )
        head = b""
        while not head.endswith(b"\r\n\r\n"):
            chunk = self.sock.recv(4096)
            assert chunk, "server closed during handshake"
            head += chunk
        assert b"101" in head.split(b"\r\n", 1)[0]
        expected = base64.b64encode(
            hashlib.sha1((key + _WS_GUID).encode()).digest()
        ).decode()
        assert f"Sec-WebSocket-Accept: {expected}".encode() in head

    def _recv_exactly(self, n):
        data = b""
        while len(data) < n:
            chunk = self.sock.recv(n - len(data))
            assert chunk, "server closed mid-frame"
            data += chunk
        return data

    def send_frame(self, opcode, payload):
        mask = b"\x11\x22\x33\x44"
        masked = bytes(b ^ mask[i % 4] for i, b in enumerate(payload))
        head = bytes([0x80 | opcode])
        n = len(payload)
        if n < 126:
            head += bytes([0x80 | n])
        else:
            head += bytes([0x80 | 126]) + struct.pack(">H", n)
        self.sock.sendall(head + mask + masked)

    def recv_frame(self):
        b0, b1 = self._recv_exactly(2)
        assert not (b1 & 0x80), "server frames must be unmasked"
        length = b1 & 0x7F
        if length == 126:
            (length,) = struct.unpack(">H", self._recv_exactly(2))
        elif length == 127:
            (length,) = struct.unpack(">Q", self._recv_exactly(8))
        return b0 & 0x0F, self._recv_exactly(length)

    def request(self, payload):
        self.send_frame(0x1, json.dumps(payload).encode())
        opcode, data = self.recv_frame()
        assert opcode == 0x1
        return json.loads(data)

    def close(self):
        try:
            self.send_frame(0x8, b"")
            self.recv_frame()
        except AssertionError:
            pass
        self.sock.close()


class TestWebSocket:
    def test_point_over_websocket_matches_http(self, served, t_mid):
        client = _WsClient(served.port)
        try:
            ws_body = client.request(
                {"mode": "point", "t": t_mid, "x": 2000.0, "y": 1500.0}
            )
        finally:
            client.close()
        _, http_body = _post(
            served.port, "/query/point", {"t": t_mid, "x": 2000.0, "y": 1500.0}
        )
        assert ws_body == http_body

    def test_session_serves_multiple_modes(self, served, t_mid):
        client = _WsClient(served.port)
        try:
            point = client.request(
                {"mode": "point", "t": t_mid, "x": 2000.0, "y": 1500.0}
            )
            heatmap = client.request(
                {
                    "mode": "heatmap",
                    "t": t_mid,
                    "bounds": [0, 0, 6000, 4000],
                    "nx": 6,
                    "ny": 4,
                }
            )
        finally:
            client.close()
        assert point["mode"] == "point"
        assert np.array(heatmap["grid"]).shape == (4, 6)

    def test_ping_pong(self, served):
        client = _WsClient(served.port)
        try:
            client.send_frame(0x9, b"hello")
            opcode, payload = client.recv_frame()
            assert (opcode, payload) == (0xA, b"hello")
        finally:
            client.close()

    def test_bad_request_gets_error_frame_not_disconnect(self, served, t_mid):
        client = _WsClient(served.port)
        try:
            bad = client.request({"mode": "teleport"})
            assert "error" in bad
            good = client.request(
                {"mode": "point", "t": t_mid, "x": 2000.0, "y": 1500.0}
            )
            assert "error" not in good
        finally:
            client.close()


class TestEngineBackends:
    """The same network front end over the sharded / process engines."""

    def test_process_engine_answers_match_in_process_engine(self, small_dataset):
        def build_engine():
            router = ShardRouter(
                RegionGrid.for_shard_count(small_dataset.covered_bbox(), 4),
                h=500,
            )
            router.ingest(small_dataset.tuples)
            return ShardedQueryEngine(router, max_workers=1)

        oracle = build_engine()
        t = float(small_dataset.tuples.t[2000])
        bounds = small_dataset.covered_bbox()
        box = [bounds.min_x, bounds.min_y, bounds.max_x, bounds.max_y]
        with ProcessShardedEngine(build_engine(), processes=2) as facade:
            with BackgroundServer(EngineQueryService(facade)) as served:
                _, point = _post(
                    served.port,
                    "/query/point",
                    {"t": t, "x": 2000.0, "y": 1500.0},
                )
                _, heatmap = _post(
                    served.port,
                    "/query/heatmap",
                    {"t": t, "bounds": box, "nx": 6, "ny": 4},
                )
                assert facade.executor.fallbacks == 0
        expected_point = oracle.point_query(t, 2000.0, 1500.0)
        assert point["value"] == pytest.approx(expected_point.value)
        assert point["support"] == expected_point.support
        expected_grid = oracle.heatmap_grid(t, bounds, nx=6, ny=4)
        got = np.array(
            [[np.nan if v is None else v for v in row] for row in heatmap["grid"]]
        )
        assert np.array_equal(got, expected_grid, equal_nan=True)
        oracle.close()
