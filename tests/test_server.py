"""Tests for repro.server."""

import math

import numpy as np
import pytest

from repro.core.cover import ModelCover
from repro.network.messages import (
    ModelCoverResponse,
    ModelRequest,
    QueryRequest,
    ValueResponse,
)
from repro.server.server import EnviroMeterServer


@pytest.fixture()
def server(small_batch):
    srv = EnviroMeterServer(h=240)
    srv.ingest(small_batch)
    return srv


class TestIngestion:
    def test_ingest_counts(self, small_batch):
        srv = EnviroMeterServer()
        assert srv.ingest(small_batch) == len(small_batch)

    def test_no_data_raises(self):
        srv = EnviroMeterServer()
        with pytest.raises(RuntimeError):
            srv.current_window(0.0)


class TestCoverMaintenance:
    def test_cover_persisted_on_first_fit(self, server, small_batch):
        t = float(small_batch.t[100])
        server.cover_for(t)
        c = server.current_window(t)
        assert server.db.cover_blob_for_window(c) is not None

    def test_cover_reused_from_table(self, server, small_batch):
        t = float(small_batch.t[100])
        a = server.cover_for(t)
        b = server.cover_for(t)
        assert np.array_equal(a.centroids, b.centroids)
        # Only one blob stored for the window.
        table = server.db.table("model_cover")
        assert len(table) == 1

    def test_validity_horizon_applied(self, server, small_batch):
        t = float(small_batch.t[100])
        cover = server.cover_for(t)
        window_end = float(small_batch.t[239])
        assert cover.valid_until == pytest.approx(
            window_end + server.validity_horizon_s
        )

    def test_later_time_uses_later_window(self, server, small_batch):
        c_early = server.current_window(float(small_batch.t[10]))
        c_late = server.current_window(float(small_batch.t[1000]))
        assert c_late > c_early


class TestRequestHandling:
    def test_query_request(self, server, small_batch):
        t = float(small_batch.t[100])
        response = server.handle(QueryRequest(t=t, x=2000.0, y=1500.0))
        assert isinstance(response, ValueResponse)
        assert not math.isnan(response.value)
        assert server.served_values == 1

    def test_model_request(self, server, small_batch):
        t = float(small_batch.t[100])
        response = server.handle(ModelRequest(t=t, x=0.0, y=0.0))
        assert isinstance(response, ModelCoverResponse)
        cover = ModelCover.from_blob(response.blob)
        assert cover.size >= 1
        assert server.served_covers == 1

    def test_unknown_request(self, server):
        with pytest.raises(TypeError):
            server.handle("not-a-request")

    def test_ingest_invalidates_cache(self, server, small_batch):
        t = float(small_batch.t[100])
        server.handle(ModelRequest(t=t, x=0.0, y=0.0))
        # New data arrives; the server must rebuild covers lazily and not
        # crash on a stale snapshot.
        server.ingest(small_batch.slice(0, 10))
        response = server.handle(ModelRequest(t=t, x=0.0, y=0.0))
        assert isinstance(response, ModelCoverResponse)


class TestBatchedRequestHandling:
    def test_matches_scalar_handling(self, server, small_batch):
        """handle_many answers exactly as one handle() call per request,
        including requests spanning several windows."""
        requests = [
            QueryRequest(t=float(small_batch.t[i]), x=2000.0 + i, y=1500.0 - i)
            for i in (50, 300, 700, 120, 5)
        ]
        batched = server.handle_many(requests)
        scalar = [server.handle(r) for r in requests]
        assert len(batched) == len(scalar)
        for got, want in zip(batched, scalar):
            assert isinstance(got, ValueResponse)
            assert got.t == want.t
            assert got.value == pytest.approx(want.value, rel=1e-9)

    def test_mixed_request_types_keep_order(self, server, small_batch):
        t = float(small_batch.t[100])
        requests = [
            QueryRequest(t=t, x=2000.0, y=1500.0),
            ModelRequest(t=t, x=0.0, y=0.0),
            QueryRequest(t=t, x=2500.0, y=1200.0),
        ]
        responses = server.handle_many(requests)
        assert isinstance(responses[0], ValueResponse)
        assert isinstance(responses[1], ModelCoverResponse)
        assert isinstance(responses[2], ValueResponse)

    def test_served_values_counted(self, server, small_batch):
        t = float(small_batch.t[100])
        server.handle_many(
            [QueryRequest(t=t, x=2000.0 + i, y=1500.0) for i in range(5)]
        )
        assert server.served_values == 5

    def test_empty_batch(self, server):
        assert server.handle_many([]) == []
