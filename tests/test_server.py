"""Tests for repro.server."""

import math

import numpy as np
import pytest

from repro.core.cover import ModelCover
from repro.network.messages import (
    ModelCoverResponse,
    ModelRequest,
    QueryRequest,
    ValueResponse,
)
from repro.server.server import EnviroMeterServer


@pytest.fixture()
def server(small_batch):
    srv = EnviroMeterServer(h=240)
    srv.ingest(small_batch)
    return srv


class TestIngestion:
    def test_ingest_counts(self, small_batch):
        srv = EnviroMeterServer()
        assert srv.ingest(small_batch) == len(small_batch)

    def test_no_data_raises(self):
        srv = EnviroMeterServer()
        with pytest.raises(RuntimeError):
            srv.current_window(0.0)


class TestCoverMaintenance:
    def test_cover_persisted_on_first_fit(self, server, small_batch):
        t = float(small_batch.t[100])
        server.cover_for(t)
        c = server.current_window(t)
        assert server.db.cover_blob_for_window(c) is not None

    def test_cover_reused_from_table(self, server, small_batch):
        t = float(small_batch.t[100])
        a = server.cover_for(t)
        b = server.cover_for(t)
        assert np.array_equal(a.centroids, b.centroids)
        # Only one blob stored for the window.
        table = server.db.table("model_cover")
        assert len(table) == 1

    def test_validity_horizon_applied(self, server, small_batch):
        t = float(small_batch.t[100])
        cover = server.cover_for(t)
        window_end = float(small_batch.t[239])
        assert cover.valid_until == pytest.approx(
            window_end + server.validity_horizon_s
        )

    def test_later_time_uses_later_window(self, server, small_batch):
        c_early = server.current_window(float(small_batch.t[10]))
        c_late = server.current_window(float(small_batch.t[1000]))
        assert c_late > c_early


class TestRequestHandling:
    def test_query_request(self, server, small_batch):
        t = float(small_batch.t[100])
        response = server.handle(QueryRequest(t=t, x=2000.0, y=1500.0))
        assert isinstance(response, ValueResponse)
        assert not math.isnan(response.value)
        assert server.served_values == 1

    def test_model_request(self, server, small_batch):
        t = float(small_batch.t[100])
        response = server.handle(ModelRequest(t=t, x=0.0, y=0.0))
        assert isinstance(response, ModelCoverResponse)
        cover = ModelCover.from_blob(response.blob)
        assert cover.size >= 1
        assert server.served_covers == 1

    def test_unknown_request(self, server):
        with pytest.raises(TypeError):
            server.handle("not-a-request")

    def test_ingest_invalidates_cache(self, server, small_batch):
        t = float(small_batch.t[100])
        server.handle(ModelRequest(t=t, x=0.0, y=0.0))
        # New data arrives; the server must rebuild covers lazily and not
        # crash on a stale snapshot.
        server.ingest(small_batch.slice(0, 10))
        response = server.handle(ModelRequest(t=t, x=0.0, y=0.0))
        assert isinstance(response, ModelCoverResponse)


class TestBatchedRequestHandling:
    def test_matches_scalar_handling(self, server, small_batch):
        """handle_many answers exactly as one handle() call per request,
        including requests spanning several windows."""
        requests = [
            QueryRequest(t=float(small_batch.t[i]), x=2000.0 + i, y=1500.0 - i)
            for i in (50, 300, 700, 120, 5)
        ]
        batched = server.handle_many(requests)
        scalar = [server.handle(r) for r in requests]
        assert len(batched) == len(scalar)
        for got, want in zip(batched, scalar):
            assert isinstance(got, ValueResponse)
            assert got.t == want.t
            assert got.value == pytest.approx(want.value, rel=1e-9)

    def test_mixed_request_types_keep_order(self, server, small_batch):
        t = float(small_batch.t[100])
        requests = [
            QueryRequest(t=t, x=2000.0, y=1500.0),
            ModelRequest(t=t, x=0.0, y=0.0),
            QueryRequest(t=t, x=2500.0, y=1200.0),
        ]
        responses = server.handle_many(requests)
        assert isinstance(responses[0], ValueResponse)
        assert isinstance(responses[1], ModelCoverResponse)
        assert isinstance(responses[2], ValueResponse)

    def test_served_values_counted(self, server, small_batch):
        t = float(small_batch.t[100])
        server.handle_many(
            [QueryRequest(t=t, x=2000.0 + i, y=1500.0) for i in range(5)]
        )
        assert server.served_values == 5

    def test_empty_batch(self, server):
        assert server.handle_many([]) == []


class TestVectorizedWindowAssignment:
    def test_windows_for_matches_scalar(self, server, small_batch):
        ts = [float(small_batch.t[i]) for i in (0, 5, 300, 700, 1200)]
        ts.append(float(small_batch.t[0]) - 1.0)  # before the stream
        vec = server.windows_for(ts)
        assert vec.tolist() == [server.current_window(t) for t in ts]

    def test_windows_for_empty_server(self):
        with pytest.raises(RuntimeError):
            EnviroMeterServer().windows_for([0.0])


class TestIncrementalSnapshot:
    def test_snapshot_reused_across_ingests(self, small_batch):
        """After N small ingests a query never rebuilds history: the
        stream snapshot is a zero-copy view and sealed windows are served
        from the cached views."""
        server = EnviroMeterServer(h=240)
        step = 100
        for start in range(0, 1200, step):
            server.ingest(small_batch.slice(start, start + step))
        sealed_before = [server.db.window_view(c) for c in server.db.sealed_window_ids()]
        snap = server._tuples()
        assert snap.is_view_of(server.db.raw_tuples())

        server.ingest(small_batch.slice(1200, 1300))
        # Sealed windows: identical cached objects, no re-slicing/copying.
        for c, view in enumerate(sealed_before):
            assert server.db.window_view(c) is view
        # The refreshed snapshot shares storage with the old one (the
        # ingest extended it in place rather than rebuilding).
        assert server._tuples().is_view_of(snap)

    def test_query_after_many_ingests_never_concatenates(
        self, small_batch, monkeypatch
    ):
        server = EnviroMeterServer(h=240)
        for start in range(0, 1200, 60):
            server.ingest(small_batch.slice(start, start + 60))
        t = float(small_batch.t[100])
        server.handle(QueryRequest(t=t, x=2000.0, y=1500.0))  # fit once
        monkeypatch.setattr(
            np, "concatenate", lambda *a, **k: pytest.fail("full-history copy")
        )
        server.ingest(small_batch.slice(1200, 1260))
        response = server.handle(QueryRequest(t=t, x=2000.0, y=1500.0))
        assert not math.isnan(response.value)

    def test_untouched_window_cover_cache_survives_ingest(self, small_batch):
        server = EnviroMeterServer(h=240)
        server.ingest(small_batch.slice(0, 1200))
        t = float(small_batch.t[100])
        server.handle(QueryRequest(t=t, x=2000.0, y=1500.0))
        fits = server.builder_fit_count
        assert server._builder.cached_windows() == (0,)
        server.ingest(small_batch.slice(1200, 1300))  # touches window 5 only
        assert server._builder.cached_windows() == (0,)
        server.handle(QueryRequest(t=t, x=2000.0, y=1500.0))
        assert server.builder_fit_count == fits


class TestInterleavedIngestConvergence:
    def test_premature_cover_refit_once_window_fills(self, small_batch):
        """A cover fitted while its window was still filling must be refit
        after more of the window's tuples arrive — interleaved ingest and
        query converges to the one-shot server's answer."""
        t = float(small_batch.t[100])
        request = QueryRequest(t=t, x=2000.0, y=1500.0)

        one_shot = EnviroMeterServer(h=240)
        one_shot.ingest(small_batch.slice(0, 480))
        want = one_shot.handle(request)

        interleaved = EnviroMeterServer(h=240)
        interleaved.ingest(small_batch.slice(0, 100))
        premature = interleaved.handle(request)  # window 0 only partial
        interleaved.ingest(small_batch.slice(100, 480))
        got = interleaved.handle(request)
        assert got.value == pytest.approx(want.value, abs=0.0)
        assert interleaved.builder_fit_count == 2  # partial fit + one refit
        assert premature.value != want.value  # the stale answer it replaced


class TestDatabasePartitionValidation:
    def test_mismatched_partition_rejected(self):
        from repro.storage.engine import Database

        with pytest.raises(ValueError, match="partition_h"):
            EnviroMeterServer(h=40, database=Database.for_enviro_meter())

    def test_unpartitioned_database_adopts_server_h(self, small_batch):
        from repro.storage.engine import Database

        db = Database()
        db.create_table(
            "raw_tuples", Database.for_enviro_meter().table("raw_tuples").schema
        )
        db.create_table(
            "model_cover", Database.for_enviro_meter().table("model_cover").schema
        )
        server = EnviroMeterServer(h=240, database=db)
        assert db.partition_h == 240
        server.ingest(small_batch.slice(0, 300))
        assert list(db.sealed_window_ids()) == [0]
