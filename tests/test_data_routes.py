"""Tests for repro.data.routes."""


import pytest

from repro.data.routes import BusRoute, lausanne_routes


def straight_route(**kwargs):
    defaults = dict(
        name="test",
        waypoints=((0.0, 0.0), (1000.0, 0.0)),
        speed_mps=10.0,
        service_start_h=6.0,
        service_end_h=22.0,
        dwell_s=0.0,
    )
    defaults.update(kwargs)
    return BusRoute(**defaults)


class TestBusRouteValidation:
    def test_needs_two_waypoints(self):
        with pytest.raises(ValueError):
            straight_route(waypoints=((0.0, 0.0),))

    def test_positive_speed(self):
        with pytest.raises(ValueError):
            straight_route(speed_mps=0.0)

    def test_service_window(self):
        with pytest.raises(ValueError):
            straight_route(service_start_h=23.0, service_end_h=6.0)


class TestGeometry:
    def test_length(self):
        route = straight_route(waypoints=((0, 0), (300, 400)))
        assert route.length_m == pytest.approx(500.0)

    def test_leg_lengths(self):
        route = straight_route(waypoints=((0, 0), (100, 0), (100, 50)))
        assert route.leg_lengths() == pytest.approx([100.0, 50.0])

    def test_position_at_offset_midpoint(self):
        route = straight_route()
        assert route.position_at_offset(500.0) == pytest.approx((500.0, 0.0))

    def test_position_at_offset_clamped(self):
        route = straight_route()
        assert route.position_at_offset(-50.0) == (0.0, 0.0)
        assert route.position_at_offset(99_999.0) == (1000.0, 0.0)

    def test_position_across_legs(self):
        route = straight_route(waypoints=((0, 0), (100, 0), (100, 100)))
        x, y = route.position_at_offset(150.0)
        assert (x, y) == pytest.approx((100.0, 50.0))


class TestService:
    def test_in_service(self):
        route = straight_route()
        assert route.in_service(10 * 3600.0)
        assert not route.in_service(3 * 3600.0)
        assert not route.in_service(22 * 3600.0)  # end is exclusive

    def test_shuttle_returns(self):
        route = straight_route()
        one_way = route.one_way_duration_s()
        # At twice the one-way time (plus terminus dwell = 0) the bus is
        # back near the start.
        x, y = route.position_at_service_time(2 * one_way)
        assert x == pytest.approx(0.0, abs=1.0)

    def test_midpoint_of_run(self):
        route = straight_route()
        x, y = route.position_at_service_time(route.one_way_duration_s() / 2)
        assert x == pytest.approx(500.0, abs=1.0)

    def test_positions_stay_on_route(self):
        route = straight_route(waypoints=((0, 0), (100, 0), (100, 100)))
        for k in range(50):
            x, y = route.position_at_service_time(k * 7.3)
            assert -1 <= x <= 101
            assert -1 <= y <= 101


class TestLausanneRoutes:
    def test_two_routes(self):
        a, b = lausanne_routes()
        assert a.name != b.name
        assert a.length_m > 3000
        assert b.length_m > 2000

    def test_depots_differ(self):
        a, b = lausanne_routes()
        assert a.depot != b.depot
