"""Tests for repro.storage.shards."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.data.tuples import TupleBatch
from repro.data.windows import window, window_boundaries_in, windows_for_times
from repro.geo.coords import BoundingBox
from repro.geo.region import RegionGrid
from repro.storage.shards import ShardRouter, single_shard_router

BOUNDS = BoundingBox(0.0, 0.0, 6000.0, 4000.0)

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


def make_stream(n: int, seed: int = 0) -> TupleBatch:
    rng = np.random.default_rng(seed)
    return TupleBatch(
        np.cumsum(rng.uniform(1.0, 30.0, n)),
        rng.uniform(-500.0, 6500.0, n),   # includes out-of-bounds positions
        rng.uniform(-500.0, 4500.0, n),
        rng.uniform(350.0, 600.0, n),
    )


def fill(router: ShardRouter, stream: TupleBatch, pieces: int = 4) -> None:
    step = max(1, len(stream) // pieces)
    for start in range(0, len(stream), step):
        router.ingest(stream.slice(start, min(start + step, len(stream))))


class TestWindowBoundaries:
    def test_boundaries_in_range(self):
        assert list(window_boundaries_in(0, 10, 4)) == [4, 8]
        assert list(window_boundaries_in(3, 5, 4)) == [4, 8]
        assert list(window_boundaries_in(4, 3, 4)) == []
        assert list(window_boundaries_in(4, 4, 4)) == [8]
        assert list(window_boundaries_in(0, 0, 4)) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            window_boundaries_in(0, 1, 0)
        with pytest.raises(ValueError):
            window_boundaries_in(-1, 1, 4)
        with pytest.raises(ValueError):
            window_boundaries_in(0, -1, 4)


class TestRouting:
    def test_ingest_routes_to_owner_only(self):
        router = ShardRouter(RegionGrid(BOUNDS, nx=2, ny=2), h=16)
        stream = make_stream(100)
        delivered = router.ingest(stream)
        owners = router.grid.shards_of(stream.x, stream.y)
        for s in range(4):
            assert delivered[s] == int(np.sum(owners == s))
            assert router.database(s).raw_count() == delivered[s]
        assert router.global_count() == 100
        assert sum(router.shard_counts()) == 100

    def test_empty_batch_is_noop(self):
        router = single_shard_router(h=8)
        assert router.ingest(TupleBatch.empty()) == [0]
        assert router.global_count() == 0

    def test_shard_streams_stay_time_sorted(self):
        router = ShardRouter(RegionGrid(BOUNDS, nx=3, ny=2), h=16)
        fill(router, make_stream(200))
        for s in range(router.n_shards):
            batch = router.database(s).raw_tuples()
            assert batch.is_time_sorted()

    def test_gids_strictly_increasing_and_partition_global_ids(self):
        router = ShardRouter(RegionGrid(BOUNDS, nx=2, ny=2), h=16)
        fill(router, make_stream(150), pieces=5)
        all_gids = np.concatenate(
            [router.shard_gids(s) for s in range(router.n_shards)]
        )
        assert len(all_gids) == 150
        np.testing.assert_array_equal(np.sort(all_gids), np.arange(150))
        for s in range(router.n_shards):
            gids = router.shard_gids(s)
            assert np.all(np.diff(gids) > 0) if len(gids) > 1 else True


class TestGlobalWindowAlignment:
    @_SETTINGS
    @given(
        n=st.integers(min_value=1, max_value=200),
        h=st.integers(min_value=1, max_value=33),
        pieces=st.integers(min_value=1, max_value=7),
        nx=st.integers(min_value=1, max_value=3),
        ny=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_shard_windows_partition_global_window(self, n, h, pieces, nx, ny, seed):
        """For every global window: the union of per-shard slices is
        exactly the global window's tuples, and each slice preserves
        global stream order (checked via gids)."""
        stream = make_stream(n, seed=seed)
        router = ShardRouter(RegionGrid(BOUNDS, nx=nx, ny=ny), h=h)
        fill(router, stream, pieces=pieces)
        assert router.global_window_count() == (n + h - 1) // h
        for c in range(router.global_window_count()):
            expected = window(stream, c, h)
            rows = []
            for s in range(router.n_shards):
                part = router.shard_window(s, c)
                gids = router.shard_window_gids(s, c)
                assert len(part) == len(gids)
                for k in range(len(part)):
                    rows.append((int(gids[k]), part.row(k)))
            rows.sort()
            assert len(rows) == len(expected)
            for (gid, row), k in zip(rows, range(len(expected))):
                assert gid == c * h + k
                assert row == expected.row(k)

    def test_window_index_errors(self):
        router = single_shard_router(h=8)
        router.ingest(make_stream(10))
        with pytest.raises(IndexError):
            router.shard_window(0, 99)
        with pytest.raises(ValueError):
            router.shard_window(0, -1)
        with pytest.raises(IndexError):
            router.shard_window_gids(0, 99)

    @_SETTINGS
    @given(
        n=st.integers(min_value=1, max_value=200),
        h=st.integers(min_value=1, max_value=33),
        nx=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_windows_for_times_matches_single_stream(self, n, h, nx, seed):
        stream = make_stream(n, seed=seed)
        router = ShardRouter(RegionGrid(BOUNDS, nx=nx, ny=2), h=h)
        fill(router, stream)
        probes = np.concatenate(
            (
                stream.t,
                [stream.t[0] - 10.0, float(stream.t[-1]) + 10.0],
                stream.t[: max(1, n // 3)] + 0.05,
            )
        )
        expected = windows_for_times(stream.t, probes, h)
        np.testing.assert_array_equal(router.windows_for_times(probes), expected)

    def test_windows_for_times_requires_data(self):
        router = single_shard_router(h=8)
        with pytest.raises(RuntimeError):
            router.windows_for_times([1.0])


class TestValidation:
    def test_h_must_be_positive(self):
        with pytest.raises(ValueError):
            ShardRouter(RegionGrid(BOUNDS, nx=1, ny=1), h=0)

    def test_cuts_are_copies(self):
        router = single_shard_router(h=4)
        router.ingest(make_stream(10))
        cuts = router.cuts(0)
        cuts.append(999)
        assert router.cuts(0) != cuts
