"""Tests for repro.core.adkmn — the paper's core algorithm."""

import numpy as np
import pytest

from repro.core.adkmn import AdKMNConfig, fit_adkmn
from repro.data.tuples import TupleBatch


def stepped_field_batch(n_per_cell=50, seed=0):
    """Four spatial quadrants with sharply different levels: a field a
    single linear model cannot capture, forcing adaptive splits."""
    rng = np.random.default_rng(seed)
    xs, ys, ss = [], [], []
    levels = {(0, 0): 400.0, (1, 0): 600.0, (0, 1): 800.0, (1, 1): 1000.0}
    for (qx, qy), level in levels.items():
        xs.extend(rng.uniform(qx * 1000, qx * 1000 + 900, n_per_cell))
        ys.extend(rng.uniform(qy * 1000, qy * 1000 + 900, n_per_cell))
        ss.extend(level + rng.normal(0, 5, n_per_cell))
    n = len(xs)
    return TupleBatch(np.arange(n) * 10.0, np.array(xs), np.array(ys), np.array(ss))


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tau_n_pct": 0.0},
            {"initial_k": 0},
            {"max_models": 1, "initial_k": 2},
            {"max_rounds": 0},
            {"min_split_size": 1},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            AdKMNConfig(**kwargs)


class TestAdaptivity:
    def test_splits_until_threshold(self):
        batch = stepped_field_batch()
        result = fit_adkmn(batch, AdKMNConfig(tau_n_pct=2.0))
        assert result.converged
        assert result.cover.size >= 4  # at least one model per quadrant
        assert result.worst_error_pct <= 2.0

    def test_no_split_when_field_is_simple(self):
        rng = np.random.default_rng(0)
        n = 200
        x = rng.uniform(0, 1000, n)
        y = rng.uniform(0, 1000, n)
        s = 400 + 0.01 * x  # gentle plane, well within tau
        batch = TupleBatch(np.zeros(n), x, y, s)
        result = fit_adkmn(batch, AdKMNConfig(tau_n_pct=2.0, initial_k=2))
        assert result.cover.size == 2  # stays at the k-means start
        assert result.rounds == 1

    def test_tighter_tau_gives_more_models(self):
        batch = stepped_field_batch()
        loose = fit_adkmn(batch, AdKMNConfig(tau_n_pct=10.0))
        tight = fit_adkmn(batch, AdKMNConfig(tau_n_pct=1.0))
        assert tight.cover.size >= loose.cover.size

    def test_max_models_cap(self):
        batch = stepped_field_batch()
        result = fit_adkmn(batch, AdKMNConfig(tau_n_pct=0.1, max_models=5))
        assert result.cover.size <= 5

    def test_min_split_size_blocks_tiny_regions(self):
        batch = stepped_field_batch(n_per_cell=6)  # 24 tuples total
        result = fit_adkmn(
            batch, AdKMNConfig(tau_n_pct=0.5, min_split_size=16, initial_k=2)
        )
        # Regions of ~12 tuples cannot split further.
        assert result.cover.size <= 4

    def test_labels_match_nearest_centroid(self):
        batch = stepped_field_batch()
        result = fit_adkmn(batch, AdKMNConfig())
        pts = batch.positions()
        d2 = np.sum(
            (pts[:, None, :] - result.cover.centroids[None, :, :]) ** 2, axis=2
        )
        assert np.array_equal(result.labels, np.argmin(d2, axis=1))

    def test_deterministic(self):
        batch = stepped_field_batch()
        a = fit_adkmn(batch, AdKMNConfig(seed=3))
        b = fit_adkmn(batch, AdKMNConfig(seed=3))
        assert np.array_equal(a.cover.centroids, b.cover.centroids)

    def test_region_errors_reported_per_model(self):
        batch = stepped_field_batch()
        result = fit_adkmn(batch, AdKMNConfig())
        assert len(result.region_errors_pct) == result.cover.size


class TestEdgeCases:
    def test_empty_window(self):
        with pytest.raises(ValueError):
            fit_adkmn(TupleBatch.empty())

    def test_single_tuple(self):
        batch = TupleBatch([0.0], [1.0], [1.0], [400.0])
        result = fit_adkmn(batch, AdKMNConfig(initial_k=2))
        assert result.cover.size == 1  # k clamped to n

    def test_valid_until_defaults_to_window_end(self):
        batch = stepped_field_batch()
        result = fit_adkmn(batch)
        assert result.cover.valid_until == float(np.max(batch.t))

    def test_valid_until_override(self):
        batch = stepped_field_batch()
        result = fit_adkmn(batch, valid_until=1e9, window_c=7)
        assert result.cover.valid_until == 1e9
        assert result.cover.window_c == 7

    def test_family_propagates(self):
        batch = stepped_field_batch()
        result = fit_adkmn(batch, AdKMNConfig(family="mean", tau_n_pct=5.0))
        assert result.cover.family == "mean"
        assert result.cover.models[0].family == "mean"
