"""Tests for repro.query.naive."""

import numpy as np
import pytest

from repro.data.tuples import QueryTuple, TupleBatch
from repro.query.naive import NaiveProcessor


def cross_batch():
    """Five tuples: one at the origin, four 100 m away on the axes."""
    xs = [0.0, 100.0, -100.0, 0.0, 0.0]
    ys = [0.0, 0.0, 0.0, 100.0, -100.0]
    ss = [400.0, 410.0, 420.0, 430.0, 440.0]
    return TupleBatch(np.zeros(5), xs, ys, ss)


class TestRadiusAverage:
    def test_averages_within_radius(self):
        proc = NaiveProcessor(cross_batch(), radius_m=150.0)
        res = proc.process(QueryTuple(0, 0, 0))
        assert res.value == pytest.approx(np.mean([400, 410, 420, 430, 440]))
        assert res.support == 5

    def test_tight_radius_hits_centre_only(self):
        proc = NaiveProcessor(cross_batch(), radius_m=50.0)
        res = proc.process(QueryTuple(0, 0, 0))
        assert res.value == 400.0
        assert res.support == 1

    def test_boundary_inclusive(self):
        proc = NaiveProcessor(cross_batch(), radius_m=100.0)
        assert proc.process(QueryTuple(0, 0, 0)).support == 5

    def test_no_data_returns_none(self):
        proc = NaiveProcessor(cross_batch(), radius_m=50.0)
        res = proc.process(QueryTuple(0, 5000, 5000))
        assert res.value is None
        assert not res.answered
        assert res.support == 0

    def test_negative_radius(self):
        with pytest.raises(ValueError):
            NaiveProcessor(cross_batch(), radius_m=-1)

    def test_empty_window(self):
        proc = NaiveProcessor(TupleBatch.empty(), radius_m=100.0)
        assert proc.process(QueryTuple(0, 0, 0)).value is None

    def test_name(self):
        assert NaiveProcessor(cross_batch()).name == "naive"
