"""Tests for repro.models.polynomial."""

import numpy as np
import pytest

from repro.data.tuples import TupleBatch
from repro.models.polynomial import PolynomialModel


def quadratic_batch(n=100, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 1000, n)
    y = rng.uniform(0, 1000, n)
    s = 400 + 0.1 * x + 0.05 * y + 1e-4 * (x - 500) ** 2
    return TupleBatch(np.zeros(n), x, y, s), s


class TestFit:
    def test_fits_quadratic_surface(self):
        batch, s = quadratic_batch()
        model = PolynomialModel.fit(batch)
        pred = model.predict_batch(batch.t, batch.x, batch.y)
        assert np.max(np.abs(pred - s)) < 1.0

    def test_beats_linear_on_curved_field(self):
        from repro.models.linear import LinearModel

        batch, s = quadratic_batch()
        poly = PolynomialModel.fit(batch)
        linear = LinearModel.fit(batch)
        poly_rmse = np.sqrt(np.mean((poly.predict_batch(batch.t, batch.x, batch.y) - s) ** 2))
        lin_rmse = np.sqrt(np.mean((linear.predict_batch(batch.t, batch.x, batch.y) - s) ** 2))
        assert poly_rmse < lin_rmse / 2

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            PolynomialModel.fit(TupleBatch.empty())

    def test_degenerate_single_position(self):
        batch = TupleBatch([0.0, 1.0], [5.0, 5.0], [5.0, 5.0], [400.0, 410.0])
        model = PolynomialModel.fit(batch)
        assert model.predict(0, 5, 5) == pytest.approx(405.0, abs=1.0)


class TestWire:
    def test_round_trip(self):
        batch, _ = quadratic_batch()
        model = PolynomialModel.fit(batch)
        rebuilt = PolynomialModel.from_coefficients(model.coefficients())
        assert rebuilt.predict(0, 321, 654) == pytest.approx(model.predict(0, 321, 654))

    def test_coefficient_count(self):
        batch, _ = quadratic_batch()
        assert len(PolynomialModel.fit(batch).coefficients()) == 9

    def test_wrong_arity(self):
        with pytest.raises(ValueError):
            PolynomialModel.from_coefficients(tuple(range(5)))

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            PolynomialModel(b=(0.0,) * 6, x0=0, y0=0, scale=0.0)
