"""Tests for repro.client.osha."""

import pytest

from repro.client.osha import (
    OSHA_STEL_PPM,
    OSHA_TWA_PPM,
    HealthLevel,
    classify_co2,
    color_for_level,
    describe_co2,
    is_acceptable,
)


class TestClassification:
    def test_fresh_air(self):
        assert classify_co2(400.0) is HealthLevel.FRESH

    def test_urban(self):
        assert classify_co2(600.0) is HealthLevel.ACCEPTABLE

    def test_elevated(self):
        assert classify_co2(1000.0) is HealthLevel.ELEVATED

    def test_poor(self):
        assert classify_co2(3000.0) is HealthLevel.POOR

    def test_unsafe_above_twa(self):
        assert classify_co2(OSHA_TWA_PPM) is HealthLevel.UNSAFE

    def test_hazardous_above_stel(self):
        assert classify_co2(OSHA_STEL_PPM) is HealthLevel.HAZARDOUS

    def test_monotone_in_concentration(self):
        levels = [classify_co2(ppm) for ppm in (300, 500, 1000, 2000, 10_000, 50_000)]
        assert levels == sorted(levels)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            classify_co2(-1.0)


class TestPresentation:
    def test_describe_contains_value_and_verdict(self):
        text = describe_co2(420.0)
        assert "420" in text
        assert "Fresh" in text

    def test_colors_go_green_to_red(self):
        assert color_for_level(HealthLevel.FRESH) == "#2ecc40"
        assert color_for_level(HealthLevel.UNSAFE) == "#ff4136"
        # Every level has a colour.
        for level in HealthLevel:
            assert color_for_level(level).startswith("#")

    def test_acceptable_thresholds(self):
        assert is_acceptable(450.0)
        assert is_acceptable(4999.0)
        assert not is_acceptable(5001.0)
