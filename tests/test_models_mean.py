"""Tests for repro.models.mean."""

import numpy as np
import pytest

from repro.data.tuples import TupleBatch
from repro.models.mean import MeanModel


class TestFit:
    def test_predicts_mean_everywhere(self, tiny_batch):
        model = MeanModel.fit(tiny_batch)
        expected = float(np.mean(tiny_batch.s))
        assert model.predict(0, 0, 0) == pytest.approx(expected)
        assert model.predict(99, 1e6, -1e6) == pytest.approx(expected)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            MeanModel.fit(TupleBatch.empty())

    def test_single_tuple(self):
        batch = TupleBatch([0.0], [1.0], [2.0], [450.0])
        assert MeanModel.fit(batch).predict(0, 0, 0) == 450.0


class TestPredictBatch:
    def test_shape_broadcast(self, tiny_batch):
        model = MeanModel.fit(tiny_batch)
        out = model.predict_batch(np.zeros(5), np.zeros(5), np.zeros(5))
        assert out.shape == (5,)
        assert np.all(out == out[0])


class TestWire:
    def test_coefficients_round_trip(self, tiny_batch):
        model = MeanModel.fit(tiny_batch)
        coeffs = model.coefficients()
        assert len(coeffs) == 1
        rebuilt = MeanModel.from_coefficients(coeffs)
        assert rebuilt.predict(1, 2, 3) == model.predict(1, 2, 3)

    def test_wrong_arity(self):
        with pytest.raises(ValueError):
            MeanModel.from_coefficients((1.0, 2.0))
