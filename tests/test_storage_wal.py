"""Tests for repro.storage.wal — the append-only write-ahead log.

The WAL's contract is prefix durability: replay returns exactly the
records of the longest valid prefix, and *any* torn tail — a crash mid
append, at every possible byte length — is detected and discarded, never
misparsed.  The truncation test enumerates every byte length of a
multi-record log and checks replay yields precisely the records that
fully fit.
"""

import numpy as np
import pytest

from repro.data.tuples import TupleBatch
from repro.storage.wal import WriteAheadLog, replay_wal

_HEADER_SIZE = 20  # <IQII


def _batch(n: int, seed: int = 0) -> TupleBatch:
    rng = np.random.default_rng(seed)
    return TupleBatch(
        np.cumsum(rng.uniform(0.5, 5.0, n)),
        rng.uniform(0.0, 100.0, n),
        rng.uniform(0.0, 100.0, n),
        rng.uniform(350.0, 600.0, n),
    )


def _assert_batches_equal(a: TupleBatch, b: TupleBatch) -> None:
    for name in ("t", "x", "y", "s"):
        assert getattr(a, name).tobytes() == getattr(b, name).tobytes()


class TestAppendReplay:
    def test_round_trip_multiple_records(self, tmp_path):
        path = tmp_path / "wal.log"
        batches = [_batch(5, 0), _batch(3, 1), _batch(8, 2)]
        with WriteAheadLog(path) as wal:
            row = 0
            for batch in batches:
                wal.append(row, batch)
                row += len(batch)
            assert wal.appends == 3
        replay = replay_wal(path)
        assert not replay.torn
        assert replay.valid_bytes == path.stat().st_size
        assert [start for start, _ in replay.records] == [0, 5, 8]
        assert replay.rows == 16
        for (_, got), want in zip(replay.records, batches):
            _assert_batches_equal(got, want)

    def test_missing_file_replays_empty(self, tmp_path):
        replay = replay_wal(tmp_path / "nope.log")
        assert replay.records == ()
        assert replay.rows == 0
        assert not replay.torn

    def test_empty_file_replays_empty(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"")
        replay = replay_wal(path)
        assert replay.records == ()
        assert not replay.torn

    def test_append_after_close_rejected(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.close()
        with pytest.raises(ValueError, match="closed"):
            wal.append(0, _batch(1))

    def test_reopen_appends_after_existing_records(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append(0, _batch(4, 0))
        with WriteAheadLog(path) as wal:
            wal.append(4, _batch(2, 1))
        replay = replay_wal(path)
        assert [start for start, _ in replay.records] == [0, 4]
        assert replay.rows == 6


class TestTornTail:
    def _log_with_boundaries(self, path):
        """A 3-record log plus the byte offsets where records end."""
        batches = [_batch(4, 0), _batch(2, 1), _batch(5, 2)]
        boundaries = [0]
        with WriteAheadLog(path) as wal:
            row = 0
            for batch in batches:
                wal.append(row, batch)
                row += len(batch)
                boundaries.append(
                    boundaries[-1] + _HEADER_SIZE + 4 * 8 * len(batch)
                )
        assert path.stat().st_size == boundaries[-1]
        return batches, boundaries

    def test_every_truncation_length_recovers_the_durable_prefix(self, tmp_path):
        """For every possible torn-tail length, replay returns exactly the
        records that fully fit, flags the torn remainder, and never
        raises."""
        path = tmp_path / "wal.log"
        batches, boundaries = self._log_with_boundaries(path)
        pristine = path.read_bytes()
        for length in range(len(pristine) + 1):
            path.write_bytes(pristine[:length])
            replay = replay_wal(path)
            n_complete = sum(1 for b in boundaries[1:] if b <= length)
            assert len(replay.records) == n_complete
            assert replay.valid_bytes == boundaries[n_complete]
            assert replay.torn == (length > boundaries[n_complete])
            for (_, got), want in zip(replay.records, batches):
                _assert_batches_equal(got, want)

    def test_corrupt_payload_ends_the_replay(self, tmp_path):
        path = tmp_path / "wal.log"
        _, boundaries = self._log_with_boundaries(path)
        data = bytearray(path.read_bytes())
        data[boundaries[1] + _HEADER_SIZE + 3] ^= 0xFF  # record 2's payload
        path.write_bytes(bytes(data))
        replay = replay_wal(path)
        assert len(replay.records) == 1
        assert replay.valid_bytes == boundaries[1]
        assert replay.torn

    def test_corrupt_header_ends_the_replay(self, tmp_path):
        path = tmp_path / "wal.log"
        _, boundaries = self._log_with_boundaries(path)
        data = bytearray(path.read_bytes())
        data[boundaries[1]] ^= 0xFF  # record 2's magic
        path.write_bytes(bytes(data))
        replay = replay_wal(path)
        assert len(replay.records) == 1
        assert replay.torn

    def test_gap_in_start_rows_ends_the_replay(self, tmp_path):
        """A record starting past its predecessor's coverage means records
        were lost; nothing after the gap can be trusted."""
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append(0, _batch(4, 0))
            wal.append(10, _batch(2, 1))  # rows 4..9 are missing
        replay = replay_wal(path)
        assert len(replay.records) == 1
        assert replay.rows == 4
        assert replay.torn

    def test_overlapping_start_rows_are_kept(self, tmp_path):
        """Overlap (a checkpoint/seal race) is legal — the recoverer skips
        already-covered rows by absolute start_row; replay keeps both."""
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append(0, _batch(4, 0))
            wal.append(2, _batch(3, 1))
        replay = replay_wal(path)
        assert [start for start, _ in replay.records] == [0, 2]
        assert not replay.torn


class TestCheckpoint:
    def test_checkpoint_keeps_only_the_tail(self, tmp_path):
        path = tmp_path / "wal.log"
        tail = _batch(3, 9)
        with WriteAheadLog(path) as wal:
            wal.append(0, _batch(10, 0))
            wal.append(10, _batch(10, 1))
            wal.checkpoint(16, tail)
            assert wal.checkpoints == 1
        replay = replay_wal(path)
        assert len(replay.records) == 1
        start, got = replay.records[0]
        assert start == 16
        _assert_batches_equal(got, tail)

    def test_checkpoint_with_empty_tail_empties_the_log(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append(0, _batch(10, 0))
            wal.checkpoint(10, TupleBatch.empty())
        assert path.stat().st_size == 0
        assert replay_wal(path).records == ()

    def test_appends_continue_after_checkpoint(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append(0, _batch(10, 0))
            wal.checkpoint(8, _batch(2, 1))
            wal.append(10, _batch(4, 2))
        replay = replay_wal(path)
        assert [start for start, _ in replay.records] == [8, 10]
        assert replay.rows == 6
        assert not replay.torn

    def test_checkpoint_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append(0, _batch(5, 0))
            wal.checkpoint(5, TupleBatch.empty())
        assert [p.name for p in tmp_path.iterdir()] == ["wal.log"]

    def test_unsynced_mode_still_replays(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path, sync=False) as wal:
            wal.append(0, _batch(6, 0))
        assert replay_wal(path).rows == 6
