"""Tests for repro.storage.engine."""

import numpy as np
import pytest

from repro.data.tuples import TupleBatch
from repro.storage.engine import Database
from repro.storage.schema import ColumnType, Schema


class TestTableManagement:
    def test_create_and_get(self):
        db = Database()
        db.create_table("a", Schema.of(("x", ColumnType.FLOAT64)))
        assert db.has_table("a")
        assert db.table("a").name == "a"

    def test_duplicate_rejected(self):
        db = Database()
        db.create_table("a", Schema.of(("x", ColumnType.FLOAT64)))
        with pytest.raises(ValueError):
            db.create_table("a", Schema.of(("x", ColumnType.FLOAT64)))

    def test_missing_table(self):
        with pytest.raises(KeyError):
            Database().table("nope")

    def test_drop(self):
        db = Database()
        db.create_table("a", Schema.of(("x", ColumnType.FLOAT64)))
        db.drop_table("a")
        assert not db.has_table("a")
        with pytest.raises(KeyError):
            db.drop_table("a")

    def test_table_names_sorted(self):
        db = Database()
        for name in ("zeta", "alpha"):
            db.create_table(name, Schema.of(("x", ColumnType.FLOAT64)))
        assert db.table_names() == ("alpha", "zeta")


class TestEnviroMeterSchema:
    def test_figure1_tables(self):
        db = Database.for_enviro_meter()
        assert db.has_table("raw_tuples")
        assert db.has_table("model_cover")

    def test_ingest_and_read_back(self):
        db = Database.for_enviro_meter()
        batch = TupleBatch([1.0, 2.0], [3.0, 4.0], [5.0, 6.0], [7.0, 8.0])
        assert db.ingest_tuples(batch) == 2
        out = db.raw_tuples()
        assert np.array_equal(out.t, batch.t)
        assert np.array_equal(out.s, batch.s)

    def test_ingest_appends(self):
        db = Database.for_enviro_meter()
        batch = TupleBatch([1.0], [1.0], [1.0], [1.0])
        db.ingest_tuples(batch)
        db.ingest_tuples(batch)
        assert len(db.raw_tuples()) == 2


class TestCoverBlobs:
    def test_latest_none_when_empty(self):
        db = Database.for_enviro_meter()
        assert db.latest_cover_blob() is None
        assert db.cover_blob_for_window(0) is None

    def test_store_and_fetch_latest(self):
        db = Database.for_enviro_meter()
        db.store_cover_blob(0, 100.0, b"first")
        db.store_cover_blob(1, 200.0, b"second")
        window_c, valid_until, blob = db.latest_cover_blob()
        assert (window_c, valid_until, blob) == (1, 200.0, b"second")

    def test_fetch_for_window_takes_newest(self):
        db = Database.for_enviro_meter()
        db.store_cover_blob(3, 100.0, b"old")
        db.store_cover_blob(3, 150.0, b"new")
        _, valid_until, blob = db.cover_blob_for_window(3)
        assert blob == b"new"
        assert valid_until == 150.0

    def test_fetch_unknown_window(self):
        db = Database.for_enviro_meter()
        db.store_cover_blob(1, 100.0, b"x")
        assert db.cover_blob_for_window(2) is None
