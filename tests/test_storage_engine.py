"""Tests for repro.storage.engine."""

import numpy as np
import pytest

from repro.data.tuples import TupleBatch
from repro.storage.engine import Database
from repro.storage.schema import ColumnType, Schema


class TestTableManagement:
    def test_create_and_get(self):
        db = Database()
        db.create_table("a", Schema.of(("x", ColumnType.FLOAT64)))
        assert db.has_table("a")
        assert db.table("a").name == "a"

    def test_duplicate_rejected(self):
        db = Database()
        db.create_table("a", Schema.of(("x", ColumnType.FLOAT64)))
        with pytest.raises(ValueError):
            db.create_table("a", Schema.of(("x", ColumnType.FLOAT64)))

    def test_missing_table(self):
        with pytest.raises(KeyError):
            Database().table("nope")

    def test_drop(self):
        db = Database()
        db.create_table("a", Schema.of(("x", ColumnType.FLOAT64)))
        db.drop_table("a")
        assert not db.has_table("a")
        with pytest.raises(KeyError):
            db.drop_table("a")

    def test_table_names_sorted(self):
        db = Database()
        for name in ("zeta", "alpha"):
            db.create_table(name, Schema.of(("x", ColumnType.FLOAT64)))
        assert db.table_names() == ("alpha", "zeta")


class TestEnviroMeterSchema:
    def test_figure1_tables(self):
        db = Database.for_enviro_meter()
        assert db.has_table("raw_tuples")
        assert db.has_table("model_cover")

    def test_ingest_and_read_back(self):
        db = Database.for_enviro_meter()
        batch = TupleBatch([1.0, 2.0], [3.0, 4.0], [5.0, 6.0], [7.0, 8.0])
        assert db.ingest_tuples(batch) == 2
        out = db.raw_tuples()
        assert np.array_equal(out.t, batch.t)
        assert np.array_equal(out.s, batch.s)

    def test_ingest_appends(self):
        db = Database.for_enviro_meter()
        batch = TupleBatch([1.0], [1.0], [1.0], [1.0])
        db.ingest_tuples(batch)
        db.ingest_tuples(batch)
        assert len(db.raw_tuples()) == 2


class TestCoverBlobs:
    def test_latest_none_when_empty(self):
        db = Database.for_enviro_meter()
        assert db.latest_cover_blob() is None
        assert db.cover_blob_for_window(0) is None

    def test_store_and_fetch_latest(self):
        db = Database.for_enviro_meter()
        db.store_cover_blob(0, 100.0, b"first")
        db.store_cover_blob(1, 200.0, b"second")
        window_c, valid_until, blob = db.latest_cover_blob()
        assert (window_c, valid_until, blob) == (1, 200.0, b"second")

    def test_fetch_for_window_takes_newest(self):
        db = Database.for_enviro_meter()
        db.store_cover_blob(3, 100.0, b"old")
        db.store_cover_blob(3, 150.0, b"new")
        _, valid_until, blob = db.cover_blob_for_window(3)
        assert blob == b"new"
        assert valid_until == 150.0

    def test_fetch_unknown_window(self):
        db = Database.for_enviro_meter()
        db.store_cover_blob(1, 100.0, b"x")
        assert db.cover_blob_for_window(2) is None

    def test_index_tracks_newest_per_window(self):
        db = Database.for_enviro_meter()
        db.store_cover_blob(0, 10.0, b"a")
        db.store_cover_blob(1, 20.0, b"b")
        db.store_cover_blob(0, 30.0, b"c")
        assert db.cover_index() == {0: 2, 1: 1}

    def test_drop_model_cover_clears_index(self):
        db = Database.for_enviro_meter()
        db.store_cover_blob(0, 10.0, b"a")
        db.drop_table("model_cover")
        assert db.cover_index() == {}

    def test_rebuild_cover_index(self):
        db = Database.for_enviro_meter()
        db._partition_h = None  # the pre-v2 load shape
        db.table("model_cover").insert((4, 10.0, b"direct"))
        assert db.cover_blob_for_window(4) is None  # bypassed the index
        db._rebuild_cover_index()
        assert db.cover_blob_for_window(4) == (4, 10.0, b"direct")

    def test_adopting_partition_drops_open_window_covers(self):
        """set_partition_h on a pre-v2 load must not keep covers whose
        windows can still grow — they may reflect partial window data."""
        db = Database.for_enviro_meter()
        db._partition_h = None
        db.ingest_tuples(TupleBatch([1.0] * 6, [0.0] * 6, [0.0] * 6, [400.0] * 6))
        db.table("model_cover").insert((0, 10.0, b"sealed"))
        db.table("model_cover").insert((1, 20.0, b"open"))
        db._rebuild_cover_index()
        db.set_partition_h(4)  # 6 rows: window 0 sealed, window 1 open
        assert db.cover_blob_for_window(0) == (0, 10.0, b"sealed")
        assert db.cover_blob_for_window(1) is None


def _stream(n, t0=0.0):
    t = t0 + np.arange(n, dtype=float)
    return TupleBatch(t, t + 0.5, t + 0.25, np.full(n, 400.0))


class TestWindowPartitioning:
    def test_invalid_partition(self):
        with pytest.raises(ValueError):
            Database(partition_h=0)

    def test_unpartitioned_rejects_window_reads(self):
        db = Database()
        db.create_table("raw_tuples", Database.for_enviro_meter().table("raw_tuples").schema)
        with pytest.raises(RuntimeError):
            db.window_view(0)

    def test_window_view_contents(self):
        db = Database.for_enviro_meter(partition_h=4)
        db.ingest_tuples(_stream(10))
        assert np.array_equal(db.window_view(1).t, np.arange(4.0, 8.0))
        assert len(db.window_view(2)) == 2  # open tail window

    def test_sealed_views_are_cached_and_zero_copy(self):
        db = Database.for_enviro_meter(partition_h=4)
        db.ingest_tuples(_stream(6))
        w0 = db.window_view(0)
        db.ingest_tuples(_stream(6, t0=6.0))
        assert db.window_view(0) is w0  # sealed: identical cached object
        assert w0.is_view_of(db.raw_tuples())

    def test_open_window_reflects_appends(self):
        db = Database.for_enviro_meter(partition_h=4)
        db.ingest_tuples(_stream(6))
        assert len(db.window_view(1)) == 2
        db.ingest_tuples(_stream(2, t0=6.0))
        assert len(db.window_view(1)) == 4
        assert db.is_sealed(1)

    def test_sealed_window_ids(self):
        db = Database.for_enviro_meter(partition_h=4)
        db.ingest_tuples(_stream(9))
        assert list(db.sealed_window_ids()) == [0, 1]
        assert not db.is_sealed(2)

    def test_window_views_sequence(self):
        db = Database.for_enviro_meter(partition_h=4)
        db.ingest_tuples(_stream(9))
        views = db.window_views()
        assert len(views) == 3
        assert views.sealed_count() == 2
        assert np.array_equal(views[0].t, np.arange(4.0))

    def test_latest_cover_skips_invalidated_covers(self):
        """latest_cover_blob must not serve a cover the stale-cover
        invalidation dropped from the index."""
        db = Database.for_enviro_meter(partition_h=4)
        db.ingest_tuples(_stream(6))
        db.store_cover_blob(0, 10.0, b"sealed")
        db.store_cover_blob(1, 20.0, b"premature")
        db.ingest_tuples(_stream(3, t0=6.0))  # window 1 grows -> dropped
        assert db.latest_cover_blob() == (0, 10.0, b"sealed")

    def test_latest_cover_none_when_all_invalidated(self):
        db = Database.for_enviro_meter(partition_h=4)
        db.ingest_tuples(_stream(2))
        db.store_cover_blob(0, 10.0, b"premature")
        db.ingest_tuples(_stream(2, t0=2.0))
        assert db.latest_cover_blob() is None

    def test_last_touched_windows(self):
        db = Database.for_enviro_meter(partition_h=4)
        db.ingest_tuples(_stream(6))
        assert list(db.last_touched_windows) == [0, 1]
        db.ingest_tuples(_stream(3, t0=6.0))
        assert list(db.last_touched_windows) == [1, 2]
        db.ingest_tuples(TupleBatch.empty())
        assert list(db.last_touched_windows) == []

    def test_realloc_sweeps_all_stranded_views(self):
        """Views cached for windows that are never re-read must not pin
        superseded buffer generations: the snapshot rebuild sweeps them."""
        db = Database.for_enviro_meter(partition_h=4)
        db.ingest_tuples(_stream(8))
        db.window_view(0)
        db.window_view(1)
        db.ingest_tuples(_stream(20_000, t0=8.0))  # forces reallocation
        fresh = db.raw_tuples()
        assert db._sealed_windows == {}  # stranded views swept, not kept
        assert db.window_view(0).is_view_of(fresh)  # re-sliced on demand

    def test_open_window_cover_dropped_when_window_grows(self):
        """A cover fitted from a partial open window must not be served
        once the window gains tuples."""
        db = Database.for_enviro_meter(partition_h=4)
        db.ingest_tuples(_stream(6))  # window 1 open with 2 tuples
        db.store_cover_blob(0, 10.0, b"sealed")
        db.store_cover_blob(1, 20.0, b"premature")
        db.ingest_tuples(_stream(3, t0=6.0))  # window 1 seals, 2 opens
        assert db.cover_blob_for_window(1) is None  # stale cover dropped
        assert db.cover_blob_for_window(0) == (0, 10.0, b"sealed")

    def test_set_partition_h(self):
        db = Database()
        db.set_partition_h(4)
        assert db.partition_h == 4
        db.set_partition_h(4)  # idempotent
        with pytest.raises(ValueError):
            db.set_partition_h(8)
        with pytest.raises(ValueError):
            Database().set_partition_h(0)

    def test_sealed_cache_refreshed_after_buffer_growth(self):
        """A growth reallocation must not leave the cache pinning the
        superseded buffer generation."""
        db = Database.for_enviro_meter(partition_h=4)
        db.ingest_tuples(_stream(8))
        before = db.window_view(0)
        db.ingest_tuples(_stream(20_000, t0=8.0))  # forces reallocations
        after = db.window_view(0)
        assert after is not before  # refreshed onto the live buffer
        assert after.is_view_of(db.raw_tuples())
        assert np.array_equal(after.t, before.t)  # contents unchanged
        assert db.window_view(0) is after  # identity stable again

    def test_numpy_window_indices_accepted(self):
        db = Database.for_enviro_meter(partition_h=4)
        db.ingest_tuples(_stream(10))
        views = db.window_views()
        c = np.int64(1)
        assert np.array_equal(views[c].t, db.window_view(int(c)).t)

    def test_snapshot_is_cached_and_never_concatenates(self, monkeypatch):
        db = Database.for_enviro_meter(partition_h=4)
        for i in range(50):
            db.ingest_tuples(_stream(3, t0=3.0 * i))
        monkeypatch.setattr(np, "concatenate", lambda *a, **k: pytest.fail("copied"))
        snap = db.raw_tuples()
        assert len(snap) == 150
        assert db.raw_tuples() is snap  # cached until the next ingest
