"""Tests for repro.query.engine."""


import numpy as np
import pytest

from repro.data.tuples import QueryTuple, TupleBatch
from repro.geo.coords import BoundingBox
from repro.query.engine import METHODS, QueryEngine


@pytest.fixture(scope="module")
def engine(small_batch):
    return QueryEngine(small_batch, h=240, radius_m=1000.0)


class TestConstruction:
    def test_rejects_empty_stream(self):
        with pytest.raises(ValueError):
            QueryEngine(TupleBatch.empty())


class TestWindowSelection:
    def test_window_for_time_zero(self, engine, small_batch):
        assert engine.window_for_time(float(small_batch.t[0])) == 0

    def test_window_advances_with_time(self, engine, small_batch):
        t_late = float(small_batch.t[240 * 3 + 10])
        assert engine.window_for_time(t_late) == 3

    def test_window_before_any_data(self, engine):
        assert engine.window_for_time(-100.0) == 0

    def test_window_after_all_data(self, engine, small_batch):
        c = engine.window_for_time(float(small_batch.t[-1]) + 1e6)
        assert c == (len(small_batch) - 1) // 240


class TestProcessors:
    def test_all_methods_available(self, engine):
        for method in METHODS:
            proc = engine.processor(method, 0)
            assert proc.process(QueryTuple(0, 2000, 1500)) is not None

    def test_unknown_method(self, engine):
        with pytest.raises(ValueError):
            engine.processor("quantum", 0)

    def test_processor_cached(self, engine):
        assert engine.processor("naive", 0) is engine.processor("naive", 0)


class TestWebModes:
    def test_point_query_model_cover_always_answers(self, engine, small_batch):
        t = float(small_batch.t[100])
        res = engine.point_query(t, 2000.0, 1500.0)
        assert res.answered

    def test_point_query_naive_can_miss(self, engine, small_batch):
        t = float(small_batch.t[100])
        res = engine.point_query(t, -50_000.0, -50_000.0, method="naive")
        assert not res.answered

    def test_continuous_query_spans_windows(self, engine, small_batch):
        t0 = float(small_batch.t[0])
        t1 = float(small_batch.t[300])  # crosses into window 1
        queries = [QueryTuple(t0, 2000, 1500), QueryTuple(t1, 2000, 1500)]
        results = engine.continuous_query(queries)
        assert len(results) == 2
        assert all(r.answered for r in results)

    def test_heatmap_grid_shape(self, engine, small_batch):
        t = float(small_batch.t[100])
        bounds = BoundingBox(0, 0, 6000, 4000)
        grid = engine.heatmap_grid(t, bounds, nx=8, ny=6)
        assert grid.shape == (6, 8)
        assert np.all(np.isfinite(grid))  # model cover answers everywhere

    def test_heatmap_naive_has_gaps(self, engine, small_batch):
        t = float(small_batch.t[100])
        bounds = BoundingBox(-20_000, -20_000, 26_000, 24_000)
        grid = engine.heatmap_grid(t, bounds, nx=6, ny=6, method="naive")
        assert np.any(np.isnan(grid))  # geo-skew: corners have no data


class TestHeatmapDegenerate:
    """Single-row/column grids centre the probe on the collapsed axis."""

    def test_1x1_probes_box_center(self, engine, small_batch):
        t = float(small_batch.t[100])
        bounds = BoundingBox(0, 0, 6000, 4000)
        grid = engine.heatmap_grid(t, bounds, nx=1, ny=1)
        assert grid.shape == (1, 1)
        point = engine.point_query(t, 3000.0, 2000.0)
        assert grid[0, 0] == pytest.approx(point.value)

    def test_single_row_centers_y(self, engine, small_batch):
        t = float(small_batch.t[100])
        bounds = BoundingBox(0, 0, 6000, 4000)
        grid = engine.heatmap_grid(t, bounds, nx=4, ny=1)
        assert grid.shape == (1, 4)
        for i in range(4):
            x = 0.0 + (i / 3) * 6000.0
            point = engine.point_query(t, x, 2000.0)
            assert grid[0, i] == pytest.approx(point.value)

    def test_single_column_centers_x(self, engine, small_batch):
        t = float(small_batch.t[100])
        bounds = BoundingBox(0, 0, 6000, 4000)
        grid = engine.heatmap_grid(t, bounds, nx=1, ny=3)
        assert grid.shape == (3, 1)
        for j in range(3):
            y = 0.0 + (j / 2) * 4000.0
            point = engine.point_query(t, 3000.0, y)
            assert grid[j, 0] == pytest.approx(point.value)

    def test_rejects_empty_axes(self, engine, small_batch):
        t = float(small_batch.t[100])
        bounds = BoundingBox(0, 0, 6000, 4000)
        with pytest.raises(ValueError):
            engine.heatmap_grid(t, bounds, nx=0, ny=3)
        with pytest.raises(ValueError):
            engine.heatmap_grid(t, bounds, nx=3, ny=0)

    def test_degenerate_nan_cells_survive_batch_path(self, engine, small_batch):
        """A 1x1 grid over empty countryside stays NaN for raw methods."""
        t = float(small_batch.t[100])
        far = BoundingBox(50_000, 50_000, 50_100, 50_100)
        for method in ("naive", "kdtree"):
            grid = engine.heatmap_grid(t, far, nx=1, ny=1, method=method)
            assert np.isnan(grid[0, 0])

    def test_batch_grid_matches_scalar_loop(self, engine, small_batch):
        """The batched grid equals the historical per-cell scalar loop,
        NaN cells included."""
        from repro.data.tuples import QueryTuple as QT

        t = float(small_batch.t[100])
        bounds = BoundingBox(-20_000, -20_000, 26_000, 24_000)
        nx, ny = 5, 4
        for method in ("naive", "model-cover"):
            grid = engine.heatmap_grid(t, bounds, nx=nx, ny=ny, method=method)
            proc = engine.processor(method, engine.window_for_time(t))
            expected = np.full((ny, nx), np.nan)
            for j in range(ny):
                fy = 0.5 if ny == 1 else j / (ny - 1)
                y = bounds.min_y + fy * bounds.height
                for i in range(nx):
                    fx = 0.5 if nx == 1 else i / (nx - 1)
                    x = bounds.min_x + fx * bounds.width
                    res = proc.process(QT(t=t, x=x, y=y))
                    if res.answered:
                        expected[j, i] = res.value
            np.testing.assert_allclose(grid, expected, rtol=1e-9, equal_nan=True)


class TestLifecycle:
    def test_close_is_idempotent_and_engine_stays_usable(self, small_batch):
        engine = QueryEngine(small_batch, h=240, radius_m=1000.0)
        t = float(small_batch.t[100])
        engine.executor._ensure_pool()
        assert engine.executor._pool is not None
        engine.close()
        assert engine.executor._pool is None  # live pool actually torn down
        engine.close()  # idempotent
        proc = engine.processor("model-cover", engine.window_for_time(t))
        assert proc is not None
        engine.executor._ensure_pool()  # parallel paths recreate on demand
        assert engine.executor._pool is not None
        engine.close()

    def test_context_manager_shuts_pool_down(self, small_batch):
        with QueryEngine(small_batch, h=240, radius_m=1000.0) as engine:
            engine.executor._ensure_pool()
            assert engine.executor._pool is not None
        assert engine.executor._pool is None

    def test_windows_for_times_matches_scalar(self, engine, small_batch):
        ts = [float(small_batch.t[i]) for i in (0, 100, 2000)]
        ts.append(float(small_batch.t[0]) - 5.0)
        vec = engine.windows_for_times(ts)
        assert vec.tolist() == [engine.window_for_time(t) for t in ts]
