"""Tests for repro.eval.report formatting."""

from repro.eval.experiments import Fig6aRow, Fig6bRow, Fig7aRow, Fig7bRow
from repro.eval.report import (
    format_fig6a,
    format_fig6b,
    format_fig7a,
    format_fig7b,
)


class TestFig6aTable:
    def test_grid_layout(self):
        rows = [
            Fig6aRow(h=40, method="adkmn", elapsed_s=0.01, n_queries=100),
            Fig6aRow(h=240, method="adkmn", elapsed_s=0.02, n_queries=100),
            Fig6aRow(h=40, method="naive", elapsed_s=0.10, n_queries=100),
            Fig6aRow(h=240, method="naive", elapsed_s=0.50, n_queries=100),
        ]
        table = format_fig6a(rows)
        lines = table.split("\n")
        assert "H=40" in lines[1] and "H=240" in lines[1]
        assert any(line.strip().startswith("adkmn") for line in lines)
        assert "0.500" in table

    def test_method_order_preserved(self):
        rows = [
            Fig6aRow(h=40, method="zeta", elapsed_s=1.0, n_queries=1),
            Fig6aRow(h=40, method="alpha", elapsed_s=1.0, n_queries=1),
        ]
        table = format_fig6a(rows)
        assert table.index("zeta") < table.index("alpha")


class TestFig6bTable:
    def test_values_formatted(self):
        rows = [
            Fig6bRow(h=40, method="adkmn", nrmse_pct=8.123, answered=99, n_queries=100),
            Fig6bRow(h=40, method="naive", nrmse_pct=17.456, answered=99, n_queries=100),
        ]
        table = format_fig6b(rows)
        assert "8.12" in table and "17.46" in table


class TestFig7aTable:
    def test_ratios_relative_to_adkmn(self):
        rows = [
            Fig7aRow(method="adkmn", kilobytes=10.0, runs=3),
            Fig7aRow(method="naive", kilobytes=100.0, runs=3),
        ]
        table = format_fig7a(rows)
        assert "10.0x" in table
        assert "1.0x" in table

    def test_no_adkmn_row_no_ratio(self):
        rows = [Fig7aRow(method="naive", kilobytes=100.0, runs=3)]
        table = format_fig7a(rows)
        assert "100.0" in table


class TestFig7bTable:
    def test_ratio_line(self):
        rows = [
            Fig7bRow(
                technique="baseline", sent_kb=100.0, received_kb=50.0,
                total_time_s=90.0, n_queries=100,
            ),
            Fig7bRow(
                technique="model-cache", sent_kb=1.0, received_kb=2.0,
                total_time_s=1.0, n_queries=100,
            ),
        ]
        table = format_fig7b(rows)
        assert "sent 100x" in table
        assert "received 25x" in table
        assert "time 90x" in table

    def test_single_row_no_ratio(self):
        rows = [
            Fig7bRow(
                technique="baseline", sent_kb=1.0, received_kb=1.0,
                total_time_s=1.0, n_queries=10,
            )
        ]
        assert "ratios" not in format_fig7b(rows)
