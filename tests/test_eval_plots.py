"""Tests for repro.eval.plots."""

import pytest

from repro.eval.experiments import Fig6aRow, Fig7bRow
from repro.eval.plots import fig6a_chart, fig7b_chart, log_bar_chart, series_chart


class TestLogBarChart:
    def test_renders_all_labels(self):
        chart = log_bar_chart({"baseline": 100.0, "model-cache": 1.0}, "kb")
        assert "baseline" in chart
        assert "model-cache" in chart
        assert "log scale" in chart

    def test_bigger_value_longer_bar(self):
        chart = log_bar_chart({"big": 1000.0, "small": 1.0}, "kb")
        lines = chart.split("\n")
        big_bar = lines[0].count("#")
        small_bar = lines[1].count("#")
        assert big_bar > small_bar

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            log_bar_chart({}, "kb")

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            log_bar_chart({"zero": 0.0}, "kb")

    def test_equal_values(self):
        chart = log_bar_chart({"a": 5.0, "b": 5.0}, "s")
        assert chart.count("#") >= 2


class TestSeriesChart:
    def test_dimensions(self):
        chart = series_chart(
            {"m": [(40.0, 0.01), (240.0, 0.02)]},
            "H",
            "time",
            width=30,
            height=8,
        )
        body = [line for line in chart.split("\n") if "|" in line]
        assert len(body) == 8

    def test_markers_and_legend(self):
        chart = series_chart(
            {"fast": [(1.0, 1.0)], "slow": [(1.0, 100.0)]},
            "x",
            "y",
        )
        assert "o=fast" in chart
        assert "x=slow" in chart
        assert "o" in chart and "x" in chart

    def test_log_y_rejects_non_positive(self):
        with pytest.raises(ValueError):
            series_chart({"a": [(1.0, 0.0)]}, "x", "y", log_y=True)

    def test_linear_y_allows_zero(self):
        chart = series_chart({"a": [(0.0, 0.0), (1.0, 5.0)]}, "x", "y", log_y=False)
        assert "|" in chart

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            series_chart({}, "x", "y")


class TestFigureCharts:
    def test_fig6a_chart(self):
        rows = [
            Fig6aRow(h=40, method="adkmn", elapsed_s=0.01, n_queries=10),
            Fig6aRow(h=240, method="adkmn", elapsed_s=0.02, n_queries=10),
            Fig6aRow(h=40, method="naive", elapsed_s=0.1, n_queries=10),
            Fig6aRow(h=240, method="naive", elapsed_s=0.5, n_queries=10),
        ]
        chart = fig6a_chart(rows)
        assert "o=adkmn" in chart
        assert "window size H" in chart

    def test_fig7b_chart(self):
        rows = [
            Fig7bRow("baseline", 100.0, 50.0, 90.0, 100),
            Fig7bRow("model-cache", 1.0, 2.0, 1.0, 100),
        ]
        chart = fig7b_chart(rows)
        assert "sent:" in chart
        assert "received:" in chart
        assert "total time:" in chart
