"""Tests for repro.app.settings."""

import pytest

from repro.app.settings import AppSettings


class TestValidation:
    def test_defaults(self):
        s = AppSettings()
        assert s.use_model_cache
        assert s.pollutant == "co2"

    def test_empty_server(self):
        with pytest.raises(ValueError):
            AppSettings(server_address="")

    def test_bad_interval(self):
        with pytest.raises(ValueError):
            AppSettings(position_update_interval_s=0)

    def test_bad_pollutant(self):
        with pytest.raises(ValueError):
            AppSettings(pollutant="unobtainium")


class TestImmutableUpdates:
    def test_with_interval(self):
        a = AppSettings()
        b = a.with_interval(30.0)
        assert b.position_update_interval_s == 30.0
        assert a.position_update_interval_s == 60.0

    def test_with_server(self):
        b = AppSettings().with_server("example.com:9999")
        assert b.server_address == "example.com:9999"

    def test_with_model_cache(self):
        b = AppSettings().with_model_cache(False)
        assert not b.use_model_cache

    def test_updates_still_validated(self):
        with pytest.raises(ValueError):
            AppSettings().with_interval(-5.0)
