"""Tests for repro.query.planner."""

import numpy as np
import pytest

from repro.data.tuples import QueryTuple, TupleBatch
from repro.query.planner import PlanEstimate, QueryPlanner, QueryProfile


class TestProfileValidation:
    def test_defaults(self):
        p = QueryProfile()
        assert p.expected_queries == 1000

    def test_invalid(self):
        with pytest.raises(ValueError):
            QueryProfile(expected_queries=0)
        with pytest.raises(ValueError):
            QueryProfile(radius_m=-1)


class TestPlanning:
    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            QueryPlanner(TupleBatch.empty())

    def test_model_cover_wins_for_long_workloads(self, daytime_window):
        planner = QueryPlanner(daytime_window)
        plan = planner.choose(QueryProfile(expected_queries=100_000))
        assert plan.method == "model-cover"

    def test_naive_wins_for_single_query(self, daytime_window):
        planner = QueryPlanner(daytime_window)
        plan = planner.choose(QueryProfile(expected_queries=1))
        # One query never amortises index build or model fit.
        assert plan.method == "naive"

    def test_exact_average_excludes_model_cover(self, daytime_window):
        planner = QueryPlanner(daytime_window)
        estimates = planner.estimates(
            QueryProfile(expected_queries=100_000, needs_exact_average=True)
        )
        assert "model-cover" not in estimates
        plan = planner.choose(
            QueryProfile(expected_queries=100_000, needs_exact_average=True)
        )
        assert plan.method in ("naive", "rtree", "vptree")

    def test_estimates_cover_all_methods(self, daytime_window):
        planner = QueryPlanner(daytime_window)
        estimates = planner.estimates(QueryProfile())
        assert set(estimates) == {"naive", "rtree", "vptree", "model-cover"}
        for est in estimates.values():
            assert isinstance(est, PlanEstimate)
            assert est.per_query_cost > 0

    def test_processor_for_answers_queries(self, daytime_window):
        planner = QueryPlanner(daytime_window)
        proc = planner.processor_for(QueryProfile(expected_queries=100_000))
        q = QueryTuple(
            t=float(daytime_window.t[0]),
            x=float(daytime_window.x[0]),
            y=float(daytime_window.y[0]),
        )
        assert proc.process(q).answered

    def test_processor_cached(self, daytime_window):
        planner = QueryPlanner(daytime_window)
        profile = QueryProfile(expected_queries=100_000)
        assert planner.processor_for(profile) is planner.processor_for(profile)

    def test_cost_ordering_matches_fig6a(self, daytime_window):
        """For a sustained workload the estimated per-query ordering must
        match the measured Figure 6(a) ordering: model cover cheapest."""
        planner = QueryPlanner(daytime_window)
        estimates = planner.estimates(QueryProfile(expected_queries=5000))
        assert (
            estimates["model-cover"].per_query_cost
            < estimates["naive"].per_query_cost
        )


class TestCostModelEdgeCases:
    """Regression tests: the planner must never pay for — or pick — a
    plan whose processor cannot be constructed or amortised."""

    def test_single_query_never_runs_the_fit(self, daytime_window, monkeypatch):
        """expected_queries=1 can never amortise an Ad-KMN fit, so the
        planner must not run one just to price the model-cover plan (it
        used to fit a full cover and throw the estimate away)."""
        import repro.query.planner as planner_mod

        def exploding_fit(*args, **kwargs):
            raise AssertionError("fit_adkmn must not run for a 1-query profile")

        monkeypatch.setattr(planner_mod, "fit_adkmn", exploding_fit)
        planner = QueryPlanner(daytime_window)
        estimates = planner.estimates(QueryProfile(expected_queries=1))
        assert "model-cover" not in estimates
        assert planner.choose(QueryProfile(expected_queries=1)).method == "naive"

    def test_fit_failure_excludes_model_cover(self, daytime_window, monkeypatch):
        """A window the fitter rejects yields estimates without
        model-cover, and choose() still returns a constructible plan."""
        import repro.query.planner as planner_mod

        def failing_fit(*args, **kwargs):
            raise ValueError("degenerate window")

        monkeypatch.setattr(planner_mod, "fit_adkmn", failing_fit)
        planner = QueryPlanner(daytime_window)
        profile = QueryProfile(expected_queries=100_000)
        estimates = planner.estimates(profile)
        assert "model-cover" not in estimates
        plan = planner.choose(profile)
        assert plan.method in ("naive", "rtree", "vptree")
        proc = planner.processor_for(profile)
        q = QueryTuple(
            t=float(daytime_window.t[0]),
            x=float(daytime_window.x[0]),
            y=float(daytime_window.y[0]),
        )
        assert proc.process(q).answered

    def test_zero_tuple_window_rejected_up_front(self):
        """An empty window has no constructible processor at all: the
        planner refuses at construction, before any cost maths runs."""
        with pytest.raises(ValueError, match="empty window"):
            QueryPlanner(TupleBatch.empty())

    def test_single_tuple_window_plans_constructible_processor(self):
        window = TupleBatch(
            np.array([10.0]), np.array([100.0]), np.array([200.0]), np.array([450.0])
        )
        planner = QueryPlanner(window)
        for expected_queries in (1, 10, 100_000):
            profile = QueryProfile(expected_queries=expected_queries)
            proc = planner.processor_for(profile)
            result = proc.process(QueryTuple(t=10.0, x=100.0, y=200.0))
            assert result.answered

    def test_degenerate_extent_window_plans(self):
        """All tuples at one position: the hit-fraction area clamp must
        keep the cost model finite and the chosen plan constructible."""
        n = 20
        window = TupleBatch(
            np.arange(n, dtype=float),
            np.full(n, 123.0),
            np.full(n, 456.0),
            np.linspace(400.0, 500.0, n),
        )
        planner = QueryPlanner(window)
        for est in planner.estimates(QueryProfile()).values():
            assert np.isfinite(est.per_query_cost)
        proc = planner.processor_for(QueryProfile(expected_queries=1))
        assert proc.process(QueryTuple(t=0.0, x=123.0, y=456.0)).answered

    def test_choose_for_single_query_still_covers_raw_methods(self, daytime_window):
        estimates = QueryPlanner(daytime_window).estimates(
            QueryProfile(expected_queries=1)
        )
        assert set(estimates) == {"naive", "rtree", "vptree"}
