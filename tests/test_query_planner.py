"""Tests for repro.query.planner."""

import pytest

from repro.data.tuples import QueryTuple, TupleBatch
from repro.query.planner import PlanEstimate, QueryPlanner, QueryProfile


class TestProfileValidation:
    def test_defaults(self):
        p = QueryProfile()
        assert p.expected_queries == 1000

    def test_invalid(self):
        with pytest.raises(ValueError):
            QueryProfile(expected_queries=0)
        with pytest.raises(ValueError):
            QueryProfile(radius_m=-1)


class TestPlanning:
    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            QueryPlanner(TupleBatch.empty())

    def test_model_cover_wins_for_long_workloads(self, daytime_window):
        planner = QueryPlanner(daytime_window)
        plan = planner.choose(QueryProfile(expected_queries=100_000))
        assert plan.method == "model-cover"

    def test_naive_wins_for_single_query(self, daytime_window):
        planner = QueryPlanner(daytime_window)
        plan = planner.choose(QueryProfile(expected_queries=1))
        # One query never amortises index build or model fit.
        assert plan.method == "naive"

    def test_exact_average_excludes_model_cover(self, daytime_window):
        planner = QueryPlanner(daytime_window)
        estimates = planner.estimates(
            QueryProfile(expected_queries=100_000, needs_exact_average=True)
        )
        assert "model-cover" not in estimates
        plan = planner.choose(
            QueryProfile(expected_queries=100_000, needs_exact_average=True)
        )
        assert plan.method in ("naive", "rtree", "vptree")

    def test_estimates_cover_all_methods(self, daytime_window):
        planner = QueryPlanner(daytime_window)
        estimates = planner.estimates(QueryProfile())
        assert set(estimates) == {"naive", "rtree", "vptree", "model-cover"}
        for est in estimates.values():
            assert isinstance(est, PlanEstimate)
            assert est.per_query_cost > 0

    def test_processor_for_answers_queries(self, daytime_window):
        planner = QueryPlanner(daytime_window)
        proc = planner.processor_for(QueryProfile(expected_queries=100_000))
        q = QueryTuple(
            t=float(daytime_window.t[0]),
            x=float(daytime_window.x[0]),
            y=float(daytime_window.y[0]),
        )
        assert proc.process(q).answered

    def test_processor_cached(self, daytime_window):
        planner = QueryPlanner(daytime_window)
        profile = QueryProfile(expected_queries=100_000)
        assert planner.processor_for(profile) is planner.processor_for(profile)

    def test_cost_ordering_matches_fig6a(self, daytime_window):
        """For a sustained workload the estimated per-query ordering must
        match the measured Figure 6(a) ordering: model cover cheapest."""
        planner = QueryPlanner(daytime_window)
        estimates = planner.estimates(QueryProfile(expected_queries=5000))
        assert (
            estimates["model-cover"].per_query_cost
            < estimates["naive"].per_query_cost
        )
