"""Tests for repro.core.builder."""

import pytest

from repro.core.builder import CoverBuilder
from repro.core.cover import ModelCover
from repro.storage.engine import Database


class TestValidation:
    def test_bad_mode(self):
        with pytest.raises(ValueError):
            CoverBuilder(10, mode="banana")

    def test_bad_h(self):
        with pytest.raises(ValueError):
            CoverBuilder(0)

    def test_bad_margin(self):
        with pytest.raises(ValueError):
            CoverBuilder(10, validity_margin_s=-1)


class TestCountMode(object):
    def test_build_window(self, small_batch):
        builder = CoverBuilder(240)
        result = builder.build(small_batch, 0)
        assert result.cover.window_c == 0
        assert result.cover.size >= 1

    def test_valid_until_is_window_end(self, small_batch):
        builder = CoverBuilder(240)
        cover = builder.cover(small_batch, 1)
        assert cover.valid_until == pytest.approx(float(small_batch.t[479]))

    def test_validity_margin_extends(self, small_batch):
        margin = 3600.0
        base = CoverBuilder(240).cover(small_batch, 1)
        extended = CoverBuilder(240, validity_margin_s=margin).cover(small_batch, 1)
        assert extended.valid_until == pytest.approx(base.valid_until + margin)

    def test_cache_returns_same_object(self, small_batch):
        builder = CoverBuilder(240)
        assert builder.build(small_batch, 0) is builder.build(small_batch, 0)

    def test_invalidate_all(self, small_batch):
        builder = CoverBuilder(240)
        first = builder.build(small_batch, 0)
        builder.invalidate()
        assert builder.build(small_batch, 0) is not first

    def test_invalidate_single(self, small_batch):
        builder = CoverBuilder(240)
        a = builder.build(small_batch, 0)
        b = builder.build(small_batch, 1)
        builder.invalidate(0)
        assert builder.build(small_batch, 0) is not a
        assert builder.build(small_batch, 1) is b

    def test_build_all_covers_every_window(self, small_batch):
        builder = CoverBuilder(1000)
        results = list(builder.build_all(small_batch))
        expected = (len(small_batch) + 999) // 1000
        assert len(results) == expected

    def test_empty_window_raises(self, small_batch):
        builder = CoverBuilder(240)
        with pytest.raises((ValueError, IndexError)):
            builder.build(small_batch, 10_000)


class TestTimeMode:
    def test_time_window_valid_until(self, small_batch):
        builder = CoverBuilder(3600.0, mode="time")
        # Find a window with data: 10:00-11:00 on day 0.
        c = 10
        result = builder.build(small_batch, c)
        assert result.cover.valid_until == pytest.approx((c + 1) * 3600.0)

    def test_build_all_rejected(self, small_batch):
        builder = CoverBuilder(3600.0, mode="time")
        with pytest.raises(ValueError):
            list(builder.build_all(small_batch))


class TestPersist:
    def test_persist_stores_blob(self, small_batch):
        builder = CoverBuilder(240)
        db = Database.for_enviro_meter()
        builder.persist(db, small_batch, 2)
        stored = db.cover_blob_for_window(2)
        assert stored is not None
        window_c, valid_until, blob = stored
        cover = ModelCover.from_blob(blob)
        assert cover.window_c == 2
        assert cover.valid_until == valid_until
