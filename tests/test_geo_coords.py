"""Tests for repro.geo.coords."""

import math

import pytest

from repro.geo.coords import (
    BoundingBox,
    LocalProjection,
    bbox_of_xy,
    euclidean,
    haversine_m,
)

LAUSANNE_LAT, LAUSANNE_LON = 46.5197, 6.6323


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_m(LAUSANNE_LAT, LAUSANNE_LON, LAUSANNE_LAT, LAUSANNE_LON) == 0.0

    def test_known_distance_lausanne_geneva(self):
        # Lausanne -> Geneva is ~50 km great-circle.
        d = haversine_m(46.5197, 6.6323, 46.2044, 6.1432)
        assert 49_000 < d < 53_000

    def test_symmetry(self):
        a = haversine_m(46.5, 6.6, 46.6, 6.7)
        b = haversine_m(46.6, 6.7, 46.5, 6.6)
        assert a == pytest.approx(b)

    def test_one_degree_latitude(self):
        d = haversine_m(46.0, 6.6, 47.0, 6.6)
        assert d == pytest.approx(111_195, rel=0.01)


class TestEuclidean:
    def test_pythagoras(self):
        assert euclidean(0, 0, 3, 4) == pytest.approx(5.0)

    def test_zero(self):
        assert euclidean(1.5, -2.5, 1.5, -2.5) == 0.0


class TestLocalProjection:
    def setup_method(self):
        self.proj = LocalProjection(LAUSANNE_LAT, LAUSANNE_LON)

    def test_origin_maps_to_zero(self):
        x, y = self.proj.to_local(LAUSANNE_LAT, LAUSANNE_LON)
        assert x == pytest.approx(0.0)
        assert y == pytest.approx(0.0)

    def test_round_trip(self):
        lat, lon = self.proj.to_wgs84(1500.0, -800.0)
        x, y = self.proj.to_local(lat, lon)
        assert x == pytest.approx(1500.0, abs=1e-6)
        assert y == pytest.approx(-800.0, abs=1e-6)

    def test_local_distances_match_haversine_at_city_scale(self):
        lat2, lon2 = self.proj.to_wgs84(3000.0, 2000.0)
        approx = math.hypot(3000.0, 2000.0)
        exact = haversine_m(LAUSANNE_LAT, LAUSANNE_LON, lat2, lon2)
        assert exact == pytest.approx(approx, rel=0.001)

    def test_north_is_positive_y(self):
        x, y = self.proj.to_local(LAUSANNE_LAT + 0.01, LAUSANNE_LON)
        assert y > 0
        assert x == pytest.approx(0.0, abs=1e-9)


class TestBoundingBox:
    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            BoundingBox(10, 0, 0, 10)

    def test_from_points(self):
        box = BoundingBox.from_points([(1, 2), (-1, 5), (3, 0)])
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (-1, 0, 3, 5)

    def test_from_points_empty_raises(self):
        with pytest.raises(ValueError):
            BoundingBox.from_points([])

    def test_dimensions(self):
        box = BoundingBox(0, 0, 4, 3)
        assert box.width == 4
        assert box.height == 3
        assert box.area == 12
        assert box.center == (2.0, 1.5)

    def test_contains_point_boundary(self):
        box = BoundingBox(0, 0, 1, 1)
        assert box.contains_point(0, 0)
        assert box.contains_point(1, 1)
        assert not box.contains_point(1.0001, 0.5)

    def test_intersects(self):
        a = BoundingBox(0, 0, 2, 2)
        assert a.intersects(BoundingBox(1, 1, 3, 3))
        assert a.intersects(BoundingBox(2, 2, 4, 4))  # touching counts
        assert not a.intersects(BoundingBox(2.1, 2.1, 3, 3))

    def test_union(self):
        a = BoundingBox(0, 0, 1, 1).union(BoundingBox(2, -1, 3, 0.5))
        assert (a.min_x, a.min_y, a.max_x, a.max_y) == (0, -1, 3, 1)

    def test_expand(self):
        box = BoundingBox(0, 0, 1, 1).expand(0.5)
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (-0.5, -0.5, 1.5, 1.5)

    def test_expand_negative_raises(self):
        with pytest.raises(ValueError):
            BoundingBox(0, 0, 1, 1).expand(-1)

    def test_min_distance_inside_is_zero(self):
        box = BoundingBox(0, 0, 2, 2)
        assert box.min_distance_to(1, 1) == 0.0

    def test_min_distance_corner(self):
        box = BoundingBox(0, 0, 1, 1)
        assert box.min_distance_to(4, 5) == pytest.approx(5.0)

    def test_intersects_circle(self):
        box = BoundingBox(0, 0, 1, 1)
        assert box.intersects_circle(2, 0.5, 1.0)
        assert not box.intersects_circle(2.5, 0.5, 1.0)

    def test_grid_points_count_and_bounds(self):
        box = BoundingBox(0, 0, 10, 20)
        pts = list(box.grid_points(3, 5))
        assert len(pts) == 15
        assert all(box.contains_point(x, y) for x, y in pts)
        assert (0.0, 0.0) in pts and (10.0, 20.0) in pts

    def test_grid_points_single(self):
        box = BoundingBox(0, 0, 10, 20)
        assert list(box.grid_points(1, 1)) == [(5.0, 10.0)]

    def test_grid_points_invalid(self):
        with pytest.raises(ValueError):
            list(BoundingBox(0, 0, 1, 1).grid_points(0, 5))


class TestBboxOfXY:
    def test_basic(self):
        box = bbox_of_xy([1, 2, 3], [4, 5, 6])
        assert (box.min_x, box.max_x, box.min_y, box.max_y) == (1, 3, 4, 6)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            bbox_of_xy([1], [1, 2])

    def test_empty(self):
        with pytest.raises(ValueError):
            bbox_of_xy([], [])
