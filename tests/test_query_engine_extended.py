"""Extended query-engine tests: the STR-tree method and the model-grid
debug heatmap."""

import numpy as np
import pytest

from repro.app.webapp import WebInterface
from repro.geo.coords import BoundingBox
from repro.query.engine import QueryEngine


@pytest.fixture(scope="module")
def engine(small_batch):
    return QueryEngine(small_batch, h=240)


class TestSTRTreeMethod:
    def test_strtree_available(self, engine, small_batch):
        t = float(small_batch.t[100])
        res = engine.point_query(t, 2000.0, 1500.0, method="strtree")
        naive = engine.point_query(t, 2000.0, 1500.0, method="naive")
        if naive.answered:
            assert res.value == pytest.approx(naive.value)
            assert res.support == naive.support
        else:
            assert not res.answered

    def test_strtree_agrees_with_rtree_everywhere(self, engine, small_batch):
        t = float(small_batch.t[100])
        rng = np.random.default_rng(5)
        for _ in range(30):
            x = float(rng.uniform(0, 6000))
            y = float(rng.uniform(0, 4000))
            a = engine.point_query(t, x, y, method="strtree")
            b = engine.point_query(t, x, y, method="rtree")
            assert a.support == b.support


class TestModelGridHeatmap:
    def test_model_grid_full_coverage(self, small_batch):
        web = WebInterface(QueryEngine(small_batch, h=240))
        t = float(small_batch.t[500])
        hm = web.model_grid(t, BoundingBox(0, 0, 6000, 4000), nx=8, ny=6)
        assert hm.shape == (6, 8)
        assert np.all(np.isfinite(hm.grid))

    def test_splat_heatmap_bounded_by_marker_values(self, small_batch):
        """The demo heatmap never leaves the range of the centroid
        emissions — unlike the raw model grid, which extrapolates."""
        web = WebInterface(QueryEngine(small_batch, h=240))
        t = float(small_batch.t[500])
        markers = web.centroid_markers(t)
        values = [m.co2_ppm for m in markers]
        hm = web.heatmap(t, BoundingBox(0, 0, 6000, 4000), nx=10, ny=8)
        lo, hi = hm.value_range()
        assert lo >= min(values) - 1e-6
        assert hi <= max(values) + 1e-6
