"""Concurrent serving layer: snapshot isolation under multi-threaded load.

Every test compares real concurrent execution against a *serial replay
oracle* (``tests/concurrency.py``): a fresh server fed the same ingest
batches one epoch at a time must reproduce every concurrently-computed
answer byte-for-byte at the epoch the answer was pinned at.  Schedules
and workloads are seeded, so a failure replays from its parametrised
seed alone.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.client.fleet import FleetSimulator, commuter_fleet
from repro.data.tuples import TupleBatch
from repro.geo.coords import BoundingBox
from repro.geo.region import RegionGrid
from repro.server.server import (
    ConcurrentEnviroMeterServer,
    EnviroMeterServer,
    ShardedEnviroMeterServer,
)

from concurrency import (
    make_query_workload,
    response_fingerprints,
    run_free_running,
    run_phase_schedule,
    seeded_schedule,
    serial_replay_answers,
)

H = 48
N_READERS = 4
BBOX = BoundingBox(0.0, 0.0, 6000.0, 4000.0)


def make_stream(rng: np.random.Generator, n: int) -> TupleBatch:
    """A time-sorted synthetic sensing stream over the test bbox."""
    t = np.cumsum(rng.uniform(0.5, 3.0, n))
    return TupleBatch(
        t,
        rng.uniform(0.0, 6000.0, n),
        rng.uniform(0.0, 4000.0, n),
        rng.uniform(350.0, 600.0, n),
    )


def split_batches(stream: TupleBatch, n_batches: int):
    """Contiguous near-equal ingest batches covering the stream."""
    bounds = np.linspace(0, len(stream), n_batches + 1).astype(int)
    return [
        stream.slice(int(a), int(b))
        for a, b in zip(bounds[:-1], bounds[1:])
        if b > a
    ]


def assert_matches_serial_replay(make_server, batches, answered):
    replayed = serial_replay_answers(make_server, batches, answered)
    assert replayed, "no chunks were answered"
    for chunk, serial_prints in replayed:
        assert chunk.fingerprints == serial_prints, (
            f"concurrent answers diverged from serial replay at epoch "
            f"{chunk.epoch}"
        )


class TestPhaseScheduledServer:
    """Barrier-synchronized schedules: exact epochs by construction."""

    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_plain_server_matches_serial_replay(self, seed):
        rng = np.random.default_rng(seed)
        stream = make_stream(rng, 600)
        batches = split_batches(stream, 6)
        workloads = [
            make_query_workload(rng, stream, 40, model_request_every=7)
            for _ in range(5)
        ]
        schedule = seeded_schedule(seed, len(batches), len(workloads))
        server = EnviroMeterServer(h=H)
        answered = run_phase_schedule(
            server, batches, workloads, schedule, n_readers=N_READERS
        )
        assert len(answered) >= len(workloads)  # one chunk per reader slice
        assert_matches_serial_replay(lambda: EnviroMeterServer(h=H), batches, answered)

    @pytest.mark.parametrize("seed", [5, 17])
    def test_sharded_server_matches_serial_replay(self, seed):
        rng = np.random.default_rng(seed)
        stream = make_stream(rng, 600)
        batches = split_batches(stream, 6)
        workloads = [make_query_workload(rng, stream, 32) for _ in range(4)]
        schedule = seeded_schedule(seed, len(batches), len(workloads))

        def make_server():
            grid = RegionGrid(BBOX, nx=2, ny=2)
            return ShardedEnviroMeterServer(grid, h=H, max_workers=2)

        answered = run_phase_schedule(
            make_server(), batches, workloads, schedule, n_readers=N_READERS
        )
        assert_matches_serial_replay(make_server, batches, answered)


class TestFreeRunningServer:
    """Unsynchronised writer + readers: the raw snapshot-isolation test."""

    @pytest.mark.parametrize("seed", [7, 23, 41])
    def test_every_answer_matches_replay_at_its_recorded_epoch(self, seed):
        rng = np.random.default_rng(seed)
        stream = make_stream(rng, 900)
        preload, live = stream.slice(0, 300), stream.slice(300, len(stream))
        batches = [preload] + split_batches(live, 8)
        workloads = [
            make_query_workload(rng, stream, 24, model_request_every=5)
            for _ in range(10)
        ]
        server = EnviroMeterServer(h=H)
        server.ingest(batches[0])  # readers never see an empty store
        answered = run_free_running(
            server, batches[1:], workloads, n_readers=N_READERS
        )
        assert len(answered) == len(workloads)
        epochs = {chunk.epoch for chunk in answered}
        assert min(epochs) >= 1 and max(epochs) <= len(batches)
        assert_matches_serial_replay(lambda: EnviroMeterServer(h=H), batches, answered)

    def test_epoch_advances_once_per_ingest(self):
        rng = np.random.default_rng(0)
        stream = make_stream(rng, 200)
        server = EnviroMeterServer(h=H)
        assert server.epoch == 0
        for k, batch in enumerate(split_batches(stream, 4), start=1):
            server.ingest(batch)
            assert server.epoch == k
        server.ingest(TupleBatch.empty())
        assert server.epoch == 4  # empty ingest is not an epoch


class TestConcurrentFrontEnd:
    def test_handle_many_chunks_identical_to_serial(self):
        rng = np.random.default_rng(13)
        stream = make_stream(rng, 500)
        requests = make_query_workload(rng, stream, 150, model_request_every=9)
        serial = EnviroMeterServer(h=H)
        serial.ingest(stream)
        inner = EnviroMeterServer(h=H)
        inner.ingest(stream)
        with ConcurrentEnviroMeterServer(inner, max_workers=4) as front:
            responses, epochs = front.handle_many_with_epochs(requests)
        assert len(responses) == len(requests)
        assert set(np.unique(epochs)) == {1}
        assert response_fingerprints(responses) == response_fingerprints(
            serial.handle_many(requests)
        )

    def test_parallel_requests_from_many_threads(self):
        """Raw thread hammering of handle(): counters stay exact and the
        answers equal the single-threaded ones."""
        rng = np.random.default_rng(19)
        stream = make_stream(rng, 400)
        requests = make_query_workload(rng, stream, 120)
        server = EnviroMeterServer(h=H)
        server.ingest(stream)
        served_before = server.served_values
        expected = response_fingerprints([server.handle(r) for r in requests])

        results: dict = {}

        def worker(worker_id, chunk):
            results[worker_id] = [server.handle(r) for r in chunk]

        chunks = [requests[i::4] for i in range(4)]
        threads = [
            threading.Thread(target=worker, args=(i, chunk))
            for i, chunk in enumerate(chunks)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        got = {}
        for i, chunk in enumerate(chunks):
            for r, resp in zip(requests[i::4], results[i]):
                got[id(r)] = resp
        concurrent_prints = response_fingerprints([got[id(r)] for r in requests])
        assert concurrent_prints == expected
        assert server.served_values == served_before + 2 * len(requests)


class TestParallelShardedIngest:
    def test_parallel_ingest_equals_serial_ingest(self):
        rng = np.random.default_rng(31)
        stream = make_stream(rng, 800)
        batches = split_batches(stream, 7)

        parallel = ShardedEnviroMeterServer(
            RegionGrid(BBOX, nx=3, ny=2), h=H, max_workers=4
        )
        serial = ShardedEnviroMeterServer(
            RegionGrid(BBOX, nx=3, ny=2), h=H, max_workers=1
        )
        for batch in batches:
            assert parallel.ingest(batch) == serial.ingest(batch) == len(batch)
        assert parallel.epoch == serial.epoch == len(batches)
        assert parallel.shard_raw_counts() == serial.shard_raw_counts()
        requests = make_query_workload(rng, stream, 60)
        assert response_fingerprints(
            parallel.handle_many(requests)
        ) == response_fingerprints(serial.handle_many(requests))
        parallel.close()
        serial.close()

    def test_concurrent_writers_deliver_every_tuple(self):
        rng = np.random.default_rng(37)
        stream = make_stream(rng, 600)
        batches = split_batches(stream, 8)
        server = ShardedEnviroMeterServer(
            RegionGrid(BBOX, nx=2, ny=2), h=H, max_workers=2
        )
        totals: list = []
        lock = threading.Lock()

        def writer(my_batches):
            for batch in my_batches:
                n = server.ingest(batch)
                with lock:
                    totals.append(n)

        threads = [
            threading.Thread(target=writer, args=(batches[i::2],))
            for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(totals) == len(stream)
        assert sum(server.shard_raw_counts()) == len(stream)
        assert server.epoch == len(batches)
        server.close()


class TestConcurrentFleet:
    def test_run_concurrent_matches_sequential_run(self):
        rng = np.random.default_rng(43)
        stream = make_stream(rng, 500)
        members = commuter_fleet(6, BBOX, use_model_cache=False, n_queries=8)

        def report_for(concurrent: bool):
            server = EnviroMeterServer(h=H)
            server.ingest(stream)
            sim = FleetSimulator(server)
            if concurrent:
                return sim.run_concurrent(members, t_start=60.0, max_workers=3)
            return sim.run(members, t_start=60.0)

        serial, concurrent = report_for(False), report_for(True)
        assert [m.name for m in concurrent.members] == [m.name for m in serial.members]
        assert [m.answered for m in concurrent.members] == [
            m.answered for m in serial.members
        ]
        assert concurrent.server_values_served == serial.server_values_served
        assert (
            concurrent.total_stats().received_bytes
            == serial.total_stats().received_bytes
        )
