"""Tests for repro.server.server.ShardedEnviroMeterServer."""

import math

import numpy as np
import pytest

from repro.geo.coords import BoundingBox
from repro.geo.region import RegionGrid
from repro.network.messages import (
    ModelCoverResponse,
    ModelRequest,
    QueryRequest,
    ValueResponse,
)
from repro.server.server import EnviroMeterServer, ShardedEnviroMeterServer
from repro.server.stream import StreamReplayer

BOUNDS = BoundingBox(0.0, 0.0, 6000.0, 4000.0)


@pytest.fixture()
def sharded(small_batch):
    server = ShardedEnviroMeterServer(RegionGrid(BOUNDS, nx=2, ny=2), h=240)
    server.ingest(small_batch)
    return server


@pytest.fixture()
def t_mid(small_batch):
    return float(small_batch.t[500])


class TestIngestRouting:
    def test_routes_to_owner_only(self, small_batch):
        server = ShardedEnviroMeterServer(RegionGrid(BOUNDS, nx=2, ny=2), h=240)
        n = server.ingest(small_batch)
        assert n == len(small_batch)
        owners = server.grid.shards_of(small_batch.x, small_batch.y)
        counts = server.shard_raw_counts()
        for s in range(4):
            assert counts[s] == int(np.sum(owners == s))

    def test_invalidation_stays_on_owning_shard(self, small_batch, t_mid):
        """Fitting covers on one region then ingesting into another must
        not invalidate (or refit) the first region's covers."""
        server = ShardedEnviroMeterServer(RegionGrid(BOUNDS, nx=2, ny=1), h=240)
        west = small_batch.select_mask(small_batch.x < 3000.0)
        east = small_batch.select_mask(small_batch.x >= 3000.0)
        assert len(west) and len(east)
        server.ingest(west)
        server.handle(QueryRequest(t=float(west.t[-1]), x=1500.0, y=2000.0))
        west_fits = server.shards[0].builder_fit_count
        assert west_fits >= 1
        server.ingest(east)  # touches only the east shard
        server.handle(QueryRequest(t=float(west.t[-1]), x=1500.0, y=2000.0))
        assert server.shards[0].builder_fit_count == west_fits

    def test_empty_batch(self, sharded, small_batch):
        from repro.data.tuples import TupleBatch

        assert sharded.ingest(TupleBatch.empty()) == 0


class TestDispatch:
    def test_query_answered_by_owner(self, sharded, t_mid):
        owner = sharded.grid.shard_of(2500.0, 1800.0)
        before = sharded.shards[owner].served_values
        response = sharded.handle(QueryRequest(t=t_mid, x=2500.0, y=1800.0))
        assert isinstance(response, ValueResponse)
        assert sharded.shards[owner].served_values == before + 1
        assert sharded.served_values >= 1

    def test_matches_equivalent_region_server(self, small_batch, t_mid):
        """The owning shard's answer equals a standalone server fed only
        that region's tuples — sharding is region-local by construction."""
        sharded = ShardedEnviroMeterServer(RegionGrid(BOUNDS, nx=2, ny=1), h=240)
        sharded.ingest(small_batch)
        west_only = EnviroMeterServer(h=240)
        west_only.ingest(small_batch.select_mask(small_batch.x < 3000.0))
        q = QueryRequest(t=t_mid, x=1500.0, y=2000.0)
        assert sharded.grid.shard_of(q.x, q.y) == 0
        ours = sharded.handle(q)
        ref = west_only.handle(q)
        if math.isnan(ref.value):
            assert math.isnan(ours.value)
        else:
            assert ours.value == pytest.approx(ref.value, rel=1e-12)

    def test_model_request_served_from_owner(self, sharded, t_mid):
        response = sharded.handle(ModelRequest(t=t_mid, x=2500.0, y=1800.0))
        assert isinstance(response, ModelCoverResponse)
        assert sharded.served_covers == 1
        cover = response.cover()
        assert cover.size >= 1

    def test_unknown_request_rejected(self, sharded):
        with pytest.raises(TypeError):
            sharded.handle(object())
        with pytest.raises(TypeError):
            sharded.handle_many([object()])

    def test_handle_many_preserves_order(self, sharded, t_mid):
        requests = [
            QueryRequest(t=t_mid, x=500.0 + 600.0 * i, y=300.0 + 400.0 * i)
            for i in range(8)
        ] + [ModelRequest(t=t_mid, x=2500.0, y=1800.0)]
        responses = sharded.handle_many(requests)
        assert len(responses) == len(requests)
        for req, resp in zip(requests[:-1], responses[:-1]):
            assert isinstance(resp, ValueResponse)
            assert resp.t == req.t
        assert isinstance(responses[-1], ModelCoverResponse)

    def test_handle_many_matches_handle(self, sharded, t_mid):
        requests = [
            QueryRequest(t=t_mid, x=900.0 * i + 200.0, y=350.0 * i + 150.0)
            for i in range(6)
        ]
        batched = sharded.handle_many(requests)
        for req, resp in zip(requests, batched):
            single = sharded.handle(req)
            if math.isnan(single.value):
                assert math.isnan(resp.value)
            else:
                assert resp.value == pytest.approx(single.value, rel=1e-12)


class TestColdRegions:
    def test_cold_region_falls_over_to_nearest(self, small_batch, t_mid):
        """A query owned by a data-less region is answered by the nearest
        populated shard instead of erroring."""
        grid = RegionGrid(BOUNDS, nx=2, ny=1)
        server = ShardedEnviroMeterServer(grid, h=240)
        server.ingest(small_batch.select_mask(small_batch.x < 3000.0))
        assert not server.shards[1].has_data()
        response = server.handle(QueryRequest(t=t_mid, x=5500.0, y=2000.0))
        assert isinstance(response, ValueResponse)

    def test_no_data_anywhere_raises(self):
        server = ShardedEnviroMeterServer(RegionGrid(BOUNDS, nx=2, ny=2), h=240)
        with pytest.raises(RuntimeError):
            server.handle(QueryRequest(t=0.0, x=100.0, y=100.0))


class TestReplay:
    def test_stream_replayer_drives_sharded_server(self, small_batch):
        server = ShardedEnviroMeterServer(RegionGrid(BOUNDS, nx=2, ny=2), h=240)
        replayer = StreamReplayer(server, batch_interval_s=3600.0)
        stats = replayer.run(small_batch, query_every_s=4 * 3600.0)
        assert stats.tuples == len(small_batch)
        assert stats.covers_built >= 1
        assert stats.covers_built == server.covers_stored
        assert stats.covers_fitted == server.builder_fit_count
        assert stats.windows_sealed == server.sealed_windows_total
        assert server.served_values >= 1
