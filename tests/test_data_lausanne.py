"""Tests for repro.data.lausanne (the synthetic dataset generator)."""

import numpy as np
import pytest

from repro.data.field import SECONDS_PER_DAY
from repro.data.lausanne import (
    LausanneConfig,
    generate_lausanne_dataset,
    generate_small_dataset,
)


class TestConfigValidation:
    def test_defaults_valid(self):
        LausanneConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"days": 0},
            {"sampling_interval_s": 0},
            {"dropout_rate": 1.0},
            {"noise_ppm": -1},
            {"gps_jitter_m": -1},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            LausanneConfig(**kwargs)


class TestGeneration:
    def test_deterministic(self):
        cfg = LausanneConfig(days=1, target_tuples=0)
        a = generate_lausanne_dataset(cfg)
        b = generate_lausanne_dataset(cfg)
        assert np.array_equal(a.tuples.t, b.tuples.t)
        assert np.array_equal(a.tuples.s, b.tuples.s)

    def test_time_sorted(self, small_dataset):
        assert small_dataset.tuples.is_time_sorted()

    def test_values_non_negative(self, small_dataset):
        assert np.all(small_dataset.tuples.s >= 0.0)

    def test_truth_recorded_per_tuple(self, small_dataset):
        assert len(small_dataset.truth) == len(small_dataset)
        # Noise is zero-mean: measured values straddle the truth.
        residual = small_dataset.tuples.s - small_dataset.truth
        assert abs(float(np.mean(residual))) < 2.0

    def test_temporal_skew_no_night_data(self, small_dataset):
        hours = (small_dataset.tuples.t % SECONDS_PER_DAY) / 3600.0
        assert not np.any((hours >= 0.0) & (hours < 5.0))

    def test_geographic_skew_data_on_routes(self, small_dataset):
        # Every sample lies within GPS jitter of one of the two polylines.
        from repro.geo.coords import euclidean

        routes = small_dataset.routes
        xs, ys = small_dataset.tuples.x, small_dataset.tuples.y
        for i in range(0, len(xs), 97):
            d_min = min(
                min(
                    euclidean(xs[i], ys[i], *route.position_at_offset(o))
                    for o in np.linspace(0, route.length_m, 200)
                )
                for route in routes
            )
            assert d_min < 80.0

    def test_target_tuple_subsampling(self):
        cfg = LausanneConfig(days=2, target_tuples=1000)
        ds = generate_lausanne_dataset(cfg)
        assert len(ds) == 1000
        assert ds.tuples.is_time_sorted()

    def test_full_scale_count(self):
        # The headline dataset property: 176 K raw tuples over 30 days.
        ds = generate_lausanne_dataset()
        assert len(ds) == 176_000
        assert ds.tuples.t[-1] < 30 * SECONDS_PER_DAY

    def test_covered_bbox_inside_region(self, small_dataset):
        bbox = small_dataset.covered_bbox()
        region = small_dataset.region.bounds
        assert bbox.min_x >= region.min_x - 100
        assert bbox.max_x <= region.max_x + 100


class TestSmallDataset:
    def test_truncation(self):
        ds = generate_small_dataset(n_hours=8)
        assert len(ds) > 100
        assert float(ds.tuples.t[-1]) < 8 * 3600.0
        assert len(ds.truth) == len(ds)
