"""Property-based tests on core invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adkmn import AdKMNConfig, fit_adkmn
from repro.core.cover import ModelCover
from repro.core.kmeans import kmeans
from repro.data.tuples import TupleBatch
from repro.models.mean import MeanModel

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
ppm = st.floats(min_value=0.0, max_value=5000.0, allow_nan=False)


@st.composite
def tuple_batches(draw, min_size=4, max_size=60):
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    t = sorted(draw(st.lists(st.floats(0, 1e6, allow_nan=False), min_size=n, max_size=n)))
    x = draw(st.lists(finite, min_size=n, max_size=n))
    y = draw(st.lists(finite, min_size=n, max_size=n))
    s = draw(st.lists(ppm, min_size=n, max_size=n))
    return TupleBatch(np.array(t), np.array(x), np.array(y), np.array(s))


@settings(max_examples=40, deadline=None)
@given(batch=tuple_batches())
def test_adkmn_always_produces_valid_cover(batch):
    """Whatever the window, Ad-KMN yields a structurally valid cover whose
    labels are a nearest-centroid partition and whose size respects caps."""
    cfg = AdKMNConfig(tau_n_pct=2.0, max_models=16)
    result = fit_adkmn(batch, cfg)
    cover = result.cover
    assert 1 <= cover.size <= min(16, len(batch))
    assert len(result.labels) == len(batch)
    pts = batch.positions()
    d2 = np.sum((pts[:, None, :] - cover.centroids[None, :, :]) ** 2, axis=2)
    best = np.min(d2, axis=1)
    chosen = d2[np.arange(len(batch)), result.labels]
    assert np.allclose(chosen, best)


@settings(max_examples=40, deadline=None)
@given(batch=tuple_batches())
def test_cover_serialization_round_trip(batch):
    """to_blob/from_blob is lossless for predictions."""
    result = fit_adkmn(batch, AdKMNConfig(tau_n_pct=5.0, max_models=8))
    cover = result.cover
    rebuilt = ModelCover.from_blob(cover.to_blob())
    assert rebuilt.size == cover.size
    assert rebuilt.valid_until == cover.valid_until
    # Predictions agree at the window's own points.
    a = cover.predict_batch(batch.t, batch.x, batch.y)
    b = rebuilt.predict_batch(batch.t, batch.x, batch.y)
    assert np.allclose(a, b)


@settings(max_examples=40, deadline=None)
@given(
    points=st.lists(st.tuples(finite, finite), min_size=3, max_size=50),
    k=st.integers(min_value=1, max_value=3),
)
def test_kmeans_partition_invariants(points, k):
    pts = np.asarray(points, dtype=float)
    result = kmeans(pts, k, seed=0)
    assert result.k == k
    assert len(result.labels) == len(pts)
    assert result.inertia >= 0.0
    # Every label refers to an existing centroid.
    assert np.all(result.labels >= 0)
    assert np.all(result.labels < k)


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(ppm, min_size=1, max_size=10),
    t=st.floats(min_value=0, max_value=1e9, allow_nan=False),
)
def test_cover_validity_boundary(values, t):
    """is_valid_at is exactly the paper's t_l <= t_n check."""
    cover = ModelCover(
        centroids=np.zeros((1, 2)),
        models=[MeanModel(values[0])],
        valid_until=t,
        family="mean",
    )
    assert cover.is_valid_at(t)
    assert not cover.is_valid_at(np.nextafter(t, np.inf))
