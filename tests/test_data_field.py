"""Tests for repro.data.field."""

import numpy as np
import pytest

from repro.data.field import (
    SECONDS_PER_DAY,
    DiurnalTrafficCycle,
    EmissionSource,
    PollutionField,
    default_lausanne_field,
)


class TestEmissionSource:
    def test_validation(self):
        with pytest.raises(ValueError):
            EmissionSource(0, 0, 100, sigma_m=0)
        with pytest.raises(ValueError):
            EmissionSource(0, 0, -1, sigma_m=10)
        with pytest.raises(ValueError):
            EmissionSource(0, 0, 1, sigma_m=10, traffic_coupling=1.5)

    def test_peak_at_center(self):
        src = EmissionSource(100, 100, amplitude_ppm=200, sigma_m=50)
        full = src.excess_at(np.array([100.0]), np.array([100.0]), np.array([1.0]))
        assert full[0] == pytest.approx(200.0)

    def test_decay_with_distance(self):
        src = EmissionSource(0, 0, amplitude_ppm=200, sigma_m=50)
        traffic = np.array([1.0])
        near = src.excess_at(np.array([10.0]), np.array([0.0]), traffic)[0]
        far = src.excess_at(np.array([200.0]), np.array([0.0]), traffic)[0]
        assert near > far

    def test_traffic_coupling_zero_is_constant(self):
        src = EmissionSource(0, 0, 100, 50, traffic_coupling=0.0)
        lo = src.excess_at(np.array([0.0]), np.array([0.0]), np.array([0.0]))[0]
        hi = src.excess_at(np.array([0.0]), np.array([0.0]), np.array([1.0]))[0]
        assert lo == pytest.approx(hi)


class TestDiurnalTrafficCycle:
    def setup_method(self):
        self.cycle = DiurnalTrafficCycle()

    def test_range(self):
        t = np.linspace(0, 7 * SECONDS_PER_DAY, 1000)
        intensity = self.cycle.intensity(t)
        assert np.all(intensity >= 0.0)
        assert np.all(intensity <= 1.0)

    def test_rush_hour_peaks(self):
        morning = self.cycle.intensity(np.array([8.0 * 3600]))[0]
        night = self.cycle.intensity(np.array([3.0 * 3600]))[0]
        assert morning > 3 * night

    def test_weekend_scaled_down(self):
        # Day 5 is a weekend day; same hour on day 0 is a weekday.
        weekday = self.cycle.intensity(np.array([8.0 * 3600]))[0]
        weekend = self.cycle.intensity(np.array([5 * SECONDS_PER_DAY + 8.0 * 3600]))[0]
        assert weekend == pytest.approx(weekday * self.cycle.weekend_factor)


class TestPollutionField:
    def setup_method(self):
        self.field = default_lausanne_field()

    def test_scalar_matches_vector(self):
        v = self.field.value(3600.0, 1500.0, 1200.0)
        arr = self.field.values(
            np.array([3600.0]), np.array([1500.0]), np.array([1200.0])
        )
        assert v == pytest.approx(float(arr[0]))

    def test_above_ambient_everywhere(self):
        t = np.full(10, 8 * 3600.0)
        x = np.linspace(0, 6000, 10)
        y = np.linspace(0, 4000, 10)
        assert np.all(self.field.values(t, x, y) >= self.field.ambient_ppm)

    def test_plume_raises_concentration(self):
        at_plume = self.field.value(8 * 3600.0, 1500.0, 1200.0)  # gare source
        remote = self.field.value(8 * 3600.0, 5900.0, 100.0)
        assert at_plume > remote + 50

    def test_diurnal_variation(self):
        rush = self.field.value(8 * 3600.0, 1500.0, 1200.0)
        night = self.field.value(3 * 3600.0, 1500.0, 1200.0)
        assert rush > night

    def test_grid_shape_and_orientation(self):
        xs = np.linspace(0, 6000, 8)
        ys = np.linspace(0, 4000, 5)
        grid = self.field.grid(8 * 3600.0, xs, ys)
        assert grid.shape == (5, 8)
        # Row 0 is ys[0]; value must equal direct evaluation.
        assert grid[0, 3] == pytest.approx(self.field.value(8 * 3600.0, xs[3], ys[0]))

    def test_deterministic_given_seed(self):
        a = default_lausanne_field(seed=3)
        b = default_lausanne_field(seed=3)
        assert a.value(0, 100, 100) == b.value(0, 100, 100)
