"""Tests for repro.query.subscriptions — standing queries with
epoch-delta maintenance.

The load-bearing test is the replay oracle (golden-oracle discipline):
rebuild every subscription's answer purely from its pushed update
stream, and at each delivered update compare byte-for-byte against a
from-scratch backend over exactly the row prefix the update was pinned
at.  If maintenance ever skips a dirty slice, fast-forwards a mark, or
serves a torn snapshot, the reconstruction diverges.
"""

import threading

import numpy as np
import pytest

from repro.data.tuples import TupleBatch
from repro.geo.coords import BoundingBox
from repro.geo.region import RegionGrid
from repro.query.engine import QueryEngine
from repro.query.sharded import ShardedQueryEngine
from repro.query.subscriptions import (
    SubscriptionRegistry,
    SubscriptionSpec,
    registry_for,
)
from repro.server.server import (
    ConcurrentEnviroMeterServer,
    EnviroMeterServer,
    ShardedEnviroMeterServer,
)
from repro.storage.shards import ShardRouter

H = 240
KINDS = ("engine", "sharded-engine", "server", "sharded-server")
# Servers only serve model-cover answers; engines get an exact method so
# the sketch-pruned path is exercised too.
METHOD = {
    "engine": "naive",
    "sharded-engine": "naive",
    "server": None,
    "sharded-server": None,
}


def _bbox(batch, pad=500.0):
    return BoundingBox(
        float(batch.x.min()) - pad,
        float(batch.y.min()) - pad,
        float(batch.x.max()) + pad,
        float(batch.y.max()) + pad,
    )


def _route_near(batch, d=300.0):
    xm, ym = float(np.mean(batch.x)), float(np.mean(batch.y))
    return [(xm - d, ym - d), (xm + d, ym + d)]


def _fresh(kind, batch, bbox):
    if kind == "engine":
        return QueryEngine(batch, h=H)
    if kind == "sharded-engine":
        router = ShardRouter(RegionGrid(bbox, nx=2, ny=2), h=H)
        router.ingest(batch)
        return ShardedQueryEngine(router)
    if kind == "server":
        srv = EnviroMeterServer(h=H)
        srv.ingest(batch)
        return srv
    srv = ShardedEnviroMeterServer(RegionGrid(bbox, nx=2, ny=2), h=H)
    srv.ingest(batch)
    return srv


def _extend(kind, backend, batch, hi):
    """Grow ``backend`` to the first ``hi`` rows of ``batch``."""
    if kind == "engine":
        backend.refresh(batch.slice(0, hi))
    elif kind == "sharded-engine":
        n = backend.router.global_count()
        backend.router.ingest(batch.slice(n, hi))
    else:
        n = len(backend.snapshot()) if kind == "server" else sum(
            len(s.snapshot()) for s in backend.shards
        )
        backend.ingest(batch.slice(n, hi))


def _reference(kind, batch, hi, bbox, query_batch, method):
    """From-scratch answers over exactly the first ``hi`` rows."""
    reg = registry_for(_fresh(kind, batch.slice(0, hi), bbox))
    return reg.reference_answers(query_batch, method)


def _replay(sub, updates, kind, batch, bbox):
    """Rebuild the answer from the update stream, checking every
    delivered epoch against the from-scratch oracle."""
    state_v = sub.initial.values.copy()
    state_s = sub.initial.support.copy()
    seq = sub.initial.seq
    for u in sorted(updates, key=lambda u: u.seq):
        assert u.seq == seq + 1, "updates must arrive gap-free and in order"
        seq = u.seq
        state_v[u.indices] = u.values
        state_s[u.indices] = u.support
        ref_v, ref_s = _reference(
            kind, batch, u.rows, bbox, sub.spec.query_batch(), sub.method
        )
        assert np.array_equal(state_v, ref_v, equal_nan=True), (
            f"{kind}: values diverge at seq {u.seq} (rows {u.rows})"
        )
        assert np.array_equal(state_s, ref_s), (
            f"{kind}: support diverges at seq {u.seq} (rows {u.rows})"
        )
    return state_v, state_s


class TestRegistryBasics:
    def test_initial_answer_matches_reference(self, small_batch):
        engine = QueryEngine(small_batch, h=H)
        reg = registry_for(engine)
        sub = reg.subscribe(
            _route_near(small_batch),
            float(small_batch.t[1000]),
            interval_s=60.0,
            count=10,
            method="naive",
        )
        ref_v, ref_s = reg.reference_answers(sub.spec.query_batch(), "naive")
        assert np.array_equal(sub.initial.values, ref_v, equal_nan=True)
        assert np.array_equal(sub.initial.support, ref_s)
        assert sub.initial.kind == "initial"
        assert sub.initial.seq == 0
        # Something is answered on a route through the data's centroid.
        assert np.isfinite(sub.initial.values).any()

    def test_quiet_pass_is_cheap_and_delivers_nothing(self, small_batch):
        reg = registry_for(QueryEngine(small_batch, h=H))
        sub = reg.subscribe(
            _route_near(small_batch), float(small_batch.t[1000]), method="naive"
        )
        assert reg.maintain() == []
        before = reg.stats.quiet_passes
        assert reg.poll(sub.id) == []
        assert reg.stats.quiet_passes == before + 1
        assert reg.stats.queries_reexecuted == 0

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SubscriptionSpec(route=((0.0, 0.0),), t_start=0.0)
        with pytest.raises(ValueError):
            SubscriptionSpec(
                route=((0.0, 0.0), (1.0, 1.0)), t_start=0.0, interval_s=0.0
            )
        with pytest.raises(ValueError):
            SubscriptionSpec(
                route=((0.0, 0.0), (1.0, 1.0)), t_start=0.0, count=0
            )

    def test_unknown_method_rejected(self, small_batch):
        reg = registry_for(QueryEngine(small_batch, h=H))
        with pytest.raises(ValueError):
            reg.subscribe(
                _route_near(small_batch),
                float(small_batch.t[0]),
                method="teleport",
            )

    def test_unregister_stops_delivery(self, small_batch):
        cut = int(0.7 * len(small_batch))
        engine = QueryEngine(small_batch.slice(0, cut), h=H)
        reg = registry_for(engine)
        sub = reg.subscribe(
            _route_near(small_batch), float(small_batch.t[cut - 1]), method="naive"
        )
        reg.unregister(sub.id)
        engine.refresh(small_batch)
        assert reg.maintain() == []
        with pytest.raises(KeyError):
            reg.poll(sub.id)

    def test_registry_for_unwraps_wrappers(self, small_batch):
        inner = EnviroMeterServer(h=H)
        inner.ingest(small_batch)
        front = ConcurrentEnviroMeterServer(inner)
        assert isinstance(front.subscriptions, SubscriptionRegistry)
        assert front.subscriptions is inner.subscriptions
        with pytest.raises(TypeError):
            registry_for(object())


class TestMaintenancePruning:
    def test_sealed_window_subscription_ignores_tail_ingest(self, small_batch):
        cut = int(0.7 * len(small_batch))
        engine = QueryEngine(small_batch.slice(0, cut), h=H)
        reg = registry_for(engine)
        sub = reg.subscribe(
            _route_near(small_batch),
            float(small_batch.t[300]),
            interval_s=60.0,
            count=10,
            method="naive",
        )
        for hi in (cut + 400, cut + 800, len(small_batch)):
            engine.refresh(small_batch.slice(0, hi))
            reg.maintain()
        # Tail-only ingest never touches the early windows this route
        # lives in: the mark diff prunes it before any execution.
        assert reg.stats.queries_reexecuted == 0
        assert reg.poll(sub.id, maintain=False) == []
        ref_v, ref_s = reg.reference_answers(sub.spec.query_batch(), "naive")
        v, s = sub.answer()
        assert np.array_equal(v, ref_v, equal_nan=True)
        assert np.array_equal(s, ref_s)

    def test_tail_subscription_receives_deltas(self, small_batch):
        cut = int(0.7 * len(small_batch))
        engine = QueryEngine(small_batch.slice(0, cut), h=H)
        reg = registry_for(engine)
        sub = reg.subscribe(
            _route_near(small_batch),
            float(small_batch.t[cut - 1]),
            interval_s=60.0,
            count=12,
            method="naive",
        )
        engine.refresh(small_batch)
        updates = reg.poll(sub.id)
        assert updates, "tail ingest must dirty a tail-time subscription"
        assert reg.stats.queries_reexecuted > 0
        assert all(u.kind == "delta" for u in updates)

    def test_sketch_prunes_spatially_disjoint_ingest(self):
        rng = np.random.default_rng(3)
        n = 60
        base = TupleBatch(
            np.linspace(0.0, 600.0, n),
            rng.uniform(0.0, 100.0, n),
            rng.uniform(0.0, 100.0, n),
            rng.uniform(400.0, 500.0, n),
        )
        engine = QueryEngine(base, h=1000, radius_m=200.0)
        reg = registry_for(engine)
        sub = reg.subscribe(
            [(0.0, 0.0), (100.0, 100.0)],
            0.0,
            interval_s=60.0,
            count=5,
            method="naive",
        )
        # Same (single) time window, but 10 km away: the window's mark
        # moves, and the delta sketch proves no query disk can reach the
        # new points — all five queries skipped, nothing re-executed.
        far = TupleBatch(
            np.linspace(601.0, 900.0, 20),
            rng.uniform(10_000.0, 10_100.0, 20),
            rng.uniform(10_000.0, 10_100.0, 20),
            rng.uniform(400.0, 500.0, 20),
        )
        engine.refresh(base.concat(far))
        assert reg.poll(sub.id) == []
        assert reg.stats.queries_skipped_sketch == 5
        assert reg.stats.queries_reexecuted == 0
        ref_v, ref_s = reg.reference_answers(sub.spec.query_batch(), "naive")
        v, s = sub.answer()
        assert np.array_equal(v, ref_v, equal_nan=True)
        assert np.array_equal(s, ref_s)


class TestReplayOracle:
    @pytest.mark.parametrize("kind", KINDS)
    def test_stepwise_ingest_stream_is_byte_identical(self, kind, small_batch):
        batch = small_batch
        bbox = _bbox(batch)
        cut = int(0.7 * len(batch))
        backend = _fresh(kind, batch.slice(0, cut), bbox)
        reg = registry_for(backend)
        method = METHOD[kind]
        subs = [
            # One standing query at the moving tail, one over long-sealed
            # early windows.
            reg.subscribe(
                _route_near(batch),
                float(batch.t[cut - 1]),
                interval_s=60.0,
                count=12,
                method=method,
            ),
            reg.subscribe(
                _route_near(batch, d=200.0),
                float(batch.t[300]),
                interval_s=60.0,
                count=8,
                method=method,
            ),
        ]
        collected = {s.id: [] for s in subs}
        step = (len(batch) - cut + 3) // 4
        for hi in range(cut + step, len(batch) + step, step):
            hi = min(hi, len(batch))
            _extend(kind, backend, batch, hi)
            reg.maintain()
            for s in subs:
                collected[s.id].extend(reg.poll(s.id, maintain=False))
        for s in subs:
            state_v, state_s = _replay(s, collected[s.id], kind, batch, bbox)
            # The reconstructed stream lands exactly on the live answer.
            v, sup = s.answer()
            assert np.array_equal(state_v, v, equal_nan=True)
            assert np.array_equal(state_s, sup)
            # ... which is the from-scratch answer over the full stream.
            ref_v, ref_s = _reference(
                kind, batch, len(batch), bbox, s.spec.query_batch(), s.method
            )
            assert np.array_equal(v, ref_v, equal_nan=True)
            assert np.array_equal(sup, ref_s)

    def test_free_running_writer_engine(self, small_batch):
        """A writer thread refreshes the engine while the reader polls
        concurrently: every delivered update must still be byte-identical
        to from-scratch execution at its pinned row count."""
        batch = small_batch
        bbox = _bbox(batch)
        cut = int(0.6 * len(batch))
        engine = QueryEngine(batch.slice(0, cut), h=H)
        reg = registry_for(engine)
        sub = reg.subscribe(
            _route_near(batch),
            float(batch.t[cut - 1]),
            interval_s=60.0,
            count=12,
            method="naive",
        )

        def write():
            n = cut
            while n < len(batch):
                n = min(n + 251, len(batch))
                engine.refresh(batch.slice(0, n))

        writer = threading.Thread(target=write)
        writer.start()
        updates = []
        while writer.is_alive():
            updates.extend(reg.poll(sub.id))
        writer.join()
        updates.extend(reg.poll(sub.id))
        assert updates, "the growing tail must reach the subscription"
        _replay(sub, updates, "engine", batch, bbox)
        ref_v, ref_s = _reference(
            "engine", batch, len(batch), bbox, sub.spec.query_batch(), "naive"
        )
        v, s = sub.answer()
        assert np.array_equal(v, ref_v, equal_nan=True)
        assert np.array_equal(s, ref_s)


class TestShardedServerColdRegion:
    def test_cold_region_subscription_follows_data(self, small_batch):
        batch = small_batch
        b = _bbox(batch, pad=10.0)
        width = b.max_x - b.min_x
        # Two columns: all real data in the left cell, the right one cold.
        grid = RegionGrid(
            BoundingBox(b.min_x, b.min_y, b.max_x + width, b.max_y), nx=2, ny=1
        )
        srv = ShardedEnviroMeterServer(grid, h=H)
        srv.ingest(batch)
        xm = float(np.mean(batch.x)) + width
        ym = float(np.mean(batch.y))
        t_tail = float(batch.t[-1])
        sub = srv.subscribe(
            [(xm - 300.0, ym - 300.0), (xm + 300.0, ym + 300.0)],
            t_tail,
            interval_s=60.0,
            count=8,
        )
        # Data arrives in the cold region (same stream, shifted east).
        shifted = TupleBatch(
            batch.t[-600:] + 1.0, batch.x[-600:] + width, batch.y[-600:], batch.s[-600:]
        )
        srv.ingest(shifted)
        srv.poll_updates(sub.id)
        ref = ShardedEnviroMeterServer(grid, h=H)
        ref.ingest(batch)
        ref.ingest(shifted)
        ref_v, ref_s = registry_for(ref).reference_answers(
            sub.spec.query_batch(), sub.method
        )
        v, s = sub.answer()
        assert np.array_equal(v, ref_v, equal_nan=True)
        assert np.array_equal(s, ref_s)
        # The remapped subscription now actually reads the new region.
        assert np.isfinite(v).any()
