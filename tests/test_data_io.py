"""Tests for repro.data.io."""

import numpy as np
import pytest

from repro.data.io import read_tuples_csv, write_tuples_csv
from repro.data.tuples import TupleBatch


@pytest.fixture()
def batch():
    return TupleBatch(
        [0.0, 60.0, 120.0],
        [1.5, 2.5, 3.5],
        [4.5, 5.5, 6.5],
        [400.123456789, 410.0, 420.0],
    )


class TestRoundTrip:
    def test_exact_round_trip(self, batch, tmp_path):
        path = tmp_path / "tuples.csv"
        write_tuples_csv(batch, path)
        loaded = read_tuples_csv(path)
        assert np.array_equal(loaded.t, batch.t)
        assert np.array_equal(loaded.x, batch.x)
        assert np.array_equal(loaded.y, batch.y)
        assert np.array_equal(loaded.s, batch.s)  # repr() is lossless

    def test_empty_batch(self, tmp_path):
        path = tmp_path / "empty.csv"
        write_tuples_csv(TupleBatch.empty(), path)
        assert len(read_tuples_csv(path)) == 0


class TestErrors:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "nothing.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_tuples_csv(path)

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c,d\n1,2,3,4\n")
        with pytest.raises(ValueError, match="header"):
            read_tuples_csv(path)

    def test_wrong_column_count(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("t,x,y,s\n1,2,3\n")
        with pytest.raises(ValueError, match="4 columns"):
            read_tuples_csv(path)

    def test_non_numeric(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("t,x,y,s\n1,2,3,abc\n")
        with pytest.raises(ValueError, match="non-numeric"):
            read_tuples_csv(path)
