"""Tests for repro.models.linear."""

import numpy as np
import pytest

from repro.data.tuples import TupleBatch
from repro.models.linear import LinearModel


class TestFit:
    def test_recovers_planar_field(self, tiny_batch):
        # tiny_batch has s = 400 + 0.5x + 0.25y exactly; the ridge shrinks
        # slopes slightly, so allow a small tolerance.
        model = LinearModel.fit(tiny_batch)
        for i in range(len(tiny_batch)):
            pred = model.predict(tiny_batch.t[i], tiny_batch.x[i], tiny_batch.y[i])
            assert pred == pytest.approx(tiny_batch.s[i], rel=0.02)

    def test_time_invariant(self, tiny_batch):
        model = LinearModel.fit(tiny_batch)
        assert model.predict(0.0, 50, 50) == model.predict(1e9, 50, 50)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            LinearModel.fit(TupleBatch.empty())

    def test_single_point_degrades_to_mean(self):
        batch = TupleBatch([0.0], [100.0], [200.0], [500.0])
        model = LinearModel.fit(batch)
        assert model.predict(0, 100, 200) == pytest.approx(500.0)
        # Slopes are fully shrunk: prediction far away stays finite & flat.
        assert model.predict(0, 100_000, 200_000) == pytest.approx(500.0, rel=0.01)

    def test_collinear_road_data_does_not_explode(self):
        # Points along a road (x varies, y constant + GPS noise): the
        # perpendicular slope must be tiny thanks to the ridge.
        rng = np.random.default_rng(0)
        n = 30
        x = np.linspace(0, 1000, n)
        y = 500.0 + rng.normal(0, 8, n)
        s = 450.0 + 0.1 * x + rng.normal(0, 12, n)
        model = LinearModel.fit(TupleBatch(np.arange(n) * 60.0, x, y, s))
        on_road = model.predict(0, 500, 500)
        off_road = model.predict(0, 500, 900)  # 400 m perpendicular
        assert abs(off_road - on_road) < 60.0

    def test_ridge_barely_affects_well_spread_fit(self):
        rng = np.random.default_rng(1)
        n = 200
        x = rng.uniform(0, 2000, n)
        y = rng.uniform(0, 2000, n)
        s = 400.0 + 0.2 * x - 0.1 * y
        model = LinearModel.fit(TupleBatch(np.zeros(n), x, y, s))
        coeffs = model.coefficients()
        assert coeffs[1] == pytest.approx(0.2, rel=0.01)
        assert coeffs[2] == pytest.approx(-0.1, rel=0.02)


class TestPredictBatch:
    def test_matches_scalar(self, tiny_batch):
        model = LinearModel.fit(tiny_batch)
        out = model.predict_batch(tiny_batch.t, tiny_batch.x, tiny_batch.y)
        for i in range(len(tiny_batch)):
            assert out[i] == pytest.approx(
                model.predict(tiny_batch.t[i], tiny_batch.x[i], tiny_batch.y[i])
            )


class TestWire:
    def test_five_coefficients(self, tiny_batch):
        assert len(LinearModel.fit(tiny_batch).coefficients()) == 5

    def test_round_trip(self, tiny_batch):
        model = LinearModel.fit(tiny_batch)
        rebuilt = LinearModel.from_coefficients(model.coefficients())
        assert rebuilt.predict(7, 123, 456) == pytest.approx(model.predict(7, 123, 456))

    def test_wrong_arity(self):
        with pytest.raises(ValueError):
            LinearModel.from_coefficients((1.0, 2.0, 3.0))
        with pytest.raises(ValueError):
            LinearModel(b=(1.0, 2.0), x0=0, y0=0)
