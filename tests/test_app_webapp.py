"""Tests for repro.app.webapp — the three web-interface modes."""

import numpy as np
import pytest

from repro.app.webapp import WebInterface
from repro.geo.coords import BoundingBox
from repro.query.engine import QueryEngine


@pytest.fixture(scope="module")
def web(small_batch):
    return WebInterface(QueryEngine(small_batch, h=240))


@pytest.fixture(scope="module")
def t_mid(small_batch):
    return float(small_batch.t[500])


class TestPointQueryMode:
    def test_reading_with_text(self, web, t_mid):
        reading = web.point_query(t_mid, 2000.0, 1500.0)
        assert reading.co2_ppm is not None
        assert "ppm" in reading.text

    def test_reading_coordinates_echoed(self, web, t_mid):
        reading = web.point_query(t_mid, 1234.0, 2345.0)
        assert reading.x == 1234.0
        assert reading.y == 2345.0


class TestContinuousQueryMode:
    def test_readings_along_route(self, web, t_mid):
        readings = web.continuous_query(
            [(1000.0, 1000.0), (3000.0, 2200.0)], t_start=t_mid, updates=10
        )
        assert len(readings) == 10
        answered = [r for r in readings if r.co2_ppm is not None]
        assert len(answered) == 10
        assert all(r.marker_color.startswith("#") for r in answered)

    def test_needs_two_points(self, web, t_mid):
        with pytest.raises(ValueError):
            web.continuous_query([(0.0, 0.0)], t_start=t_mid)

    def test_route_endpoints_visited(self, web, t_mid):
        readings = web.continuous_query(
            [(1000.0, 1000.0), (3000.0, 2200.0)], t_start=t_mid, updates=5
        )
        assert (readings[0].x, readings[0].y) == (1000.0, 1000.0)
        assert (readings[-1].x, readings[-1].y) == (3000.0, 2200.0)


class TestHeatmapMode:
    def test_heatmap_covers_bounds(self, web, t_mid):
        bounds = BoundingBox(0, 0, 6000, 4000)
        hm = web.heatmap(t_mid, bounds, nx=10, ny=8)
        assert hm.shape == (8, 10)
        assert np.all(np.isfinite(hm.grid))

    def test_centroid_markers(self, web, t_mid):
        markers = web.centroid_markers(t_mid)
        assert len(markers) >= 1
        for m in markers:
            assert m.co2_ppm >= 0.0
            assert m.color.startswith("#")
