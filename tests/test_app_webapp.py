"""Tests for repro.app.webapp — the three web-interface modes."""

import numpy as np
import pytest

from repro.app.webapp import WebInterface
from repro.geo.coords import BoundingBox
from repro.query.engine import QueryEngine


@pytest.fixture(scope="module")
def web(small_batch):
    return WebInterface(QueryEngine(small_batch, h=240))


@pytest.fixture(scope="module")
def t_mid(small_batch):
    return float(small_batch.t[500])


class TestPointQueryMode:
    def test_reading_with_text(self, web, t_mid):
        reading = web.point_query(t_mid, 2000.0, 1500.0)
        assert reading.co2_ppm is not None
        assert "ppm" in reading.text

    def test_reading_coordinates_echoed(self, web, t_mid):
        reading = web.point_query(t_mid, 1234.0, 2345.0)
        assert reading.x == 1234.0
        assert reading.y == 2345.0


class TestContinuousQueryMode:
    def test_readings_along_route(self, web, t_mid):
        readings = web.continuous_query(
            [(1000.0, 1000.0), (3000.0, 2200.0)], t_start=t_mid, updates=10
        )
        assert len(readings) == 10
        answered = [r for r in readings if r.co2_ppm is not None]
        assert len(answered) == 10
        assert all(r.marker_color.startswith("#") for r in answered)

    def test_needs_two_points(self, web, t_mid):
        with pytest.raises(ValueError):
            web.continuous_query([(0.0, 0.0)], t_start=t_mid)

    def test_route_endpoints_visited(self, web, t_mid):
        readings = web.continuous_query(
            [(1000.0, 1000.0), (3000.0, 2200.0)], t_start=t_mid, updates=5
        )
        assert (readings[0].x, readings[0].y) == (1000.0, 1000.0)
        assert (readings[-1].x, readings[-1].y) == (3000.0, 2200.0)


class TestHeatmapMode:
    def test_heatmap_covers_bounds(self, web, t_mid):
        bounds = BoundingBox(0, 0, 6000, 4000)
        hm = web.heatmap(t_mid, bounds, nx=10, ny=8)
        assert hm.shape == (8, 10)
        assert np.all(np.isfinite(hm.grid))

    def test_centroid_markers(self, web, t_mid):
        markers = web.centroid_markers(t_mid)
        assert len(markers) >= 1
        for m in markers:
            assert m.co2_ppm >= 0.0
            assert m.color.startswith("#")


class TestCentroidMarkersPipeline:
    """Regression: centroid_markers must go through the engine's
    snapshot-pinned processor path, not refit via builder.cover."""

    def test_repeated_renders_reuse_cached_fit(self, small_batch, monkeypatch):
        engine = QueryEngine(small_batch, h=240)
        web = WebInterface(engine)
        t = float(small_batch.t[500])

        builds = []
        original = engine.builder.build

        def counting_build(*args, **kwargs):
            builds.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(engine.builder, "build", counting_build)
        first = web.centroid_markers(t)
        for _ in range(3):
            again = web.centroid_markers(t)
            assert [(m.x, m.y, m.co2_ppm) for m in again] == [
                (m.x, m.y, m.co2_ppm) for m in first
            ]
        assert len(builds) == 1

    def test_never_calls_builder_cover_directly(self, small_batch, monkeypatch):
        engine = QueryEngine(small_batch, h=240)
        web = WebInterface(engine)

        def forbidden(*args, **kwargs):  # pragma: no cover - fails the test
            raise AssertionError("unpinned builder.cover() bypasses the pipeline")

        monkeypatch.setattr(engine.builder, "cover", forbidden)
        markers = web.centroid_markers(float(small_batch.t[500]))
        assert len(markers) >= 1

    def test_matches_pipeline_cover(self, small_batch):
        engine = QueryEngine(small_batch, h=240)
        web = WebInterface(engine)
        t = float(small_batch.t[500])
        c = engine.window_for_time(t)
        cover = engine.processor("model-cover", c).cover
        markers = web.centroid_markers(t)
        assert len(markers) == len(cover.centroids)
        for marker, (cx, cy) in zip(markers, cover.centroids):
            assert (marker.x, marker.y) == (float(cx), float(cy))
