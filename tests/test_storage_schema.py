"""Tests for repro.storage.schema."""

import pytest

from repro.storage.schema import (
    MODEL_COVER_SCHEMA,
    RAW_TUPLES_SCHEMA,
    Column,
    ColumnType,
    Schema,
)


class TestColumn:
    def test_valid(self):
        Column("t", ColumnType.FLOAT64)

    @pytest.mark.parametrize("name", ["", "1abc", "a-b", "a b"])
    def test_invalid_names(self, name):
        with pytest.raises(ValueError):
            Column(name, ColumnType.FLOAT64)


class TestSchema:
    def test_of_builder(self):
        schema = Schema.of(("a", ColumnType.FLOAT64), ("b", ColumnType.BYTES))
        assert schema.names == ("a", "b")
        assert len(schema) == 2

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Schema.of(("a", ColumnType.FLOAT64), ("a", ColumnType.INT64))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Schema(())

    def test_column_lookup(self):
        schema = Schema.of(("a", ColumnType.FLOAT64), ("b", ColumnType.INT64))
        assert schema.column("b").ctype is ColumnType.INT64
        assert schema.index_of("b") == 1

    def test_unknown_column(self):
        schema = Schema.of(("a", ColumnType.FLOAT64))
        with pytest.raises(KeyError):
            schema.column("zzz")
        with pytest.raises(KeyError):
            schema.index_of("zzz")


class TestBuiltinSchemas:
    def test_raw_tuples_matches_paper(self):
        # b_i = (t_i, x_i, y_i, s_i)
        assert RAW_TUPLES_SCHEMA.names == ("t", "x", "y", "s")

    def test_model_cover_has_blob(self):
        assert MODEL_COVER_SCHEMA.column("cover_blob").ctype is ColumnType.BYTES
