"""Tests for repro.storage.tiered — the durable, bounded-memory tier.

Two oracles anchor everything here:

* **Tier invisibility** — a :class:`TieredShardRouter` must resolve
  every ``(shard, window)`` to bit-identical rows, gids and sketches as
  a plain in-memory :class:`ShardRouter` fed the same stream, and every
  query engine built over it must return byte-identical answers — hot
  or cold, capped or uncapped, sharded or not, pruning on, and through
  the process-parallel front end.
* **Durable recovery** — closing and reopening the data directory must
  reconstruct exactly the same state, including the unsealed tail that
  only the WAL holds.
"""

import json

import numpy as np
import pytest

from repro.data.tuples import TupleBatch
from repro.geo.coords import BoundingBox
from repro.geo.region import RegionGrid
from repro.query.base import QueryBatch
from repro.query.pipeline.binding import RouterBinding
from repro.query.pipeline.parallel import ProcessShardedEngine
from repro.query.sharded import ShardedQueryEngine
from repro.storage.segments import SegmentCorrupt
from repro.storage.shards import ShardRouter
from repro.storage.tiered import TieredShardRouter

BOUNDS = BoundingBox(0.0, 0.0, 6000.0, 4000.0)
RADIUS_M = 1500.0


def make_stream(n: int, seed: int = 0) -> TupleBatch:
    rng = np.random.default_rng(seed)
    return TupleBatch(
        np.cumsum(rng.uniform(1.0, 30.0, n)),
        rng.uniform(-500.0, 6500.0, n),  # includes out-of-bounds positions
        rng.uniform(-500.0, 4500.0, n),
        rng.uniform(350.0, 600.0, n),
    )


def fill(router, stream: TupleBatch, pieces: int = 5) -> None:
    step = max(1, len(stream) // pieces)
    for start in range(0, len(stream), step):
        router.ingest(stream.slice(start, min(start + step, len(stream))))


def make_pair(tmp_path, stream, *, nx=2, ny=2, h=150, cap=None, pieces=5):
    """A tiered router and a plain router fed the identical batches."""
    grid = RegionGrid(BOUNDS, nx=nx, ny=ny)
    tiered = TieredShardRouter(
        grid, h=h, data_dir=tmp_path / "tier", memory_windows=cap
    )
    plain = ShardRouter(grid, h=h)
    fill(tiered, stream, pieces)
    fill(plain, stream, pieces)
    return tiered, plain


def assert_same_state(tiered, plain, epochs: bool = True) -> None:
    """Every protocol surface a plan consults must agree bit-for-bit.

    ``epochs=False`` skips the epoch stamps: they are cache keys, not
    content, and a recovered router legitimately re-stamps the replayed
    tail (the sealed stamps stay frozen either way).
    """
    assert tiered.n_shards == plain.n_shards
    assert tiered.global_count() == plain.global_count()
    assert tiered.shard_counts() == plain.shard_counts()
    assert tiered.global_window_count() == plain.global_window_count()
    for s in range(plain.n_shards):
        assert tiered.cuts(s) == plain.cuts(s)
    for c in range(plain.global_window_count()):
        for s in range(plain.n_shards):
            a, b = tiered.shard_window(s, c), plain.shard_window(s, c)
            for name in ("t", "x", "y", "s"):
                assert getattr(a, name).tobytes() == getattr(b, name).tobytes()
            assert (
                tiered.shard_window_gids(s, c).tobytes()
                == plain.shard_window_gids(s, c).tobytes()
            )
            assert tiered.shard_window_sketch(s, c) == plain.shard_window_sketch(
                s, c
            )
        if epochs:
            # Compare (stamp, rows); the trailing read-epoch field tracks
            # each router's own live epoch counter, not recovered state.
            assert [row[:2] for row in tiered.window_stats(c)] == [
                row[:2] for row in plain.window_stats(c)
            ]
        else:
            assert [rows for _, rows, _ in tiered.window_stats(c)] == [
                rows for _, rows, _ in plain.window_stats(c)
            ]


def assert_same_answers(a, b) -> None:
    assert a.values.tobytes() == b.values.tobytes()
    np.testing.assert_array_equal(a.answered, b.answered)
    np.testing.assert_array_equal(a.support, b.support)


def probe_queries(stream: TupleBatch, n: int = 80, seed: int = 1) -> QueryBatch:
    rng = np.random.default_rng(seed)
    t0, t1 = float(stream.t[0]), float(stream.t[-1])
    return QueryBatch(
        rng.uniform(t0, t1, n),
        rng.uniform(BOUNDS.min_x, BOUNDS.max_x, n),
        rng.uniform(BOUNDS.min_y, BOUNDS.max_y, n),
    )


class TestProtocolEquivalence:
    def test_matches_plain_router_bit_for_bit(self, tmp_path):
        stream = make_stream(2000)
        tiered, plain = make_pair(tmp_path, stream, h=150, cap=3)
        with tiered:
            assert_same_state(tiered, plain)
            assert tiered.sealed_window_count() == 2000 // 150
            # Time routing agrees everywhere, including out-of-range times.
            ts = np.concatenate(
                [
                    [stream.t[0] - 100.0, stream.t[-1] + 100.0],
                    np.linspace(stream.t[0], stream.t[-1], 97),
                ]
            )
            np.testing.assert_array_equal(
                tiered.windows_for_times(ts), plain.windows_for_times(ts)
            )

    def test_single_shard(self, tmp_path):
        stream = make_stream(700, seed=5)
        tiered, plain = make_pair(tmp_path, stream, nx=1, ny=1, h=100, cap=2)
        with tiered:
            assert_same_state(tiered, plain)

    def test_epochs_track_plain_router_live(self, tmp_path):
        stream = make_stream(900, seed=2)
        tiered, plain = make_pair(tmp_path, stream, h=120)
        with tiered:
            for c in range(plain.global_window_count()):
                for s in range(plain.n_shards):
                    assert tiered.shard_window_epoch(
                        s, c
                    ) == plain.shard_window_epoch(s, c)

    def test_window_bounds_checked_like_plain(self, tmp_path):
        tiered = TieredShardRouter(
            RegionGrid(BOUNDS, nx=2, ny=1), h=50, data_dir=tmp_path / "t"
        )
        with tiered:
            tiered.ingest(make_stream(60))
            with pytest.raises(ValueError):
                tiered.shard_window(0, -1)
            with pytest.raises(IndexError):
                tiered.shard_window(0, 2)

    def test_empty_router_has_no_time_routing(self, tmp_path):
        with TieredShardRouter(
            RegionGrid(BOUNDS, nx=1, ny=1), h=10, data_dir=tmp_path / "t"
        ) as tiered:
            with pytest.raises(RuntimeError, match="no data"):
                tiered.windows_for_times([1.0])

    def test_constructor_validation(self, tmp_path):
        grid = RegionGrid(BOUNDS, nx=1, ny=1)
        with pytest.raises(ValueError, match="h must be positive"):
            TieredShardRouter(grid, h=0, data_dir=tmp_path / "a")
        with pytest.raises(ValueError, match="memory_windows"):
            TieredShardRouter(
                grid, h=10, data_dir=tmp_path / "b", memory_windows=0
            )


class TestDurableRecovery:
    def test_reopen_recovers_identical_state(self, tmp_path):
        stream = make_stream(1300, seed=3)
        tiered, plain = make_pair(tmp_path, stream, h=150, cap=3, pieces=7)
        tiered.close()
        # 1300 = 8 * 150 + 100: the last 100 rows exist only in the WAL.
        with TieredShardRouter.open(tmp_path / "tier", memory_windows=3) as again:
            assert again.h == 150
            assert again.sealed_window_count() == 8
            assert_same_state(again, plain, epochs=False)

    def test_recovery_is_idempotent(self, tmp_path):
        stream = make_stream(800, seed=4)
        tiered, plain = make_pair(tmp_path, stream, h=90)
        tiered.close()
        for _ in range(3):
            with TieredShardRouter.open(tmp_path / "tier") as again:
                assert_same_state(again, plain, epochs=False)

    def test_ingest_continues_after_reopen(self, tmp_path):
        stream = make_stream(1000, seed=6)
        grid = RegionGrid(BOUNDS, nx=2, ny=2)
        first, rest = stream.slice(0, 640), stream.slice(640, 1000)
        with TieredShardRouter(
            grid, h=100, data_dir=tmp_path / "tier"
        ) as tiered:
            fill(tiered, first, pieces=3)
        plain = ShardRouter(grid, h=100)
        plain.ingest(stream)
        with TieredShardRouter.open(tmp_path / "tier") as again:
            fill(again, rest, pieces=2)
            assert again.global_count() == 1000
            for c in range(plain.global_window_count()):
                for s in range(4):
                    assert (
                        again.shard_window_gids(s, c).tobytes()
                        == plain.shard_window_gids(s, c).tobytes()
                    )
                    assert again.shard_window(s, c).t.tobytes() == plain.shard_window(
                        s, c
                    ).t.tobytes()

    def test_open_without_manifest_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="no manifest"):
            TieredShardRouter.open(tmp_path / "nothing")

    def test_wrong_h_rejected(self, tmp_path):
        grid = RegionGrid(BOUNDS, nx=1, ny=1)
        TieredShardRouter(grid, h=50, data_dir=tmp_path / "t").close()
        with pytest.raises(ValueError, match="h=50"):
            TieredShardRouter(grid, h=60, data_dir=tmp_path / "t")

    def test_wrong_grid_rejected(self, tmp_path):
        TieredShardRouter(
            RegionGrid(BOUNDS, nx=2, ny=2), h=50, data_dir=tmp_path / "t"
        ).close()
        with pytest.raises(ValueError, match="different region grid"):
            TieredShardRouter(
                RegionGrid(BOUNDS, nx=4, ny=1), h=50, data_dir=tmp_path / "t"
            )

    def test_corrupt_manifest_rejected(self, tmp_path):
        TieredShardRouter(
            RegionGrid(BOUNDS, nx=1, ny=1), h=50, data_dir=tmp_path / "t"
        ).close()
        (tmp_path / "t" / "MANIFEST.json").write_text("{not json")
        with pytest.raises(ValueError, match="corrupt manifest"):
            TieredShardRouter.open(tmp_path / "t")

    def test_future_manifest_format_rejected(self, tmp_path):
        TieredShardRouter(
            RegionGrid(BOUNDS, nx=1, ny=1), h=50, data_dir=tmp_path / "t"
        ).close()
        path = tmp_path / "t" / "MANIFEST.json"
        doc = json.loads(path.read_text())
        doc["format"] = 99
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="unsupported manifest format"):
            TieredShardRouter.open(tmp_path / "t")


class TestBoundedResidency:
    """Satellite: long ingest under a small cap — memory stays bounded and
    answers are byte-identical to an uncapped, all-resident engine."""

    def test_resident_cap_holds_throughout_ingest_and_queries(self, tmp_path):
        cap = 4
        stream = make_stream(6000, seed=7)
        grid = RegionGrid(BOUNDS, nx=2, ny=2)
        tiered = TieredShardRouter(
            grid, h=200, data_dir=tmp_path / "tier", memory_windows=cap
        )
        with tiered:
            step = 500
            for start in range(0, len(stream), step):
                tiered.ingest(stream.slice(start, start + step))
                assert tiered.resident_window_count() <= cap
            assert tiered.sealed_window_count() == 30
            stats = tiered.tier_stats()
            assert stats["peak_resident"] <= cap
            assert stats["evictions"] > 0
            assert stats["segments_written"] > 30  # ~one per (shard, window)

            plain = ShardRouter(grid, h=200)
            for start in range(0, len(stream), step):
                plain.ingest(stream.slice(start, start + step))

            hot = ShardedQueryEngine(tiered, radius_m=RADIUS_M)
            cold = ShardedQueryEngine(plain, radius_m=RADIUS_M)
            try:
                queries = probe_queries(stream, n=120)
                assert_same_answers(
                    hot.continuous_query_batch(queries),
                    cold.continuous_query_batch(queries),
                )
                assert tiered.resident_window_count() <= cap
                t_probe = float(stream.t[len(stream) // 3])
                grid_hot = hot.heatmap_grid(t_probe, BOUNDS, nx=8, ny=6)
                grid_cold = cold.heatmap_grid(t_probe, BOUNDS, nx=8, ny=6)
                assert grid_hot.tobytes() == grid_cold.tobytes()
                p_hot = hot.point_query(t_probe, 3000.0, 2000.0)
                p_cold = cold.point_query(t_probe, 3000.0, 2000.0)
                assert p_hot.value == p_cold.value
                assert p_hot.support == p_cold.support
                assert tiered.resident_window_count() <= cap
                assert tiered.tier_stats()["peak_resident"] <= cap
                assert tiered.faults > 0  # cold windows really were faulted in
            finally:
                hot.close()
                cold.close()

    @pytest.mark.parametrize("nx,ny", [(1, 1), (2, 2)])
    def test_hot_equals_cold_after_recovery(self, tmp_path, nx, ny):
        """The full oracle chain: capped + recovered == plain in-memory."""
        stream = make_stream(2400, seed=8)
        tiered, plain = make_pair(
            tmp_path, stream, nx=nx, ny=ny, h=160, cap=2, pieces=6
        )
        tiered.close()
        reopened = TieredShardRouter.open(tmp_path / "tier", memory_windows=2)
        hot = ShardedQueryEngine(reopened, radius_m=RADIUS_M)
        cold = ShardedQueryEngine(plain, radius_m=RADIUS_M)
        try:
            queries = probe_queries(stream, n=90, seed=11)
            assert_same_answers(
                hot.continuous_query_batch(queries),
                cold.continuous_query_batch(queries),
            )
            assert reopened.resident_window_count() <= 2
        finally:
            hot.close()
            cold.close()
            reopened.close()

    def test_process_front_end_falls_back_and_matches(self, tmp_path):
        """`prefix_exportable = False` routes the process executor to its
        in-process fallback — answers must still be byte-identical."""
        stream = make_stream(1500, seed=9)
        tiered, plain = make_pair(tmp_path, stream, h=150, cap=3)
        hot = ShardedQueryEngine(tiered, radius_m=RADIUS_M)
        cold = ShardedQueryEngine(plain, radius_m=RADIUS_M)
        try:
            queries = probe_queries(stream, n=40, seed=12)
            with ProcessShardedEngine(hot, processes=2) as facade:
                assert_same_answers(
                    facade.continuous_query_batch(queries),
                    cold.continuous_query_batch(queries),
                )
        finally:
            hot.close()
            cold.close()
            tiered.close()

    def test_pruning_reads_sketches_without_faulting(self, tmp_path):
        """Scatter pruning consults sealed sketches from resident metadata:
        probing every sealed sketch via the binding must not fault a
        single segment in."""
        stream = make_stream(2000, seed=10)
        tiered, _ = make_pair(tmp_path, stream, h=100, cap=1)
        with tiered:
            # Drain the resident set down to the cap with a full sweep.
            for c in range(tiered.sealed_window_count()):
                for s in range(tiered.n_shards):
                    tiered.shard_window(s, c)
            faults_before = tiered.faults
            binding = RouterBinding(tiered)
            for c in range(tiered.sealed_window_count()):
                for s in range(tiered.n_shards):
                    sketch = binding.sketch_for(s, c)
                    assert sketch == tiered.shard_window_sketch(s, c)
            assert tiered.faults == faults_before


class TestMaintenance:
    def test_compact_removes_orphans_and_temp_files(self, tmp_path):
        stream = make_stream(600, seed=13)
        tiered, _ = make_pair(tmp_path, stream, h=100)
        with tiered:
            seg_dir = tmp_path / "tier" / "segments"
            (seg_dir / "seg-s0099-w00000099.seg").write_bytes(b"orphan")
            (seg_dir / "leftover.tmp").write_bytes(b"tmp")
            report = tiered.compact(verify=True)
            assert report["orphans_removed"] == 1
            assert report["tmp_removed"] == 1
            assert report["segments_verified"] == len(
                [p for p in seg_dir.iterdir() if p.suffix == ".seg"]
            )
            assert not (seg_dir / "leftover.tmp").exists()

    def test_compact_verify_detects_segment_corruption(self, tmp_path):
        stream = make_stream(600, seed=14)
        tiered, _ = make_pair(tmp_path, stream, h=100)
        with tiered:
            seg_dir = tmp_path / "tier" / "segments"
            victim = sorted(p for p in seg_dir.iterdir() if p.suffix == ".seg")[0]
            data = bytearray(victim.read_bytes())
            data[-1] ^= 0xFF
            victim.write_bytes(bytes(data))
            with pytest.raises(SegmentCorrupt):
                tiered.compact(verify=True)

    def test_tier_stats_shape(self, tmp_path):
        stream = make_stream(500, seed=15)
        tiered, _ = make_pair(tmp_path, stream, h=100, cap=2)
        with tiered:
            stats = tiered.tier_stats()
            assert set(stats) == {
                "sealed_windows",
                "resident_windows",
                "peak_resident",
                "memory_windows",
                "faults",
                "evictions",
                "segments_written",
                "wal_appends",
                "wal_checkpoints",
            }
            assert stats["sealed_windows"] == 5
            assert stats["memory_windows"] == 2
