"""Tests for repro.query.continuous."""

import pytest

from repro.data.tuples import QueryTuple
from repro.query.base import QueryResult
from repro.query.continuous import (
    ContinuousQueryDriver,
    uniform_query_tuples,
    waypoint_trajectory,
)


class FakeProcessor:
    name = "fake"

    def __init__(self):
        self.seen = []

    def process(self, query):
        self.seen.append(query)
        return QueryResult(query=query, value=42.0, support=1)


class TestUniformQueryTuples:
    def test_uniform_interval(self):
        def traj(t):
            return (t, 2 * t)

        qs = uniform_query_tuples(traj, 100.0, 60.0, 5)
        assert len(qs) == 5
        gaps = {qs[i + 1].t - qs[i].t for i in range(4)}
        assert gaps == {60.0}  # |t_{l+1} - t_l| is always the same

    def test_positions_follow_trajectory(self):
        def traj(t):
            return (t, -t)

        qs = uniform_query_tuples(traj, 0.0, 10.0, 3)
        assert qs[2].x == 20.0
        assert qs[2].y == -20.0

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            uniform_query_tuples(lambda t: (0, 0), 0, 0.0, 5)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            uniform_query_tuples(lambda t: (0, 0), 0, 1.0, 0)


class TestWaypointTrajectory:
    def test_endpoints(self):
        traj = waypoint_trajectory([(0, 0), (100, 0)], 0.0, 100.0)
        assert traj(-5.0) == (0, 0)
        assert traj(0.0) == (0, 0)
        assert traj(100.0) == (100, 0)
        assert traj(150.0) == (100, 0)

    def test_constant_speed_midpoint(self):
        traj = waypoint_trajectory([(0, 0), (100, 0)], 0.0, 100.0)
        x, y = traj(50.0)
        assert x == pytest.approx(50.0)

    def test_multi_leg(self):
        traj = waypoint_trajectory([(0, 0), (100, 0), (100, 100)], 0.0, 200.0)
        x, y = traj(150.0)  # three quarters of the 200 m path = (100, 50)
        assert (x, y) == pytest.approx((100.0, 50.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            waypoint_trajectory([(0, 0)], 0, 10)
        with pytest.raises(ValueError):
            waypoint_trajectory([(0, 0), (1, 1)], 10, 10)

    def test_zero_length_leg(self):
        traj = waypoint_trajectory([(0, 0), (0, 0), (100, 0)], 0.0, 100.0)
        x, y = traj(50.0)
        assert x == pytest.approx(50.0)


class TestDriver:
    def test_run_processes_in_order(self):
        proc = FakeProcessor()
        driver = ContinuousQueryDriver(proc)
        qs = [QueryTuple(float(i), 0, 0) for i in range(5)]
        results = driver.run(qs)
        assert len(results) == 5
        assert [q.t for q in proc.seen] == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_run_trajectory(self):
        proc = FakeProcessor()
        driver = ContinuousQueryDriver(proc)
        results = driver.run_trajectory(lambda t: (t, t), 0.0, 30.0, 4)
        assert len(results) == 4
        assert proc.seen[-1].t == 90.0
