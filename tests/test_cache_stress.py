"""Stress regression: processor caches must never serve stale processors.

PR 3 fixed the sharded engine serving index/cover processors built on a
shorter prefix of a still-open window (then guarded by length-stamped
cache keys); the concurrent serving layer replaced the length stamps
with *content epochs*.  These tests hammer a growing open window from
multiple reader threads while a writer ingests, and assert the epoch
scheme upholds the same guarantee:

* the single-node :class:`QueryEngine` (after :meth:`refresh`) never
  returns a processor built on fewer window tuples than the engine's
  stream held before the call;
* the :class:`ShardedQueryEngine` never answers a full-coverage query
  with less support than the window held before the query was issued;
* after the stream quiesces, cached processors answer byte-identically
  to a freshly-built engine — a stale survivor would poison this.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.data.tuples import TupleBatch
from repro.data.windows import touched_windows
from repro.geo.coords import BoundingBox
from repro.geo.region import RegionGrid
from repro.query.engine import QueryEngine
from repro.query.sharded import ShardedQueryEngine
from repro.storage.shards import ShardRouter

H = 40
N_READERS = 4
BBOX = BoundingBox(0.0, 0.0, 6000.0, 4000.0)


def make_stream(rng: np.random.Generator, n: int) -> TupleBatch:
    t = np.cumsum(rng.uniform(0.5, 3.0, n))
    return TupleBatch(
        t,
        rng.uniform(0.0, 6000.0, n),
        rng.uniform(0.0, 4000.0, n),
        rng.uniform(350.0, 600.0, n),
    )


class TestQueryEngineRefresh:
    def test_refresh_invalidates_only_touched_windows(self):
        rng = np.random.default_rng(2)
        stream = make_stream(rng, 3 * H + 10)
        engine = QueryEngine(stream.slice(0, 2 * H + 5), h=H)
        sealed = engine.processor("naive", 0)
        open_before = engine.processor("naive", 2)
        assert len(open_before.window) == 5
        epoch = engine.refresh(stream)  # grows window 2, seals it, opens 3
        assert epoch == 1
        assert engine.window_stamp(2) == 1 and engine.window_stamp(0) == 0
        assert engine.processor("naive", 0) is sealed  # untouched: still hot
        refreshed = engine.processor("naive", 2)
        assert refreshed is not open_before
        assert len(refreshed.window) == H
        assert engine.refresh(stream) == 1  # no growth, no new epoch

    def test_refresh_rejects_shorter_stream(self):
        rng = np.random.default_rng(3)
        stream = make_stream(rng, 2 * H)
        engine = QueryEngine(stream, h=H)
        try:
            engine.refresh(stream.slice(0, H))
        except ValueError:
            pass
        else:  # pragma: no cover - failure path
            raise AssertionError("refresh accepted a truncated stream")

    def test_threads_hammering_growing_open_window(self):
        """N readers request the tail-window processor while the stream
        grows; a served processor may lag the *instantaneous* write head
        but never the stream the engine held before the request."""
        rng = np.random.default_rng(5)
        stream = make_stream(rng, 6 * H)
        engine = QueryEngine(stream.slice(0, H + 4), h=H, cache_capacity=16)
        stop = threading.Event()
        violations: list = []

        def reader():
            while not stop.is_set():
                batch = engine.batch  # the stream at/before our request
                c = (len(batch) - 1) // H
                expected = min(H, len(batch) - c * H)
                proc = engine.processor("naive", c)
                if len(proc.window) < expected:
                    violations.append((c, expected, len(proc.window)))

        threads = [threading.Thread(target=reader) for _ in range(N_READERS)]
        for t in threads:
            t.start()
        try:
            for stop_row in range(H + 8, len(stream) + 1, 7):
                engine.refresh(stream.slice(0, stop_row))
            engine.refresh(stream)
        finally:
            stop.set()
            for t in threads:
                t.join()
        assert not violations, f"stale processors served: {violations[:5]}"
        # Quiesced: the cached tail processor covers the full final window.
        tail = (len(stream) - 1) // H
        assert len(engine.processor("naive", tail).window) == len(stream) - tail * H


class TestShardedEngineEpochStamps:
    def test_growing_open_window_single_thread_regression(self):
        """The PR 3 regression shape, under epoch stamps: query, grow the
        open window, query again — the second answer must see the new
        tuples (a stale cached index would freeze the support)."""
        rng = np.random.default_rng(7)
        stream = make_stream(rng, H + H // 2)
        router = ShardRouter(RegionGrid(BBOX, nx=2, ny=2), h=H)
        first, second = stream.slice(0, H + 5), stream.slice(H + 5, len(stream))
        router.ingest(first)
        engine = ShardedQueryEngine(router, radius_m=1e9, max_workers=1)
        t_probe = float(stream.t[-1])
        res1 = engine.point_query(t_probe, 3000.0, 2000.0, method="kdtree")
        assert res1.support == 5  # open window W_1 so far
        router.ingest(second)
        res2 = engine.point_query(t_probe, 3000.0, 2000.0, method="kdtree")
        assert res2.support == len(stream) - H  # stale index would still say 5
        engine.close()

    def test_threads_hammering_growing_open_window(self):
        """Readers issue full-coverage queries (radius spans the bbox)
        against the open global window while a writer ingests: every
        answer's support must be at least the window population observed
        before the query was issued, and the quiesced engine must agree
        byte-for-byte with a freshly built one."""
        rng = np.random.default_rng(11)
        stream = make_stream(rng, 4 * H)
        router = ShardRouter(RegionGrid(BBOX, nx=2, ny=2), h=H)
        router.ingest(stream.slice(0, H // 2))
        engine = ShardedQueryEngine(router, radius_m=1e9, max_workers=2)
        t_probe = float(stream.t[-1])  # always resolves to the last window
        stop = threading.Event()
        violations: list = []
        failures: list = []

        def reader():
            try:
                while not stop.is_set():
                    n = router.global_count()
                    c = (n - 1) // H
                    floor = n - c * H  # open-window population at/before now
                    res = engine.point_query(t_probe, 3000.0, 2000.0, method="kdtree")
                    # The query may resolve to a later window than c if the
                    # writer advanced past a boundary; only compare when it
                    # answered the window we measured.
                    c_after = (router.global_count() - 1) // H
                    if c_after == c and res.support < floor:
                        violations.append((c, floor, res.support))
            except BaseException as exc:  # pragma: no cover - failure path
                failures.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(N_READERS)]
        for t in threads:
            t.start()
        try:
            for start in range(H // 2, len(stream), 11):
                router.ingest(stream.slice(start, min(start + 11, len(stream))))
        finally:
            stop.set()
            for t in threads:
                t.join()
        assert not failures, failures[:1]
        assert not violations, f"stale shard processors served: {violations[:5]}"
        fresh = ShardedQueryEngine(router, radius_m=1e9, max_workers=1)
        probes_t = np.repeat(stream.t[[len(stream) // 3, -1]], 2)
        probes_x = np.array([1000.0, 5000.0, 1000.0, 5000.0])
        probes_y = np.array([1000.0, 3000.0, 3000.0, 1000.0])
        for t_p, x_p, y_p in zip(probes_t, probes_x, probes_y):
            hot = engine.point_query(float(t_p), float(x_p), float(y_p), "kdtree")
            ref = fresh.point_query(float(t_p), float(x_p), float(y_p), "kdtree")
            assert hot.support == ref.support
            assert np.array_equal(
                np.float64(hot.value if hot.value is not None else np.nan),
                np.float64(ref.value if ref.value is not None else np.nan),
                equal_nan=True,
            )
        engine.close()
        fresh.close()

    def test_window_epochs_freeze_on_seal(self):
        rng = np.random.default_rng(13)
        stream = make_stream(rng, 3 * H)
        router = ShardRouter(RegionGrid(BBOX, nx=2, ny=2), h=H)
        for start in range(0, len(stream), 17):
            router.ingest(stream.slice(start, min(start + 17, len(stream))))
        frozen = {
            (s, c): router.shard_window_epoch(s, c)
            for s in range(router.n_shards)
            for c in range(router.global_window_count() - 1)  # sealed only
        }
        extra = make_stream(np.random.default_rng(14), 10)
        shifted = TupleBatch(
            extra.t + float(stream.t[-1]) + 1.0, extra.x, extra.y, extra.s
        )
        router.ingest(shifted)  # grows only the tail / a new window
        for (s, c), stamp in frozen.items():
            assert router.shard_window_epoch(s, c) == stamp


def test_touched_windows_is_the_invalidation_oracle():
    """The refresh path invalidates exactly the grown windows."""
    assert list(touched_windows(85, 10, H)) == [2]
    assert list(touched_windows(75, 10, H)) == [1, 2]
