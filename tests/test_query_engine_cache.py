"""Regression tests for the engine's bounded LRU processor cache."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.data.tuples import QueryTuple
from repro.query.engine import DEFAULT_PROCESSOR_CACHE_CAPACITY, QueryEngine


def make_engine(small_batch, capacity):
    return QueryEngine(small_batch, h=40, cache_capacity=capacity)


class TestCapacityBound:
    def test_rejects_non_positive_capacity(self, small_batch):
        with pytest.raises(ValueError):
            QueryEngine(small_batch, cache_capacity=0)

    def test_default_capacity(self, small_batch):
        engine = QueryEngine(small_batch)
        assert engine.cache_capacity == DEFAULT_PROCESSOR_CACHE_CAPACITY

    def test_cache_never_exceeds_capacity(self, small_batch):
        engine = make_engine(small_batch, capacity=3)
        for c in range(10):
            engine.processor("naive", c)
            assert len(engine.cached_processor_keys()) <= 3
        assert engine.cache_stats.evictions == 7

    def test_capacity_one(self, small_batch):
        engine = make_engine(small_batch, capacity=1)
        engine.processor("naive", 0)
        engine.processor("naive", 1)
        assert engine.cached_processor_keys() == [("naive", 1)]


class TestEvictionOrder:
    def test_least_recently_used_evicted_first(self, small_batch):
        engine = make_engine(small_batch, capacity=2)
        engine.processor("naive", 0)
        engine.processor("naive", 1)
        engine.processor("naive", 2)  # evicts window 0
        assert engine.cached_processor_keys() == [("naive", 1), ("naive", 2)]

    def test_hit_refreshes_recency(self, small_batch):
        engine = make_engine(small_batch, capacity=2)
        engine.processor("naive", 0)
        engine.processor("naive", 1)
        engine.processor("naive", 0)  # 0 becomes most recent
        engine.processor("naive", 2)  # so 1, not 0, is evicted
        assert engine.cached_processor_keys() == [("naive", 0), ("naive", 2)]

    def test_methods_have_distinct_slots(self, small_batch):
        engine = make_engine(small_batch, capacity=2)
        engine.processor("naive", 0)
        engine.processor("kdtree", 0)
        assert engine.cached_processor_keys() == [("naive", 0), ("kdtree", 0)]


class TestRematerialisation:
    def test_evicted_processor_is_rebuilt_identically(self, small_batch):
        engine = make_engine(small_batch, capacity=1)
        q = QueryTuple(t=float(small_batch.t[10]), x=2000.0, y=1500.0)
        first = engine.processor("naive", 0)
        before = first.process(q)
        engine.processor("naive", 1)  # evicts window 0
        rebuilt = engine.processor("naive", 0)
        assert rebuilt is not first
        after = rebuilt.process(q)
        assert after.answered == before.answered
        assert after.support == before.support
        if before.answered:
            assert after.value == pytest.approx(before.value)

    def test_cached_processor_is_same_object_on_hit(self, small_batch):
        engine = make_engine(small_batch, capacity=4)
        assert engine.processor("naive", 0) is engine.processor("naive", 0)


class TestStats:
    def test_hit_miss_counters(self, small_batch):
        engine = make_engine(small_batch, capacity=4)
        stats = engine.cache_stats
        assert stats.lookups == 0
        engine.processor("naive", 0)   # miss
        engine.processor("naive", 0)   # hit
        engine.processor("naive", 1)   # miss
        engine.processor("naive", 0)   # hit
        assert stats.misses == 2
        assert stats.hits == 2
        assert stats.hit_rate == pytest.approx(0.5)
        assert stats.evictions == 0

    def test_eviction_counter(self, small_batch):
        engine = make_engine(small_batch, capacity=2)
        for c in range(4):
            engine.processor("naive", c)
        assert engine.cache_stats.evictions == 2

    def test_as_dict_snapshot(self, small_batch):
        engine = make_engine(small_batch, capacity=2)
        engine.processor("naive", 0)
        engine.processor("naive", 0)
        snap = engine.cache_stats.as_dict()
        assert snap["hits"] == 1
        assert snap["misses"] == 1
        assert snap["hit_rate"] == pytest.approx(0.5)

    def test_stats_reset(self, small_batch):
        engine = make_engine(small_batch, capacity=2)
        engine.processor("naive", 0)
        engine.cache_stats.reset()
        assert engine.cache_stats.lookups == 0


class TestThreadSafety:
    def test_concurrent_lookups_stay_bounded(self, small_batch):
        """Hammer the cache from several threads; the bound and the
        counters must stay coherent (the documented contract is that
        lookups/builds are guarded by the cache lock)."""
        engine = make_engine(small_batch, capacity=3)
        errors = []

        def worker(seed):
            rng = np.random.default_rng(seed)
            try:
                for _ in range(40):
                    engine.processor("naive", int(rng.integers(0, 6)))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(engine.cached_processor_keys()) <= 3
        stats = engine.cache_stats
        assert stats.hits + stats.misses == 8 * 40
