"""Tests for repro.data.windows."""

import numpy as np
import pytest

from repro.data.tuples import TupleBatch
from repro.data.windows import (
    WindowSlices,
    WindowSpec,
    count_windows,
    iter_windows,
    sealed_window_count,
    touched_windows,
    window,
)


def make_batch(n, dt=60.0):
    t = np.arange(n) * dt
    return TupleBatch(t, np.zeros(n), np.zeros(n), np.full(n, 400.0))


class TestCountWindows:
    def test_exact_division(self):
        batch = make_batch(120)
        assert count_windows(batch, 40) == 3

    def test_remainder(self):
        assert count_windows(make_batch(100), 40) == 3

    def test_invalid_h(self):
        with pytest.raises(ValueError):
            count_windows(make_batch(10), 0)


class TestWindow:
    def test_slices(self):
        batch = make_batch(100)
        w1 = window(batch, 1, 40)
        assert len(w1) == 40
        assert w1.t[0] == 40 * 60.0

    def test_last_window_short(self):
        batch = make_batch(100)
        assert len(window(batch, 2, 40)) == 20

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            window(make_batch(100), 3, 40)

    def test_negative_c(self):
        with pytest.raises(ValueError):
            window(make_batch(10), -1, 5)

    def test_iter_windows_covers_everything(self):
        batch = make_batch(100)
        pieces = list(iter_windows(batch, 40))
        assert [c for c, _ in pieces] == [0, 1, 2]
        assert sum(len(w) for _, w in pieces) == 100


class TestWindowSpec:
    def test_window_index(self):
        spec = WindowSpec(horizon_s=3600.0)
        assert spec.window_index(0.0) == 0
        assert spec.window_index(3599.9) == 0
        assert spec.window_index(3600.0) == 1

    def test_negative_time(self):
        with pytest.raises(ValueError):
            WindowSpec(60.0).window_index(-1.0)

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            WindowSpec(0.0)

    def test_bounds_and_validity(self):
        spec = WindowSpec(100.0)
        assert spec.bounds(2) == (200.0, 300.0)
        assert spec.valid_until(2) == 300.0

    def test_select_sorted_uses_halfopen_bounds(self):
        batch = make_batch(10, dt=50.0)  # t = 0, 50, ..., 450
        spec = WindowSpec(100.0)
        w1 = spec.select(batch, 1)  # [100, 200)
        assert w1.t.tolist() == [100.0, 150.0]

    def test_select_unsorted(self):
        t = np.array([250.0, 10.0, 120.0, 130.0])
        batch = TupleBatch(t, np.zeros(4), np.zeros(4), np.zeros(4))
        spec = WindowSpec(100.0)
        assert sorted(spec.select(batch, 1).t.tolist()) == [120.0, 130.0]

    def test_iter_nonempty_skips_gaps(self):
        t = np.array([10.0, 20.0, 510.0])  # gap between windows 0 and 5
        batch = TupleBatch(t, np.zeros(3), np.zeros(3), np.zeros(3))
        spec = WindowSpec(100.0)
        indices = [c for c, _ in spec.iter_nonempty(batch)]
        assert indices == [0, 5]

    def test_iter_nonempty_empty_batch(self):
        assert list(WindowSpec(10.0).iter_nonempty(TupleBatch.empty())) == []


class TestPartitionHelpers:
    def test_sealed_window_count(self):
        assert sealed_window_count(0, 4) == 0
        assert sealed_window_count(7, 4) == 1
        assert sealed_window_count(8, 4) == 2

    def test_sealed_window_count_validation(self):
        with pytest.raises(ValueError):
            sealed_window_count(10, 0)
        with pytest.raises(ValueError):
            sealed_window_count(-1, 4)

    def test_touched_windows(self):
        assert list(touched_windows(0, 4, 4)) == [0]
        assert list(touched_windows(3, 2, 4)) == [0, 1]
        assert list(touched_windows(8, 9, 4)) == [2, 3, 4]
        assert list(touched_windows(5, 0, 4)) == []

    def test_touched_windows_validation(self):
        with pytest.raises(ValueError):
            touched_windows(-1, 2, 4)
        with pytest.raises(ValueError):
            touched_windows(0, 2, 0)


class TestWindowSlices:
    def test_len_and_getitem(self):
        batch = make_batch(10)
        slices = WindowSlices(batch, 4)
        assert len(slices) == 3
        assert slices[0].t.tolist() == batch.t[:4].tolist()
        assert len(slices[2]) == 2
        assert len(slices[-1]) == 2  # negative indexing

    def test_zero_copy(self):
        batch = make_batch(10)
        assert WindowSlices(batch, 4)[1].is_view_of(batch)

    def test_sealed(self):
        slices = WindowSlices(make_batch(10), 4)
        assert slices.sealed_count() == 2
        assert slices.is_sealed(1)
        assert not slices.is_sealed(2)

    def test_iterates_as_sequence(self):
        slices = WindowSlices(make_batch(8), 4)
        assert [len(w) for w in slices] == [4, 4]

    def test_invalid_h(self):
        with pytest.raises(ValueError):
            WindowSlices(make_batch(4), 0)

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            WindowSlices(make_batch(4), 4)[3]
        with pytest.raises(IndexError):
            WindowSlices(make_batch(10), 4)[-5]
