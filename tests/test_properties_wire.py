"""Property/fuzz tests on the wire formats.

Corruption must never produce a silently-wrong cover or message — the
decoders either round-trip exactly or raise ``ValueError``/``Exception``
cleanly (never hang, never return garbage objects of the wrong type).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cover import ModelCover
from repro.models.mean import MeanModel
from repro.network.messages import QueryRequest, decode_message, encode_message


def small_cover(n_models: int, valid_until: float) -> ModelCover:
    return ModelCover(
        centroids=np.arange(2 * n_models, dtype=float).reshape(n_models, 2),
        models=[MeanModel(float(400 + k)) for k in range(n_models)],
        valid_until=valid_until,
        family="mean",
    )


@settings(max_examples=60, deadline=None)
@given(
    n_models=st.integers(min_value=1, max_value=12),
    valid_until=st.floats(min_value=0, max_value=1e12, allow_nan=False),
)
def test_cover_blob_round_trip_exact(n_models, valid_until):
    cover = small_cover(n_models, valid_until)
    rebuilt = ModelCover.from_blob(cover.to_blob())
    assert rebuilt.size == cover.size
    assert rebuilt.valid_until == valid_until
    assert np.array_equal(rebuilt.centroids, cover.centroids)


@settings(max_examples=120, deadline=None)
@given(data=st.binary(min_size=0, max_size=400))
def test_random_bytes_never_decode_to_a_cover(data):
    """Random bytes (overwhelmingly) fail cleanly; if they happen to form
    a valid blob it must start with the magic."""
    try:
        ModelCover.from_blob(data)
    except Exception:
        return
    assert data[:4] == b"EMCV"


@settings(max_examples=80, deadline=None)
@given(
    blob_prefix=st.integers(min_value=0, max_value=100),
)
def test_truncated_cover_blob_raises(blob_prefix):
    blob = small_cover(3, 100.0).to_blob()
    truncated = blob[: min(blob_prefix, len(blob) - 1)]
    with pytest.raises(Exception):
        ModelCover.from_blob(truncated)


@settings(max_examples=120, deadline=None)
@given(data=st.binary(min_size=0, max_size=80))
def test_random_bytes_never_decode_to_a_message_silently(data):
    try:
        msg = decode_message(data)
    except Exception:
        return
    # If it decoded, re-encoding must reproduce the input exactly —
    # i.e. the decoder accepted a genuinely well-formed message.
    assert encode_message(msg) == data


@settings(max_examples=60, deadline=None)
@given(
    t=st.floats(allow_nan=False, allow_infinity=False),
    x=st.floats(allow_nan=False, allow_infinity=False),
    y=st.floats(allow_nan=False, allow_infinity=False),
)
def test_query_request_round_trip(t, x, y):
    msg = QueryRequest(t=t, x=x, y=y)
    assert decode_message(encode_message(msg)) == msg
