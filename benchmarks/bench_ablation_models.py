"""Ablation: model family inside the cover (DESIGN.md §5.1).

The paper fixes linear regression; here Ad-KMN runs with each registered
family on the same window and workload.  For every family we record the
cover size (how hard the adaptivity loop had to work to hit τn), the wire
size (what a model-cache client downloads), and the NRMSE against ground
truth.  The timed quantity is the cover fit.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import window_and_queries
from repro.core.adkmn import AdKMNConfig, fit_adkmn
from repro.eval.metrics import evaluate_accuracy
from repro.query.modelcover import ModelCoverProcessor

H = 240
N_QUERIES = 500
FAMILIES = ("linear", "mean", "poly2", "kernel")


@pytest.mark.parametrize("family", FAMILIES)
def bench_model_family(benchmark, dataset, tau_n, family):
    w, queries = window_and_queries(dataset, H, N_QUERIES)
    cfg = AdKMNConfig(tau_n_pct=tau_n, family=family)

    result = benchmark(lambda: fit_adkmn(w, cfg))
    cover = result.cover
    nrmse, _ = evaluate_accuracy(ModelCoverProcessor(cover), queries, dataset.field)
    benchmark.group = "ablation: model family"
    benchmark.extra_info["family"] = family
    benchmark.extra_info["n_models"] = cover.size
    benchmark.extra_info["wire_bytes"] = cover.wire_size_bytes()
    benchmark.extra_info["nrmse_pct"] = round(nrmse, 2)
