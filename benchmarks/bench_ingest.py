"""Ingest throughput and steady-state ingest->query latency.

Not a paper figure — this measures the reproduction's window-partitioned
storage layer (``repro/storage/README.md``): bulk appends as vectorized
column fills versus the seed's per-element Python loop, and the cost of
taking a query snapshot after a replayed day of small ingest batches
(which must stay flat as history grows, since snapshots are zero-copy
views rather than a ``np.concatenate`` of the full history).

Run standalone for the headline numbers on the 1-day Lausanne fixture::

    PYTHONPATH=src python benchmarks/bench_ingest.py

which also checks the acceptance bar: vectorized bulk appends must be at
least 10x faster than the seed path.  ``--smoke`` shrinks the workload
for CI.
"""

from __future__ import annotations

import sys
from typing import List

import numpy as np
import pytest

from repro.data.lausanne import LausanneConfig, generate_lausanne_dataset
from repro.eval.timing import time_callable
from repro.network.messages import QueryRequest
from repro.server.server import EnviroMeterServer
from repro.server.stream import StreamReplayer
from repro.storage.schema import RAW_TUPLES_SCHEMA
from repro.storage.table import Table

REPEATS = 5
REPLAY_INTERVAL_S = 600.0
QUERY_POSITION = (2500.0, 1800.0)


def day_fixture():
    """The deterministic 1-day Lausanne dataset (~5.9 K tuples)."""
    return generate_lausanne_dataset(LausanneConfig(days=1, target_tuples=0, seed=7))


class SeedColumn:
    """The seed storage path, kept as the benchmark reference: a chunked
    column whose ``extend`` appends element by element and whose snapshot
    re-concatenates the full history."""

    CHUNK = 8_192

    def __init__(self, dtype=np.float64):
        self.dtype = np.dtype(dtype)
        self._chunks: List[np.ndarray] = []
        self._tail = np.empty(self.CHUNK, dtype=self.dtype)
        self._tail_len = 0

    def append(self, value):
        self._tail[self._tail_len] = value
        self._tail_len += 1
        if self._tail_len == self.CHUNK:
            self._chunks.append(self._tail)
            self._tail = np.empty(self.CHUNK, dtype=self.dtype)
            self._tail_len = 0

    def extend(self, values):
        for v in np.asarray(values, dtype=self.dtype):
            self.append(v)

    def snapshot(self):
        parts = self._chunks + [self._tail[: self._tail_len]]
        return np.concatenate(parts)


def seed_ingest(batch) -> None:
    """Ingest one batch the seed way: four per-element column loops."""
    cols = [SeedColumn() for _ in range(4)]
    for col, arr in zip(cols, (batch.t, batch.x, batch.y, batch.s)):
        col.extend(arr)


def bulk_ingest(batch) -> None:
    """Ingest one batch through the vectorized storage path."""
    table = Table("raw_tuples", RAW_TUPLES_SCHEMA)
    table.insert_columns(t=batch.t, x=batch.x, y=batch.y, s=batch.s)


def append_throughput(batch, repeats=REPEATS):
    """(seed_rows_per_s, bulk_rows_per_s) for ingesting ``batch``."""
    n = len(batch)
    seed_s = time_callable(lambda: seed_ingest(batch), repeats=repeats)
    bulk_s = time_callable(lambda: bulk_ingest(batch), repeats=repeats)
    return n / seed_s, n / bulk_s


def replayed_query_latencies(batch, interval_s=REPLAY_INTERVAL_S):
    """Per-query latency over a replayed stream: after each ingest batch,
    one point query against the server.  Returns (history_sizes, seconds)."""
    server = EnviroMeterServer(h=240)
    replayer = StreamReplayer(server, batch_interval_s=interval_s)
    x, y = QUERY_POSITION
    sizes, latencies = [], []
    for _, piece in replayer.slices(batch):
        server.ingest(piece)
        t = float(piece.t[-1])
        latencies.append(
            time_callable(lambda: server.handle(QueryRequest(t=t, x=x, y=y)))
        )
        sizes.append(server.db.raw_count())
    return sizes, latencies


def snapshot_cost(batch, interval_s=REPLAY_INTERVAL_S, repeats=REPEATS):
    """(first_s, last_s) cost of a full-stream snapshot right after the
    first ingest batch and after the whole day — flat for zero-copy."""
    server = EnviroMeterServer(h=240)
    replayer = StreamReplayer(server, batch_interval_s=interval_s)
    first_s = None
    for _, piece in replayer.slices(batch):
        server.ingest(piece)
        if first_s is None:
            first_s = time_callable(lambda: server.db.raw_tuples(), repeats=repeats)
    last_s = time_callable(lambda: server.db.raw_tuples(), repeats=repeats)
    return first_s or 0.0, last_s


# -- pytest-benchmark entry points -----------------------------------------


@pytest.fixture(scope="module")
def day_dataset():
    return day_fixture()


@pytest.mark.parametrize("path", ("seed", "vectorized"))
def bench_bulk_append(benchmark, day_dataset, path):
    batch = day_dataset.tuples
    benchmark.group = f"bulk append {len(batch)} tuples"
    benchmark.extra_info["path"] = path
    if path == "seed":
        benchmark(lambda: seed_ingest(batch))
    else:
        benchmark(lambda: bulk_ingest(batch))


def bench_ingest_query_steady_state(benchmark, day_dataset):
    batch = day_dataset.tuples
    benchmark.group = "replayed day ingest+query"
    sizes, latencies = benchmark(lambda: replayed_query_latencies(batch))
    benchmark.extra_info["final_history"] = sizes[-1] if sizes else 0
    benchmark.extra_info["mean_query_ms"] = 1e3 * float(np.mean(latencies))


# -- standalone report ------------------------------------------------------


def main(smoke: bool = False) -> int:
    dataset = day_fixture()
    batch = dataset.tuples
    if smoke:
        batch = batch.slice(0, min(len(batch), 1500))
    repeats = 2 if smoke else REPEATS
    print(f"1-day Lausanne fixture: {len(batch)} tuples{' (smoke)' if smoke else ''}")

    seed_tput, bulk_tput = append_throughput(batch, repeats=repeats)
    speedup = bulk_tput / seed_tput
    print("\nbulk-append throughput (4-column raw_tuples table):")
    print(f"  seed per-element loop  {seed_tput:>12,.0f} rows/s")
    print(f"  vectorized chunk fill  {bulk_tput:>12,.0f} rows/s")
    print(f"  speedup                {speedup:>11.1f}x")

    first_s, last_s = snapshot_cost(batch, repeats=repeats)
    print("\nfull-stream snapshot cost (zero-copy, must stay flat):")
    print(f"  after first batch      {first_s * 1e6:>10.1f}us")
    print(f"  after full replay      {last_s * 1e6:>10.1f}us")

    sizes, latencies = replayed_query_latencies(batch)
    if latencies:
        half = len(latencies) // 2 or 1
        early = 1e3 * float(np.mean(latencies[:half]))
        late = 1e3 * float(np.mean(latencies[half:]))
        print("\nsteady-state ingest->query latency over the replayed day:")
        print(f"  batches={len(latencies)}  final history={sizes[-1]} tuples")
        print(f"  first half mean  {early:>8.2f}ms")
        print(f"  second half mean {late:>8.2f}ms")

    ok = speedup >= 10.0
    print(f"\nacceptance (bulk append >= 10x seed path): {'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main(smoke="--smoke" in sys.argv[1:]))
