"""Figure 6(a): query-processing efficiency.

Elapsed time for a batch of point queries against one window, per method
(Ad-KMN model cover / VP-tree / R-tree / naive) and per window size
H ∈ {40, 80, 120, 160, 200, 240}.  The pytest-benchmark table *is* the
figure: compare the per-round times across the method/H grid.

The paper reports the model cover 7.1x faster than the VP-tree at H = 40
and 39.4x faster than the R-tree at H = 240; EXPERIMENTS.md records the
ratios measured here.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import window_and_queries
from repro.core.adkmn import AdKMNConfig, fit_adkmn
from repro.query.indexed import IndexedProcessor
from repro.query.modelcover import ModelCoverProcessor
from repro.query.naive import NaiveProcessor

H_VALUES = (40, 80, 120, 160, 200, 240)
N_QUERIES = 500  # per benchmark round; the paper uses 5000 for the figure

METHODS = ("adkmn", "vptree", "rtree", "naive")


def _build(method, w, radius_m, tau_n):
    if method == "naive":
        return NaiveProcessor(w, radius_m)
    if method == "adkmn":
        return ModelCoverProcessor(fit_adkmn(w, AdKMNConfig(tau_n_pct=tau_n)).cover)
    return IndexedProcessor(w, kind=method, radius_m=radius_m)


@pytest.mark.parametrize("h", H_VALUES)
@pytest.mark.parametrize("method", METHODS)
def bench_point_queries(benchmark, dataset, radius_m, tau_n, method, h):
    """One (method, H) cell of Figure 6(a)."""
    w, queries = window_and_queries(dataset, h, N_QUERIES)
    proc = _build(method, w, radius_m, tau_n)
    benchmark.group = f"fig6a H={h}"
    benchmark.extra_info["method"] = method
    benchmark.extra_info["h"] = h
    benchmark.extra_info["n_queries"] = N_QUERIES

    def run():
        for q in queries:
            proc.process(q)

    benchmark(run)
