"""Extension benchmark: traffic scaling with fleet size.

Not a paper figure — the paper's Figure 7(b) covers one mobile object.
This sweep shows the platform-level consequence of the model-cache
protocol: total uplink requests grow as O(members) instead of
O(members x queries), and the server builds each window's cover once
regardless of fleet size.
"""

from __future__ import annotations

import pytest

from repro.client.fleet import FleetSimulator, commuter_fleet
from repro.server.server import EnviroMeterServer

FLEET_SIZES = (2, 8, 32)
QUERIES_PER_MEMBER = 30


@pytest.mark.parametrize("n_members", FLEET_SIZES)
@pytest.mark.parametrize("strategy", ("baseline", "model-cache"))
def bench_fleet(benchmark, dataset, strategy, n_members):
    use_cache = strategy == "model-cache"
    t_start = float(dataset.tuples.t[5000])
    bbox = dataset.covered_bbox()

    def run():
        server = EnviroMeterServer(h=240)
        server.ingest(dataset.tuples)
        fleet = commuter_fleet(
            n_members, bbox, use_model_cache=use_cache, n_queries=QUERIES_PER_MEMBER
        )
        return FleetSimulator(server).run(fleet, t_start), server

    report, server = benchmark.pedantic(run, rounds=1, iterations=1)
    total = report.total_stats()
    benchmark.group = f"fleet x{n_members}"
    benchmark.extra_info["strategy"] = strategy
    benchmark.extra_info["sent_kb"] = round(total.sent_kb, 2)
    benchmark.extra_info["received_kb"] = round(total.received_kb, 2)
    benchmark.extra_info["requests"] = total.sent_messages
    benchmark.extra_info["covers_built"] = len(server.db.table("model_cover"))
    expected = n_members if use_cache else n_members * QUERIES_PER_MEMBER
    assert total.sent_messages == expected
