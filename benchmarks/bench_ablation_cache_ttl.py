"""Ablation: cover validity horizon vs bandwidth (DESIGN.md §5.4).

The server's ``validity_horizon_s`` decides how long a shipped cover
stays valid on the phone (its t_n).  Short horizons force model-cache
clients to refresh often — trading bandwidth for freshness.  For a fixed
2-hour continuous query we sweep the horizon and record refresh counts
and traffic; at the long end model-cache converges to the single-refresh
behaviour of Figure 7(b), at the short end it degrades toward baseline.
"""

from __future__ import annotations

import pytest

from repro.client.modelcache import ModelCacheClient
from repro.eval.experiments import _mid_window
from repro.network.link import GPRS, CellularLink
from repro.query.continuous import uniform_query_tuples, waypoint_trajectory
from repro.server.server import EnviroMeterServer

N_QUERIES = 120
INTERVAL_S = 60.0
HORIZONS_S = (600.0, 1800.0, 3600.0, 4 * 3600.0)


@pytest.fixture(scope="module")
def queries(dataset):
    _, w = _mid_window(dataset, 240)
    t_start = float(w.t[0])
    bbox = dataset.covered_bbox()
    route = [
        (bbox.min_x + 0.3 * bbox.width, bbox.min_y + 0.3 * bbox.height),
        (bbox.min_x + 0.7 * bbox.width, bbox.min_y + 0.7 * bbox.height),
    ]
    traj = waypoint_trajectory(route, t_start, t_start + N_QUERIES * INTERVAL_S)
    return uniform_query_tuples(traj, t_start, INTERVAL_S, N_QUERIES)


@pytest.mark.parametrize("horizon_s", HORIZONS_S)
def bench_cache_ttl(benchmark, dataset, queries, horizon_s):
    server = EnviroMeterServer(h=240, validity_horizon_s=horizon_s)
    server.ingest(dataset.tuples)

    def run():
        client = ModelCacheClient(server, CellularLink(GPRS))
        client.run_continuous(queries)
        return client

    client = benchmark(run)
    benchmark.group = "ablation: cache TTL"
    benchmark.extra_info["horizon_s"] = horizon_s
    benchmark.extra_info["refreshes"] = client.cache_refreshes
    benchmark.extra_info["received_kb"] = round(client.stats.received_kb, 2)
    benchmark.extra_info["network_time_s"] = round(client.stats.network_time_s, 2)
    # Longer horizons can only reduce refreshes for the same workload.
    assert client.cache_refreshes >= 1
