"""Plan-time scatter pruning versus the full scatter fan-out.

Not a paper figure — this measures the reproduction's zone-map pruning
pass (``repro/query/pipeline/executor.py``): localized disk queries
against a 16-shard, many-window :class:`~repro.storage.shards.ShardRouter`,
planned twice from the same engine — once with the pruning pass
(geometry + per-(shard, window) :class:`~repro.storage.sketch.WindowSketch`
zone maps, the default) and once as the full scatter (``prune=False``:
every window query reaches every non-empty shard slice).  Pruning only
drops (shard, window) scans that provably contribute zero hits, so both
plans must answer byte-identically — the oracle below enforces that on
every run, bar or no bar, including through the process-parallel
executor (pruned plans fan out to fewer workers, same bytes).

Run standalone for the headline numbers on the 1-day Lausanne fixture::

    PYTHONPATH=src python benchmarks/bench_scatter_pruning.py

which also checks the acceptance bar: the localized continuous stream
must run at least 3x faster pruned than unpruned.  ``--smoke`` shrinks
the workload for CI and lowers the bar to 2x (a loaded CI box is not a
benchmark rig, but an O(relevant shards) plan must still clearly beat
an O(shards x windows) one).  Either mode writes the machine-readable
``BENCH_scatter_pruning.json`` perf-trajectory artifact.
"""

from __future__ import annotations

import sys

import numpy as np
import pytest

from repro.data.lausanne import LausanneConfig, generate_lausanne_dataset
from repro.eval.timing import time_callable
from repro.query.base import QueryBatch
from repro.query.pipeline.parallel import ProcessPlanExecutor

try:  # pytest / smoke-test import (repo root on sys.path)
    from benchmarks.conftest import (
        rng_for,
        shard_histogram,
        sharded_day_engine,
        write_bench_json,
    )
except ImportError:  # standalone: python benchmarks/bench_scatter_pruning.py
    from conftest import (
        rng_for,
        shard_histogram,
        sharded_day_engine,
        write_bench_json,
    )

DAYS = 30
N_SHARDS = 36
N_WINDOWS = 32
RADIUS_M = 300.0
N_QUERIES = 400
GRID_NX, GRID_NY = 24, 18
FOCUS_SIGMA_M = 100.0
REPEATS = 3
ACCEPT_SPEEDUP = 3.0
ACCEPT_SPEEDUP_SMOKE = 2.0


def deployment_fixture():
    """A deterministic 30-day Lausanne deployment (~176 K tuples) — big
    enough that scan cost, the term pruning removes, dominates."""
    return generate_lausanne_dataset(
        LausanneConfig(days=DAYS, target_tuples=0, seed=7)
    )


def pruning_engine(dataset, n_shards: int = N_SHARDS):
    """A many-window sharded engine: ``h`` splits the deployment into
    :data:`N_WINDOWS` global windows, so an unpruned continuous stream
    fans out to O(shards x windows) candidate scans."""
    h = max(len(dataset.tuples) // N_WINDOWS, 1)
    return sharded_day_engine(dataset, n_shards, radius_m=RADIUS_M, h=h)


def focus_point(dataset):
    """A neighbourhood on a bus route away from the dense hotspot.

    The city centre is the adversarial case for pruning (most rows live
    there, so its shards are relevant to every nearby disk); a
    neighbourhood dashboard — the workload pruning is for — watches one
    spot off-centre.  Picking the tuple at the 5th percentile of x
    guarantees real hits without hand-tuning coordinates."""
    tuples = dataset.tuples
    i = int(np.argsort(tuples.x, kind="stable")[int(0.05 * len(tuples))])
    return float(tuples.x[i]), float(tuples.y[i])


def localized_stream(dataset, n_queries: int, label: str) -> QueryBatch:
    """A continuous stream of disk queries clustered around one
    neighbourhood, with timestamps sweeping the whole deployment —
    every window is touched, but each query's disk reaches only a
    couple of shards."""
    rng = rng_for(label)
    tuples = dataset.tuples
    fx, fy = focus_point(dataset)
    picks = rng.integers(0, len(tuples), size=n_queries)
    picks.sort()
    return QueryBatch(
        tuples.t[picks],
        fx + rng.normal(0.0, FOCUS_SIGMA_M, size=n_queries),
        fy + rng.normal(0.0, FOCUS_SIGMA_M, size=n_queries),
    )


def localized_heatmap(dataset, nx: int = GRID_NX, ny: int = GRID_NY) -> QueryBatch:
    """A heatmap grid over a quarter-of-the-region box around the focus
    neighbourhood, rendered mid-deployment (one well-filled window,
    localized probes)."""
    tuples = dataset.tuples
    bounds = dataset.covered_bbox()
    fx, fy = focus_point(dataset)
    w, h = bounds.width / 4, bounds.height / 4
    return QueryBatch.from_grid(
        float(tuples.t[len(tuples) // 2]),
        min(max(fx - w / 2, bounds.min_x), bounds.min_x + bounds.width - w),
        min(max(fy - h / 2, bounds.min_y), bounds.min_y + bounds.height - h),
        w, h, nx, ny,
    )


def run_once(engine, batch: QueryBatch, prune: bool):
    """One plan+execute round trip — planning cost is part of what
    pruning changes, so it stays inside the timed region."""
    return engine.execute(engine.plan(batch, "naive", prune=prune))


def identical(a, b) -> bool:
    return (
        a.values.tobytes() == b.values.tobytes()
        and a.support.tobytes() == b.support.tobytes()
        and a.answered.tobytes() == b.answered.tobytes()
    )


# -- pytest-benchmark entry points -----------------------------------------


@pytest.fixture(scope="module")
def deployment_dataset():
    return deployment_fixture()


@pytest.mark.parametrize("prune", (False, True))
def bench_pruned_continuous(benchmark, deployment_dataset, prune):
    engine = pruning_engine(deployment_dataset)
    batch = localized_stream(deployment_dataset, N_QUERIES, "bench_pruned_continuous")
    run_once(engine, batch, prune)  # warm caches either way
    benchmark.group = f"scatter pruning, {N_SHARDS} shards x {N_WINDOWS} windows"
    benchmark.extra_info["prune"] = prune
    benchmark(lambda: run_once(engine, batch, prune))
    engine.close()


@pytest.mark.parametrize("prune", (False, True))
def bench_pruned_heatmap(benchmark, deployment_dataset, prune):
    engine = pruning_engine(deployment_dataset)
    batch = localized_heatmap(deployment_dataset)
    run_once(engine, batch, prune)
    benchmark.group = f"pruned heatmap {GRID_NX}x{GRID_NY} r={RADIUS_M:.0f}m"
    benchmark.extra_info["prune"] = prune
    benchmark(lambda: run_once(engine, batch, prune))
    engine.close()


# -- standalone report ------------------------------------------------------


def _process_path_identical(engine, plan, expected) -> bool:
    """Pruned plans through the process-parallel executor: fewer ops
    reach the workers, bytes must not move."""
    with ProcessPlanExecutor(engine, processes=2) as executor:
        result = executor.execute(plan)
        return executor.fallbacks == 0 and identical(result, expected)


def main(smoke: bool = False) -> int:
    dataset = deployment_fixture()
    n_queries = 120 if smoke else N_QUERIES
    repeats = 1 if smoke else REPEATS
    bar = ACCEPT_SPEEDUP_SMOKE if smoke else ACCEPT_SPEEDUP
    engine = pruning_engine(dataset)
    h = engine.router.h
    print(
        f"{DAYS}-day Lausanne fixture: {len(dataset.tuples)} tuples, "
        f"{N_SHARDS} shards, h={h} (~{N_WINDOWS} windows)"
        f"{' (smoke)' if smoke else ''}"
    )

    workloads = {
        "continuous": localized_stream(dataset, n_queries, "bench_scatter_pruning"),
        "heatmap": localized_heatmap(dataset),
    }
    times: dict = {}
    oracle_ok = True
    print(
        f"\nlocalized disk queries, radius {RADIUS_M:.0f} m "
        f"(sigma {FOCUS_SIGMA_M:.0f} m around the focus neighbourhood):"
    )
    print(
        f"  {'workload':<12} {'unpruned':>10} {'pruned':>10} {'speedup':>9} "
        f"{'ops':>9} {'identical':>10}"
    )
    for name, batch in workloads.items():
        expected = run_once(engine, batch, prune=False)  # warms both paths
        pruned_plan = engine.plan(batch, "naive", prune=True)
        got = engine.execute(pruned_plan)
        same = identical(got, expected)
        oracle_ok = oracle_ok and same
        t_off = time_callable(lambda: run_once(engine, batch, False), repeats=repeats)
        t_on = time_callable(lambda: run_once(engine, batch, True), repeats=repeats)
        times[name] = {
            "unpruned_s": t_off,
            "pruned_s": t_on,
            "speedup": t_off / t_on,
            "ops_kept": pruned_plan.ops_kept,
            "ops_pruned": pruned_plan.ops_pruned,
            "byte_identical": same,
        }
        ops = f"{pruned_plan.ops_kept}/{pruned_plan.ops_kept + pruned_plan.ops_pruned}"
        print(
            f"  {name:<12} {t_off * 1e3:>8.1f}ms {t_on * 1e3:>8.1f}ms "
            f"{t_off / t_on:>8.2f}x {ops:>9} {'OK' if same else 'BROKEN':>10}"
        )

    stream = workloads["continuous"]
    process_ok = _process_path_identical(
        engine,
        engine.plan(stream, "naive", prune=True),
        run_once(engine, stream, prune=False),
    )
    print(
        f"\nbyte-identity oracle (pruned == unpruned, all workloads): "
        f"{'OK' if oracle_ok else 'BROKEN'}"
    )
    print(
        f"process-parallel path (pruned plan, 2 workers): "
        f"{'OK' if process_ok else 'BROKEN'}"
    )
    histogram = shard_histogram(engine.router)
    engine.close()

    speedup = times["continuous"]["speedup"]
    path = write_bench_json(
        "scatter_pruning",
        {
            "benchmark": "scatter_pruning",
            "mode": "smoke" if smoke else "full",
            "workload": {
                "shards": N_SHARDS,
                "windows": N_WINDOWS,
                "h": h,
                "radius_m": RADIUS_M,
                "n_queries": n_queries,
                "grid": [GRID_NX, GRID_NY],
                "repeats": repeats,
                "tuples": len(dataset.tuples),
            },
            "results": times,
            "process_path_identical": process_ok,
            "accept_speedup": bar,
            "shard_histogram": histogram,
        },
    )
    print(f"wrote {path.name}")

    ok = oracle_ok and process_ok and speedup >= bar
    print(
        f"\nacceptance (byte-identical answers and pruned continuous "
        f"stream >= {bar:.0f}x unpruned): {'PASS' if ok else 'FAIL'} "
        f"({speedup:.2f}x)"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main(smoke="--smoke" in sys.argv[1:]))
