"""Process-parallel plan execution versus the in-process executor.

Not a paper figure — this measures the reproduction's GIL escape
(``repro/query/pipeline/parallel.py``): the same sharded heatmap plans
executed by a :class:`~repro.query.pipeline.parallel.ProcessPlanExecutor`
at 1, 2 and 4 worker processes, against the serial
:class:`~repro.query.sharded.ShardedQueryEngine` baseline.  Workers read
shard prefixes zero-copy out of shared memory and the parent merges with
the exact gather, so every configuration's answer is byte-identical to
the serial one — the oracle check below enforces that on every run, bar
or no bar.

Run standalone for the headline numbers on the 1-day Lausanne fixture::

    PYTHONPATH=src python benchmarks/bench_process_parallel.py

which also checks the acceptance bar: 4-process heatmap throughput must
be at least 2x the 1-process throughput.  The bar needs hardware that
can actually run 4 workers at once, so it is enforced only when
``os.cpu_count() >= 4`` (the byte-identity oracle is enforced always).
``--smoke`` shrinks the workload for CI and skips the bar — a loaded CI
box is not a benchmark rig.

The report closes with a crash-recovery demonstration: every worker is
killed with SIGKILL mid-session and the next query must still come back
byte-identical (in-process fallback), with the pool healing after.
"""

from __future__ import annotations

import os
import signal
import sys

import numpy as np
import pytest

from repro.eval.timing import time_callable
from repro.query.base import QueryBatch
from repro.query.pipeline.parallel import ProcessPlanExecutor
from repro.query.sharded import ShardedQueryEngine

try:  # pytest / smoke-test import (repo root on sys.path)
    from benchmarks.conftest import day_fixture, sharded_day_engine
except ImportError:  # standalone: python benchmarks/bench_process_parallel.py
    from conftest import day_fixture, sharded_day_engine

PROCESS_COUNTS = (1, 2, 4)
N_SHARDS = 4
GRID_NX, GRID_NY = 64, 48
RADIUS_M = 500.0
REPEATS = 3
ACCEPT_SPEEDUP = 2.0


def build_engine(dataset, n_shards: int = N_SHARDS) -> ShardedQueryEngine:
    """Sharded engine with a day-long window, as in ``bench_sharded``."""
    return sharded_day_engine(dataset, n_shards, radius_m=RADIUS_M)


def heatmap_plan(engine: ShardedQueryEngine, dataset, nx: int, ny: int):
    t = float(dataset.tuples.t[-1])
    bounds = dataset.covered_bbox()
    probes = QueryBatch.from_grid(
        t, bounds.min_x, bounds.min_y, bounds.width, bounds.height, nx, ny
    )
    return engine.plan(probes, "naive")


def executor_time(executor, plan, repeats: int = REPEATS) -> float:
    """Seconds per full heatmap plan (worker caches warmed)."""
    executor.execute(plan)  # warm attachments and processor caches
    return time_callable(lambda: executor.execute(plan), repeats=repeats)


# -- pytest-benchmark entry points -----------------------------------------


@pytest.fixture(scope="module")
def day_dataset():
    return day_fixture()


@pytest.mark.parametrize("processes", PROCESS_COUNTS)
def bench_process_heatmap(benchmark, day_dataset, processes):
    engine = build_engine(day_dataset)
    plan = heatmap_plan(engine, day_dataset, GRID_NX, GRID_NY)
    with ProcessPlanExecutor(engine, processes=processes) as executor:
        executor.execute(plan)
        benchmark.group = f"process heatmap {GRID_NX}x{GRID_NY} r={RADIUS_M:.0f}m"
        benchmark.extra_info["processes"] = processes
        benchmark(lambda: executor.execute(plan))
    engine.close()


# -- standalone report ------------------------------------------------------


def _crash_demo(engine, plan, expected) -> bool:
    """SIGKILL every worker, then query: fallback must answer identically
    and the pool must heal back onto the process path."""
    from repro.query.pipeline import parallel

    with ProcessPlanExecutor(engine, processes=2) as executor:
        executor.execute(plan)
        for worker in executor._workers:
            if worker is not None:
                os.kill(worker.process.pid, signal.SIGKILL)
                worker.process.join(timeout=10.0)
        # Pin liveness so the dispatcher sends into the dead pipes —
        # the deterministic stand-in for a worker dying mid-request.
        original = parallel._Worker.alive
        parallel._Worker.alive = lambda self: True  # type: ignore[method-assign]
        try:
            survived = executor.execute(plan)
        finally:
            parallel._Worker.alive = original  # type: ignore[method-assign]
        fell_back = executor.fallbacks == 1
        healed = executor.execute(plan)
        return (
            fell_back
            and executor.fallbacks == 1
            and survived.values.tobytes() == expected.values.tobytes()
            and healed.values.tobytes() == expected.values.tobytes()
        )


def main(smoke: bool = False) -> int:
    dataset = day_fixture()
    nx, ny = (24, 18) if smoke else (GRID_NX, GRID_NY)
    repeats = 1 if smoke else REPEATS
    print(
        f"1-day Lausanne fixture: {len(dataset.tuples)} tuples, "
        f"{N_SHARDS} shards{' (smoke)' if smoke else ''}"
    )

    engine = build_engine(dataset)
    plan = heatmap_plan(engine, dataset, nx, ny)
    expected = engine.execute(plan)

    print(f"\nheatmap plan {nx}x{ny}, radius {RADIUS_M:.0f} m, day-long window:")
    print(f"  {'procs':<8} {'time':>10} {'grids/s':>9} {'speedup':>9} {'identical':>10}")
    times = {}
    identical = True
    for n in PROCESS_COUNTS:
        with ProcessPlanExecutor(engine, processes=n) as executor:
            result = executor.execute(plan)
            same = result.values.tobytes() == expected.values.tobytes()
            identical = identical and same and executor.fallbacks == 0
            times[n] = executor_time(executor, plan, repeats=repeats)
        print(
            f"  {n:<8} {times[n] * 1e3:>8.1f}ms {1.0 / times[n]:>9.2f}"
            f" {times[1] / times[n]:>8.2f}x {'OK' if same else 'BROKEN':>10}"
        )

    serial = time_callable(lambda: engine.execute(plan), repeats=repeats)
    print(f"  {'serial':<8} {serial * 1e3:>8.1f}ms {1.0 / serial:>9.2f}")

    recovered = _crash_demo(engine, plan, expected)
    print(
        f"\nbyte-identity oracle (every process count vs serial): "
        f"{'OK' if identical else 'BROKEN'}"
    )
    print(
        f"crash recovery (kill -9 all workers mid-session): "
        f"{'OK' if recovered else 'BROKEN'}"
    )
    engine.close()

    speedup = times[1] / times[PROCESS_COUNTS[-1]]
    cores = os.cpu_count() or 1
    if smoke:
        print(f"\n4-process speedup {speedup:.2f}x (smoke mode: bar not enforced)")
        return 0 if identical and recovered else 1
    if cores < 4:
        print(
            f"\n4-process speedup {speedup:.2f}x "
            f"(bar not enforced: only {cores} core(s) on this host)"
        )
        return 0 if identical and recovered else 1
    ok = identical and recovered and speedup >= ACCEPT_SPEEDUP
    print(
        f"\nacceptance (byte-identical answers, crash recovery, and "
        f"4-process heatmap >= {ACCEPT_SPEEDUP:.0f}x 1-process): "
        f"{'PASS' if ok else 'FAIL'}"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main(smoke="--smoke" in sys.argv[1:]))
