"""Ablation: index choice beyond the paper's R-tree/VP-tree (DESIGN.md §5.5).

Adds the uniform grid and the k-d tree to the Figure 6(a) comparison at a
fixed H.  Build time is recorded as extra info; query time is the
benchmarked quantity, as in Figure 6(a).
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import window_and_queries
from repro.query.indexed import IndexedProcessor, available_index_kinds

H = 240
N_QUERIES = 500


@pytest.mark.parametrize("kind", available_index_kinds())
def bench_index_kind(benchmark, dataset, radius_m, kind):
    w, queries = window_and_queries(dataset, H, N_QUERIES)
    t0 = time.perf_counter()
    proc = IndexedProcessor(w, kind=kind, radius_m=radius_m)
    build_s = time.perf_counter() - t0

    def run():
        for q in queries:
            proc.process(q)

    benchmark(run)
    benchmark.group = "ablation: index kind"
    benchmark.extra_info["kind"] = kind
    benchmark.extra_info["build_ms"] = round(build_s * 1000, 2)
