"""Scalar vs batched query execution throughput.

Not a paper figure — this measures the reproduction's own batched
execution path (``repro/query/README.md``): the heatmap grid as one
``process_batch`` call versus the historical cell-by-cell scalar loop,
and a windowed continuous stream through the grouped/parallel path
versus per-tuple processing.

Run standalone for the headline numbers on the 1-day Lausanne fixture::

    PYTHONPATH=src python benchmarks/bench_batch_execution.py

which also checks the acceptance bar: the batched 40x30 model-cover
heatmap must be at least 3x faster than the scalar loop.
"""

from __future__ import annotations

import pytest

from repro.data.lausanne import LausanneConfig, generate_lausanne_dataset
from repro.data.tuples import QueryTuple
from repro.eval.timing import time_callable
from repro.query.base import QueryBatch, process_batch
from repro.query.engine import QueryEngine

GRID_NX, GRID_NY = 40, 30
N_CONTINUOUS = 240        # sparse: ~10 queries per window
N_CONTINUOUS_DENSE = 4800  # dense: ~200 queries per window
METHODS = ("model-cover", "naive", "kdtree")


def day_fixture():
    """The deterministic 1-day Lausanne dataset (~5.9 K tuples)."""
    return generate_lausanne_dataset(LausanneConfig(days=1, target_tuples=0, seed=7))


def _engine(dataset) -> QueryEngine:
    return QueryEngine(dataset.tuples, h=240)


def _grid_probes(engine, dataset, nx=GRID_NX, ny=GRID_NY):
    t = float(dataset.tuples.t[len(dataset.tuples) // 2])
    bounds = dataset.covered_bbox()
    probes = QueryBatch.from_grid(
        t, bounds.min_x, bounds.min_y, bounds.width, bounds.height, nx, ny
    )
    return t, bounds, probes


def _continuous_stream(dataset, n=N_CONTINUOUS):
    """A query stream sweeping several windows (diagonal walk in time)."""
    tuples = dataset.tuples
    span = len(tuples) - 1
    return [
        QueryTuple(
            float(tuples.t[i * span // max(n - 1, 1)]),
            float(tuples.x[i * span // max(n - 1, 1)]) + 50.0,
            float(tuples.y[i * span // max(n - 1, 1)]) - 50.0,
        )
        for i in range(n)
    ]


def scalar_grid(proc, probes) -> int:
    """The historical per-cell loop heatmap_grid used before batching."""
    answered = 0
    for q in probes:
        if proc.process(q).answered:
            answered += 1
    return answered


def heatmap_speedup(dataset, method="model-cover", nx=GRID_NX, ny=GRID_NY, repeats=3):
    """(scalar_s, batched_s) for one full heatmap grid."""
    engine = _engine(dataset)
    t, _, probes = _grid_probes(engine, dataset, nx, ny)
    proc = engine.processor(method, engine.window_for_time(t))
    scalar_s = time_callable(lambda: scalar_grid(proc, probes), repeats=repeats)
    batched_s = time_callable(lambda: process_batch(proc, probes), repeats=repeats)
    return scalar_s, batched_s


def continuous_speedup(dataset, method="model-cover", n=N_CONTINUOUS, repeats=3):
    """(scalar_s, batched_s) for a multi-window continuous stream."""
    engine = _engine(dataset)
    queries = _continuous_stream(dataset, n=n)
    # Warm the processor cache so both paths measure query work only.
    for q in queries:
        engine.processor(method, engine.window_for_time(q.t))

    def scalar():
        for q in queries:
            engine.processor(method, engine.window_for_time(q.t)).process(q)

    scalar_s = time_callable(scalar, repeats=repeats)
    batched_s = time_callable(
        lambda: engine.continuous_query_batch(queries, method=method),
        repeats=repeats,
    )
    return scalar_s, batched_s


# -- pytest-benchmark entry points -----------------------------------------


@pytest.fixture(scope="module")
def day_dataset():
    return day_fixture()


@pytest.mark.parametrize("path", ("scalar", "batched"))
@pytest.mark.parametrize("method", METHODS)
def bench_heatmap(benchmark, day_dataset, method, path):
    engine = _engine(day_dataset)
    t, _, probes = _grid_probes(engine, day_dataset)
    proc = engine.processor(method, engine.window_for_time(t))
    benchmark.group = f"heatmap {GRID_NX}x{GRID_NY} {method}"
    benchmark.extra_info["path"] = path
    if path == "scalar":
        benchmark(lambda: scalar_grid(proc, probes))
    else:
        benchmark(lambda: process_batch(proc, probes))


@pytest.mark.parametrize("path", ("scalar", "batched"))
def bench_continuous(benchmark, day_dataset, path):
    engine = _engine(day_dataset)
    queries = _continuous_stream(day_dataset)
    for q in queries:
        engine.processor("model-cover", engine.window_for_time(q.t))
    benchmark.group = "continuous model-cover"
    benchmark.extra_info["path"] = path
    if path == "scalar":

        def run():
            for q in queries:
                engine.processor(
                    "model-cover", engine.window_for_time(q.t)
                ).process(q)

        benchmark(run)
    else:
        benchmark(lambda: engine.continuous_query_batch(queries))
    benchmark.extra_info["cache"] = engine.cache_stats.as_dict()


# -- standalone report ------------------------------------------------------


def main() -> int:
    dataset = day_fixture()
    print(f"1-day Lausanne fixture: {len(dataset.tuples)} tuples")
    print(f"\nheatmap grid {GRID_NX}x{GRID_NY} (one window):")
    print(f"  {'method':<12} {'scalar':>10} {'batched':>10} {'speedup':>9}")
    ok = True
    for method in METHODS:
        scalar_s, batched_s = heatmap_speedup(dataset, method)
        speedup = scalar_s / batched_s
        print(
            f"  {method:<12} {scalar_s * 1e3:>8.1f}ms {batched_s * 1e3:>8.1f}ms"
            f" {speedup:>8.1f}x"
        )
        if method == "model-cover" and speedup < 3.0:
            ok = False
    print("\ncontinuous model-cover stream across windows:")
    for label, n in (("sparse", N_CONTINUOUS), ("dense", N_CONTINUOUS_DENSE)):
        scalar_s, batched_s = continuous_speedup(dataset, n=n)
        print(
            f"  {label:<6} n={n:<5} {scalar_s * 1e3:>8.1f}ms {batched_s * 1e3:>8.1f}ms"
            f" {scalar_s / batched_s:>8.1f}x"
        )
    verdict = "PASS" if ok else "FAIL"
    print(f"\nacceptance (model-cover heatmap >= 3x): {verdict}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
