"""Figure 7(b): bandwidth optimization.

A continuous query of 100 tuples over a simulated GPRS link, baseline vs
model-cache.  Sent/received kilobytes and modelled network time are
attached as ``extra_info``; the wall-time benchmark covers the end-to-end
client run (requests, server processing, cache refresh logic).

Paper headline: model-cache uses 113x less sent, ~31x less received
traffic and ~100x less time than the baseline.
"""

from __future__ import annotations

import pytest

from repro.client.baseline import BaselineClient
from repro.client.modelcache import ModelCacheClient
from repro.eval.experiments import PAPER_BANDWIDTH_TUPLES, _mid_window
from repro.network.link import GPRS, CellularLink
from repro.query.continuous import uniform_query_tuples, waypoint_trajectory
from repro.server.server import EnviroMeterServer


@pytest.fixture(scope="module")
def server(dataset):
    srv = EnviroMeterServer(h=240)
    srv.ingest(dataset.tuples)
    return srv


@pytest.fixture(scope="module")
def queries(dataset):
    _, w = _mid_window(dataset, 240)
    t_start = float(w.t[0])
    bbox = dataset.covered_bbox()
    route = [
        (bbox.min_x + 0.2 * bbox.width, bbox.min_y + 0.2 * bbox.height),
        (bbox.min_x + 0.5 * bbox.width, bbox.min_y + 0.6 * bbox.height),
        (bbox.min_x + 0.8 * bbox.width, bbox.min_y + 0.8 * bbox.height),
    ]
    traj = waypoint_trajectory(route, t_start, t_start + PAPER_BANDWIDTH_TUPLES * 60.0)
    return uniform_query_tuples(traj, t_start, 60.0, PAPER_BANDWIDTH_TUPLES)


def bench_baseline_client(benchmark, server, queries):
    def run():
        client = BaselineClient(server, CellularLink(GPRS))
        client.run_continuous(queries)
        return client.stats

    stats = benchmark(run)
    benchmark.group = "fig7b bandwidth"
    benchmark.extra_info["sent_kb"] = round(stats.sent_kb, 2)
    benchmark.extra_info["received_kb"] = round(stats.received_kb, 2)
    benchmark.extra_info["network_time_s"] = round(stats.network_time_s, 2)


def bench_model_cache_client(benchmark, server, queries):
    def run():
        client = ModelCacheClient(server, CellularLink(GPRS))
        client.run_continuous(queries)
        return client.stats

    stats = benchmark(run)
    benchmark.group = "fig7b bandwidth"
    benchmark.extra_info["sent_kb"] = round(stats.sent_kb, 3)
    benchmark.extra_info["received_kb"] = round(stats.received_kb, 3)
    benchmark.extra_info["network_time_s"] = round(stats.network_time_s, 2)


def bench_bandwidth_ratios(benchmark, server, queries):
    """The full Figure 7(b) in one entry, with the headline ratios."""

    def run():
        base = BaselineClient(server, CellularLink(GPRS))
        base.run_continuous(queries)
        cache = ModelCacheClient(server, CellularLink(GPRS))
        cache.run_continuous(queries)
        return base.stats, cache.stats

    base, cache = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.group = "fig7b bandwidth"
    sent_x = base.sent_bytes / cache.sent_bytes
    recv_x = base.received_bytes / cache.received_bytes
    time_x = base.network_time_s / cache.network_time_s
    benchmark.extra_info["sent_ratio"] = round(sent_x, 1)
    benchmark.extra_info["received_ratio"] = round(recv_x, 1)
    benchmark.extra_info["time_ratio"] = round(time_x, 1)
    # Order-of-magnitude shape of the paper's 113x / 31x / 100x.
    assert sent_x > 50
    assert recv_x > 10
    assert time_x > 50
