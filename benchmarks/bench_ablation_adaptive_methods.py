"""Ablation: Ad-KMN vs the other adaptive candidates (DESIGN.md §5.3).

The paper says Ad-KMN "gave us the best results among many candidates we
designed".  This benchmark pits it against the two reconstructed
candidates (Ad-GRID quadtree, Ad-SPLIT greedy bisection) on the same
window: fit time is benchmarked; cover size and NRMSE are recorded.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import window_and_queries
from repro.core.adkmn import AdKMNConfig, fit_adkmn
from repro.core.variants import fit_adgrid, fit_adsplit
from repro.eval.metrics import evaluate_accuracy
from repro.query.modelcover import ModelCoverProcessor

H = 240
N_QUERIES = 500

FITTERS = {
    "ad-kmn": fit_adkmn,
    "ad-grid": fit_adgrid,
    "ad-split": fit_adsplit,
}


@pytest.mark.parametrize("name", sorted(FITTERS))
def bench_adaptive_method(benchmark, dataset, tau_n, name):
    w, queries = window_and_queries(dataset, H, N_QUERIES)
    fit = FITTERS[name]
    cfg = AdKMNConfig(tau_n_pct=tau_n)

    result = benchmark(lambda: fit(w, cfg))
    cover = result.cover
    nrmse, _ = evaluate_accuracy(ModelCoverProcessor(cover), queries, dataset.field)
    benchmark.group = "ablation: adaptive method"
    benchmark.extra_info["method"] = name
    benchmark.extra_info["n_models"] = cover.size
    benchmark.extra_info["converged"] = result.converged
    benchmark.extra_info["nrmse_pct"] = round(nrmse, 2)
