"""Durable tiered storage under a bounded resident-window budget.

Not a paper figure — this measures the reproduction's segment + WAL tier
(``repro/storage/tiered.py``): a stream ~20x the 1-day Lausanne fixture
is ingested into a :class:`~repro.storage.tiered.TieredShardRouter`
capped at a handful of resident sealed windows, then queried two ways:

* **hot** — a query stream aimed at the most recent window (the open
  tail / freshest seal, always resident), which must cost within 20% of
  an uncapped all-in-memory :class:`~repro.storage.shards.ShardRouter`
  on the same stream: the tier may not tax the common case;
* **cold** — times spread across the whole archive, faulting evicted
  segments back in (reported, not gated — cold reads *should* pay I/O).

The byte-identity oracle runs on every invocation: hot and cold answers
from the capped tier must equal the all-resident engine's bit for bit,
and the peak resident count must never exceed the configured cap.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_tiered.py [--smoke]

``--smoke`` shrinks the query workload and repeats for CI (the ingest
scale stays at 20x — the bounded-memory claim is the point), keeping the
same acceptance gates.  Either mode writes ``BENCH_tiered.json``.
"""

from __future__ import annotations

import shutil
import sys
import tempfile

import numpy as np

from repro.data.tuples import TupleBatch
from repro.eval.timing import time_callable
from repro.geo.region import RegionGrid
from repro.query.base import QueryBatch
from repro.query.sharded import ShardedQueryEngine
from repro.storage.shards import ShardRouter
from repro.storage.tiered import TieredShardRouter

try:  # pytest / smoke-test import (repo root on sys.path)
    from benchmarks.conftest import day_fixture, rng_for, write_bench_json
except ImportError:  # standalone: python benchmarks/bench_tiered.py
    from conftest import day_fixture, rng_for, write_bench_json

REPLICAS = 20  # ingest >= 20x the fixture (the bounded-memory claim)
H = 500
CAP = 8  # resident sealed (shard, window) slices
N_SHARDS = 4
GRID_NX, GRID_NY = 2, 2
RADIUS_M = 500.0
INGEST_BATCH = 2000
N_QUERIES = 200
REPEATS = 3
ACCEPT_HOT_RATIO = 1.2  # hot-window latency vs all-resident


def tiled_stream(dataset, replicas: int) -> TupleBatch:
    """The 1-day stream repeated ``replicas`` times, time-shifted so the
    result is one long time-sorted deployment."""
    base = dataset.tuples
    span = float(base.t[-1] - base.t[0]) + 60.0
    cols = {name: [] for name in ("t", "x", "y", "s")}
    for k in range(replicas):
        cols["t"].append(base.t + k * span)
        cols["x"].append(base.x)
        cols["y"].append(base.y)
        cols["s"].append(base.s)
    return TupleBatch(*(np.concatenate(cols[name]) for name in ("t", "x", "y", "s")))


def build_routers(dataset, data_dir, replicas: int = REPLICAS, cap: int = CAP):
    """The capped tiered router and its all-resident oracle, identically
    fed.  ``wal_sync=False``: this benchmark measures the query-side cost
    of tiering, not fsync throughput (bench data is disposable)."""
    stream = tiled_stream(dataset, replicas)
    grid = RegionGrid(dataset.covered_bbox(), nx=GRID_NX, ny=GRID_NY)
    tiered = TieredShardRouter(
        grid, h=H, data_dir=data_dir, memory_windows=cap, wal_sync=False
    )
    plain = ShardRouter(grid, h=H)
    for start in range(0, len(stream), INGEST_BATCH):
        chunk = stream.slice(start, min(start + INGEST_BATCH, len(stream)))
        tiered.ingest(chunk)
        plain.ingest(chunk)
    return stream, tiered, plain


def hot_queries(stream: TupleBatch, bounds, n: int, rng) -> QueryBatch:
    """Queries pinned inside the freshest window — the resident hot set."""
    t_hi = float(stream.t[-1])
    t_lo = float(stream.t[-min(H, len(stream))])
    return QueryBatch(
        rng.uniform(t_lo, t_hi, n),
        rng.uniform(bounds.min_x, bounds.max_x, n),
        rng.uniform(bounds.min_y, bounds.max_y, n),
    )


def cold_queries(stream: TupleBatch, bounds, n: int, rng) -> QueryBatch:
    """Times spread over the whole archive — every batch faults segments."""
    return QueryBatch(
        rng.uniform(float(stream.t[0]), float(stream.t[-1]), n),
        rng.uniform(bounds.min_x, bounds.max_x, n),
        rng.uniform(bounds.min_y, bounds.max_y, n),
    )


def identical(a, b) -> bool:
    return (
        a.values.tobytes() == b.values.tobytes()
        and np.array_equal(a.answered, b.answered)
        and np.array_equal(a.support, b.support)
    )


def bench_tiered_hot_window(benchmark, dataset, replicas: int = REPLICAS):
    """pytest-benchmark entry: hot-window queries against the capped tier."""
    data_dir = tempfile.mkdtemp(prefix="bench-tiered-")
    try:
        stream, tiered, plain = build_routers(dataset, data_dir, replicas)
        with tiered:
            engine = ShardedQueryEngine(tiered, radius_m=RADIUS_M, max_workers=1)
            oracle = ShardedQueryEngine(plain, radius_m=RADIUS_M, max_workers=1)
            try:
                rng = rng_for("bench_tiered_hot")
                queries = hot_queries(stream, plain.grid.bounds, 50, rng)
                got = benchmark(lambda: engine.continuous_query_batch(queries))
                assert identical(got, oracle.continuous_query_batch(queries))
                assert tiered.tier_stats()["peak_resident"] <= CAP
            finally:
                engine.close()
                oracle.close()
    finally:
        shutil.rmtree(data_dir, ignore_errors=True)


def main(smoke: bool = False) -> int:
    n_queries = 60 if smoke else N_QUERIES
    # Best-of-3 even in smoke: the hot workload is ~1 ms, and the gate is
    # a ratio — single-shot jitter on a loaded CI box would dominate it.
    repeats = REPEATS
    dataset = day_fixture()
    data_dir = tempfile.mkdtemp(prefix="bench-tiered-")
    try:
        with time_section("ingest"):
            stream, tiered, plain = build_routers(dataset, data_dir)
        stats = tiered.tier_stats()
        print(
            f"{REPLICAS}x 1-day Lausanne fixture: {len(stream)} tuples, "
            f"{N_SHARDS} shards, h={H}, cap={CAP} resident windows"
            f"{' (smoke)' if smoke else ''}"
        )
        print(
            f"  sealed {stats['sealed_windows']} windows "
            f"({stats['segments_written']} segments), peak resident "
            f"{stats['peak_resident']}, evictions {stats['evictions']}"
        )
        cap_ok = stats["peak_resident"] <= CAP

        bounds = plain.grid.bounds
        engine = ShardedQueryEngine(tiered, radius_m=RADIUS_M, max_workers=1)
        oracle = ShardedQueryEngine(plain, radius_m=RADIUS_M, max_workers=1)
        try:
            rng = rng_for("bench_tiered")
            hot = hot_queries(stream, bounds, n_queries, rng)
            cold = cold_queries(stream, bounds, n_queries, rng)

            # Byte-identity oracle first (also warms both paths).
            hot_same = identical(
                engine.continuous_query_batch(hot),
                oracle.continuous_query_batch(hot),
            )
            cold_same = identical(
                engine.continuous_query_batch(cold),
                oracle.continuous_query_batch(cold),
            )
            cap_ok = cap_ok and tiered.tier_stats()["peak_resident"] <= CAP

            t_hot_tier = time_callable(
                lambda: engine.continuous_query_batch(hot), repeats=repeats
            )
            t_hot_all = time_callable(
                lambda: oracle.continuous_query_batch(hot), repeats=repeats
            )
            t_cold_tier = time_callable(
                lambda: engine.continuous_query_batch(cold), repeats=repeats
            )
            t_cold_all = time_callable(
                lambda: oracle.continuous_query_batch(cold), repeats=repeats
            )
        finally:
            engine.close()
            oracle.close()
            tiered.close()

        hot_ratio = t_hot_tier / t_hot_all
        stats = tiered.tier_stats()
        print(f"\n  {'workload':<10} {'tiered':>10} {'all-res':>10} {'ratio':>8}")
        print(
            f"  {'hot':<10} {t_hot_tier * 1e3:>8.1f}ms {t_hot_all * 1e3:>8.1f}ms "
            f"{hot_ratio:>7.2f}x"
        )
        print(
            f"  {'cold':<10} {t_cold_tier * 1e3:>8.1f}ms {t_cold_all * 1e3:>8.1f}ms "
            f"{t_cold_tier / t_cold_all:>7.2f}x"
        )
        print(
            f"\nbyte-identity oracle (capped tier == all-resident): "
            f"{'OK' if hot_same and cold_same else 'BROKEN'}"
        )
        print(
            f"resident cap held (peak {stats['peak_resident']} <= {CAP}): "
            f"{'OK' if cap_ok else 'BROKEN'}; "
            f"{stats['faults']} faults, {stats['evictions']} evictions"
        )

        path = write_bench_json(
            "tiered",
            {
                "benchmark": "tiered",
                "mode": "smoke" if smoke else "full",
                "workload": {
                    "tuples": len(stream),
                    "replicas": REPLICAS,
                    "shards": N_SHARDS,
                    "h": H,
                    "memory_windows": CAP,
                    "n_queries": n_queries,
                    "repeats": repeats,
                },
                "tier": stats,
                "results": {
                    "hot_tiered_s": t_hot_tier,
                    "hot_all_resident_s": t_hot_all,
                    "hot_ratio": hot_ratio,
                    "cold_tiered_s": t_cold_tier,
                    "cold_all_resident_s": t_cold_all,
                    "byte_identical": hot_same and cold_same,
                    "cap_held": cap_ok,
                },
                "accept_hot_ratio": ACCEPT_HOT_RATIO,
            },
        )
        print(f"wrote {path.name}")

        ok = hot_same and cold_same and cap_ok and hot_ratio <= ACCEPT_HOT_RATIO
        print(
            f"\nacceptance (byte-identical, cap held, hot latency <= "
            f"{ACCEPT_HOT_RATIO:.1f}x all-resident): "
            f"{'PASS' if ok else 'FAIL'} ({hot_ratio:.2f}x)"
        )
        return 0 if ok else 1
    finally:
        shutil.rmtree(data_dir, ignore_errors=True)


class time_section:
    """Tiny context printing a section's wall time (ingest progress)."""

    def __init__(self, label: str) -> None:
        self.label = label

    def __enter__(self):
        import time

        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        import time

        print(f"[{self.label}: {time.perf_counter() - self._start:.1f}s]")


if __name__ == "__main__":
    raise SystemExit(main(smoke="--smoke" in sys.argv[1:]))
