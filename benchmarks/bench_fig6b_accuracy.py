"""Figure 6(b): accuracy (NRMSE vs ground truth).

The paper compares Ad-KMN against the naive method (R-/VP-tree produce
identical answers to naive by construction).  NRMSE per method/H is
attached as ``extra_info`` on each benchmark entry and asserted on: the
model cover must beat radius-averaging at every H, which is the figure's
claim.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import window_and_queries
from repro.eval.experiments import _processor
from repro.eval.metrics import evaluate_accuracy

H_VALUES = (40, 80, 120, 160, 200, 240)
N_QUERIES = 1000


@pytest.mark.parametrize("h", H_VALUES)
def bench_nrmse(benchmark, dataset, radius_m, tau_n, h):
    """One H column of Figure 6(b): evaluate both methods, record NRMSE."""
    w, queries = window_and_queries(dataset, h, N_QUERIES)
    adkmn = _processor("adkmn", w, radius_m, tau_n)
    naive = _processor("naive", w, radius_m, tau_n)

    def run():
        nrmse_model, _ = evaluate_accuracy(adkmn, queries, dataset.field)
        nrmse_naive, _ = evaluate_accuracy(naive, queries, dataset.field)
        return nrmse_model, nrmse_naive

    nrmse_model, nrmse_naive = benchmark(run)
    benchmark.group = "fig6b NRMSE"
    benchmark.extra_info["h"] = h
    benchmark.extra_info["nrmse_adkmn_pct"] = round(nrmse_model, 2)
    benchmark.extra_info["nrmse_naive_pct"] = round(nrmse_naive, 2)
    # The figure's claim: Ad-KMN consistently below naive.
    assert nrmse_model < nrmse_naive
