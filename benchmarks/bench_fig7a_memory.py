"""Figure 7(a): memory consumption at H = 5000.

Deep-measures (our Pympler substitute) the structure each method must
hold to answer queries: the stored points (naive), the index (R-tree /
VP-tree), the fitted models (Ad-KMN).  Memory in KB is attached as
``extra_info``; the timed quantity is the structure construction, which
is the companion cost the paper discusses qualitatively.

Paper headline: the model cover needs ~7x / 70x / 407x less memory than
naive / R-tree / VP-tree.  EXPERIMENTS.md records the measured ratios.
"""

from __future__ import annotations


from repro.core.adkmn import AdKMNConfig, fit_adkmn
from repro.eval.memory import deep_sizeof_kb
from repro.index.rtree import RTree
from repro.index.vptree import VPTree

H_MEMORY = 5000


def _window(dataset):
    from repro.eval.experiments import _mid_window

    _, w = _mid_window(dataset, H_MEMORY)
    return w


def bench_memory_naive_points(benchmark, dataset):
    w = _window(dataset)

    def build():
        return [
            (float(w.t[i]), float(w.x[i]), float(w.y[i]), float(w.s[i]))
            for i in range(len(w))
        ]

    points = benchmark(build)
    benchmark.group = "fig7a memory"
    benchmark.extra_info["kilobytes"] = round(deep_sizeof_kb(points), 1)


def bench_memory_rtree(benchmark, dataset):
    w = _window(dataset)
    tree = benchmark(lambda: RTree(w.x, w.y))
    benchmark.group = "fig7a memory"
    benchmark.extra_info["kilobytes"] = round(deep_sizeof_kb(tree), 1)


def bench_memory_vptree(benchmark, dataset):
    w = _window(dataset)
    tree = benchmark(lambda: VPTree(w.x, w.y))
    benchmark.group = "fig7a memory"
    benchmark.extra_info["kilobytes"] = round(deep_sizeof_kb(tree), 1)


def bench_memory_adkmn_models(benchmark, dataset, tau_n):
    w = _window(dataset)
    cover = benchmark(lambda: fit_adkmn(w, AdKMNConfig(tau_n_pct=tau_n)).cover)
    benchmark.group = "fig7a memory"
    benchmark.extra_info["kilobytes"] = round(deep_sizeof_kb(cover), 1)
    benchmark.extra_info["n_models"] = cover.size


def bench_memory_ratios(benchmark, dataset, tau_n):
    """The full Figure 7(a) in one entry: all four methods, ratio check."""
    w = _window(dataset)

    def measure():
        points = [
            (float(w.t[i]), float(w.x[i]), float(w.y[i]), float(w.s[i]))
            for i in range(len(w))
        ]
        cover = fit_adkmn(w, AdKMNConfig(tau_n_pct=tau_n)).cover
        return {
            "naive": deep_sizeof_kb(points),
            "rtree": deep_sizeof_kb(RTree(w.x, w.y)),
            "vptree": deep_sizeof_kb(VPTree(w.x, w.y)),
            "adkmn": deep_sizeof_kb(cover),
        }

    sizes = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.group = "fig7a memory"
    base = sizes["adkmn"]
    for method, kb in sizes.items():
        benchmark.extra_info[f"{method}_kb"] = round(kb, 1)
        benchmark.extra_info[f"{method}_x"] = round(kb / base, 1)
    # The figure's claim: the model cover is dramatically smaller, and the
    # VP-tree is the most expensive structure.
    assert base * 5 < sizes["naive"]
    assert base * 5 < sizes["rtree"]
    assert sizes["vptree"] > sizes["rtree"]
