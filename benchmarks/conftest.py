"""Shared benchmark fixtures.

The full-scale 176 K-tuple *lausanne-data* is generated once per session;
every figure benchmark evaluates against it, exactly as the paper's
evaluation uses one dataset for all experiments.

Randomness: benchmarks must be reproducible run-to-run (CI smoke results
are diffed), so none of them may seed or read global RNG state.  Each
benchmark derives its own :class:`numpy.random.Generator` — via the
``bench_rng`` fixture (seeded from the test's node id) or
:func:`rng_for` (seeded from an explicit label in standalone ``main``
runs) — and threads it through its workload builders.
"""

from __future__ import annotations

import zlib

import numpy as np
import pytest

from repro.data.lausanne import LausanneDataset
from repro.eval.experiments import (
    PAPER_RADIUS_M,
    PAPER_TAU_N,
    _mid_window,
    _query_workload,
    experiment_dataset,
)


def rng_for(label: str) -> np.random.Generator:
    """A per-benchmark seeded generator, derived from a stable label.

    The label (a test node id, or an explicit string in standalone
    runs) is hashed to the seed, so every benchmark gets its own
    deterministic stream, independent of execution order and of any
    global seeding."""
    return np.random.default_rng(zlib.crc32(label.encode("utf-8")))


@pytest.fixture()
def bench_rng(request) -> np.random.Generator:
    """Per-benchmark seeded ``numpy.random.Generator`` (node-id keyed)."""
    return rng_for(request.node.nodeid)


@pytest.fixture(scope="session")
def dataset() -> LausanneDataset:
    """The full 176 K-tuple synthetic lausanne-data (seeded)."""
    return experiment_dataset()


@pytest.fixture(scope="session")
def radius_m() -> float:
    return PAPER_RADIUS_M


@pytest.fixture(scope="session")
def tau_n() -> float:
    return PAPER_TAU_N


def window_and_queries(dataset, h, n_queries, seed=11):
    """A mid-deployment window of size ``h`` plus its query workload."""
    _, w = _mid_window(dataset, h)
    return w, _query_workload(dataset, w, n_queries, seed=seed)
