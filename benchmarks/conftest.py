"""Shared benchmark fixtures.

The full-scale 176 K-tuple *lausanne-data* is generated once per session;
every figure benchmark evaluates against it, exactly as the paper's
evaluation uses one dataset for all experiments.
"""

from __future__ import annotations


import pytest

from repro.data.lausanne import LausanneDataset
from repro.eval.experiments import (
    PAPER_RADIUS_M,
    PAPER_TAU_N,
    _mid_window,
    _query_workload,
    experiment_dataset,
)


@pytest.fixture(scope="session")
def dataset() -> LausanneDataset:
    """The full 176 K-tuple synthetic lausanne-data (seeded)."""
    return experiment_dataset()


@pytest.fixture(scope="session")
def radius_m() -> float:
    return PAPER_RADIUS_M


@pytest.fixture(scope="session")
def tau_n() -> float:
    return PAPER_TAU_N


def window_and_queries(dataset, h, n_queries, seed=11):
    """A mid-deployment window of size ``h`` plus its query workload."""
    _, w = _mid_window(dataset, h)
    return w, _query_workload(dataset, w, n_queries, seed=seed)
