"""Shared benchmark fixtures.

The full-scale 176 K-tuple *lausanne-data* is generated once per session;
every figure benchmark evaluates against it, exactly as the paper's
evaluation uses one dataset for all experiments.

Randomness: benchmarks must be reproducible run-to-run (CI smoke results
are diffed), so none of them may seed or read global RNG state.  Each
benchmark derives its own :class:`numpy.random.Generator` — via the
``bench_rng`` fixture (seeded from the test's node id) or
:func:`rng_for` (seeded from an explicit label in standalone ``main``
runs) — and threads it through its workload builders.
"""

from __future__ import annotations

import json
import pathlib
import zlib

import numpy as np
import pytest

from repro.data.lausanne import LausanneConfig, LausanneDataset, generate_lausanne_dataset
from repro.eval.experiments import (
    PAPER_RADIUS_M,
    PAPER_TAU_N,
    _mid_window,
    _query_workload,
    experiment_dataset,
)


def rng_for(label: str) -> np.random.Generator:
    """A per-benchmark seeded generator, derived from a stable label.

    The label (a test node id, or an explicit string in standalone
    runs) is hashed to the seed, so every benchmark gets its own
    deterministic stream, independent of execution order and of any
    global seeding."""
    return np.random.default_rng(zlib.crc32(label.encode("utf-8")))


@pytest.fixture()
def bench_rng(request) -> np.random.Generator:
    """Per-benchmark seeded ``numpy.random.Generator`` (node-id keyed)."""
    return rng_for(request.node.nodeid)


@pytest.fixture(scope="session")
def dataset() -> LausanneDataset:
    """The full 176 K-tuple synthetic lausanne-data (seeded)."""
    return experiment_dataset()


@pytest.fixture(scope="session")
def radius_m() -> float:
    return PAPER_RADIUS_M


@pytest.fixture(scope="session")
def tau_n() -> float:
    return PAPER_TAU_N


def window_and_queries(dataset, h, n_queries, seed=11):
    """A mid-deployment window of size ``h`` plus its query workload."""
    _, w = _mid_window(dataset, h)
    return w, _query_workload(dataset, w, n_queries, seed=seed)


# -- shared sharded-benchmark fixture builders ------------------------------
#
# Hoisted from bench_sharded / bench_process_parallel (which used to carry
# copy-pasted versions) so the sharded family of benchmarks builds its
# routers one way.  Plain functions, importable both as
# ``benchmarks.conftest`` (pytest / smoke tests) and as ``conftest``
# (standalone ``python benchmarks/bench_X.py`` runs).


def day_fixture():
    """The deterministic 1-day Lausanne dataset (~5.9 K tuples)."""
    return generate_lausanne_dataset(LausanneConfig(days=1, target_tuples=0, seed=7))


def sharded_day_engine(
    dataset,
    n_shards: int,
    radius_m: float = 500.0,
    h: int | None = None,
    ingest_batch: int | None = None,
    prune: bool = True,
):
    """Router + :class:`ShardedQueryEngine` over ``n_shards`` regions.

    ``h`` defaults to the stream length (one day-long window, so scan
    cost dominates); ``ingest_batch`` splits ingest into batches of that
    size (None = one bulk ingest).  ``max_workers=1`` keeps timings
    deterministic on loaded hosts.
    """
    from repro.geo.region import RegionGrid
    from repro.query.sharded import ShardedQueryEngine
    from repro.storage.shards import ShardRouter

    tuples = dataset.tuples
    grid = RegionGrid.for_shard_count(dataset.covered_bbox(), n_shards)
    router = ShardRouter(grid, h=h or len(tuples))
    step = ingest_batch or len(tuples)
    for start in range(0, len(tuples), step):
        router.ingest(tuples.slice(start, min(start + step, len(tuples))))
    return ShardedQueryEngine(
        router, radius_m=radius_m, max_workers=1, prune=prune
    )


def shard_histogram(router) -> dict:
    """Per-shard occupancy histogram for benchmark JSON payloads.

    ``counts`` is tuples per shard slot (index = shard id; retired hole
    slots report 0) and ``skew`` the max/mean coefficient over the
    non-empty layout — the one number that says how lopsided the layout
    the benchmark ran against actually was."""
    from repro.storage.load import skew_coefficient

    counts = [int(c) for c in router.shard_counts()]
    return {
        "counts": counts,
        "n_shards": len(counts),
        "skew": skew_coefficient(counts),
    }


def write_bench_json(name: str, payload: dict) -> pathlib.Path:
    """Write a machine-readable benchmark result to ``BENCH_<name>.json``
    at the repo root (the perf-trajectory artifact CI collects).

    Sharded benchmarks include a ``shard_histogram`` field (see
    :func:`shard_histogram`) so the trajectory records the layout shape
    alongside the timings."""
    path = pathlib.Path(__file__).resolve().parent.parent / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
