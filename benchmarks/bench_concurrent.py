"""Concurrent serving throughput under sustained ingest, vs serial interleaving.

Not a paper figure — this measures the reproduction's concurrent serving
layer (PR 4): an :class:`~repro.server.server.EnviroMeterServer` behind
the :class:`~repro.server.server.ConcurrentEnviroMeterServer` front end,
with a writer delivering ingest batches over a modeled store-and-forward
uplink while four reader threads serve query chunks to clients behind a
modeled cellular round trip (the same deployment shape
:mod:`repro.network.link` models for traffic accounting — here the wire
times are *slept*, because overlapping them is exactly what the
concurrent layer buys).

The baseline is the **serial interleaved discipline** — the pre-PR
single-threaded server loop, where one thread owns the socket and the
store: receive a batch (uplink), ingest it, then serve the queued query
chunks one client at a time (RTT, then evaluate).  "One ingest blocks
every query, and every client blocks every other client."  The
concurrent layer overlaps all of it: the writer sleeps/ingests on its
own thread under the storage write lock while the reader pool serves the
same chunks, so wire time hides behind compute on any machine — and on
a multi-core rig the numpy evaluation parallelises on top.

Acceptance (full mode): aggregate query throughput at least **2x** the
serial baseline, and every concurrently-computed answer **byte-identical**
to a serial replay of the same ingest schedule at the answer's recorded
snapshot epoch.  ``--smoke`` shrinks the workload and skips the timing
bar (a loaded CI box is not a benchmark rig); the byte-identity check is
enforced everywhere.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_concurrent.py
"""

from __future__ import annotations

import sys
import threading
import time
from typing import List, Sequence, Tuple

import numpy as np
import pytest

try:
    from benchmarks.conftest import rng_for
except ModuleNotFoundError:  # standalone: python benchmarks/bench_concurrent.py
    from conftest import rng_for
from repro.data.lausanne import LausanneConfig, generate_lausanne_dataset
from repro.data.tuples import TupleBatch
from repro.network.messages import QueryRequest, ValueResponse
from repro.server.server import ConcurrentEnviroMeterServer, EnviroMeterServer

H = 240
N_READERS = 4
N_INGEST_BATCHES = 24
N_CHUNKS = 24
CHUNK_SIZE = 400
UPLINK_S = 0.006   # modeled store-and-forward delivery per ingest batch
CLIENT_RTT_S = 0.020  # modeled cellular round trip per served chunk
ACCEPT_SPEEDUP = 2.0


def day_fixture():
    """The deterministic 1-day Lausanne dataset (~5.9 K tuples)."""
    return generate_lausanne_dataset(LausanneConfig(days=1, target_tuples=0, seed=7))


def build_workload(
    rng: np.random.Generator,
    stream: TupleBatch,
    n_batches: int = 0,
    n_chunks: int = 0,
    chunk_size: int = 0,
) -> Tuple[TupleBatch, List[TupleBatch], List[List[QueryRequest]]]:
    """(preload, live ingest batches, query chunks) for one run.

    The first half of the day preloads the store; the second half streams
    in as the sustained-ingest load.  Queries jitter around random tuples
    of the *preloaded* half, so every chunk is answerable at every epoch
    and the serial replay is exact.  Zero arguments fall back to the
    module constants (late-bound so the smoke runner can shrink them).
    """
    n_batches = n_batches or N_INGEST_BATCHES
    n_chunks = n_chunks or N_CHUNKS
    chunk_size = chunk_size or CHUNK_SIZE
    half = len(stream) // 2
    preload, live = stream.slice(0, half), stream.slice(half, len(stream))
    bounds = np.linspace(0, len(live), n_batches + 1).astype(int)
    batches = [
        live.slice(int(a), int(b)) for a, b in zip(bounds[:-1], bounds[1:]) if b > a
    ]
    chunks: List[List[QueryRequest]] = []
    for _ in range(n_chunks):
        idx = rng.integers(0, half, size=chunk_size)
        jx = rng.normal(0.0, 120.0, size=chunk_size)
        jy = rng.normal(0.0, 120.0, size=chunk_size)
        chunks.append(
            [
                QueryRequest(
                    t=float(stream.t[i]), x=float(stream.x[i]) + float(dx),
                    y=float(stream.y[i]) + float(dy),
                )
                for i, dx, dy in zip(idx, jx, jy)
            ]
        )
    return preload, batches, chunks


def fingerprints(responses: Sequence[ValueResponse]) -> List[bytes]:
    """NaN-stable byte identity per answer."""
    return [np.float64(r.value).tobytes() for r in responses]


def serial_interleaved(
    server: EnviroMeterServer,
    batches: Sequence[TupleBatch],
    chunks: Sequence[List[QueryRequest]],
    uplink_s: float = -1.0,
    rtt_s: float = -1.0,
) -> Tuple[float, List[List[bytes]]]:
    """The pre-PR discipline: one thread owns uplink, store and clients.

    Batches and chunks interleave round-robin (one batch, then the next
    ``len(chunks)/len(batches)`` chunks), every wire delay paid inline.
    Returns (elapsed seconds, per-chunk answer fingerprints).
    """
    uplink_s = UPLINK_S if uplink_s < 0 else uplink_s
    rtt_s = CLIENT_RTT_S if rtt_s < 0 else rtt_s
    per_step = max(1, len(chunks) // max(len(batches), 1))
    answers: List[List[bytes]] = []
    next_chunk = 0
    start = time.perf_counter()
    for batch in batches:
        time.sleep(uplink_s)  # the uplink transfer blocks the loop
        server.ingest(batch)
        for _ in range(per_step):
            if next_chunk >= len(chunks):
                break
            time.sleep(rtt_s)  # ...and so does each client round trip
            answers.append(fingerprints(server.handle_many(chunks[next_chunk])))
            next_chunk += 1
    while next_chunk < len(chunks):
        time.sleep(rtt_s)
        answers.append(fingerprints(server.handle_many(chunks[next_chunk])))
        next_chunk += 1
    return time.perf_counter() - start, answers


def concurrent_run(
    front: ConcurrentEnviroMeterServer,
    batches: Sequence[TupleBatch],
    chunks: Sequence[List[QueryRequest]],
    n_readers: int = N_READERS,
    uplink_s: float = -1.0,
    rtt_s: float = -1.0,
) -> Tuple[float, List[Tuple[int, List[int], List[bytes]]]]:
    """Writer + ``n_readers`` client threads over the same workload.

    Each client thread serves its chunk through the front end's
    **pool-fanned** ``handle_many_with_epochs`` — the component the
    wrapper exists for — so the gate covers the fan-out path, not just
    the inner server's thread safety.  Returns (elapsed, records) with
    one ``(chunk index, per-request epochs, fingerprints)`` record per
    chunk; the epochs feed the byte-identity replay.
    """
    uplink_s = UPLINK_S if uplink_s < 0 else uplink_s
    rtt_s = CLIENT_RTT_S if rtt_s < 0 else rtt_s
    records: List[Tuple[int, List[int], List[bytes]]] = []
    records_lock = threading.Lock()
    pending = list(enumerate(chunks))
    pending_lock = threading.Lock()
    failures: List[BaseException] = []

    def writer():
        try:
            for batch in batches:
                time.sleep(uplink_s)  # uplink occupies only this thread
                front.ingest(batch)
        except BaseException as exc:  # pragma: no cover - failure path
            failures.append(exc)

    def reader():
        try:
            while True:
                with pending_lock:
                    if not pending:
                        return
                    k, chunk = pending.pop(0)
                time.sleep(rtt_s)  # each client's round trip, overlapped
                responses, epochs = front.handle_many_with_epochs(chunk)
                with records_lock:
                    records.append(
                        (k, [int(e) for e in epochs], fingerprints(responses))
                    )
        except BaseException as exc:  # pragma: no cover - failure path
            failures.append(exc)

    threads = [threading.Thread(target=writer)]
    threads += [threading.Thread(target=reader) for _ in range(n_readers)]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    if failures:
        raise failures[0]
    return elapsed, sorted(records)


def replay_identical(
    preload: TupleBatch,
    batches: Sequence[TupleBatch],
    chunks: Sequence[List[QueryRequest]],
    records: Sequence[Tuple[int, List[int], List[bytes]]],
) -> bool:
    """Serial replay oracle: re-answer every request at its recorded epoch.

    Epoch ``e`` is the fresh server's state after the preload plus the
    first ``e - 1`` live batches (the preload is ingest #1).  A chunk's
    requests may straddle epochs (its pool sub-chunks pin independently);
    each epoch group is replayed at its own epoch."""
    server = EnviroMeterServer(h=H)
    server.ingest(preload)
    by_epoch: dict = {}
    for k, epochs, prints in records:
        for i, (epoch, print_) in enumerate(zip(epochs, prints)):
            by_epoch.setdefault(epoch, []).append((k, i, print_))
    ok = True
    for epoch in sorted(by_epoch):
        while server.epoch < epoch:
            server.ingest(batches[server.epoch - 1])
        group = by_epoch[epoch]
        want = fingerprints(
            server.handle_many([chunks[k][i] for k, i, _ in group])
        )
        ok = ok and want == [print_ for _, _, print_ in group]
    return ok


# -- pytest-benchmark entry points -----------------------------------------


@pytest.fixture(scope="module")
def day_dataset():
    return day_fixture()


@pytest.mark.parametrize("mode", ("serial", "concurrent"))
def bench_concurrent_serving(benchmark, day_dataset, mode):
    # One fixed workload label for BOTH modes: the serial/concurrent
    # comparison must time identical queries (a node-id-keyed bench_rng
    # would seed each parametrisation differently).
    preload, batches, chunks = build_workload(
        rng_for("bench_concurrent.workload"), day_dataset.tuples
    )
    benchmark.group = f"serving {len(chunks)}x{len(chunks[0])} queries under ingest"
    benchmark.extra_info["mode"] = mode

    def run_serial():
        server = EnviroMeterServer(h=H)
        server.ingest(preload)
        return serial_interleaved(server, batches, chunks)

    def run_concurrent():
        inner = EnviroMeterServer(h=H)
        inner.ingest(preload)
        with ConcurrentEnviroMeterServer(inner, max_workers=N_READERS) as front:
            return concurrent_run(front, batches, chunks)

    benchmark.pedantic(
        run_serial if mode == "serial" else run_concurrent, rounds=1, iterations=1
    )


# -- standalone report ------------------------------------------------------


def main(smoke: bool = False) -> int:
    rng = rng_for("bench_concurrent.workload")
    dataset = day_fixture()
    if smoke:
        n_batches, n_chunks, chunk_size = 6, 6, 60
        uplink_s, rtt_s = 0.001, 0.002
    else:
        n_batches, n_chunks, chunk_size = N_INGEST_BATCHES, N_CHUNKS, CHUNK_SIZE
        uplink_s, rtt_s = UPLINK_S, CLIENT_RTT_S
    preload, batches, chunks = build_workload(
        rng, dataset.tuples, n_batches, n_chunks, chunk_size
    )
    n_queries = sum(len(c) for c in chunks)
    print(
        f"1-day Lausanne fixture: {len(dataset.tuples)} tuples"
        f"{' (smoke)' if smoke else ''}; preload {len(preload)}, "
        f"{len(batches)} ingest batches, {n_queries} queries in "
        f"{len(chunks)} chunks; uplink {uplink_s * 1e3:.0f} ms, "
        f"client RTT {rtt_s * 1e3:.0f} ms"
    )

    serial_server = EnviroMeterServer(h=H)
    serial_server.ingest(preload)
    serial_s, serial_answers = serial_interleaved(
        serial_server, batches, chunks, uplink_s, rtt_s
    )

    inner = EnviroMeterServer(h=H)
    inner.ingest(preload)
    with ConcurrentEnviroMeterServer(inner, max_workers=N_READERS) as front:
        concurrent_s, records = concurrent_run(
            front, batches, chunks, N_READERS, uplink_s, rtt_s
        )

    identical = replay_identical(preload, batches, chunks, records)
    speedup = serial_s / concurrent_s
    print(
        f"\n  {'discipline':<22} {'time':>9} {'queries/s':>11}\n"
        f"  {'serial interleaved':<22} {serial_s * 1e3:>7.0f}ms"
        f" {n_queries / serial_s:>11,.0f}\n"
        f"  {f'{N_READERS} readers + writer':<22} {concurrent_s * 1e3:>7.0f}ms"
        f" {n_queries / concurrent_s:>11,.0f}"
    )
    print(
        f"\nbyte-identity of every concurrent answer vs serial replay at "
        f"its snapshot epoch: {'OK' if identical else 'BROKEN'}"
    )
    if smoke:
        print(f"\nspeedup {speedup:.2f}x (smoke mode: bar not enforced)")
        return 0 if identical else 1
    ok = identical and speedup >= ACCEPT_SPEEDUP
    print(
        f"\nacceptance (byte-identical answers and concurrent throughput >= "
        f"{ACCEPT_SPEEDUP:.0f}x serial interleaved): "
        f"{'PASS' if ok else 'FAIL'} ({speedup:.2f}x)"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main(smoke="--smoke" in sys.argv[1:]))
