"""Ablation: the error threshold τn (DESIGN.md §5.2).

τn is the single knob steering Ad-KMN's adaptivity: tighter thresholds
mean more splits, more models, bigger covers, better fidelity.  The sweep
records cover size / wire size / NRMSE per τn; the timed quantity is the
fit, which grows with the number of split rounds.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import window_and_queries
from repro.core.adkmn import AdKMNConfig, fit_adkmn
from repro.eval.metrics import evaluate_accuracy
from repro.query.modelcover import ModelCoverProcessor

H = 240
N_QUERIES = 500
TAU_VALUES = (0.5, 1.0, 2.0, 4.0, 8.0)


@pytest.mark.parametrize("tau", TAU_VALUES)
def bench_tau_sweep(benchmark, dataset, tau):
    w, queries = window_and_queries(dataset, H, N_QUERIES)
    cfg = AdKMNConfig(tau_n_pct=tau)

    result = benchmark(lambda: fit_adkmn(w, cfg))
    cover = result.cover
    nrmse, _ = evaluate_accuracy(ModelCoverProcessor(cover), queries, dataset.field)
    benchmark.group = "ablation: tau_n"
    benchmark.extra_info["tau_pct"] = tau
    benchmark.extra_info["n_models"] = cover.size
    benchmark.extra_info["rounds"] = result.rounds
    benchmark.extra_info["wire_bytes"] = cover.wire_size_bytes()
    benchmark.extra_info["nrmse_pct"] = round(nrmse, 2)
