"""Adaptive shard management versus a static grid under skewed traffic.

Not a paper figure — this measures the adaptive layer added on top of
region sharding (``repro/storage/rebalance.py``): a Zipf-skewed
"downtown" mix of ingest and disk queries against a 36-cell (6x6) grid,
answered twice from identically-ingested stores:

* **static** — the plain :class:`~repro.geo.region.RegionGrid` layout:
  the downtown cell's shard holds most of the city's rows, so most
  queries scan one huge slice while 35 shards idle;
* **adaptive** — the same router after the
  :class:`~repro.storage.rebalance.ShardRebalancer` has watched the
  load tracker and acted: hot cells split into sub-tiles (smaller
  scans, tighter zone-map sketches), still-hot sub-tiles get read
  replicas (one scan fanned over pool threads).

Answers are byte-identical by construction — a re-cut moves rows
between slots without touching the global stream, and the exact gather
is canonical in stream position — and the oracle enforces it on every
run, *under a free-running ingest writer*: a plan pinned before the
rebalance must keep answering with exactly its pinned bytes through a
split, a replica-split plan, and the re-merge, while fresh plans agree
with a never-rebalanced router holding the same stream.

Run standalone for the headline numbers::

    PYTHONPATH=src python benchmarks/bench_adaptive_shards.py

which also checks the acceptance bar: adaptive p50 scatter latency at
least 2x better than the static grid on the skewed mix.  ``--smoke``
shrinks the workload for CI and lowers the bar to 1.3x.  Either mode
writes the machine-readable ``BENCH_adaptive_shards.json`` artifact.
"""

from __future__ import annotations

import sys
import threading
import time

import numpy as np
import pytest

from repro.data.tuples import TupleBatch
from repro.geo.coords import BoundingBox
from repro.geo.region import RegionGrid
from repro.query.base import QueryBatch
from repro.query.sharded import ShardedQueryEngine
from repro.storage.rebalance import ShardRebalancer
from repro.storage.shards import ShardRouter

try:  # pytest / smoke-test import (repo root on sys.path)
    from benchmarks.conftest import rng_for, shard_histogram, write_bench_json
except ImportError:  # standalone: python benchmarks/bench_adaptive_shards.py
    from conftest import rng_for, shard_histogram, write_bench_json

GRID_NX, GRID_NY = 6, 6  # the paper-style 36-cell city grid
N_SHARDS = GRID_NX * GRID_NY
BOUNDS = BoundingBox(0.0, 0.0, 6000.0, 6000.0)
ZIPF_EXPONENT = 2.5  # cell-popularity skew; rank 1 ("downtown") ~ 75 %
N_TUPLES = 60_000
ORACLE_WINDOWS = 8  # the identity oracle exercises real window cuts
RADIUS_M = 120.0
N_BATCHES = 30  # latency sample size (p50 over per-batch times)
BATCH_QUERIES = 150
WORKERS = 4
ACCEPT_SPEEDUP = 2.0
ACCEPT_SPEEDUP_SMOKE = 1.3


def zipf_cell_weights(rng: np.random.Generator) -> np.ndarray:
    """Zipf popularity over the 36 cells, downtown pinned to the centre.

    The rank-1 cell is the one containing the city centre (that is what
    "downtown" means here); the remaining ranks are shuffled across the
    other cells so the skew is spatially irregular, like a real city.
    """
    ranks = np.arange(1, N_SHARDS + 1, dtype=np.float64)
    weights = ranks ** -ZIPF_EXPONENT
    weights /= weights.sum()
    centre = (GRID_NY // 2) * GRID_NX + GRID_NX // 2
    order = np.concatenate(
        ([centre], rng.permutation([k for k in range(N_SHARDS) if k != centre]))
    )
    out = np.empty(N_SHARDS)
    out[order] = weights
    return out


def _cell_points(rng, cells: np.ndarray):
    """Uniform positions inside each query/tuple's Zipf-chosen cell."""
    cw, ch = BOUNDS.width / GRID_NX, BOUNDS.height / GRID_NY
    ix, iy = cells % GRID_NX, cells // GRID_NX
    x = BOUNDS.min_x + (ix + rng.random(len(cells))) * cw
    y = BOUNDS.min_y + (iy + rng.random(len(cells))) * ch
    return x, y


def downtown_stream(n_tuples: int, label: str) -> TupleBatch:
    """The skewed ingest stream: Zipf cells, time-ordered."""
    rng = rng_for(label)
    weights = zipf_cell_weights(rng_for(label + ":cells"))
    cells = rng.choice(N_SHARDS, size=n_tuples, p=weights)
    x, y = _cell_points(rng, cells)
    return TupleBatch(
        np.arange(n_tuples, dtype=np.float64),  # 1 Hz city feed
        x, y, rng.uniform(10.0, 80.0, n_tuples),
    )


def downtown_queries(n_queries: int, t_lo: float, t_hi: float, label: str) -> QueryBatch:
    """Disk queries drawn from the same Zipf cell mix as the stream."""
    rng = rng_for(label)
    weights = zipf_cell_weights(rng_for(label.split("#")[0] + ":qcells"))
    cells = rng.choice(N_SHARDS, size=n_queries, p=weights)
    x, y = _cell_points(rng, cells)
    return QueryBatch(rng.uniform(t_lo, t_hi, n_queries), x, y)


def city_engine(
    n_tuples: int, stream: TupleBatch | None = None, windows: int = 1
) -> ShardedQueryEngine:
    """Router + engine over the 6x6 grid, h cut for ``windows`` global
    windows.  The latency phase uses one day-scale window (scan cost —
    the term adaptivity attacks — dominates, as in ``bench_sharded``);
    the rebalance oracle uses several so re-cuts cross real window
    boundaries."""
    router = ShardRouter(
        RegionGrid(BOUNDS, nx=GRID_NX, ny=GRID_NY),
        h=max(n_tuples // windows, 1),
    )
    if stream is not None:
        router.ingest(stream)
    return ShardedQueryEngine(
        router, radius_m=RADIUS_M, max_workers=WORKERS
    )


def identical(a, b) -> bool:
    return (
        a.values.tobytes() == b.values.tobytes()
        and a.support.tobytes() == b.support.tobytes()
        and a.answered.tobytes() == b.answered.tobytes()
    )


def drive_load(engine: ShardedQueryEngine, queries: QueryBatch) -> None:
    """One workload round purely to feed the load tracker."""
    engine.continuous_query_batch(queries)


def p50_batch_latency(engine, batches) -> float:
    """Median per-batch plan+execute wall time — planning is part of the
    scatter cost adaptivity changes (pruned fan-out over more, smaller
    shards), so it stays inside the timed region."""
    times = []
    for batch in batches:
        t0 = time.perf_counter()
        engine.execute(engine.plan(batch, "naive"))
        times.append(time.perf_counter() - t0)
    return float(np.median(times))


# -- pytest-benchmark entry points -----------------------------------------


@pytest.mark.parametrize("adaptive", (False, True))
def bench_adaptive_scatter(benchmark, adaptive):
    stream = downtown_stream(N_TUPLES, "bench_adaptive_scatter")
    engine = city_engine(N_TUPLES, stream)
    batch = downtown_queries(
        BATCH_QUERIES * 4, 0.0, float(N_TUPLES), "bench_adaptive_scatter#q"
    )
    if adaptive:
        drive_load(engine, batch)
        ShardRebalancer(engine.router, engine=engine).run()
    engine.continuous_query_batch(batch)  # warm caches
    benchmark.group = f"adaptive vs static, {N_SHARDS}-cell Zipf downtown mix"
    benchmark.extra_info["adaptive"] = adaptive
    benchmark(lambda: engine.execute(engine.plan(batch, "naive")))
    engine.close()


# -- the byte-identity oracle ----------------------------------------------


def rebalance_oracle(n_tuples: int) -> dict:
    """Pre-split == post-split == replica reads == post-merge, under a
    free-running ingest writer.

    Two routers ingest the same head of the stream.  One plan is built
    (pinning every slice it scans) before any rebalancing; a writer
    thread then free-runs the stream tail into the adaptive router
    while the hot cell is split, queried through replicas, and merged
    back — the pinned plan must keep answering byte-identically at
    every stage.  Finally the static router catches up on the tail and
    fresh plans on both routers must agree: a rebalanced layout answers
    exactly like one that never rebalanced.
    """
    stream = downtown_stream(n_tuples, "bench_adaptive_shards:oracle")
    head_n = int(n_tuples * 0.9)
    head, tail = stream.slice(0, head_n), stream.slice(head_n, n_tuples)
    adaptive = city_engine(n_tuples, head, windows=ORACLE_WINDOWS)
    static = city_engine(n_tuples, head, windows=ORACLE_WINDOWS)
    queries = downtown_queries(120, 0.0, float(head_n), "bench_adaptive_shards:oq")

    checks: dict = {}
    pinned = adaptive.plan(queries, "naive")
    baseline = adaptive.execute(pinned)
    checks["static_agrees_pre"] = identical(
        baseline, static.execute(static.plan(queries, "naive"))
    )

    stop = threading.Event()

    def writer():
        step = max(len(tail.t) // 40, 1)
        for start in range(0, len(tail.t), step):
            if stop.is_set():
                return
            adaptive.router.ingest(tail.slice(start, min(start + step, len(tail.t))))
            time.sleep(0.001)

    thread = threading.Thread(target=writer, name="oracle-ingest")
    thread.start()
    try:
        # Split downtown (the hottest shard by row count — ingest load).
        hot = int(np.argmax(adaptive.router.shard_counts()))
        new_ids = adaptive.router.split_shard(hot)
        checks["pinned_post_split"] = identical(baseline, adaptive.execute(pinned))

        # Replica reads: same pinned binding, replica-split vs plain plan.
        binding = adaptive.binding()
        plain = adaptive.plan(queries, "naive", binding=binding)
        adaptive.set_replicas({s: 3 for s in new_ids})
        split_plan = adaptive.plan(queries, "naive", binding=binding)
        checks["replica_reads"] = identical(
            adaptive.execute(plain), adaptive.execute(split_plan)
        )
        adaptive.set_replicas({})

        # Merge downtown back; the pinned plan still answers its bytes.
        cell = adaptive.router.grid.cell_of_shard(new_ids[0])
        adaptive.router.merge_cell(cell)
        checks["pinned_post_merge"] = identical(baseline, adaptive.execute(pinned))
    finally:
        stop.set()
        thread.join()

    # Catch the writer's tail up on the static router: fresh plans on a
    # split-and-merged layout answer exactly like a never-rebalanced one.
    ingested = adaptive.router.global_count() - head_n
    if ingested:
        static.router.ingest(tail.slice(0, ingested))
    late = downtown_queries(120, 0.0, float(n_tuples), "bench_adaptive_shards:ol")
    checks["static_agrees_post"] = identical(
        adaptive.execute(adaptive.plan(late, "naive")),
        static.execute(static.plan(late, "naive")),
    )
    adaptive.close()
    static.close()
    checks["ok"] = all(checks.values())
    return checks


# -- standalone report ------------------------------------------------------


def main(smoke: bool = False) -> int:
    n_tuples = 24_000 if smoke else N_TUPLES
    n_batches = 10 if smoke else N_BATCHES
    batch_queries = 100 if smoke else BATCH_QUERIES
    bar = ACCEPT_SPEEDUP_SMOKE if smoke else ACCEPT_SPEEDUP
    print(
        f"Zipf downtown mix on the {GRID_NX}x{GRID_NY} grid: {n_tuples} tuples, "
        f"exponent {ZIPF_EXPONENT}, radius {RADIUS_M:.0f} m"
        f"{' (smoke)' if smoke else ''}"
    )

    oracle = rebalance_oracle(n_tuples)
    print("\nbyte-identity oracle (free-running ingest writer):")
    for name, ok in oracle.items():
        if name != "ok":
            print(f"  {name:<20} {'OK' if ok else 'BROKEN'}")

    stream = downtown_stream(n_tuples, "bench_adaptive_shards")
    batches = [
        downtown_queries(
            batch_queries, 0.0, float(n_tuples), f"bench_adaptive_shards#{i}"
        )
        for i in range(n_batches)
    ]
    load = downtown_queries(
        batch_queries * 8, 0.0, float(n_tuples), "bench_adaptive_shards#load"
    )

    static = city_engine(n_tuples, stream)
    adaptive = city_engine(n_tuples, stream)
    drive_load(adaptive, load)
    actions = ShardRebalancer(adaptive.router, engine=adaptive).run()
    print(f"\nrebalancer actions ({len(actions)}):")
    for a in actions:
        detail = (
            f"shard {a.shard} -> {list(a.new_shards)}" if a.kind == "split"
            else str(a.replicas) if a.kind == "replicas"
            else f"cell {a.cell} -> shard {a.shard}"
        )
        print(f"  {a.kind:<9} {detail} (skew {a.skew:.1f})")

    # Same frozen batches, both engines warmed on the first one.
    static.continuous_query_batch(batches[0])
    adaptive.continuous_query_batch(batches[0])
    sample = identical(
        static.execute(static.plan(batches[0], "naive")),
        adaptive.execute(adaptive.plan(batches[0], "naive")),
    )
    p50_static = p50_batch_latency(static, batches)
    p50_adaptive = p50_batch_latency(adaptive, batches)
    speedup = p50_static / p50_adaptive
    print(
        f"\np50 scatter latency over {n_batches} batches of {batch_queries}:\n"
        f"  static   {p50_static * 1e3:>8.2f} ms/batch\n"
        f"  adaptive {p50_adaptive * 1e3:>8.2f} ms/batch   ({speedup:.2f}x)"
    )
    histogram = shard_histogram(adaptive.router)
    replicas = adaptive.replicas
    static.close()
    adaptive.close()

    path = write_bench_json(
        "adaptive_shards",
        {
            "benchmark": "adaptive_shards",
            "mode": "smoke" if smoke else "full",
            "workload": {
                "grid": [GRID_NX, GRID_NY],
                "zipf_exponent": ZIPF_EXPONENT,
                "tuples": n_tuples,
                "radius_m": RADIUS_M,
                "n_batches": n_batches,
                "batch_queries": batch_queries,
                "workers": WORKERS,
            },
            "rebalance_actions": [
                {"kind": a.kind, "shard": a.shard, "cell": a.cell,
                 "new_shards": list(a.new_shards), "replicas": a.replicas,
                 "skew": a.skew}
                for a in actions
            ],
            "replicas": {str(s): r for s, r in replicas.items()},
            "p50_static_s": p50_static,
            "p50_adaptive_s": p50_adaptive,
            "speedup_p50": speedup,
            "oracle": oracle,
            "sample_byte_identical": sample,
            "accept_speedup": bar,
            "shard_histogram": histogram,
        },
    )
    print(f"wrote {path.name}")

    ok = oracle["ok"] and sample and speedup >= bar
    print(
        f"\nacceptance (byte-identity through rebalance and adaptive p50 >= "
        f"{bar:.1f}x static): {'PASS' if ok else 'FAIL'} ({speedup:.2f}x)"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main(smoke="--smoke" in sys.argv[1:]))
