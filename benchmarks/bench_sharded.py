"""Region-sharded scatter-gather throughput versus a single shard.

Not a paper figure — this measures the reproduction's sharding layer
(``repro/query/README.md``): heatmap grids and continuous streams
answered by a :class:`~repro.query.sharded.ShardedQueryEngine` over 1,
2 and 4 region shards.  The 1-shard configuration is the baseline (it
runs the identical scatter/merge machinery, so the comparison isolates
what sharding buys: each shard scans only its region's slice of the
window, and only for the probes whose query disk can reach its region).
Answers are byte-identical across shard counts, so the speedup is free
of any accuracy trade.

Run standalone for the headline numbers on the 1-day Lausanne fixture::

    PYTHONPATH=src python benchmarks/bench_sharded.py

which also checks the acceptance bar: the 4-shard heatmap grid must be
at least 2x the 1-shard throughput.  ``--smoke`` shrinks the workload
for CI (and skips the bar — a loaded CI box is not a benchmark rig).
"""

from __future__ import annotations

import sys

import numpy as np
import pytest

from repro.eval.timing import time_callable
from repro.query.sharded import ShardedQueryEngine

try:  # pytest / smoke-test import (repo root on sys.path)
    from benchmarks.conftest import (
        day_fixture,
        shard_histogram,
        sharded_day_engine,
        write_bench_json,
    )
except ImportError:  # standalone: python benchmarks/bench_sharded.py
    from conftest import (
        day_fixture,
        shard_histogram,
        sharded_day_engine,
        write_bench_json,
    )

SHARD_COUNTS = (1, 2, 4)
GRID_NX, GRID_NY = 64, 48
RADIUS_M = 500.0
INGEST_BATCH = 1_500
REPEATS = 3
ACCEPT_SPEEDUP = 2.0


def sharded_engine(
    dataset, n_shards: int, radius_m: float = RADIUS_M, h: int | None = None
) -> ShardedQueryEngine:
    """Router + engine over ``n_shards`` regions, fed in ingest batches.

    ``h`` defaults to the stream length: the heatmap experiment renders
    from the full day's window so the scan cost (what sharding prunes)
    is the dominant term, as it is at city scale.
    """
    return sharded_day_engine(
        dataset, n_shards, radius_m=radius_m, h=h, ingest_batch=INGEST_BATCH
    )


def heatmap_time(
    engine: ShardedQueryEngine, dataset, nx=GRID_NX, ny=GRID_NY, repeats=REPEATS
) -> float:
    """Seconds per full heatmap grid (cache warmed)."""
    t = float(dataset.tuples.t[-1])
    bounds = dataset.covered_bbox()
    engine.heatmap_grid(t, bounds, nx=nx, ny=ny)  # warm planner/index caches
    return time_callable(
        lambda: engine.heatmap_grid(t, bounds, nx=nx, ny=ny), repeats=repeats
    )


def heatmap_grids(dataset, shard_counts=SHARD_COUNTS, nx=GRID_NX, ny=GRID_NY):
    """One grid per shard count — the byte-identity check the bar rides on."""
    t = float(dataset.tuples.t[-1])
    bounds = dataset.covered_bbox()
    return [
        sharded_engine(dataset, n).heatmap_grid(t, bounds, nx=nx, ny=ny)
        for n in shard_counts
    ]


# -- pytest-benchmark entry points -----------------------------------------


@pytest.fixture(scope="module")
def day_dataset():
    return day_fixture()


@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def bench_sharded_heatmap(benchmark, day_dataset, n_shards):
    engine = sharded_engine(day_dataset, n_shards)
    t = float(day_dataset.tuples.t[-1])
    bounds = day_dataset.covered_bbox()
    engine.heatmap_grid(t, bounds, nx=GRID_NX, ny=GRID_NY)
    benchmark.group = f"sharded heatmap {GRID_NX}x{GRID_NY} r={RADIUS_M:.0f}m"
    benchmark.extra_info["n_shards"] = n_shards
    benchmark(lambda: engine.heatmap_grid(t, bounds, nx=GRID_NX, ny=GRID_NY))


# -- standalone report ------------------------------------------------------


def main(smoke: bool = False) -> int:
    dataset = day_fixture()
    nx, ny = (24, 18) if smoke else (GRID_NX, GRID_NY)
    repeats = 1 if smoke else REPEATS
    print(
        f"1-day Lausanne fixture: {len(dataset.tuples)} tuples"
        f"{' (smoke)' if smoke else ''}"
    )

    grids = heatmap_grids(dataset, nx=nx, ny=ny)
    identical = all(
        np.array_equal(grids[0], g, equal_nan=True) for g in grids[1:]
    )
    print(
        f"\nbyte-identity across shard counts {SHARD_COUNTS}: "
        f"{'OK' if identical else 'BROKEN'}"
    )

    print(f"\nheatmap grid {nx}x{ny}, radius {RADIUS_M:.0f} m, day-long window:")
    print(f"  {'shards':<8} {'time':>10} {'grids/s':>9} {'speedup':>9}")
    times = {}
    histogram = None
    for n in SHARD_COUNTS:
        engine = sharded_engine(dataset, n)
        times[n] = heatmap_time(engine, dataset, nx=nx, ny=ny, repeats=repeats)
        histogram = shard_histogram(engine.router)  # widest layout wins
        print(
            f"  {n:<8} {times[n] * 1e3:>8.1f}ms {1.0 / times[n]:>9.2f}"
            f" {times[1] / times[n]:>8.2f}x"
        )

    speedup = times[1] / times[4]
    path = write_bench_json(
        "sharded",
        {
            "benchmark": "sharded",
            "mode": "smoke" if smoke else "full",
            "workload": {
                "grid": [nx, ny],
                "radius_m": RADIUS_M,
                "shard_counts": list(SHARD_COUNTS),
                "repeats": repeats,
                "tuples": len(dataset.tuples),
            },
            "seconds_per_grid": {str(n): times[n] for n in SHARD_COUNTS},
            "speedup_4_shard": speedup,
            "byte_identical": identical,
            "accept_speedup": ACCEPT_SPEEDUP,
            "shard_histogram": histogram,
        },
    )
    print(f"\nwrote {path.name}")
    if smoke:
        print(f"4-shard speedup {speedup:.2f}x (smoke mode: bar not enforced)")
        return 0 if identical else 1
    ok = identical and speedup >= ACCEPT_SPEEDUP
    print(
        f"acceptance (byte-identical answers and 4-shard heatmap >= "
        f"{ACCEPT_SPEEDUP:.0f}x 1-shard): {'PASS' if ok else 'FAIL'}"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main(smoke="--smoke" in sys.argv[1:]))
