"""Standing-subscription maintenance versus naive per-poll re-execution.

Not a paper figure — this measures the reproduction's subscription
registry (``repro/query/subscriptions.py``): 64 standing continuous
queries registered over long-sealed early windows of a sharded store
while ingest appends at the tail.  A naive server re-executes every
registered route on every poll — O(subscriptions x route length) per
epoch regardless of what changed.  The registry's epoch-delta pass
checks per-window content marks over the registered keys instead, so a
tail ingest that touches none of the subscribed windows costs
O(registered keys) comparisons and zero query executions.

The byte-identity oracle runs on every invocation: after all ingest,
every subscription's maintained answer must equal from-scratch
re-execution of its route — maintenance may only skip work it can prove
irrelevant, never change an answer.

Run standalone for the headline numbers on the 1-day Lausanne fixture::

    PYTHONPATH=src python benchmarks/bench_subscriptions.py

which also checks the acceptance bar: maintaining 64 quiet
subscriptions across tail ingests must beat naive re-execution by >= 5x
(``--smoke`` shrinks the ingest schedule and lowers the bar to 2x for
CI boxes), and the maintenance pass at 64 subscriptions must cost about
the same as at 8 — the cost scales with dirty work, not population.
Either mode writes the machine-readable ``BENCH_subscriptions.json``
perf-trajectory artifact.
"""

from __future__ import annotations

import sys
import time

import numpy as np
import pytest

from repro.geo.region import RegionGrid
from repro.query.sharded import ShardedQueryEngine
from repro.query.subscriptions import registry_for
from repro.storage.shards import ShardRouter

try:  # pytest / smoke-test import (repo root on sys.path)
    from benchmarks.conftest import day_fixture, rng_for, write_bench_json
except ImportError:  # standalone: python benchmarks/bench_subscriptions.py
    from conftest import day_fixture, rng_for, write_bench_json

N_SHARDS = 4
H = 240
RADIUS_M = 500.0
N_SUBS = 64
N_SUBS_SMALL = 8
COUNT = 12  # query tuples per standing route
CUT_FRAC = 0.7
STEPS = 6
STEPS_SMOKE = 2
METHOD = "naive"
ACCEPT_SPEEDUP = 5.0
ACCEPT_SPEEDUP_SMOKE = 2.0
ACCEPT_COUNT_RATIO = 4.0  # 64 subs may not cost 4x what 8 do (naive: 8x)


def partial_engine(dataset, frac: float = CUT_FRAC):
    """A sharded engine over the first ``frac`` of the day — the rest of
    the stream is the live tail the benchmark ingests."""
    tuples = dataset.tuples
    grid = RegionGrid.for_shard_count(dataset.covered_bbox(), N_SHARDS)
    router = ShardRouter(grid, h=H)
    router.ingest(tuples.slice(0, int(frac * len(tuples))))
    return ShardedQueryEngine(router, radius_m=RADIUS_M, max_workers=1)


def register_early_subs(registry, tuples, n: int, label: str):
    """``n`` standing routes anchored on early tuples: their windows are
    sealed long before the tail, so tail ingest never dirties them."""
    rng = rng_for(label)
    cut = int(CUT_FRAC * len(tuples))
    subs = []
    for _ in range(n):
        i = int(rng.integers(0, cut // 2))
        x, y = float(tuples.x[i]), float(tuples.y[i])
        subs.append(
            registry.subscribe(
                [(x - 200.0, y - 200.0), (x + 200.0, y + 200.0)],
                float(tuples.t[i]),
                interval_s=30.0,
                count=COUNT,
                method=METHOD,
            )
        )
    return subs


def tail_batches(tuples, steps: int):
    cut = int(CUT_FRAC * len(tuples))
    step = max(1, (len(tuples) - cut + steps - 1) // steps)
    return [
        tuples.slice(lo, min(lo + step, len(tuples)))
        for lo in range(cut, len(tuples), step)
    ]


def timed_maintenance_run(dataset, n_subs: int, steps: int):
    """Ingest the tail in ``steps`` batches; after each, time one
    maintenance pass and one naive all-subscriptions re-execution."""
    tuples = dataset.tuples
    engine = partial_engine(dataset)
    registry = registry_for(engine)
    subs = register_early_subs(
        registry, tuples, n_subs, f"bench_subscriptions:{n_subs}"
    )
    maintain_s, naive_s = [], []
    for batch in tail_batches(tuples, steps):
        engine.router.ingest(batch)
        t0 = time.perf_counter()
        updates = registry.maintain()
        maintain_s.append(time.perf_counter() - t0)
        assert updates == [], "sealed-window subscriptions must stay quiet"
        t0 = time.perf_counter()
        for sub in subs:
            registry.reference_answers(sub.batch, sub.method)
        naive_s.append(time.perf_counter() - t0)
    oracle_ok = True
    for sub in subs:
        ref_v, ref_s = registry.reference_answers(sub.batch, sub.method)
        v, s = sub.answer()
        oracle_ok = oracle_ok and bool(
            np.array_equal(v, ref_v, equal_nan=True)
            and np.array_equal(s, ref_s)
        )
    stats = registry.stats
    return {
        "n_subs": n_subs,
        "maintain_s": maintain_s,
        "naive_s": naive_s,
        "maintain_total_s": float(sum(maintain_s)),
        "naive_total_s": float(sum(naive_s)),
        "queries_reexecuted": stats.queries_reexecuted,
        "keys_checked": stats.keys_checked,
        "byte_identical": oracle_ok,
    }


# -- pytest-benchmark entry points -----------------------------------------


@pytest.fixture(scope="module")
def day_dataset():
    return day_fixture()


@pytest.mark.parametrize("n_subs", (N_SUBS_SMALL, N_SUBS))
def bench_quiet_epoch_maintain(benchmark, day_dataset, n_subs):
    """Steady-state maintenance pass cost with every subscription clean —
    the per-poll overhead a quiet epoch pays, at two population sizes."""
    engine = partial_engine(day_dataset)
    registry = registry_for(engine)
    register_early_subs(
        registry, day_dataset.tuples, n_subs, f"bench_quiet:{n_subs}"
    )
    engine.router.ingest(tail_batches(day_dataset.tuples, 1)[0])
    registry.maintain()  # absorb the ingest; the timed passes are quiet
    benchmark.group = f"quiet-epoch maintenance, {N_SHARDS} shards"
    benchmark.extra_info["n_subs"] = n_subs
    benchmark(registry.maintain)


# -- standalone report ------------------------------------------------------


def main(smoke: bool = False) -> int:
    dataset = day_fixture()
    steps = STEPS_SMOKE if smoke else STEPS
    bar = ACCEPT_SPEEDUP_SMOKE if smoke else ACCEPT_SPEEDUP
    print(
        f"1-day Lausanne fixture: {len(dataset.tuples)} tuples, "
        f"{N_SHARDS} shards, h={H}, {int(CUT_FRAC * 100)}% pre-loaded, "
        f"tail in {steps} ingest step(s){' (smoke)' if smoke else ''}"
    )

    big = timed_maintenance_run(dataset, N_SUBS, steps)
    small = timed_maintenance_run(dataset, N_SUBS_SMALL, steps)
    speedup = big["naive_total_s"] / max(big["maintain_total_s"], 1e-9)
    ratio = big["maintain_total_s"] / max(small["maintain_total_s"], 1e-9)

    print(
        f"\n{'subs':>6} {'maintain':>10} {'naive':>10} {'speedup':>9} "
        f"{'re-executed':>12} {'identical':>10}"
    )
    for run in (small, big):
        sp = run["naive_total_s"] / max(run["maintain_total_s"], 1e-9)
        print(
            f"{run['n_subs']:>6} {run['maintain_total_s'] * 1e3:>8.1f}ms "
            f"{run['naive_total_s'] * 1e3:>8.1f}ms {sp:>8.1f}x "
            f"{run['queries_reexecuted']:>12} "
            f"{'OK' if run['byte_identical'] else 'BROKEN':>10}"
        )
    print(
        f"\nmaintenance cost, 64 vs 8 subscriptions: {ratio:.2f}x "
        f"(naive scaling would be "
        f"{N_SUBS / N_SUBS_SMALL:.0f}x; bar < {ACCEPT_COUNT_RATIO:.0f}x)"
    )

    oracle_ok = big["byte_identical"] and small["byte_identical"]
    path = write_bench_json(
        "subscriptions",
        {
            "benchmark": "subscriptions",
            "mode": "smoke" if smoke else "full",
            "workload": {
                "shards": N_SHARDS,
                "h": H,
                "radius_m": RADIUS_M,
                "method": METHOD,
                "count_per_route": COUNT,
                "preloaded_fraction": CUT_FRAC,
                "ingest_steps": steps,
                "tuples": len(dataset.tuples),
            },
            "results": {"64_subs": big, "8_subs": small},
            "quiet_speedup_vs_naive": speedup,
            "count_scaling_ratio_64_vs_8": ratio,
            "accept_speedup": bar,
            "accept_count_ratio": ACCEPT_COUNT_RATIO,
        },
    )
    print(f"wrote {path.name}")

    ok = (
        oracle_ok
        and big["queries_reexecuted"] == 0
        and speedup >= bar
        and ratio < ACCEPT_COUNT_RATIO
    )
    print(
        f"\nacceptance (byte-identical answers, zero re-executions on "
        f"quiet epochs, maintenance >= {bar:.0f}x naive at {N_SUBS} subs, "
        f"population-independent cost): {'PASS' if ok else 'FAIL'} "
        f"({speedup:.1f}x, {ratio:.2f}x)"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main(smoke="--smoke" in sys.argv[1:]))
