"""User-configurable settings (Section 3, Figure 4(b)).

"Users can set up configuration parameters, like the server address and
the interval for the position updates using the settings menu."
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class AppSettings:
    """The EnviroMeter app's settings menu."""

    server_address: str = "enviro.example.org:8080"
    position_update_interval_s: float = 60.0
    pollutant: str = "co2"
    use_model_cache: bool = True

    def __post_init__(self) -> None:
        if not self.server_address:
            raise ValueError("server address cannot be empty")
        if self.position_update_interval_s <= 0:
            raise ValueError("position update interval must be positive")
        if self.pollutant not in ("co2", "co", "pm"):
            raise ValueError(f"unsupported pollutant {self.pollutant!r}")

    def with_interval(self, interval_s: float) -> "AppSettings":
        """Settings with a changed update interval (settings are immutable
        snapshots, as on the phone where changes re-create the session)."""
        return replace(self, position_update_interval_s=interval_s)

    def with_server(self, address: str) -> "AppSettings":
        return replace(self, server_address=address)

    def with_model_cache(self, enabled: bool) -> "AppSettings":
        return replace(self, use_model_cache=enabled)
