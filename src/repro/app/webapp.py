"""The web interface (Section 3, Figure 5).

Three modes, exactly as demonstrated:

* **point query** — click a point, get the interpolated CO2 in ppm;
* **continuous query** — select route points; the app computes and
  displays the average CO2 level for each point on the route;
* **heatmap visualisation** — the Ad-KMN centroids as emitting points,
  coloured from acceptable (green) to dangerous (red).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.app.heatmap import Heatmap
from repro.client.osha import HealthLevel, classify_co2, color_for_level, describe_co2
from repro.core.cover import ModelCover
from repro.geo.coords import BoundingBox
from repro.query.continuous import uniform_query_tuples, waypoint_trajectory
from repro.query.engine import QueryEngine


@dataclass(frozen=True)
class PointReading:
    """What the web UI shows for a clicked point."""

    x: float
    y: float
    co2_ppm: Optional[float]
    text: str


@dataclass(frozen=True)
class RouteReading:
    """Per-route-point reading with its marker colour."""

    x: float
    y: float
    co2_ppm: Optional[float]
    marker_color: Optional[str]


@dataclass(frozen=True)
class CentroidMarker:
    """One Ad-KMN centroid as a heatmap emitting point."""

    x: float
    y: float
    co2_ppm: float
    level: HealthLevel
    color: str


class WebInterface:
    """Server-backed implementation of the three web-UI modes."""

    def __init__(self, engine: QueryEngine) -> None:
        self._engine = engine

    @property
    def engine(self) -> QueryEngine:
        return self._engine

    # -- mode 1: single point query ------------------------------------------

    def point_query(self, t: float, x: float, y: float) -> PointReading:
        """Interpolated CO2 at a clicked map point."""
        result = self._engine.point_query(t, x, y, method="model-cover")
        if result.value is None:
            return PointReading(x=x, y=y, co2_ppm=None, text="No data at this point.")
        return PointReading(
            x=x, y=y, co2_ppm=result.value, text=describe_co2(result.value)
        )

    # -- mode 2: continuous query over clicked route points ---------------------

    def continuous_query(
        self,
        route_points: Sequence[Tuple[float, float]],
        t_start: float,
        duration_s: float = 1800.0,
        updates: int = 30,
    ) -> List[RouteReading]:
        """Average CO2 for each point along a user-selected route.

        Runs on the engine's batched path: the route's query stream is
        grouped by window and each group is answered by one vectorised
        ``process_batch`` call (groups in parallel on the engine's
        executor), instead of one scalar ``process`` per route point.
        """
        if len(route_points) < 2:
            raise ValueError("select at least two route points")
        traj = waypoint_trajectory(route_points, t_start, t_start + duration_s)
        interval = duration_s / max(updates - 1, 1)
        queries = uniform_query_tuples(traj, t_start, interval, updates)
        result = self._engine.continuous_query_batch(queries, method="model-cover")
        readings: List[RouteReading] = []
        for i in range(len(result)):
            x = float(result.queries.x[i])
            y = float(result.queries.y[i])
            if not result.answered[i]:
                readings.append(RouteReading(x, y, None, None))
            else:
                value = float(result.values[i])
                level = classify_co2(max(value, 0.0))
                readings.append(
                    RouteReading(x, y, value, color_for_level(level))
                )
        return readings

    # -- mode 3: heatmap visualisation ------------------------------------------

    def heatmap(
        self,
        t: float,
        bounds: BoundingBox,
        nx: int = 40,
        ny: int = 30,
        splat_sigma_m: Optional[float] = None,
    ) -> Heatmap:
        """Heatmap of the area at time ``t``.

        Faithful to the demo (Figure 5(b)): "the emitting points are the
        centroids computed by the Ad-KMN algorithm with its pollution
        level" — each centroid emits its model's value at the centroid,
        and the grid is the Gaussian-weighted blend of the emitters.
        Rendering from centroid values keeps every cell inside the range
        the models actually predict *at* their centroids, instead of
        linearly extrapolating each model kilometres off its sub-region.
        """
        markers = self.centroid_markers(t)
        cx = np.array([m.x for m in markers])
        cy = np.array([m.y for m in markers])
        cv = np.array([m.co2_ppm for m in markers])
        if splat_sigma_m is None:
            splat_sigma_m = max(bounds.width, bounds.height) / 8.0
        xs = np.linspace(bounds.min_x, bounds.max_x, nx)
        ys = np.linspace(bounds.min_y, bounds.max_y, ny)
        gx, gy = np.meshgrid(xs, ys)
        d2 = (gx[..., None] - cx) ** 2 + (gy[..., None] - cy) ** 2
        w = np.exp(-d2 / (2.0 * splat_sigma_m**2))
        denom = np.sum(w, axis=-1)
        grid = np.where(
            denom > 1e-12, np.sum(w * cv, axis=-1) / np.maximum(denom, 1e-12),
            np.nan,
        )
        return Heatmap(grid=grid, bounds=bounds)

    def model_grid(
        self,
        t: float,
        bounds: BoundingBox,
        nx: int = 40,
        ny: int = 30,
    ) -> Heatmap:
        """Alternative heatmap: evaluate the owning model at every cell
        (exposes the models' raw extrapolation behaviour; useful for
        debugging covers, not what the demo UI showed).  The grid is one
        batched ``process_batch`` call through the engine."""
        grid = self._engine.heatmap_grid(t, bounds, nx=nx, ny=ny, method="model-cover")
        return Heatmap(grid=grid, bounds=bounds)

    def centroid_markers(self, t: float) -> List[CentroidMarker]:
        """The emitting points: Ad-KMN centroids with their levels.

        The cover comes from the engine's snapshot-pinned processor path
        (epoch-keyed ProcessorCache), never from a direct
        ``builder.cover`` call: the read is pinned to one coherent
        (stamp, batch) capture under concurrent ingest, and repeated
        heatmap renders of the same sealed window reuse the cached fit
        instead of refitting Ad-KMN per request.
        """
        c = self._engine.window_for_time(t)
        processor = self._engine.processor("model-cover", c)
        cover: ModelCover = processor.cover
        markers: List[CentroidMarker] = []
        for (cx, cy), model in zip(cover.centroids, cover.models):
            value = max(float(model.predict(t, cx, cy)), 0.0)
            level = classify_co2(value)
            markers.append(
                CentroidMarker(
                    x=float(cx),
                    y=float(cy),
                    co2_ppm=value,
                    level=level,
                    color=color_for_level(level),
                )
            )
        return markers
