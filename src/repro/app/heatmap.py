"""Heatmap rendering (Section 3, Figure 5(b)).

"The emitting points are the centroids computed by the Ad-KMN algorithm
with its pollution level.  The points are colored in a scale going from
acceptable (green) to dangerous to human health (red)."

A :class:`Heatmap` wraps a value grid over a bounding box; renderers turn
it into an ASCII picture (for terminals/tests), a binary PPM image (no
external imaging dependency), or an RGB matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.geo.coords import BoundingBox

# Green -> yellow -> red ramp, matching the app's acceptable→dangerous scale.
_RAMP: Tuple[Tuple[float, Tuple[int, int, int]], ...] = (
    (0.00, (46, 204, 64)),
    (0.35, (163, 217, 119)),
    (0.55, (255, 220, 0)),
    (0.75, (255, 133, 27)),
    (1.00, (255, 65, 54)),
)

_ASCII_LEVELS = " .:-=+*#%@"


@dataclass
class Heatmap:
    """A value grid with geography attached.

    ``grid`` has shape (ny, nx); row 0 is the *south* edge (min_y).  NaN
    cells mean "no data" and render as blanks / grey.
    """

    grid: np.ndarray
    bounds: BoundingBox

    def __post_init__(self) -> None:
        self.grid = np.asarray(self.grid, dtype=np.float64)
        if self.grid.ndim != 2:
            raise ValueError("heatmap grid must be 2-D")

    @property
    def shape(self) -> Tuple[int, int]:
        return self.grid.shape

    def value_range(self) -> Tuple[float, float]:
        """(min, max) over non-NaN cells; raises when fully empty."""
        finite = self.grid[np.isfinite(self.grid)]
        if not len(finite):
            raise ValueError("heatmap has no data")
        return float(np.min(finite)), float(np.max(finite))

    def normalised(
        self, vmin: Optional[float] = None, vmax: Optional[float] = None
    ) -> np.ndarray:
        """Grid scaled into [0, 1] (NaN preserved)."""
        lo, hi = self.value_range()
        lo = lo if vmin is None else vmin
        hi = hi if vmax is None else vmax
        if hi <= lo:
            return np.where(np.isfinite(self.grid), 0.5, np.nan)
        return np.clip((self.grid - lo) / (hi - lo), 0.0, 1.0)

    def cell_center(self, i: int, j: int) -> Tuple[float, float]:
        """World coordinates of cell column ``i``, row ``j``."""
        ny, nx = self.grid.shape
        fx = 0.5 if nx == 1 else i / (nx - 1)
        fy = 0.5 if ny == 1 else j / (ny - 1)
        return (
            self.bounds.min_x + fx * self.bounds.width,
            self.bounds.min_y + fy * self.bounds.height,
        )


def _ramp_color(v: float) -> Tuple[int, int, int]:
    """Linear interpolation through the green→red ramp."""
    if v <= _RAMP[0][0]:
        return _RAMP[0][1]
    for (f0, c0), (f1, c1) in zip(_RAMP, _RAMP[1:]):
        if v <= f1:
            span = f1 - f0
            t = 0.0 if span <= 0 else (v - f0) / span
            return tuple(int(round(a + t * (b - a))) for a, b in zip(c0, c1))
    return _RAMP[-1][1]


_RAMP_STOPS = np.array([f for f, _ in _RAMP])
_RAMP_RGB = np.array([c for _, c in _RAMP], dtype=np.float64)


def colorize(heatmap: Heatmap) -> np.ndarray:
    """(ny, nx, 3) uint8 RGB image; NaN cells are grey.

    Vectorised: one ``np.interp`` per channel over the whole grid instead
    of a per-cell ramp walk — the batched heatmap path renders 1200-cell
    grids, so the colour pass should not reintroduce a scalar loop.
    """
    norm = heatmap.normalised()
    finite = np.isfinite(norm)
    v = np.where(finite, norm, 0.0)
    out = np.empty(norm.shape + (3,), dtype=np.uint8)
    for ch in range(3):
        out[..., ch] = np.rint(
            np.interp(v, _RAMP_STOPS, _RAMP_RGB[:, ch])
        ).astype(np.uint8)
    out[~finite] = 128
    return out


def render_ascii(heatmap: Heatmap) -> str:
    """Terminal rendering: one character per cell, north at the top."""
    norm = heatmap.normalised()
    ny, nx = norm.shape
    lines: List[str] = []
    for j in reversed(range(ny)):  # row 0 is south; print north first
        chars = []
        for i in range(nx):
            v = norm[j, i]
            if not np.isfinite(v):
                chars.append(" ")
            else:
                idx = min(int(v * len(_ASCII_LEVELS)), len(_ASCII_LEVELS) - 1)
                chars.append(_ASCII_LEVELS[idx])
        lines.append("".join(chars))
    return "\n".join(lines)


def render_ppm(heatmap: Heatmap, path: Union[str, Path]) -> None:
    """Write a binary PPM (P6) image — viewable anywhere, zero deps."""
    rgb = colorize(heatmap)
    ny, nx, _ = rgb.shape
    # Flip vertically: PPM rows go top-down, our row 0 is the south edge.
    flipped = rgb[::-1]
    header = f"P6\n{nx} {ny}\n255\n".encode("ascii")
    Path(path).write_bytes(header + flipped.tobytes())
