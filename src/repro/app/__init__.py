"""Demo application layer (Section 3).

Simulated equivalents of the two demo artefacts:

* :mod:`repro.app.android` — the Android app session: current-position
  CO2 readout, route recording with OSHA verdicts, user settings;
* :mod:`repro.app.webapp`  — the web interface's three modes: point
  query, continuous query over a clicked route, heatmap visualisation;
* :mod:`repro.app.heatmap` — heatmap rendering (value grid → colour
  matrix / ASCII / PPM image).
"""

from repro.app.android import AndroidSession
from repro.app.heatmap import Heatmap, render_ascii, render_ppm
from repro.app.settings import AppSettings
from repro.app.webapp import WebInterface

__all__ = [
    "AndroidSession",
    "Heatmap",
    "render_ascii",
    "render_ppm",
    "AppSettings",
    "WebInterface",
]
