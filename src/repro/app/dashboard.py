"""Operator dashboard: platform health at a glance.

The demo shows the *user-facing* interfaces; whoever runs the platform
needs the other side — how skewed the current window is, how hard
Ad-KMN had to work, how stale the served cover is, what clients are
costing the uplink.  This module computes those indicators from the
server's state and renders them as a plain-text panel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.adkmn import AdKMNResult
from repro.data.tuples import TupleBatch
from repro.geo.region import Region
from repro.server.server import EnviroMeterServer


@dataclass(frozen=True)
class SkewIndicators:
    """Geo-temporal skew of one window (the paper's Section 1 concern)."""

    tuple_count: int
    covered_area_fraction: float     # sensed cells / region cells
    largest_gap_s: float             # longest silence inside the window
    tuples_per_model: float          # data support per sub-region

    @property
    def is_sparse(self) -> bool:
        return self.covered_area_fraction < 0.25 or self.tuple_count < 40


def skew_indicators(
    window: TupleBatch,
    region: Region,
    result: Optional[AdKMNResult] = None,
    cell_m: float = 500.0,
) -> SkewIndicators:
    """Quantify the window's geo-temporal skew.

    Coverage is measured on a ``cell_m`` grid over the region: the
    fraction of cells containing at least one tuple.  The largest gap is
    the longest time interval without any measurement.
    """
    if not len(window):
        raise ValueError("cannot profile an empty window")
    if cell_m <= 0:
        raise ValueError("cell size must be positive")
    b = region.bounds
    nx = max(int(np.ceil(b.width / cell_m)), 1)
    ny = max(int(np.ceil(b.height / cell_m)), 1)
    ix = np.clip(((window.x - b.min_x) / cell_m).astype(int), 0, nx - 1)
    iy = np.clip(((window.y - b.min_y) / cell_m).astype(int), 0, ny - 1)
    occupied = len(set(zip(ix.tolist(), iy.tolist())))
    gaps = np.diff(np.sort(window.t))
    largest_gap = float(np.max(gaps)) if len(gaps) else 0.0
    per_model = (
        len(window) / result.cover.size if result is not None else float(len(window))
    )
    return SkewIndicators(
        tuple_count=len(window),
        covered_area_fraction=occupied / (nx * ny),
        largest_gap_s=largest_gap,
        tuples_per_model=per_model,
    )


@dataclass(frozen=True)
class CoverHealth:
    """How the current cover is doing."""

    window_c: int
    n_models: int
    worst_error_pct: float
    converged: bool
    valid_until: float
    staleness_s: float               # now - last data timestamp

    @property
    def needs_attention(self) -> bool:
        return not self.converged or self.staleness_s > 4 * 3600.0


def cover_health(result: AdKMNResult, now: float, window: TupleBatch) -> CoverHealth:
    """Health record for a fitted cover at wall-clock ``now``."""
    if not len(window):
        raise ValueError("cannot assess an empty window")
    return CoverHealth(
        window_c=result.cover.window_c,
        n_models=result.cover.size,
        worst_error_pct=result.worst_error_pct,
        converged=result.converged,
        valid_until=result.cover.valid_until,
        staleness_s=max(now - float(window.t[-1]), 0.0),
    )


class Dashboard:
    """Text panel over a running server."""

    def __init__(self, server: EnviroMeterServer, region: Region) -> None:
        self.server = server
        self.region = region

    def render(self, now: float) -> str:
        """One status panel for time ``now``."""
        batch = self.server.db.raw_tuples()
        if not len(batch):
            return "EnviroMeter server: no data ingested yet."
        c = self.server.current_window(now)
        h = self.server.h
        start = c * h
        window = batch.slice(start, min(start + h, len(batch)))
        result = self.server._builder.build(batch, c)  # server-side view
        skew = skew_indicators(window, self.region, result)
        health = cover_health(result, now, window)

        lines: List[str] = []
        lines.append("=== EnviroMeter server status ===")
        lines.append(
            f"data: {len(batch)} tuples ingested; window {c} "
            f"({skew.tuple_count} tuples)"
        )
        lines.append(
            f"skew: {skew.covered_area_fraction:.0%} of region cells sensed, "
            f"largest silence {skew.largest_gap_s / 60:.0f} min"
            + ("  [SPARSE]" if skew.is_sparse else "")
        )
        lines.append(
            f"cover: {health.n_models} models, worst region error "
            f"{health.worst_error_pct:.2f}%"
            + ("" if health.converged else "  [NOT CONVERGED]")
        )
        lines.append(
            f"validity: t_n = {health.valid_until:.0f} "
            f"(staleness {health.staleness_s / 60:.0f} min)"
            + ("  [ATTENTION]" if health.needs_attention else "")
        )
        lines.append(
            f"traffic: {self.server.served_values} value responses, "
            f"{self.server.served_covers} cover downloads"
        )
        return "\n".join(lines)
