"""The Android application, simulated (Section 3, Figure 4).

A scripted session object with the app's demonstrated abilities:

* show the CO2 concentration at the current position,
* record a route and summarise it against OSHA guidance,
* change settings (server address, position update interval, and whether
  to use the model cache).

The session talks to the server exactly like the real app: through a
cellular link with either the baseline or the model-cache strategy, so
everything it does lands in the same traffic ledger the bandwidth
experiment reads.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.app.settings import AppSettings
from repro.client.baseline import BaselineClient
from repro.client.modelcache import ModelCacheClient
from repro.client.osha import describe_co2
from repro.client.routes import RecordedRoute, RouteRecorder
from repro.data.tuples import QueryTuple
from repro.network.link import CellularLink
from repro.network.stats import TrafficStats
from repro.server.server import EnviroMeterServer


class AndroidSession:
    """One run of the EnviroMeter app on a phone."""

    def __init__(
        self,
        server: EnviroMeterServer,
        settings: Optional[AppSettings] = None,
        link: Optional[CellularLink] = None,
    ) -> None:
        self._server = server
        self._link = link or CellularLink()
        self.settings = settings or AppSettings()
        self._client = self._make_client()
        self._recorder: Optional[RouteRecorder] = None
        self._position: Optional[Tuple[float, float]] = None
        self._clock_s = 0.0

    def _make_client(self):
        if self.settings.use_model_cache:
            return ModelCacheClient(self._server, self._link)
        return BaselineClient(self._server, self._link)

    # -- device state -------------------------------------------------------

    @property
    def traffic(self) -> TrafficStats:
        return self._client.stats

    def set_clock(self, t: float) -> None:
        """Set the phone's clock (experiments drive time explicitly)."""
        if t < self._clock_s:
            raise ValueError("clock cannot go backwards")
        self._clock_s = t

    def update_position(self, x: float, y: float) -> None:
        """A GPS fix arrives."""
        self._position = (x, y)

    # -- app features ----------------------------------------------------------

    def current_reading(self) -> Optional[float]:
        """CO2 at the current position ("quickly find the CO2
        concentration at their current position")."""
        if self._position is None:
            raise RuntimeError("no GPS fix yet")
        x, y = self._position
        return self._client.query(QueryTuple(t=self._clock_s, x=x, y=y))

    def current_reading_text(self) -> str:
        value = self.current_reading()
        if value is None:
            return "No pollution data available here."
        return describe_co2(max(value, 0.0))

    def start_route_recording(self, name: str) -> None:
        if self._recorder is not None and self._recorder.recording:
            raise RuntimeError("a route recording is already running")
        self._recorder = RouteRecorder(self._client.query)
        self._recorder.start(name)

    def record_position(self, t: float, x: float, y: float) -> None:
        """Position update while recording (every
        ``settings.position_update_interval_s`` on the real phone)."""
        if self._recorder is None or not self._recorder.recording:
            raise RuntimeError("not recording a route")
        self.set_clock(t)
        self.update_position(x, y)
        self._recorder.update_position(t, x, y)

    def stop_route_recording(self) -> RecordedRoute:
        if self._recorder is None or not self._recorder.recording:
            raise RuntimeError("not recording a route")
        route = self._recorder.stop()
        return route

    # -- settings menu ------------------------------------------------------------

    def apply_settings(self, settings: AppSettings) -> None:
        """Change settings; switching the caching strategy re-creates the
        client (cache state is not carried across strategies)."""
        strategy_changed = settings.use_model_cache != self.settings.use_model_cache
        self.settings = settings
        if strategy_changed:
            self._client = self._make_client()

    def drive_route(
        self,
        waypoints: List[Tuple[float, float]],
        t_start: float,
        duration_s: float,
        name: str = "recorded-route",
    ) -> RecordedRoute:
        """Convenience: record a whole route along waypoints with position
        updates at the configured interval."""
        from repro.query.continuous import uniform_query_tuples, waypoint_trajectory

        interval = self.settings.position_update_interval_s
        count = max(2, int(duration_s / interval) + 1)
        traj = waypoint_trajectory(waypoints, t_start, t_start + duration_s)
        queries = uniform_query_tuples(traj, t_start, interval, count)
        self.start_route_recording(name)
        for q in queries:
            self.record_position(q.t, q.x, q.y)
        return self.stop_route_recording()
