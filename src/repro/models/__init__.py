"""Per-subregion regression models.

The model cover assigns one model ``M_k`` to each sub-region ``R_k``
(Section 2.1).  The paper fits linear regression; it also motivates the
framework with "models (e.g., statistical, non-parametric, etc.)", so the
family is pluggable here: mean, linear, quadratic polynomial, and a
Nadaraya-Watson kernel model all implement the same protocol and can be
ablated inside Ad-KMN.
"""

from repro.models.base import Model, ModelFactory, model_factory, registered_families
from repro.models.errors import (
    CO2_NORMAL_RANGE_PPM,
    approximation_error_pct,
    nrmse_pct,
)
from repro.models.kernel import KernelModel
from repro.models.linear import LinearModel
from repro.models.mean import MeanModel
from repro.models.polynomial import PolynomialModel

__all__ = [
    "Model",
    "ModelFactory",
    "model_factory",
    "registered_families",
    "CO2_NORMAL_RANGE_PPM",
    "approximation_error_pct",
    "nrmse_pct",
    "KernelModel",
    "LinearModel",
    "MeanModel",
    "PolynomialModel",
]
