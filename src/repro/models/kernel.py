"""Nadaraya-Watson kernel model — the non-parametric ablation family.

The paper's framework explicitly allows non-parametric models.  This one
keeps a *subsample* of the sub-region's tuples as its "coefficients" and
predicts with a Gaussian-kernel weighted average over them.  Its wire size
grows with the kept sample (3 floats per kept point + bandwidth), so it
sits between the raw data and the parametric models on the memory axis —
the model-family ablation quantifies that trade-off.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.data.tuples import TupleBatch
from repro.models.base import register_family

_MAX_KEPT = 24


class KernelModel:
    """Gaussian Nadaraya-Watson regressor over a kept point sample."""

    family = "kernel"

    __slots__ = ("_px", "_py", "_pv", "_bandwidth_m")

    def __init__(
        self,
        px: Sequence[float],
        py: Sequence[float],
        pv: Sequence[float],
        bandwidth_m: float,
    ) -> None:
        if not (len(px) == len(py) == len(pv)):
            raise ValueError("kept-point arrays must have equal lengths")
        if not len(px):
            raise ValueError("kernel model needs at least one kept point")
        if bandwidth_m <= 0:
            raise ValueError("bandwidth must be positive")
        self._px = np.asarray(px, dtype=np.float64)
        self._py = np.asarray(py, dtype=np.float64)
        self._pv = np.asarray(pv, dtype=np.float64)
        self._bandwidth_m = float(bandwidth_m)

    @classmethod
    def fit(cls, batch: TupleBatch, max_kept: int = _MAX_KEPT) -> "KernelModel":
        """Keep an evenly-spaced subsample and a plug-in bandwidth."""
        if not len(batch):
            raise ValueError("cannot fit a model on an empty batch")
        n = len(batch)
        if n <= max_kept:
            idx = np.arange(n)
        else:
            idx = np.linspace(0, n - 1, max_kept).astype(np.intp)
        px = batch.x[idx]
        py = batch.y[idx]
        pv = batch.s[idx]
        spread = max(float(np.std(batch.x)), float(np.std(batch.y)))
        # Silverman-flavoured plug-in rule, floored to the GPS jitter scale.
        bandwidth = max(spread * (len(idx) ** -0.2), 25.0)
        return cls(px, py, pv, bandwidth)

    def predict(self, t: float, x: float, y: float) -> float:
        return float(self.predict_batch(np.asarray([t]), np.asarray([x]), np.asarray([y]))[0])

    def predict_batch(self, t: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)[..., None]
        y = np.asarray(y, dtype=np.float64)[..., None]
        d2 = (x - self._px) ** 2 + (y - self._py) ** 2
        w = np.exp(-d2 / (2.0 * self._bandwidth_m**2))
        denom = np.sum(w, axis=-1)
        # Far from every kept point the weights underflow; fall back to the
        # kept-sample mean rather than dividing by zero.
        fallback = float(np.mean(self._pv))
        safe = denom > 1e-12
        num = np.sum(w * self._pv, axis=-1)
        out = np.where(safe, num / np.where(safe, denom, 1.0), fallback)
        return out

    def coefficients(self) -> Tuple[float, ...]:
        flat = [self._bandwidth_m, float(len(self._px))]
        flat.extend(float(v) for v in self._px)
        flat.extend(float(v) for v in self._py)
        flat.extend(float(v) for v in self._pv)
        return tuple(flat)

    @classmethod
    def from_coefficients(cls, coeffs: Sequence[float]) -> "KernelModel":
        if len(coeffs) < 5:
            raise ValueError("kernel model expects at least 5 coefficients")
        bandwidth = coeffs[0]
        n = int(coeffs[1])
        if len(coeffs) != 2 + 3 * n:
            raise ValueError(
                f"kernel model with {n} points expects {2 + 3 * n} coefficients, "
                f"got {len(coeffs)}"
            )
        px = coeffs[2 : 2 + n]
        py = coeffs[2 + n : 2 + 2 * n]
        pv = coeffs[2 + 2 * n :]
        return cls(px, py, pv, bandwidth)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"KernelModel(kept={len(self._px)}, h={self._bandwidth_m:.0f}m)"


register_family("kernel", KernelModel.fit, KernelModel.from_coefficients)
