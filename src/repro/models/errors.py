"""Error metrics.

Two metrics appear in the paper:

* **approximation error** (footnote 1, Section 2.1): "the average
  percentage error compared to the normal range of s_i in the environment
  (pollutant specific)" — the Ad-KMN split criterion against τn;
* **NRMSE** (Section 4.1): normalized root-mean-square error, the accuracy
  metric of Figure 6(b).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

CO2_NORMAL_RANGE_PPM: Tuple[float, float] = (350.0, 1000.0)
"""Pollutant-specific normal range for CO2 *in the environment* (footnote
1 of the paper): urban outdoor CO2 spans roughly clean-air background
(~350 ppm) to heavily trafficked street canyons (~1000 ppm).  Note this is
the range the pollutant takes outdoors, not the OSHA occupational limits
(5000 ppm TWA) used by the app's health classification."""


def normal_range_width(normal_range: Tuple[float, float]) -> float:
    lo, hi = normal_range
    if hi <= lo:
        raise ValueError(f"invalid normal range: {normal_range}")
    return hi - lo


def approximation_error_pct(
    predicted: np.ndarray,
    actual: np.ndarray,
    normal_range: Tuple[float, float] = CO2_NORMAL_RANGE_PPM,
) -> float:
    """Average percentage error relative to the pollutant's normal range.

    ``mean(|prediction - actual|) / (range width) * 100`` — exactly the
    footnote-1 definition.  This is what Ad-KMN compares against τn.
    """
    predicted = np.asarray(predicted, dtype=np.float64)
    actual = np.asarray(actual, dtype=np.float64)
    if predicted.shape != actual.shape:
        raise ValueError("predicted and actual must have the same shape")
    if not predicted.size:
        raise ValueError("cannot compute error of zero predictions")
    width = normal_range_width(normal_range)
    return float(np.mean(np.abs(predicted - actual)) / width * 100.0)


def nrmse_pct(predicted: np.ndarray, actual: np.ndarray) -> float:
    """Normalized RMSE in percent: RMSE / (max(actual) - min(actual)) * 100.

    Range-normalisation is the standard NRMSE convention and matches the
    0-21 % scale of Figure 6(b).  Raises when the actual values are all
    identical (normalisation undefined).
    """
    predicted = np.asarray(predicted, dtype=np.float64)
    actual = np.asarray(actual, dtype=np.float64)
    if predicted.shape != actual.shape:
        raise ValueError("predicted and actual must have the same shape")
    if not predicted.size:
        raise ValueError("cannot compute NRMSE of zero predictions")
    spread = float(np.max(actual) - np.min(actual))
    if spread <= 0.0:
        raise ValueError("NRMSE undefined: actual values have zero spread")
    rmse = float(np.sqrt(np.mean((predicted - actual) ** 2)))
    return rmse / spread * 100.0


def rmse(predicted: np.ndarray, actual: np.ndarray) -> float:
    """Plain RMSE (ppm), used by ablations that compare absolute error."""
    predicted = np.asarray(predicted, dtype=np.float64)
    actual = np.asarray(actual, dtype=np.float64)
    if predicted.shape != actual.shape:
        raise ValueError("predicted and actual must have the same shape")
    if not predicted.size:
        raise ValueError("cannot compute RMSE of zero predictions")
    return float(np.sqrt(np.mean((predicted - actual) ** 2)))
