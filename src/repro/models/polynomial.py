"""Quadratic polynomial model — an ablation family.

``s = b0 + b1 u + b2 v + b3 u^2 + b4 v^2 + b5 uv`` on normalised, centred
spatial coordinates.  Like the linear family it is purely spatial (see
:mod:`repro.models.linear` for why time terms are excluded).  More
expressive than the paper's linear model at ~1.7x the wire size; the
model ablation benchmark measures whether the extra terms pay for
themselves.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.data.tuples import TupleBatch
from repro.models.base import register_family

_N_BETA = 6


class PolynomialModel:
    """Second-order spatial model, centred and scale-normalised."""

    family = "poly2"

    __slots__ = ("_b", "_x0", "_y0", "_scale")

    def __init__(
        self, b: Sequence[float], x0: float, y0: float, scale: float
    ) -> None:
        b = tuple(float(v) for v in b)
        if len(b) != _N_BETA:
            raise ValueError(f"poly2 model expects {_N_BETA} betas, got {len(b)}")
        if scale <= 0:
            raise ValueError("scale must be positive")
        self._b = b
        self._x0 = float(x0)
        self._y0 = float(y0)
        self._scale = float(scale)

    @classmethod
    def fit(cls, batch: TupleBatch) -> "PolynomialModel":
        if not len(batch):
            raise ValueError("cannot fit a model on an empty batch")
        x0 = float(np.mean(batch.x))
        y0 = float(np.mean(batch.y))
        # Normalise coordinates to O(1) so the quadratic terms do not blow
        # up the condition number.
        spread = max(float(np.std(batch.x)), float(np.std(batch.y)), 1.0)
        u = (batch.x - x0) / spread
        v = (batch.y - y0) / spread
        design = np.column_stack((np.ones(len(batch)), u, v, u * u, v * v, u * v))
        beta, *_ = np.linalg.lstsq(design, batch.s, rcond=None)
        return cls(beta, x0, y0, spread)

    def predict(self, t: float, x: float, y: float) -> float:
        return float(
            self.predict_batch(np.asarray([t]), np.asarray([x]), np.asarray([y]))[0]
        )

    def predict_batch(self, t: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        u = (np.asarray(x, dtype=np.float64) - self._x0) / self._scale
        v = (np.asarray(y, dtype=np.float64) - self._y0) / self._scale
        b = self._b
        return b[0] + b[1] * u + b[2] * v + b[3] * u * u + b[4] * v * v + b[5] * u * v

    def coefficients(self) -> Tuple[float, ...]:
        return self._b + (self._x0, self._y0, self._scale)

    @classmethod
    def from_coefficients(cls, coeffs: Sequence[float]) -> "PolynomialModel":
        expected = _N_BETA + 3
        if len(coeffs) != expected:
            raise ValueError(
                f"poly2 model expects {expected} coefficients, got {len(coeffs)}"
            )
        return cls(coeffs[:_N_BETA], coeffs[-3], coeffs[-2], coeffs[-1])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PolynomialModel(b={self._b})"


register_family("poly2", PolynomialModel.fit, PolynomialModel.from_coefficients)
