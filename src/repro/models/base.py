"""The model protocol and the family registry.

A model is fitted on the tuples of one sub-region and later evaluated at
arbitrary query positions.  Models must also expose their coefficient
vector — that is what the model-cache protocol ships to the smartphone
(Section 2.3: "the coefficients of all the models in M") — and be
reconstructible from it on the client side.
"""

from __future__ import annotations

from typing import Callable, Dict, Protocol, Sequence, Tuple, runtime_checkable

import numpy as np

from repro.data.tuples import TupleBatch


@runtime_checkable
class Model(Protocol):
    """Structural type for all per-subregion models."""

    family: str

    def predict(self, t: float, x: float, y: float) -> float:
        """Interpolated sensor value at one space-time point."""
        ...

    def predict_batch(self, t: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Vectorised prediction."""
        ...

    def coefficients(self) -> Tuple[float, ...]:
        """The flat coefficient vector shipped over the wire."""
        ...


ModelFactory = Callable[[TupleBatch], Model]
"""A callable fitting a model of some family on a window of tuples."""

_REGISTRY: Dict[str, ModelFactory] = {}
_REBUILDERS: Dict[str, Callable[[Sequence[float]], Model]] = {}


def register_family(
    name: str,
    fit: ModelFactory,
    rebuild: Callable[[Sequence[float]], Model],
) -> None:
    """Register a model family under ``name``.

    ``fit`` trains from tuples (server side); ``rebuild`` reconstructs from
    a received coefficient vector (client side).
    """
    if name in _REGISTRY:
        raise ValueError(f"model family {name!r} already registered")
    _REGISTRY[name] = fit
    _REBUILDERS[name] = rebuild


def model_factory(family: str) -> ModelFactory:
    """The fitting function for a registered family."""
    try:
        return _REGISTRY[family]
    except KeyError:
        raise KeyError(
            f"unknown model family {family!r}; known: {sorted(_REGISTRY)}"
        ) from None


def rebuild_model(family: str, coefficients: Sequence[float]) -> Model:
    """Reconstruct a model from its wire coefficients."""
    try:
        rebuild = _REBUILDERS[family]
    except KeyError:
        raise KeyError(
            f"unknown model family {family!r}; known: {sorted(_REBUILDERS)}"
        ) from None
    return rebuild(coefficients)


def registered_families() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))
