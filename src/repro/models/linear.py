"""Linear regression model — the paper's choice (Section 2.1).

``s(x, y) = b0 + b1*x + b2*y`` fitted by least squares on the
sub-region's tuples (Figure 2 fits the regression on positions).  The
model is purely *spatial*: temporal change of the phenomenon is handled
by re-learning the cover every window W_c, not by extrapolating a time
slope — a time term fitted on the few minutes a bus spends inside one
sub-region would be wildly unconstrained hours later.

Coordinates are centred on the sub-region before fitting, which keeps the
normal equations well-conditioned for metre-scale magnitudes; the
centring offsets are part of the coefficient vector so the client can
rebuild the model exactly.  Three regression coefficients + two centring
offsets = 5 floats on the wire, versus ``4 * |R_k|`` floats for the raw
tuples they replace — the source of the memory and bandwidth wins in
Figures 7(a) and 7(b).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.data.tuples import TupleBatch
from repro.models.base import register_family


class LinearModel:
    """First-order spatial model in (x, y), centred at (x0, y0)."""

    family = "linear"

    __slots__ = ("_b", "_x0", "_y0")

    def __init__(self, b: Sequence[float], x0: float, y0: float) -> None:
        b = tuple(float(v) for v in b)
        if len(b) != 3:
            raise ValueError(f"linear model expects 3 betas, got {len(b)}")
        self._b = b
        self._x0 = float(x0)
        self._y0 = float(y0)

    #: Ridge penalty on the slope terms (not the intercept), in units of
    #: squared metres per tuple.  Community-sensed tuples lie along roads,
    #: i.e. nearly collinear point sets: the road-perpendicular gradient
    #: of an unregularised plane is then fixed by GPS noise over a ~10 m
    #: baseline and explodes when evaluated a few hundred metres off the
    #: road.  A penalty of (20 m)^2 per tuple swamps exactly that noise
    #: baseline while shrinking a well-constrained gradient (spread of
    #: hundreds of metres) by only a few percent.
    RIDGE_M2_PER_TUPLE = 400.0

    @classmethod
    def fit(cls, batch: TupleBatch) -> "LinearModel":
        """Ridge-regularised least-squares fit on a window of tuples.

        With fewer than 3 tuples (or a rank-deficient design, e.g. all
        tuples at one position) the slopes shrink to zero and the model
        degrades gracefully into the region mean instead of failing.
        """
        if not len(batch):
            raise ValueError("cannot fit a model on an empty batch")
        x0 = float(np.mean(batch.x))
        y0 = float(np.mean(batch.y))
        n = len(batch)
        design = np.column_stack(
            (
                np.ones(n),
                batch.x - x0,
                batch.y - y0,
            )
        )
        # Normal equations with a ridge on the slope coefficients only.
        gram = design.T @ design
        lam = cls.RIDGE_M2_PER_TUPLE * n
        gram[1, 1] += lam
        gram[2, 2] += lam
        rhs = design.T @ batch.s
        beta = np.linalg.solve(gram, rhs)
        return cls(beta, x0, y0)

    def predict(self, t: float, x: float, y: float) -> float:
        b0, b1, b2 = self._b
        return b0 + b1 * (x - self._x0) + b2 * (y - self._y0)

    def predict_batch(self, t: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        b0, b1, b2 = self._b
        return (
            b0
            + b1 * (np.asarray(x, dtype=np.float64) - self._x0)
            + b2 * (np.asarray(y, dtype=np.float64) - self._y0)
        )

    def coefficients(self) -> Tuple[float, ...]:
        return self._b + (self._x0, self._y0)

    @classmethod
    def from_coefficients(cls, coeffs: Sequence[float]) -> "LinearModel":
        if len(coeffs) != 5:
            raise ValueError(f"linear model expects 5 coefficients, got {len(coeffs)}")
        return cls(coeffs[:3], coeffs[3], coeffs[4])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LinearModel(b={self._b})"


register_family("linear", LinearModel.fit, LinearModel.from_coefficients)
