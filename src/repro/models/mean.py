"""Constant (mean) model — the simplest family.

Predicts the window mean everywhere in its sub-region.  One coefficient
on the wire.  Serves as the ablation floor: Ad-KMN with mean models needs
many more sub-regions to reach the same τn than with linear models.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.data.tuples import TupleBatch
from repro.models.base import register_family


class MeanModel:
    """``s(t, x, y) = c``."""

    family = "mean"

    __slots__ = ("_c",)

    def __init__(self, c: float) -> None:
        self._c = float(c)

    @classmethod
    def fit(cls, batch: TupleBatch) -> "MeanModel":
        if not len(batch):
            raise ValueError("cannot fit a model on an empty batch")
        return cls(float(np.mean(batch.s)))

    def predict(self, t: float, x: float, y: float) -> float:
        return self._c

    def predict_batch(self, t: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        shape = np.broadcast(np.asarray(t), np.asarray(x), np.asarray(y)).shape
        return np.full(shape, self._c, dtype=np.float64)

    def coefficients(self) -> Tuple[float, ...]:
        return (self._c,)

    @classmethod
    def from_coefficients(cls, coeffs: Sequence[float]) -> "MeanModel":
        if len(coeffs) != 1:
            raise ValueError(f"mean model expects 1 coefficient, got {len(coeffs)}")
        return cls(coeffs[0])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MeanModel(c={self._c:.2f})"


register_family("mean", MeanModel.fit, MeanModel.from_coefficients)
