"""The naive method (Section 2.2).

"The server does an exhaustive search in the window W_c to find all the
raw tuples that are in a radius r centered at (x_l, y_l).  Then the
interpolated value ŝ_l is computed as the average value of the sensor
values s_i found in the radius r."

The scan is a per-tuple Python loop on purpose: this reproduces the cost
profile of the paper's Python implementation (Section 4.1: "the naive and
the model cover methods are implemented using Python"), which is what the
efficiency figure compares against.
"""

from __future__ import annotations

from repro.data.tuples import QueryTuple, TupleBatch
from repro.query.base import QueryResult


class NaiveProcessor:
    """Exhaustive radius search over one window of raw tuples."""

    name = "naive"

    def __init__(self, window: TupleBatch, radius_m: float = 1000.0) -> None:
        if radius_m < 0:
            raise ValueError("radius must be non-negative")
        self._window = window
        self._radius = radius_m
        # Materialise plain Python lists once; scanning numpy arrays
        # element-wise would pay boxing costs per access instead.
        self._xs = window.x.tolist()
        self._ys = window.y.tolist()
        self._ss = window.s.tolist()

    @property
    def radius_m(self) -> float:
        return self._radius

    @property
    def window(self) -> TupleBatch:
        return self._window

    def process(self, query: QueryTuple) -> QueryResult:
        r2 = self._radius * self._radius
        qx, qy = query.x, query.y
        total = 0.0
        count = 0
        xs, ys, ss = self._xs, self._ys, self._ss
        for i in range(len(xs)):
            dx = xs[i] - qx
            dy = ys[i] - qy
            if dx * dx + dy * dy <= r2:
                total += ss[i]
                count += 1
        if not count:
            return QueryResult(query=query, value=None, support=0)
        return QueryResult(query=query, value=total / count, support=count)
