"""The naive method (Section 2.2).

"The server does an exhaustive search in the window W_c to find all the
raw tuples that are in a radius r centered at (x_l, y_l).  Then the
interpolated value ŝ_l is computed as the average value of the sensor
values s_i found in the radius r."

The scan is a per-tuple Python loop on purpose: this reproduces the cost
profile of the paper's Python implementation (Section 4.1: "the naive and
the model cover methods are implemented using Python"), which is what the
efficiency figure compares against.
"""

from __future__ import annotations

import numpy as np

from repro.data.tuples import QueryTuple, TupleBatch
from repro.query.base import BatchResult, QueryBatch, QueryResult

# Cap on the pairwise distance-matrix footprint of one vectorised chunk
# (queries x window tuples, float64).  64 MiB keeps the hot loop inside
# typical L3 + page-cache comfort while still amortising numpy dispatch.
_MAX_CHUNK_CELLS = 8_000_000


class NaiveProcessor:
    """Exhaustive radius search over one window of raw tuples."""

    name = "naive"

    def __init__(self, window: TupleBatch, radius_m: float = 1000.0) -> None:
        if radius_m < 0:
            raise ValueError("radius must be non-negative")
        self._window = window
        self._radius = radius_m
        # Materialise plain Python lists once; scanning numpy arrays
        # element-wise would pay boxing costs per access instead.
        self._xs = window.x.tolist()
        self._ys = window.y.tolist()
        self._ss = window.s.tolist()

    @property
    def radius_m(self) -> float:
        return self._radius

    @property
    def window(self) -> TupleBatch:
        return self._window

    def process(self, query: QueryTuple) -> QueryResult:
        r2 = self._radius * self._radius
        qx, qy = query.x, query.y
        total = 0.0
        count = 0
        xs, ys, ss = self._xs, self._ys, self._ss
        for i in range(len(xs)):
            dx = xs[i] - qx
            dy = ys[i] - qy
            if dx * dx + dy * dy <= r2:
                total += ss[i]
                count += 1
        if not count:
            return QueryResult(query=query, value=None, support=0)
        return QueryResult(query=query, value=total / count, support=count)

    def process_batch(self, queries: QueryBatch) -> BatchResult:
        """Vectorised exhaustive search: one distance matrix per chunk.

        Same semantics as :meth:`process` (boundary tuples at distance
        exactly ``r`` included; zero hits -> unanswered), but the radius
        test for a chunk of queries against the whole window is a single
        ``(m, n)`` numpy expression instead of ``m * n`` interpreted
        iterations.  Chunking bounds peak memory for huge query batches.
        """
        m = len(queries)
        n = len(self._window)
        values = np.full(m, np.nan)
        support = np.zeros(m, dtype=np.int64)
        if m == 0 or n == 0:
            return BatchResult(queries, values, support, answered=support > 0)
        wx, wy, ws = self._window.x, self._window.y, self._window.s
        r2 = self._radius * self._radius
        chunk = max(1, _MAX_CHUNK_CELLS // n)
        for start in range(0, m, chunk):
            stop = min(start + chunk, m)
            qx = queries.x[start:stop, None]
            qy = queries.y[start:stop, None]
            inside = (wx[None, :] - qx) ** 2 + (wy[None, :] - qy) ** 2 <= r2
            counts = inside.sum(axis=1)
            totals = inside @ ws
            hit = counts > 0
            support[start:stop] = counts
            values[start:stop][hit] = totals[hit] / counts[hit]
        # Explicit mask: a NaN sensor value averages to NaN but the query
        # *was* answered, exactly as the scalar path reports it.
        return BatchResult(queries, values, support, answered=support > 0)
