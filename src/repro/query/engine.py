"""The query engine: a thin shell over the unified plan pipeline.

Ties together the pieces of Figure 3's server region: given the raw tuple
stream and a window convention, it materialises any of the four processor
kinds for a window, answers point queries, and renders heatmap grids —
the three modes of the web interface (Section 3).

Since the plan-pipeline refactor every request is compiled into the
shared plan IR (``repro/query/pipeline``): the engine pins an
:class:`~repro.query.pipeline.binding.EngineBinding` snapshot of its
stream, builds one scatter-shaped plan (one op per window group), and
runs it through the shared :class:`~repro.query.pipeline.executor.PlanExecutor`.
Materialised processors live in the one epoch-keyed
:class:`~repro.query.pipeline.cache.ProcessorCache`, ``method="auto"``
consults the single statistics-backed
:class:`~repro.query.pipeline.planner.PipelinePlanner`, and observed op
timings flow back into the planner's feedback loop.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Sequence

import numpy as np

from repro.core.adkmn import AdKMNConfig
from repro.core.builder import CoverBuilder
from repro.data.tuples import QueryTuple, TupleBatch
from repro.data.windows import touched_windows, window, windows_for_times
from repro.geo.coords import BoundingBox
from repro.query.base import (
    BatchResult,
    PointQueryProcessor,
    QueryBatch,
    QueryResult,
)
from repro.query.executor import BatchExecutor, QueryGroup
from repro.query.indexed import IndexedProcessor
from repro.query.modelcover import ModelCoverProcessor
from repro.query.naive import NaiveProcessor
from repro.query.pipeline.binding import EngineBinding
from repro.query.pipeline.cache import CacheStats, ProcessorCache
from repro.query.pipeline.executor import PlanExecutor, PlanRuntime, build_group_plan
from repro.query.pipeline.plan import (
    ENGINE_POLICY,
    SCALAR_POLICY,
    VECTORISED_POLICY,
    ExecutionPlan,
    ExecutionPolicy,
    PlanReport,
    PruneStats,
)
from repro.storage.sketch import WindowSketch
from repro.query.pipeline.planner import PipelinePlanner, PlannerFeedback
from repro.query.planner import QueryProfile

METHODS = ("naive", "rtree", "strtree", "vptree", "grid", "kdtree", "model-cover")

DEFAULT_PROCESSOR_CACHE_CAPACITY = 64
"""Default bound on cached ``(method, window)`` processors.

Sized for a day of 4-hour windows across all seven methods plus headroom;
a long-running server sweeping months of windows stays bounded instead of
accreting one index/cover per window it ever touched.
"""

MIN_PARALLEL_QUERIES = ENGINE_POLICY.min_parallel_queries
"""Below this many queries in a stream, groups run serially (see
:class:`~repro.query.pipeline.plan.ExecutionPolicy`)."""

MIN_VECTORISED_GROUP = ENGINE_POLICY.min_vectorised_group
"""Below this many queries in a group, the scalar loop answers it (see
:class:`~repro.query.pipeline.plan.ExecutionPolicy`)."""


class QueryEngine:
    """Answers point/continuous/heatmap queries over a tuple stream.

    ``cache_capacity`` bounds the processor cache (LRU eviction);
    ``max_workers`` caps the thread pool continuous-query groups fan out
    on (default: one worker per CPU, see :mod:`repro.query.executor` for
    the thread-safety contract and sizing guidance); ``profile``
    parameterises the planner behind ``method="auto"``.
    """

    def __init__(
        self,
        batch: TupleBatch,
        h: int = 240,
        radius_m: float = 1000.0,
        config: Optional[AdKMNConfig] = None,
        cache_capacity: int = DEFAULT_PROCESSOR_CACHE_CAPACITY,
        max_workers: Optional[int] = None,
        profile: Optional[QueryProfile] = None,
        prune: bool = True,
    ) -> None:
        if not len(batch):
            raise ValueError("query engine needs a non-empty tuple stream")
        self._batch = batch
        self.h = h
        self.radius_m = radius_m
        # Plan-time pruning of raw-data window groups whose zone map
        # proves every query disk empty (whole groups only — answers
        # stay byte-identical).  Window sketches live in their own small
        # epoch-keyed cache: sealed-window sketches are immutable, and
        # sketch entries must never compete with the expensive
        # index/cover processors for LRU slots.
        self.prune = prune
        self._prune_stats = PruneStats()
        self._sketch_cache = ProcessorCache(max(cache_capacity, 256))
        self._builder = CoverBuilder(h, config=config, mode="count")
        # The one epoch-keyed processor cache, keyed (method, window) and
        # stamped with the window's content epoch (see refresh): an entry
        # whose stamp lags is stale — built on a shorter prefix of a
        # still-open window — and is rebuilt in place instead of served.
        self._cache = ProcessorCache(cache_capacity)
        self._executor = BatchExecutor(max_workers=max_workers)
        self._refresh_lock = threading.RLock()
        self._epoch = 0
        self._window_epochs: dict = {}
        # Frozen copy of _window_epochs handed to bindings, rebuilt once
        # per refresh epoch — point queries must not pay an O(windows)
        # dict copy per call on a long-lived engine.
        self._epochs_view: Optional[dict] = None
        self.profile = profile or QueryProfile(radius_m=radius_m)
        # The planner keeps verdicts in its own epoch-keyed store so
        # they never evict processors out of the engine cache.
        self._planner = PipelinePlanner(
            self.profile,
            config=config,
            radius_m=radius_m,
            feedback=PlannerFeedback(),
        )

    @property
    def batch(self) -> TupleBatch:
        return self._batch

    @property
    def epoch(self) -> int:
        """Monotone refresh epoch: +1 per :meth:`refresh` that grew the
        stream (0 for an engine that never refreshed)."""
        return self._epoch

    def window_stamp(self, c: int) -> int:
        """Content stamp of window ``c``: the epoch of the refresh that
        last grew it (0 = unchanged since construction).  Frozen once the
        window seals."""
        return self._window_epochs.get(int(c), 0)

    def refresh(self, batch: TupleBatch) -> int:
        """Adopt a longer snapshot of the same append-only stream.

        For owners that keep one engine alive over a growing stream (the
        pattern ``tests/test_cache_stress.py`` stress-tests): cached
        processors for the windows the growth touched are invalidated
        epoch-wise (their stamps advance, so the stale entries can never
        be served again — they are rebuilt on next demand), while
        processors over untouched windows stay hot.  Safe to call while
        reader threads query; each reader keeps the batch/processors it
        already picked up.  Returns the new engine epoch.

        Coherence: :meth:`processor` and :meth:`binding` capture their
        ``(stamp, batch)`` pairs under this same lock, so a racing
        refresh can never produce a mixed pair (fresh stamp with stale
        rows, or stale stamp with fresh rows) — either of which would
        let the shared cache serve a processor built on different rows
        than the caller's pinned snapshot.
        """
        with self._refresh_lock:
            old_n = len(self._batch)
            if len(batch) < old_n:
                raise ValueError(
                    "refresh requires an extension of the current stream "
                    f"(got {len(batch)} rows, have {old_n})"
                )
            if len(batch) == old_n:
                return self._epoch
            self._batch = batch
            self._epoch += 1
            for c in touched_windows(old_n, len(batch) - old_n, self.h):
                self._window_epochs[int(c)] = self._epoch
                self._builder.invalidate(int(c))  # GC unstamped cover fits
            self._epochs_view = None  # bindings re-copy at the new epoch
            return self._epoch

    @property
    def builder(self) -> CoverBuilder:
        return self._builder

    @property
    def cache_capacity(self) -> int:
        return self._cache.capacity

    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss/evict/stale counters of the processor cache (live)."""
        return self._cache.stats

    @property
    def processor_cache(self) -> ProcessorCache:
        """The engine's epoch-keyed processor cache."""
        return self._cache

    @property
    def planner(self) -> PipelinePlanner:
        """The statistics-backed planner behind ``method="auto"``."""
        return self._planner

    @property
    def prune_stats(self) -> PruneStats:
        """Cumulative scatter-pruning counters across every plan built."""
        return self._prune_stats

    @property
    def executor(self) -> BatchExecutor:
        return self._executor

    def close(self) -> None:
        """Release the parallel-execution worker pool.

        Idempotent.  The engine stays usable for scalar/batched queries
        afterwards; parallel paths lazily recreate the pool on demand."""
        self._executor.shutdown()

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def cached_processor_keys(self) -> List[tuple]:
        """Cache keys in eviction order (least recently used first)."""
        return self._cache.keys()

    def window(self, c: int) -> TupleBatch:
        return window(self._batch, c, self.h)

    def window_for_time(self, t: float) -> int:
        """Index of the latest window whose data does not postdate ``t``.

        Continuous queries at time t are answered from the most recent
        complete window — the server's lazy-update policy.
        """
        return int(windows_for_times(self._batch.t, (t,), self.h)[0])

    def windows_for_times(self, ts: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`window_for_time` over an array of timestamps."""
        return windows_for_times(self._batch.t, ts, self.h)

    # -- processor materialisation ------------------------------------------

    def _materialise(
        self, method: str, c: int, stamp: int, batch: TupleBatch
    ) -> PointQueryProcessor:
        """Build one processor of ``method`` for window ``c`` of ``batch``."""
        if method == "naive":
            return NaiveProcessor(window(batch, c, self.h), self.radius_m)
        if method == "model-cover":
            return ModelCoverProcessor(
                self._builder.build(batch, c, stamp=stamp).cover
            )
        return IndexedProcessor(window(batch, c, self.h), kind=method, radius_m=self.radius_m)

    def processor(self, method: str, c: int) -> PointQueryProcessor:
        """A processor of the given method over window ``c``.

        Served from the epoch-keyed bounded LRU when possible; a
        materialisation (index build / cover fit) counts as a miss and
        may evict the least recently used processor, which is simply
        rebuilt on next demand.  The whole lookup-or-build runs under the
        cache lock, so concurrent callers never build the same processor
        twice — and an entry built before a :meth:`refresh` grew window
        ``c`` fails its stamp check and is rebuilt rather than served
        stale.
        """
        if method not in METHODS:
            raise ValueError(f"unknown method {method!r}; known: {METHODS}")
        # Read the (stamp, batch) pair under the refresh lock so a racing
        # refresh can never hand us a fresh batch with a stale stamp —
        # caching a processor over post-refresh rows under the old stamp
        # would serve post-pin data to readers still pinned at the old
        # snapshot.  The build itself runs outside this lock.
        with self._refresh_lock:
            stamp = self.window_stamp(c)
            batch = self._batch
        return self._cache.get_or_build(
            (method, c), stamp, lambda: self._materialise(method, c, stamp, batch)
        )

    # -- plan pipeline -------------------------------------------------------

    def binding(self) -> EngineBinding:
        """A pinned snapshot binding over the current stream.

        The stamp map and the batch are captured as one coherent pair
        under the refresh lock, so a refresh racing this call can never
        pair a fresh stamp with a stale batch (which would poison the
        shared processor cache) or a stale stamp with a fresh batch
        (which would let old-snapshot readers see post-pin rows).  The
        stamp map is a frozen copy shared by every binding of the same
        epoch (copied once per refresh, not per request).
        """
        with self._refresh_lock:
            epochs = self._epochs_view
            if epochs is None:
                epochs = dict(self._window_epochs)
                self._epochs_view = epochs
            batch = self._batch
        return EngineBinding(
            batch,
            self.h,
            lambda c, _epochs=epochs: _epochs.get(int(c), 0),
            sketch_provider=self._window_sketch,
        )

    def _window_sketch(self, c: int, stamp: int, sub: TupleBatch) -> WindowSketch:
        """Zone map of the pinned window slice, cached per content epoch.

        The slice handed in is the binding's pinned one, so the computed
        sketch always covers exactly the rows pruning decides over; the
        epoch-keyed cache just makes repeat requests on sealed windows
        (frozen stamps) O(1).
        """
        return self._sketch_cache.get_or_build(
            ("sketch", int(c)), stamp, lambda: WindowSketch.of(sub),
            shared_build=True,
        )

    def plan(
        self,
        queries: Sequence[QueryTuple] | QueryBatch,
        method: str = "model-cover",
        policy: ExecutionPolicy = ENGINE_POLICY,
        want_estimates: bool = False,
        prune: Optional[bool] = None,
        binding: Optional[EngineBinding] = None,
    ) -> ExecutionPlan:
        """Compile a query stream into an execution plan (one op per
        window group) against a freshly pinned snapshot binding.

        ``prune`` overrides the engine's zone-map pruning default for
        this one plan; ``binding`` reuses an externally pinned snapshot
        (the subscription maintenance path, which must build several
        plans against one coherent view) instead of pinning a fresh
        one."""
        if method != "auto" and method not in METHODS:
            raise ValueError(
                f"unknown method {method!r}; known: {METHODS + ('auto',)}"
            )
        batch = (
            queries
            if isinstance(queries, QueryBatch)
            else QueryBatch.from_queries(queries)
        )
        plan = build_group_plan(
            binding if binding is not None else self.binding(),
            batch, method, policy,
            planner=self._planner,
            # An auto model-cover verdict's pricing fit seeds the cover
            # cache, so execution never runs the same fit twice.  The
            # planner's fit covers the same rows with the same config as
            # the builder's (count-mode t_n is the window's last
            # timestamp, the fitter's own default), so the seeded
            # processor is interchangeable with a builder-built one.
            seed_cover=lambda c, stamp, proc: self._cache.insert(
                ("model-cover", c), stamp, proc
            ),
            want_estimates=want_estimates,
            radius_m=self.radius_m,
            prune=self.prune if prune is None else prune,
        )
        self._prune_stats.observe(plan)
        return plan

    def _plan_executor(self, plan: ExecutionPlan) -> PlanExecutor:
        binding = plan.binding

        def materialise(op, bound):
            stamp, _sub, _ = bound
            return self._cache.get_or_build(
                (op.method, op.context.window_c),
                stamp,
                lambda: self._materialise(
                    op.method, op.context.window_c, stamp, binding.batch
                ),
            )

        runtime = PlanRuntime(binding, processor=materialise)
        return PlanExecutor(runtime, pool=self._executor, planner=self._planner)

    def execute(
        self, plan: ExecutionPlan, report: Optional[PlanReport] = None
    ) -> BatchResult:
        """Run a compiled plan through the shared executor."""
        return self._plan_executor(plan).execute(plan, report)

    # -- the three web-interface modes (Section 3) -------------------------

    def point_query(
        self, t: float, x: float, y: float, method: str = "model-cover"
    ) -> QueryResult:
        """Single point query mode: interpolated value at a clicked point."""
        batch = QueryBatch(np.array([t]), np.array([x]), np.array([y]))
        plan = self.plan(batch, method, policy=SCALAR_POLICY)
        return self.execute(plan).result(0)

    def process_groups(
        self, method: str, groups: Sequence[QueryGroup]
    ) -> List[BatchResult]:
        """Run per-window groups through the batched path, in parallel.

        Each group becomes one plan op bound to its window, all ops live
        in a single plan, and the shared executor fans them across the
        worker pool past the parallel threshold — the pre-pipeline
        contract (processors materialised serially in the calling
        thread, one ``process_batch`` per group on the pool) preserved.
        Results come back one :class:`BatchResult` per group, in group
        order.
        """
        if method not in METHODS:
            raise ValueError(f"unknown method {method!r}; known: {METHODS}")
        groups = list(groups)
        if not groups:
            return []
        bounds: List[tuple] = []
        triples: List[tuple] = []
        offset = 0
        for g in groups:
            positions = np.arange(offset, offset + len(g.queries), dtype=np.intp)
            triples.append((g.window_c, positions, g.queries))
            bounds.append((offset, offset + len(g.queries)))
            offset += len(g.queries)
        merged = QueryBatch(
            np.concatenate([g.queries.t for g in groups]),
            np.concatenate([g.queries.x for g in groups]),
            np.concatenate([g.queries.y for g in groups]),
        )
        plan = build_group_plan(
            self.binding(), merged, method, ENGINE_POLICY, groups=triples
        )
        result = self.execute(plan)
        return [
            BatchResult(
                g.queries,
                result.values[lo:hi],
                result.support[lo:hi],
                result.answered[lo:hi],
            )
            for g, (lo, hi) in zip(groups, bounds)
        ]

    def continuous_query(
        self,
        queries: Sequence[QueryTuple],
        method: str = "model-cover",
    ) -> List[QueryResult]:
        """Continuous query mode over a prepared query-tuple stream.

        The stream is compiled into one plan (one op per window group,
        answered by one ``process_batch`` call each; groups run
        concurrently on the executor past the parallel threshold) and
        results come back in stream order, exactly as the scalar loop
        produced them.
        """
        result = self.continuous_query_batch(queries, method=method)
        return result.results()

    def continuous_query_batch(
        self,
        queries: Sequence[QueryTuple] | QueryBatch,
        method: str = "model-cover",
    ) -> BatchResult:
        """Columnar variant of :meth:`continuous_query`."""
        plan = self.plan(queries, method, policy=ENGINE_POLICY)
        return self.execute(plan)

    def heatmap_grid(
        self,
        t: float,
        bounds: BoundingBox,
        nx: int = 40,
        ny: int = 30,
        method: str = "model-cover",
    ) -> np.ndarray:
        """Heatmap visualisation mode: an ``(ny, nx)`` value grid.

        The whole grid is one :class:`QueryBatch` compiled into a
        single-op plan answered by one ``process_batch`` call.  Cells the
        method cannot answer (no data within radius) are NaN; degenerate
        axes (``nx == 1``/``ny == 1``) probe the centre of the box.
        """
        probes = QueryBatch.from_grid(
            t, bounds.min_x, bounds.min_y, bounds.width, bounds.height, nx, ny
        )
        plan = self.plan(probes, method, policy=VECTORISED_POLICY)
        return self.execute(plan).grid(ny, nx)
