"""The query engine: processors bound to a stream + window choice.

Ties together the pieces of Figure 3's server region: given the raw tuple
stream and a window convention, it materialises any of the four processor
kinds for a window, answers point queries, and renders heatmap grids —
the three modes of the web interface (Section 3).

Execution goes through the **batched path** (``repro/query/README.md``):
heatmap grids are one :class:`~repro.query.base.QueryBatch` per grid and
continuous queries are grouped by window and fanned out across a
:class:`~repro.query.executor.BatchExecutor`.  Materialised processors
live in a bounded LRU cache keyed by ``(method, window)``; its
effectiveness counters are a :class:`~repro.eval.timing.CacheStats`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

from repro.core.adkmn import AdKMNConfig
from repro.core.builder import CoverBuilder
from repro.data.tuples import QueryTuple, TupleBatch
from repro.data.windows import touched_windows, window, windows_for_times
from repro.geo.coords import BoundingBox

if TYPE_CHECKING:  # runtime import is deferred: repro.eval pulls in the
    from repro.eval.timing import CacheStats  # server package, which imports us
from repro.query.base import (
    BatchResult,
    PointQueryProcessor,
    QueryBatch,
    QueryResult,
    process_batch,
    process_batch_scalar,
)
from repro.query.executor import (
    BatchExecutor,
    QueryGroup,
    group_queries_by_window,
    scatter_results,
)
from repro.query.indexed import IndexedProcessor
from repro.query.modelcover import ModelCoverProcessor
from repro.query.naive import NaiveProcessor

METHODS = ("naive", "rtree", "strtree", "vptree", "grid", "kdtree", "model-cover")

DEFAULT_PROCESSOR_CACHE_CAPACITY = 64
"""Default bound on cached ``(method, window)`` processors.

Sized for a day of 4-hour windows across all seven methods plus headroom;
a long-running server sweeping months of windows stays bounded instead of
accreting one index/cover per window it ever touched.
"""

MIN_PARALLEL_QUERIES = 512
"""Below this many queries in a stream, groups run serially.

Dispatching a handful of ten-query groups to pool threads costs more in
submission overhead than the numpy work saves; the threshold keeps sparse
continuous streams on the zero-overhead serial loop while dense streams
(many queries per window) fan out.
"""

MIN_VECTORISED_GROUP = 24
"""Below this many queries in a group, the scalar loop answers it.

Vectorised ``process_batch`` pays fixed numpy dispatch (distance-matrix
broadcasts, per-model gathers) that only amortises once a group has a few
dozen queries; under the cutoff the per-query scalar path is faster, and
both paths are equivalent by construction, so this is purely a cost
choice.
"""


class QueryEngine:
    """Answers point/continuous/heatmap queries over a tuple stream.

    ``cache_capacity`` bounds the processor cache (LRU eviction);
    ``max_workers`` caps the thread pool continuous-query groups fan out
    on (default: one worker per CPU, see :mod:`repro.query.executor` for
    the thread-safety contract and sizing guidance).
    """

    def __init__(
        self,
        batch: TupleBatch,
        h: int = 240,
        radius_m: float = 1000.0,
        config: Optional[AdKMNConfig] = None,
        cache_capacity: int = DEFAULT_PROCESSOR_CACHE_CAPACITY,
        max_workers: Optional[int] = None,
    ) -> None:
        if not len(batch):
            raise ValueError("query engine needs a non-empty tuple stream")
        if cache_capacity < 1:
            raise ValueError("cache_capacity must be at least 1")
        self._batch = batch
        self.h = h
        self.radius_m = radius_m
        self._builder = CoverBuilder(h, config=config, mode="count")
        from repro.eval.timing import CacheStats  # deferred: cycle guard

        # (method, window) -> (content stamp, processor).  The stamp is
        # the engine epoch at which the window last gained tuples (see
        # refresh); an entry whose stamp lags the window's current stamp
        # is stale — built on a shorter prefix of a still-open window —
        # and is rebuilt in place instead of served.
        self._processors: "OrderedDict[tuple, tuple]" = OrderedDict()
        self._cache_capacity = cache_capacity
        self._cache_lock = threading.RLock()
        self._cache_stats = CacheStats()
        self._executor = BatchExecutor(max_workers=max_workers)
        self._epoch = 0
        self._window_epochs: dict = {}

    @property
    def batch(self) -> TupleBatch:
        return self._batch

    @property
    def epoch(self) -> int:
        """Monotone refresh epoch: +1 per :meth:`refresh` that grew the
        stream (0 for an engine that never refreshed)."""
        return self._epoch

    def window_stamp(self, c: int) -> int:
        """Content stamp of window ``c``: the epoch of the refresh that
        last grew it (0 = unchanged since construction).  Frozen once the
        window seals."""
        return self._window_epochs.get(int(c), 0)

    def refresh(self, batch: TupleBatch) -> int:
        """Adopt a longer snapshot of the same append-only stream.

        For owners that keep one engine alive over a growing stream (the
        pattern ``tests/test_cache_stress.py`` stress-tests): cached
        processors for the windows the growth touched are invalidated
        epoch-wise (their stamps advance, so the stale entries can never
        be served again — they are rebuilt on next demand), while
        processors over untouched windows stay hot.  Safe to call while
        reader threads query; each reader keeps the batch/processors it
        already picked up.  Returns the new engine epoch.
        """
        with self._cache_lock:
            old_n = len(self._batch)
            if len(batch) < old_n:
                raise ValueError(
                    "refresh requires an extension of the current stream "
                    f"(got {len(batch)} rows, have {old_n})"
                )
            if len(batch) == old_n:
                return self._epoch
            self._epoch += 1
            for c in touched_windows(old_n, len(batch) - old_n, self.h):
                self._window_epochs[int(c)] = self._epoch
                self._builder.invalidate(int(c))  # GC unstamped cover fits
            self._batch = batch
            return self._epoch

    @property
    def builder(self) -> CoverBuilder:
        return self._builder

    @property
    def cache_capacity(self) -> int:
        return self._cache_capacity

    @property
    def cache_stats(self) -> "CacheStats":
        """Hit/miss/eviction counters of the processor cache (live view)."""
        return self._cache_stats

    @property
    def executor(self) -> BatchExecutor:
        return self._executor

    def close(self) -> None:
        """Release the parallel-execution worker pool.

        Idempotent.  The engine stays usable for scalar/batched queries
        afterwards; parallel paths lazily recreate the pool on demand."""
        self._executor.shutdown()

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def cached_processor_keys(self) -> List[tuple]:
        """Cache keys in eviction order (least recently used first)."""
        with self._cache_lock:
            return list(self._processors)

    def window(self, c: int) -> TupleBatch:
        return window(self._batch, c, self.h)

    def window_for_time(self, t: float) -> int:
        """Index of the latest window whose data does not postdate ``t``.

        Continuous queries at time t are answered from the most recent
        complete window — the server's lazy-update policy.
        """
        return int(windows_for_times(self._batch.t, (t,), self.h)[0])

    def windows_for_times(self, ts: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`window_for_time` over an array of timestamps."""
        return windows_for_times(self._batch.t, ts, self.h)

    def processor(self, method: str, c: int) -> PointQueryProcessor:
        """A processor of the given method over window ``c``.

        Served from the bounded LRU cache when possible; a materialisation
        (index build / cover fit) counts as a miss and may evict the least
        recently used processor, which is simply rebuilt on next demand.
        The whole lookup-or-build runs under the cache lock, so concurrent
        callers never build the same processor twice — and an entry built
        before a :meth:`refresh` grew window ``c`` fails its stamp check
        and is rebuilt rather than served stale.
        """
        if method not in METHODS:
            raise ValueError(f"unknown method {method!r}; known: {METHODS}")
        key = (method, c)
        with self._cache_lock:
            stamp = self.window_stamp(c)
            entry = self._processors.get(key)
            if entry is not None and entry[0] == stamp:
                self._processors.move_to_end(key)
                self._cache_stats.record_hit()
                return entry[1]
            self._cache_stats.record_miss()
            if method == "naive":
                proc: PointQueryProcessor = NaiveProcessor(
                    self.window(c), self.radius_m
                )
            elif method == "model-cover":
                proc = ModelCoverProcessor(
                    self._builder.build(self._batch, c, stamp=stamp).cover
                )
            else:
                proc = IndexedProcessor(
                    self.window(c), kind=method, radius_m=self.radius_m
                )
            self._processors[key] = (stamp, proc)
            self._processors.move_to_end(key)
            while len(self._processors) > self._cache_capacity:
                self._processors.popitem(last=False)
                self._cache_stats.record_eviction()
            return proc

    # -- the three web-interface modes (Section 3) -------------------------

    def point_query(
        self, t: float, x: float, y: float, method: str = "model-cover"
    ) -> QueryResult:
        """Single point query mode: interpolated value at a clicked point."""
        c = self.window_for_time(t)
        return self.processor(method, c).process(QueryTuple(t=t, x=x, y=y))

    def process_groups(
        self, method: str, groups: Sequence[QueryGroup]
    ) -> List[BatchResult]:
        """Run per-window groups through the batched path, in parallel.

        Processors are materialised serially first (cache + builder are
        guarded, but serial materialisation keeps miss costs predictable);
        the pool threads then only touch immutable processors.  Streams
        below :data:`MIN_PARALLEL_QUERIES` stay on the serial loop — see
        the constant's rationale.
        """
        procs = [self.processor(method, g.window_c) for g in groups]

        def run_one(pair):
            proc, group = pair
            if len(group.queries) < MIN_VECTORISED_GROUP:
                return process_batch_scalar(proc, group.queries)
            return process_batch(proc, group.queries)

        pairs = list(zip(procs, groups))
        total = sum(len(g.queries) for g in groups)
        if total < MIN_PARALLEL_QUERIES:
            return [run_one(pair) for pair in pairs]
        return self._executor.map(run_one, pairs)

    def continuous_query(
        self,
        queries: Sequence[QueryTuple],
        method: str = "model-cover",
    ) -> List[QueryResult]:
        """Continuous query mode over a prepared query-tuple stream.

        The stream is grouped by window, each group is answered by one
        ``process_batch`` call, and groups run concurrently on the
        executor.  Results come back in stream order, exactly as the
        scalar loop produced them.
        """
        result = self.continuous_query_batch(queries, method=method)
        return result.results()

    def continuous_query_batch(
        self,
        queries: Sequence[QueryTuple] | QueryBatch,
        method: str = "model-cover",
    ) -> BatchResult:
        """Columnar variant of :meth:`continuous_query`."""
        batch = (
            queries
            if isinstance(queries, QueryBatch)
            else QueryBatch.from_queries(queries)
        )
        groups = group_queries_by_window(
            batch, self.window_for_time, windows_for_times=self.windows_for_times
        )
        results = self.process_groups(method, groups)
        if len(groups) == 1:
            return results[0]  # single window: already in stream order
        return scatter_results(groups, results, len(batch))

    def heatmap_grid(
        self,
        t: float,
        bounds: BoundingBox,
        nx: int = 40,
        ny: int = 30,
        method: str = "model-cover",
    ) -> np.ndarray:
        """Heatmap visualisation mode: an ``(ny, nx)`` value grid.

        The whole grid is one :class:`QueryBatch` answered by a single
        ``process_batch`` call.  Cells the method cannot answer (no data
        within radius) are NaN; degenerate axes (``nx == 1``/``ny == 1``)
        probe the centre of the bounding box.
        """
        c = self.window_for_time(t)
        proc = self.processor(method, c)
        probes = QueryBatch.from_grid(
            t, bounds.min_x, bounds.min_y, bounds.width, bounds.height, nx, ny
        )
        return process_batch(proc, probes).grid(ny, nx)
