"""The query engine: processors bound to a stream + window choice.

Ties together the pieces of Figure 3's server region: given the raw tuple
stream and a window convention, it materialises any of the four processor
kinds for a window, answers point queries, and renders heatmap grids —
the three modes of the web interface (Section 3).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.adkmn import AdKMNConfig
from repro.core.builder import CoverBuilder
from repro.data.tuples import QueryTuple, TupleBatch
from repro.data.windows import window
from repro.geo.coords import BoundingBox
from repro.query.base import PointQueryProcessor, QueryResult
from repro.query.indexed import IndexedProcessor
from repro.query.modelcover import ModelCoverProcessor
from repro.query.naive import NaiveProcessor

METHODS = ("naive", "rtree", "strtree", "vptree", "grid", "kdtree", "model-cover")


class QueryEngine:
    """Answers point/continuous/heatmap queries over a tuple stream."""

    def __init__(
        self,
        batch: TupleBatch,
        h: int = 240,
        radius_m: float = 1000.0,
        config: Optional[AdKMNConfig] = None,
    ) -> None:
        if not len(batch):
            raise ValueError("query engine needs a non-empty tuple stream")
        self._batch = batch
        self.h = h
        self.radius_m = radius_m
        self._builder = CoverBuilder(h, config=config, mode="count")
        self._processors: Dict[tuple, PointQueryProcessor] = {}

    @property
    def batch(self) -> TupleBatch:
        return self._batch

    @property
    def builder(self) -> CoverBuilder:
        return self._builder

    def window(self, c: int) -> TupleBatch:
        return window(self._batch, c, self.h)

    def window_for_time(self, t: float) -> int:
        """Index of the latest window whose data does not postdate ``t``.

        Continuous queries at time t are answered from the most recent
        complete window — the server's lazy-update policy.
        """
        pos = int(np.searchsorted(self._batch.t, t, side="right"))
        if pos == 0:
            return 0
        return max(0, (pos - 1) // self.h)

    def processor(self, method: str, c: int) -> PointQueryProcessor:
        """A (cached) processor of the given method over window ``c``."""
        if method not in METHODS:
            raise ValueError(f"unknown method {method!r}; known: {METHODS}")
        key = (method, c)
        if key in self._processors:
            return self._processors[key]
        if method == "naive":
            proc: PointQueryProcessor = NaiveProcessor(self.window(c), self.radius_m)
        elif method == "model-cover":
            proc = ModelCoverProcessor(self._builder.cover(self._batch, c))
        else:
            proc = IndexedProcessor(self.window(c), kind=method, radius_m=self.radius_m)
        self._processors[key] = proc
        return proc

    # -- the three web-interface modes (Section 3) -------------------------

    def point_query(
        self, t: float, x: float, y: float, method: str = "model-cover"
    ) -> QueryResult:
        """Single point query mode: interpolated value at a clicked point."""
        c = self.window_for_time(t)
        return self.processor(method, c).process(QueryTuple(t=t, x=x, y=y))

    def continuous_query(
        self,
        queries,
        method: str = "model-cover",
    ):
        """Continuous query mode over a prepared query-tuple stream."""
        results = []
        for q in queries:
            c = self.window_for_time(q.t)
            results.append(self.processor(method, c).process(q))
        return results

    def heatmap_grid(
        self,
        t: float,
        bounds: BoundingBox,
        nx: int = 40,
        ny: int = 30,
        method: str = "model-cover",
    ) -> np.ndarray:
        """Heatmap visualisation mode: an ``(ny, nx)`` value grid.

        Cells the method cannot answer (no data within radius) are NaN.
        """
        c = self.window_for_time(t)
        proc = self.processor(method, c)
        out = np.full((ny, nx), np.nan)
        for j in range(ny):
            fy = 0.5 if ny == 1 else j / (ny - 1)
            y = bounds.min_y + fy * bounds.height
            for i in range(nx):
                fx = 0.5 if nx == 1 else i / (nx - 1)
                x = bounds.min_x + fx * bounds.width
                res = proc.process(QueryTuple(t=t, x=x, y=y))
                if res.answered:
                    out[j, i] = res.value
        return out
