"""Standing subscriptions with epoch-delta maintenance (Query 1, standing).

The paper's Query 1 is a *standing* continuous query: a mobile object
registers a route once and receives pollution updates as data streams in
(Section 2.2).  This module adds that registration layer over every
query backend the repo already has: a :class:`SubscriptionRegistry`
holds (route, interval, method) standing queries, answers each once at
registration, and thereafter delivers *incremental* updates — only the
query tuples whose answers actually changed, found without re-executing
the untouched ones.

Maintenance is epoch-driven, in three pruning layers:

1. **Epoch gate** — a maintenance pass against a view whose ingest
   epoch, window-cut token and row count are unchanged is *quiet*:
   O(1), no per-subscription work at all.
2. **Window marks** — every window a subscription's query tuples map to
   is registered in an inverted index keyed by the window's *content
   stamp* (the per-window epochs of PR 4).  A pass compares each
   registered window's current ``(stamp, rows)`` mark against the one
   recorded when the stored answers were computed; only subscriptions
   referencing a changed window become candidates — O(distinct
   registered windows) per non-quiet pass, not O(subscriptions).
3. **Delta sketches** — for *exact* methods (naive / index scans), the
   rows appended to a dirty window since its recorded mark are
   summarised by a :class:`~repro.storage.sketch.WindowSketch` zone map
   (the PR 7 pruning machinery).  A query tuple whose radius disk
   provably cannot reach the delta's bounding box kept its answer
   bit-for-bit (the exact gather is purely spatial within the
   responsible window, and existing rows never change), so it is
   skipped without execution.  Model-cover / auto answers depend on the
   whole window's fit, so any content change re-executes the window's
   tuples.

Dirty slices re-execute through the existing plan pipeline against one
pinned snapshot binding — always on the canonical vectorised policy, so
a maintenance subset's answers are byte-identical to a from-scratch
re-execution of the full batch (the per-query exact merge and the
per-point cover evaluation are both independent of which other queries
share the plan).  The replay-oracle suite in
``tests/test_subscriptions.py`` enforces exactly that, and
``benchmarks/bench_subscriptions.py`` gates the quiet-epoch cost.

Window assignment follows the repo's count-window convention
(:func:`repro.data.windows.windows_for_times` over a time-ordered
append-only stream): a query tuple's window can only change while it
maps to the open tail window (or, on the sharded server, while it is
answered by a nearest-populated *fallback* shard).  Such subscriptions
are tracked as *unstable* and re-assigned only when the view's
window-cut token changes — stable subscriptions never pay assignment
again.

Four backends plug in behind one pinned-view protocol:

* :func:`engine_backend` — an unsharded
  :class:`~repro.query.engine.QueryEngine` (any method incl. exact);
* :func:`sharded_engine_backend` — a
  :class:`~repro.query.sharded.ShardedQueryEngine` (exact whenever no
  ingest overlaps the pass; under a free-running writer the unpinned
  mark reads make it eventually consistent, like the sharded server's
  ``handle_with_epoch``);
* :func:`server_backend` / :func:`sharded_server_backend` — the
  EnviroMeter servers (model-cover answers against their pinned
  storage snapshots).

:func:`registry_for` dispatches any of those targets (including the
concurrent/process wrappers) to the right backend.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.query.base import QueryBatch
from repro.query.continuous import uniform_query_tuples, waypoint_trajectory
from repro.storage.sketch import WindowSketch

__all__ = [
    "MaintenanceStats",
    "Subscription",
    "SubscriptionRegistry",
    "SubscriptionSpec",
    "SubscriptionUpdate",
    "engine_backend",
    "registry_for",
    "server_backend",
    "sharded_engine_backend",
    "sharded_server_backend",
]

#: Composite key stride for sharded-server windows: ``key = shard *
#: _SHARD_STRIDE + window`` (windows comfortably fit 32 bits).
_SHARD_STRIDE = 1 << 32

_MISSING = object()


@dataclass(frozen=True)
class SubscriptionSpec:
    """One standing continuous query: a route, a cadence, a method.

    ``route`` follows the web interface's waypoint convention; the
    query-tuple stream is the uniform-interval stream of Query 1 (same
    duration convention as :class:`~repro.client.fleet.FleetMember`:
    ``count * interval_s`` seconds from ``t_start``).  ``method=None``
    picks the backend's default.
    """

    route: Tuple[Tuple[float, float], ...]
    t_start: float
    interval_s: float = 60.0
    count: int = 30
    method: Optional[str] = None

    def __post_init__(self) -> None:
        if len(self.route) < 2:
            raise ValueError("a subscription route needs at least two waypoints")
        if self.interval_s <= 0:
            raise ValueError("subscription interval must be positive")
        if self.count < 1:
            raise ValueError("a subscription needs at least one query tuple")

    def query_batch(self) -> QueryBatch:
        """The subscription's uniform query-tuple stream, columnar."""
        duration = self.count * self.interval_s
        traj = waypoint_trajectory(
            [tuple(p) for p in self.route], self.t_start, self.t_start + duration
        )
        queries = uniform_query_tuples(
            traj, self.t_start, self.interval_s, self.count
        )
        return QueryBatch.from_queries(queries)


@dataclass(frozen=True)
class SubscriptionUpdate:
    """One delivered increment of a subscription's answer.

    ``kind`` is ``"initial"`` (the full answer at registration; indices
    cover every query tuple) or ``"delta"`` (only the positions whose
    ``(value, support)`` changed).  ``epoch`` and ``rows`` identify the
    backend state the answers were computed at — ``rows`` is the pinned
    stream length, which is what lets the replay oracle rebuild the
    exact ingested prefix and re-derive the same answers from scratch.
    """

    subscription_id: int
    seq: int
    epoch: int
    rows: int
    kind: str
    indices: np.ndarray
    values: np.ndarray
    support: np.ndarray

    def to_json(self, queries: Optional[QueryBatch] = None) -> Dict[str, Any]:
        """JSON-safe dict (NaN values serialise as null); with
        ``queries`` the changes also carry each tuple's position."""
        changes = []
        for k, i in enumerate(self.indices):
            value = float(self.values[k])
            change: Dict[str, Any] = {
                "i": int(i),
                "value": value if np.isfinite(value) else None,
                "support": int(self.support[k]),
            }
            if queries is not None:
                change["x"] = float(queries.x[i])
                change["y"] = float(queries.y[i])
            changes.append(change)
        return {
            "subscription": self.subscription_id,
            "seq": self.seq,
            "epoch": self.epoch,
            "rows": self.rows,
            "kind": self.kind,
            "changes": changes,
        }


@dataclass
class MaintenanceStats:
    """Cumulative counters of the registry's maintenance work."""

    maintains: int = 0
    quiet_passes: int = 0
    keys_checked: int = 0
    subs_reexecuted: int = 0
    queries_reexecuted: int = 0
    queries_skipped_sketch: int = 0
    updates_delivered: int = 0


class Subscription:
    """Registry-internal state of one standing query (read-only to
    callers; the registry mutates it under its lock)."""

    __slots__ = (
        "id",
        "spec",
        "method",
        "exact",
        "batch",
        "keys",
        "values",
        "support",
        "seq",
        "unstable",
        "pending",
        "initial",
    )

    def __init__(
        self, sub_id: int, spec: SubscriptionSpec, method: str, exact: bool,
        batch: QueryBatch,
    ) -> None:
        self.id = sub_id
        self.spec = spec
        self.method = method
        self.exact = exact
        self.batch = batch
        self.keys = np.full(len(batch), -1, dtype=np.int64)
        self.values = np.full(len(batch), np.nan)
        self.support = np.zeros(len(batch), dtype=np.int64)
        self.seq = 0
        self.unstable = True
        self.pending: deque = deque()
        self.initial: Optional[SubscriptionUpdate] = None

    def answer(self) -> Tuple[np.ndarray, np.ndarray]:
        """Copies of the last delivered ``(values, support)`` arrays."""
        return self.values.copy(), self.support.copy()


# -- pinned backend views ---------------------------------------------------
#
# One view per maintenance pass: a coherent pin of the backend's storage
# (the same snapshot-binding discipline the plan pipeline uses), plus
# the window bookkeeping maintenance needs.  A view resolves:
#
#   epoch        ingest epoch of the pinned state
#   rows         pinned stream length (the replay oracle's prefix)
#   token()      window-cut token; unchanged => no query can remap
#   assign(b)    (window keys, unstable mask) for a query batch
#   mark(key)    cheap (stamp, rows) mark for change detection
#   pinned_mark(key)  the exact mark of the *pinned* slice (committed
#                     after the pass, so a skipped window can never be
#                     marked past the rows that were actually examined)
#   delta_sketch(key, prev_mark)  zone map of rows appended since the
#                     recorded mark (None => treat the window as fully
#                     dirty)
#   execute(b, keys, method)  canonical vectorised (values, support)


class _EngineView:
    """Pinned view of an unsharded :class:`QueryEngine`.

    The binding is captured with a seqlock on the engine epoch so the
    (epoch, binding) pair is coherent even against a free-running
    refresher.
    """

    def __init__(self, engine) -> None:
        self._engine = engine
        while True:
            e0 = engine.epoch
            binding = engine.binding()
            if engine.epoch == e0:
                break
        self._binding = binding
        self.epoch = e0
        self.rows = binding.stream_rows()
        self._n_windows = max(1, -(-self.rows // engine.h))

    def token(self):
        return self._n_windows

    def assign(self, batch: QueryBatch) -> Tuple[np.ndarray, np.ndarray]:
        keys = self._binding.windows_for_times(batch.t).astype(np.int64)
        return keys, keys >= self._n_windows - 1

    def mark(self, key: int):
        stamp, sub, _ = self._binding.slice_for(None, int(key))
        return (stamp, len(sub))

    def pinned_mark(self, key: int):
        return self.mark(key)

    def delta_sketch(self, key: int, prev_mark) -> Optional[WindowSketch]:
        _stamp, sub, _ = self._binding.slice_for(None, int(key))
        n0 = int(prev_mark[1])
        if n0 >= len(sub):
            return WindowSketch.EMPTY
        return WindowSketch.of(sub.slice(n0, len(sub)))

    def execute(self, batch: QueryBatch, keys: np.ndarray, method: str):
        from repro.query.pipeline.plan import VECTORISED_POLICY

        plan = self._engine.plan(
            batch, method, policy=VECTORISED_POLICY, binding=self._binding
        )
        result = self._engine.execute(plan)
        return _result_arrays(result)


class _ShardedEngineView:
    """Pinned view of a :class:`ShardedQueryEngine` (RouterBinding).

    The router binding pins (shard, window) slices lazily and the cheap
    marks are unpinned reads, so exactness holds whenever no ingest
    overlaps the pass; a racing writer can at worst delay an update to
    the next pass (eventual consistency — the same caveat the sharded
    server documents for ``handle_with_epoch``).
    """

    def __init__(self, engine) -> None:
        self._engine = engine
        router = engine.router
        self._binding = engine.binding()
        self.epoch = router.epoch
        self.rows = router.global_count()
        self._n_windows = router.global_window_count()
        self._n_shards = router.n_shards

    def token(self):
        return self._n_windows

    def assign(self, batch: QueryBatch) -> Tuple[np.ndarray, np.ndarray]:
        n = len(batch)
        if not self.rows:
            return np.full(n, -1, dtype=np.int64), np.ones(n, dtype=bool)
        keys = self._binding.windows_for_times(batch.t).astype(np.int64)
        return keys, keys >= self._n_windows - 1

    def mark(self, key: int):
        return tuple(self._binding.peek_window(int(key)))

    def pinned_mark(self, key: int):
        return tuple(
            (stamp, len(sub))
            for stamp, sub, _ in (
                self._binding.slice_for(s, int(key))
                for s in range(self._n_shards)
            )
        )

    def delta_sketch(self, key: int, prev_mark) -> Optional[WindowSketch]:
        if len(prev_mark) != self._n_shards:
            # A shard split/merge changed the layout since the mark was
            # recorded: per-shard row counts no longer line up, so treat
            # the window as fully dirty (correct, just unsketched).
            return None
        merged = WindowSketch.EMPTY
        for s in range(self._n_shards):
            _stamp, sub, _ = self._binding.slice_for(s, int(key))
            n0 = int(prev_mark[s][1])
            if len(sub) > n0:
                merged = merged.merge(WindowSketch.of(sub.slice(n0, len(sub))))
        return merged

    def execute(self, batch: QueryBatch, keys: np.ndarray, method: str):
        plan = self._engine.plan(batch, method, binding=self._binding)
        result = self._engine.execute(plan)
        return _result_arrays(result)


class _ServerView:
    """Pinned view of an :class:`EnviroMeterServer` storage snapshot."""

    def __init__(self, server) -> None:
        self._server = server
        self._snap = server.snapshot()
        self.epoch = self._snap.epoch
        self.rows = len(self._snap)
        self._h = server.h
        self._n_windows = max(1, -(-self.rows // self._h))

    def token(self):
        return self._n_windows

    def assign(self, batch: QueryBatch) -> Tuple[np.ndarray, np.ndarray]:
        n = len(batch)
        if not self.rows:
            return np.full(n, -1, dtype=np.int64), np.ones(n, dtype=bool)
        keys = self._snap.windows_for_times(batch.t).astype(np.int64)
        return keys, keys >= self._n_windows - 1

    def mark(self, key: int):
        c = int(key)
        if c >= self._n_windows or not self.rows:
            return (0, 0)
        return (self._snap.window_epoch(c), len(self._snap.window(c)))

    def pinned_mark(self, key: int):
        return self.mark(key)

    def delta_sketch(self, key: int, prev_mark) -> Optional[WindowSketch]:
        return None  # model-cover only: window-level dirtiness

    def execute(self, batch: QueryBatch, keys: np.ndarray, method: str):
        result = self._server.execute_plan(batch, self._snap)
        return _result_arrays(result)


class _ShardedServerView:
    """Pinned view of a :class:`ShardedEnviroMeterServer` fleet.

    Pins one storage snapshot per populated shard at construction.  Keys
    are composite ``shard * 2**32 + window`` over the *resolved* shard —
    the owner, or the nearest-populated fallback for cold regions.  A
    fallback-answered query stays unstable (its resolved shard changes
    the moment its own region gets data), alongside the usual open-tail
    instability.
    """

    def __init__(self, server) -> None:
        self._server = server
        self.epoch = server.epoch
        self._h = server.h
        self._snaps = {
            s: shard.snapshot()
            for s, shard in enumerate(server.shards)
            if shard.has_data()
        }
        self.rows = sum(len(snap) for snap in self._snaps.values())
        self._n_windows = {
            s: max(1, -(-len(snap) // self._h)) for s, snap in self._snaps.items()
        }

    def token(self):
        return (
            tuple(sorted(self._snaps)),
            tuple(self._n_windows[s] for s in sorted(self._snaps)),
        )

    def assign(self, batch: QueryBatch) -> Tuple[np.ndarray, np.ndarray]:
        n = len(batch)
        keys = np.full(n, -1, dtype=np.int64)
        if not self._snaps:
            return keys, np.ones(n, dtype=bool)
        owners = self._server.grid.shards_of(batch.x, batch.y)
        resolved = np.array(
            [
                int(s) if int(s) in self._snaps
                else self._server._shard_index_for(
                    float(batch.x[i]), float(batch.y[i])
                )
                for i, s in enumerate(owners)
            ],
            dtype=np.int64,
        )
        unstable = resolved != owners
        for s in np.unique(resolved):
            s = int(s)
            snap = self._snaps[s]
            members = np.flatnonzero(resolved == s)
            cs = snap.windows_for_times(batch.t[members]).astype(np.int64)
            keys[members] = s * _SHARD_STRIDE + cs
            unstable[members] |= cs >= self._n_windows[s] - 1
        return keys, unstable

    def mark(self, key: int):
        s, c = divmod(int(key), _SHARD_STRIDE)
        snap = self._snaps.get(s)
        if snap is None or c >= self._n_windows[s]:
            return (0, 0)
        return (snap.window_epoch(c), len(snap.window(c)))

    def pinned_mark(self, key: int):
        return self.mark(key)

    def delta_sketch(self, key: int, prev_mark) -> Optional[WindowSketch]:
        return None  # model-cover only: window-level dirtiness

    def execute(self, batch: QueryBatch, keys: np.ndarray, method: str):
        values = np.full(len(batch), np.nan)
        support = np.zeros(len(batch), dtype=np.int64)
        shards = keys // _SHARD_STRIDE
        for s in np.unique(shards):
            s = int(s)
            members = np.flatnonzero(shards == s)
            result = self._server.shards[s].execute_plan(
                batch.take(members), self._snaps[s]
            )
            vals, sup = _result_arrays(result)
            values[members] = vals
            support[members] = sup
        return values, support


def _result_arrays(result) -> Tuple[np.ndarray, np.ndarray]:
    """(values, support) with unanswered positions normalised to NaN —
    the canonical delivered form every diff compares bitwise."""
    values = np.where(result.answered, result.values, np.nan)
    return values, np.asarray(result.support, dtype=np.int64).copy()


# -- backends ----------------------------------------------------------------


@dataclass(frozen=True)
class _Backend:
    """Pluggable backend: how to pin a view, which methods are legal."""

    pin: Callable[[], Any]
    methods: Tuple[str, ...]
    default_method: str
    radius_m: Optional[float]
    notify: Optional[Callable[[], None]] = None

    def resolve_method(self, method: Optional[str]) -> str:
        method = method or self.default_method
        if method not in self.methods:
            raise ValueError(
                f"unknown subscription method {method!r}; known: {self.methods}"
            )
        return method

    @staticmethod
    def is_exact(method: str) -> bool:
        """Exact methods answer from raw window rows, so spatial delta
        pruning is sound; model-cover/auto answers depend on the whole
        window's fit (auto's verdict is deterministic per content stamp,
        so window-level skipping still is)."""
        return method not in ("model-cover", "auto")


def engine_backend(engine) -> _Backend:
    """Backend over an unsharded :class:`~repro.query.engine.QueryEngine`."""
    from repro.query.engine import METHODS

    return _Backend(
        pin=lambda: _EngineView(engine),
        methods=METHODS + ("auto",),
        default_method="model-cover",
        radius_m=engine.radius_m,
    )


def sharded_engine_backend(engine) -> _Backend:
    """Backend over a :class:`~repro.query.sharded.ShardedQueryEngine`."""
    from repro.query.sharded import SHARDED_METHODS

    return _Backend(
        pin=lambda: _ShardedEngineView(engine),
        methods=SHARDED_METHODS,
        default_method="naive",
        radius_m=engine.radius_m,
    )


def server_backend(server) -> _Backend:
    """Backend over an :class:`~repro.server.server.EnviroMeterServer`."""
    return _Backend(
        pin=lambda: _ServerView(server),
        methods=("model-cover",),
        default_method="model-cover",
        radius_m=None,
    )


def sharded_server_backend(server) -> _Backend:
    """Backend over a :class:`~repro.server.server.ShardedEnviroMeterServer`."""
    return _Backend(
        pin=lambda: _ShardedServerView(server),
        methods=("model-cover",),
        default_method="model-cover",
        radius_m=None,
    )


def registry_for(target) -> "SubscriptionRegistry":
    """A registry over any supported query backend.

    Dispatches engines, servers, and their concurrent/process wrappers
    (``ConcurrentEnviroMeterServer`` via ``.inner``,
    ``ProcessShardedEngine`` via ``.engine`` — subscription maintenance
    always runs against the in-process engine; plan execution for
    interactive requests keeps whatever wrapper the caller serves from).
    """
    from repro.query.engine import QueryEngine
    from repro.query.sharded import ShardedQueryEngine
    from repro.server.server import (
        ConcurrentEnviroMeterServer,
        EnviroMeterServer,
        ShardedEnviroMeterServer,
    )

    if isinstance(target, ConcurrentEnviroMeterServer):
        target = target.inner
    if (
        not isinstance(target, (QueryEngine, ShardedQueryEngine))
        and isinstance(getattr(target, "engine", None), ShardedQueryEngine)
    ):
        target = target.engine  # ProcessShardedEngine and friends
    if isinstance(target, QueryEngine):
        return SubscriptionRegistry(engine_backend(target))
    if isinstance(target, ShardedQueryEngine):
        return SubscriptionRegistry(sharded_engine_backend(target))
    if isinstance(target, EnviroMeterServer):
        return SubscriptionRegistry(server_backend(target))
    if isinstance(target, ShardedEnviroMeterServer):
        return SubscriptionRegistry(sharded_server_backend(target))
    raise TypeError(
        f"no subscription backend for {type(target).__name__}"
    )


# -- the registry ------------------------------------------------------------


class SubscriptionRegistry:
    """Standing queries over one backend, maintained epoch-delta-wise.

    Thread-safe: registration, maintenance and polling serialise on one
    lock; :meth:`notify_ingest` (called from writer threads after an
    ingest) only fires listeners and never blocks on maintenance.

    Invariant: after every :meth:`maintain` (and after the implicit pass
    :meth:`register` runs before admitting a new subscription), every
    stored answer is consistent with the pass's pinned view and with the
    recorded window marks — which is what makes the mark comparison of
    the *next* pass sound for every subscription at once.
    """

    def __init__(self, backend: _Backend) -> None:
        self._backend = backend
        self._lock = threading.RLock()
        self._subs: Dict[int, Subscription] = {}
        self._by_key: Dict[int, Set[int]] = {}
        self._marks: Dict[int, Any] = {}
        self._unstable: Set[int] = set()
        self._ids = itertools.count(1)
        self._epoch: Optional[int] = None
        self._token: Any = None
        self._rows: Optional[int] = None
        self._stats = MaintenanceStats()
        self._listeners: List[Callable[[], None]] = []

    # -- introspection ------------------------------------------------------

    @property
    def stats(self) -> MaintenanceStats:
        return self._stats

    def __len__(self) -> int:
        return len(self._subs)

    def subscription(self, sub_id: int) -> Subscription:
        with self._lock:
            try:
                return self._subs[sub_id]
            except KeyError:
                raise KeyError(f"no subscription {sub_id}") from None

    def subscription_ids(self) -> List[int]:
        with self._lock:
            return sorted(self._subs)

    # -- registration -------------------------------------------------------

    def register(self, spec: SubscriptionSpec) -> Subscription:
        """Admit a standing query; its ``initial`` update holds the full
        answer at the registration view.

        The pass first brings *every existing* subscription current at
        the same pinned view (their deltas queue as usual), so the new
        subscription's marks can be recorded against answers that are
        already consistent with them.
        """
        with self._lock:
            method = self._backend.resolve_method(spec.method)
            view = self._backend.pin()
            self._maintain_at(view)
            sub = Subscription(
                next(self._ids), spec, method,
                exact=self._backend.is_exact(method), batch=spec.query_batch(),
            )
            self._subs[sub.id] = sub
            keys, unstable = view.assign(sub.batch)
            new_keys = self._reindex(sub, keys)
            sub.unstable = bool(unstable.any())
            if sub.unstable:
                self._unstable.add(sub.id)
            if view.rows:
                sub.values, sub.support = view.execute(
                    sub.batch, sub.keys, sub.method
                )
            for key in new_keys:
                self._marks[key] = view.pinned_mark(key)
            sub.initial = SubscriptionUpdate(
                subscription_id=sub.id,
                seq=0,
                epoch=view.epoch,
                rows=view.rows,
                kind="initial",
                indices=np.arange(len(sub.batch), dtype=np.intp),
                values=sub.values.copy(),
                support=sub.support.copy(),
            )
            return sub

    def subscribe(
        self,
        route: Sequence[Tuple[float, float]],
        t_start: float,
        interval_s: float = 60.0,
        count: int = 30,
        method: Optional[str] = None,
    ) -> Subscription:
        """:meth:`register` from plain route fields (the server API)."""
        return self.register(
            SubscriptionSpec(
                route=tuple((float(x), float(y)) for x, y in route),
                t_start=float(t_start),
                interval_s=float(interval_s),
                count=int(count),
                method=method,
            )
        )

    def unregister(self, sub_id: int) -> None:
        with self._lock:
            sub = self._subs.pop(sub_id, None)
            if sub is None:
                return
            self._unstable.discard(sub_id)
            self._reindex(sub, np.full(len(sub.batch), -1, dtype=np.int64))

    def _reindex(self, sub: Subscription, keys: np.ndarray) -> List[int]:
        """Move ``sub`` to a new key assignment in the inverted index;
        returns keys that were not registered by anyone before (their
        marks must be recorded at the current view by the caller)."""
        old = {int(k) for k in np.unique(sub.keys) if k >= 0}
        new = {int(k) for k in np.unique(keys) if k >= 0}
        # Keys kept across the re-assignment keep their recorded marks:
        # dropping and re-recording one here would fast-forward it past
        # positions still holding answers computed at the old mark.
        for key in old - new:
            owners = self._by_key.get(key)
            if owners is not None:
                owners.discard(sub.id)
                if not owners:
                    del self._by_key[key]
                    self._marks.pop(key, None)
        new_keys: List[int] = []
        for key in new - old:
            owners = self._by_key.setdefault(key, set())
            if not owners and key not in self._marks:
                new_keys.append(key)
            owners.add(sub.id)
        sub.keys = keys.astype(np.int64, copy=True)
        return new_keys

    # -- maintenance --------------------------------------------------------

    def maintain(self) -> List[SubscriptionUpdate]:
        """One epoch-delta maintenance pass against a fresh pinned view.

        Returns the updates delivered this pass (each is also queued on
        its subscription for :meth:`poll`).  A pass at an unchanged
        epoch/token/row-count is quiet: O(1)."""
        with self._lock:
            return self._maintain_at(self._backend.pin())

    def poll(
        self, sub_id: int, maintain: bool = True
    ) -> List[SubscriptionUpdate]:
        """Drain one subscription's queued updates (optionally running a
        maintenance pass first — the server poll path)."""
        with self._lock:
            if maintain:
                self._maintain_at(self._backend.pin())
            sub = self.subscription(sub_id)
            drained = list(sub.pending)
            sub.pending.clear()
            return drained

    def _maintain_at(self, view) -> List[SubscriptionUpdate]:
        stats = self._stats
        stats.maintains += 1
        token = view.token()
        if (
            view.epoch == self._epoch
            and token == self._token
            and view.rows == self._rows
        ):
            stats.quiet_passes += 1
            return []
        # 1. Re-assign the unstable subscriptions (only they can remap —
        #    open-tail times, cold-shard fallbacks, empty-backend waits);
        #    remapped positions re-execute unconditionally.  Stable
        #    subscriptions never pay assignment again.
        forced: Dict[int, np.ndarray] = {}
        if self._unstable:
            for sid in list(self._unstable):
                sub = self._subs[sid]
                keys, unstable = view.assign(sub.batch)
                changed = keys != sub.keys
                if changed.any():
                    for key in self._reindex(sub, keys):
                        # Newly referenced windows are marked below from
                        # the same pinned view the re-execution reads.
                        self._marks[key] = view.pinned_mark(key)
                    forced[sid] = changed
                sub.unstable = bool(unstable.any())
                if not sub.unstable:
                    self._unstable.discard(sid)
        # 2. Mark diff over the registered windows: O(distinct keys).
        dirty_keys: Dict[int, Any] = {}
        for key, mark in self._marks.items():
            stats.keys_checked += 1
            if view.mark(key) != mark:
                dirty_keys[key] = mark
        candidates = set(forced)
        for key in dirty_keys:
            candidates |= self._by_key.get(key, set())
        # 3. Per-candidate dirty mask (delta-sketch pruned for exact
        #    methods), then one canonical re-execution of the dirty
        #    subset.
        updates: List[SubscriptionUpdate] = []
        delta_cache: Dict[int, Optional[WindowSketch]] = {}
        for sid in sorted(candidates):
            sub = self._subs[sid]
            mask = forced.get(sid)
            mask = (
                np.zeros(len(sub.batch), dtype=bool)
                if mask is None
                else mask.copy()
            )
            for key in np.unique(sub.keys):
                key = int(key)
                if key not in dirty_keys:
                    continue
                kmask = (sub.keys == key) & ~mask
                if not kmask.any():
                    continue
                if sub.exact and self._backend.radius_m is not None:
                    delta = delta_cache.get(key, _MISSING)
                    if delta is _MISSING:
                        delta = view.delta_sketch(key, dirty_keys[key])
                        delta_cache[key] = delta
                    if delta is not None:
                        idx = np.flatnonzero(kmask)
                        reach = delta.disk_overlaps(
                            sub.batch.x[idx],
                            sub.batch.y[idx],
                            self._backend.radius_m,
                        )
                        stats.queries_skipped_sketch += int((~reach).sum())
                        kmask = np.zeros_like(mask)
                        kmask[idx[reach]] = True
                mask |= kmask
            update = self._reexecute(view, sub, mask)
            if update is not None:
                updates.append(update)
        # Commit marks from the pinned slices that were actually
        # examined — never from an unpinned estimate that might run
        # ahead of them.
        for key in dirty_keys:
            if key in self._marks:
                self._marks[key] = view.pinned_mark(key)
        self._epoch, self._token, self._rows = view.epoch, token, view.rows
        return updates

    def _reexecute(
        self, view, sub: Subscription, mask: np.ndarray
    ) -> Optional[SubscriptionUpdate]:
        if not mask.any():
            return None
        idx = np.flatnonzero(mask)
        stats = self._stats
        stats.subs_reexecuted += 1
        stats.queries_reexecuted += len(idx)
        values, support = view.execute(
            sub.batch.take(idx), sub.keys[idx], sub.method
        )
        old_values = sub.values[idx]
        old_support = sub.support[idx]
        same = (
            (old_values == values)
            | (np.isnan(old_values) & np.isnan(values))
        ) & (old_support == support)
        sub.values[idx] = values
        sub.support[idx] = support
        changed = idx[~same]
        if not len(changed):
            return None
        sub.seq += 1
        update = SubscriptionUpdate(
            subscription_id=sub.id,
            seq=sub.seq,
            epoch=view.epoch,
            rows=view.rows,
            kind="delta",
            indices=changed.astype(np.intp),
            values=sub.values[changed].copy(),
            support=sub.support[changed].copy(),
        )
        sub.pending.append(update)
        stats.updates_delivered += 1
        return update

    # -- oracle / bench support ---------------------------------------------

    def reference_answers(
        self, batch: QueryBatch, method: Optional[str] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """From-scratch canonical answers for a query batch at a fresh
        pinned view — the baseline the replay oracle and the naive
        re-execution benchmark compare against (same vectorised path
        maintenance uses, so equality is bitwise)."""
        method = self._backend.resolve_method(method)
        view = self._backend.pin()
        keys, _unstable = view.assign(batch)
        if not view.rows:
            return (
                np.full(len(batch), np.nan),
                np.zeros(len(batch), dtype=np.int64),
            )
        return view.execute(batch, keys, method)

    # -- push-path bridge ---------------------------------------------------

    def add_listener(self, listener: Callable[[], None]) -> None:
        """Register an ingest-notification callback (must be cheap and
        thread-safe — e.g. an ``asyncio`` wake-up scheduled with
        ``call_soon_threadsafe``)."""
        with self._lock:
            self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[], None]) -> None:
        with self._lock:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

    def notify_ingest(self) -> None:
        """Tell listeners data arrived.  Called by the owning backend
        after each ingest; maintenance itself runs in whoever answers
        the notification (a poller or the WebSocket pusher), never on
        the ingest thread."""
        with self._lock:
            listeners = list(self._listeners)
        for listener in listeners:
            listener()
