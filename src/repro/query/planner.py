"""Cost-based processor selection — the "platform" layer.

EnviroMeter is a *platform* for querying community-sensed data: a client
registers a query, and the platform decides how to execute it.  This
module adds the missing planner: a simple cost model over the three
method families of Section 2.2, calibrated per window, that picks the
cheapest processor satisfying the query's accuracy requirements.

Cost model (per query, in abstract scan units):

* naive          — ``H``  (full window scan)
* indexed        — ``build/H_amortised + hit_fraction * H + log H``
* model cover    — ``3·O + fit/amortised``  (O = number of models)

plus a one-time preparation cost (index build / Ad-KMN fit) amortised
over the expected number of queries against the window.  The model is
deliberately coarse — its job is to get the *ordering* right, which the
Figure 6(a) measurements define.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.adkmn import AdKMNConfig, fit_adkmn
from repro.data.tuples import TupleBatch
from repro.query.base import PointQueryProcessor
from repro.query.indexed import IndexedProcessor
from repro.query.modelcover import ModelCoverProcessor
from repro.query.naive import NaiveProcessor


@dataclass(frozen=True)
class QueryProfile:
    """What the planner knows about the upcoming workload.

    ``expected_queries`` amortises preparation cost; ``needs_exact_average``
    forces a raw-data method (some clients want the literal radius average,
    e.g. for calibration against reference stations); ``radius_m`` is the
    interpolation radius of Query 1.
    """

    expected_queries: int = 1000
    needs_exact_average: bool = False
    radius_m: float = 1000.0

    def __post_init__(self) -> None:
        if self.expected_queries < 1:
            raise ValueError("expected_queries must be at least 1")
        if self.radius_m < 0:
            raise ValueError("radius must be non-negative")


@dataclass(frozen=True)
class PlanEstimate:
    """One candidate plan with its estimated per-query cost."""

    method: str
    per_query_cost: float
    preparation_cost: float


# Relative preparation costs in the same abstract units (1 unit = the
# cost of scanning one tuple inside a scalar naive radius query).
# Recalibrated against benchmarks/bench_ablation_adaptive_methods.py
# fixtures on the reference H=240 Lausanne window: a naive query costs
# ~17.6 us (73 ns/tuple); an R-tree build ~6.9 ms, a VP-tree build
# ~0.74 ms, an Ad-KMN fit ~7.1 ms.  The original seed constants (12/8/40)
# under-priced preparation by 10-30x, which made ``auto`` amortise index
# builds and fits far too eagerly on short workloads.
_PREP_UNITS = {
    "naive": 0.0,
    "rtree": 390.0,       # per tuple: quadratic-split inserts
    "vptree": 42.0,       # per tuple: recursive median partitioning
    "model-cover": 400.0,  # per tuple: k-means rounds + regression fits
}

# Per-query cost of evaluating a fitted cover, in units per kept model:
# the (1, O) distance row plus one model evaluation measured ~3 scan
# units per model on the same fixture (42 units at O=14), not the 1
# unit/model the seed model assumed.
_COVER_QUERY_UNITS_PER_MODEL = 3.0


class QueryPlanner:
    """Chooses and materialises the cheapest processor for one window."""

    def __init__(self, window: TupleBatch, config: Optional[AdKMNConfig] = None) -> None:
        if not len(window):
            raise ValueError("cannot plan over an empty window")
        self._window = window
        self._config = config or AdKMNConfig()
        self._estimated_o: Optional[int] = None
        self._processors: Dict[str, PointQueryProcessor] = {}

    def _expected_models(self) -> Optional[int]:
        """Estimate O with one fit, cached; None when the window can't be
        fitted (the planner must then never offer model-cover — choosing a
        plan whose processor cannot be constructed is the one unforgivable
        planner bug)."""
        if self._estimated_o is None:
            try:
                result = fit_adkmn(self._window, self._config)
            except (ValueError, FloatingPointError):
                self._estimated_o = -1
            else:
                self._estimated_o = result.cover.size
                # Cache the fitted processor: estimation already paid for it.
                self._processors["model-cover"] = ModelCoverProcessor(result.cover)
        return None if self._estimated_o < 0 else self._estimated_o

    def estimates(self, profile: QueryProfile) -> Dict[str, PlanEstimate]:
        """Per-method cost estimates for a workload profile."""
        h = len(self._window)
        amortise = profile.expected_queries
        # Fraction of the window a radius search touches, from the window
        # extent: hit_fraction ~ disk area / covered area (clamped).
        min_x, max_x = float(min(self._window.x)), float(max(self._window.x))
        min_y, max_y = float(min(self._window.y)), float(max(self._window.y))
        area = max((max_x - min_x) * (max_y - min_y), 1.0)
        hit_fraction = min(math.pi * profile.radius_m**2 / area, 1.0)

        out: Dict[str, PlanEstimate] = {}
        out["naive"] = PlanEstimate("naive", float(h), 0.0)
        for kind in ("rtree", "vptree"):
            prep = _PREP_UNITS[kind] * h
            per_query = hit_fraction * h + math.log2(max(h, 2)) + prep / amortise
            out[kind] = PlanEstimate(kind, per_query, prep)
        if not profile.needs_exact_average:
            prep = _PREP_UNITS["model-cover"] * h
            # Short workloads can never amortise the fit: the preparation
            # share alone (prep / amortise >= naive's full-scan cost h
            # whenever amortise <= the per-tuple fit units) already loses
            # to naive, so don't pay an expensive Ad-KMN fit just to price
            # a plan that is out of the running -- the expected_queries=1
            # edge case that used to fit a cover for nothing.
            if prep / amortise < float(h):
                o = self._expected_models()
                if o is not None:
                    out["model-cover"] = PlanEstimate(
                        "model-cover",
                        _COVER_QUERY_UNITS_PER_MODEL * o + prep / amortise,
                        prep,
                    )
        return out

    def choose(self, profile: QueryProfile) -> PlanEstimate:
        """The cheapest plan for the profile."""
        estimates = self.estimates(profile)
        return min(estimates.values(), key=lambda e: e.per_query_cost)

    def processor_for(self, profile: QueryProfile) -> PointQueryProcessor:
        """Materialise (and cache) the chosen plan's processor."""
        plan = self.choose(profile)
        if plan.method not in self._processors:
            if plan.method == "naive":
                proc: PointQueryProcessor = NaiveProcessor(
                    self._window, profile.radius_m
                )
            elif plan.method == "model-cover":
                cover = fit_adkmn(self._window, self._config).cover
                proc = ModelCoverProcessor(cover)
            else:
                proc = IndexedProcessor(
                    self._window, kind=plan.method, radius_m=profile.radius_m
                )
            self._processors[plan.method] = proc
        return self._processors[plan.method]
