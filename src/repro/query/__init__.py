"""Query processing (Section 2.2).

Query 1 — the *continuous value query*: a mobile object transmits query
tuples ``q_l = (t_l, x_l, y_l)`` at a uniform interval; the system
interpolates the sensor value at each position.  Three processors:

* :class:`NaiveProcessor` — exhaustive radius-``r`` scan + average;
* :class:`IndexedProcessor` — same semantics over an R-tree/VP-tree/…;
* :class:`ModelCoverProcessor` — nearest-centroid model evaluation.

Every processor answers one query at a time (``process``) and many at
once (``process_batch`` over a columnar :class:`QueryBatch`) — the
batched path is vectorised with NumPy and is what the engine's heatmap
and continuous modes use; see ``repro/query/README.md``.

:class:`QueryEngine` ties processors to a tuple stream + window choice,
:mod:`repro.query.executor` fans per-window query groups across a thread
pool, and :mod:`repro.query.continuous` drives a trajectory of query
tuples.
"""

from repro.query.base import (
    BatchResult,
    PointQueryProcessor,
    QueryBatch,
    QueryResult,
    process_batch,
    process_batch_scalar,
)
from repro.query.continuous import ContinuousQueryDriver, uniform_query_tuples
from repro.query.engine import QueryEngine
from repro.query.executor import BatchExecutor, QueryGroup, group_queries_by_window
from repro.query.indexed import IndexedProcessor
from repro.query.modelcover import ModelCoverProcessor
from repro.query.naive import NaiveProcessor
from repro.query.pipeline import (
    ExecutionPlan,
    PipelinePlanner,
    PlannerFeedback,
    ProcessorCache,
    format_plan,
)
from repro.query.planner import PlanEstimate, QueryPlanner, QueryProfile
from repro.query.sharded import SHARDED_METHODS, ShardedQueryEngine

__all__ = [
    "SHARDED_METHODS",
    "ShardedQueryEngine",
    "BatchExecutor",
    "BatchResult",
    "PointQueryProcessor",
    "QueryBatch",
    "QueryGroup",
    "QueryResult",
    "group_queries_by_window",
    "process_batch",
    "process_batch_scalar",
    "ContinuousQueryDriver",
    "uniform_query_tuples",
    "QueryEngine",
    "ExecutionPlan",
    "IndexedProcessor",
    "ModelCoverProcessor",
    "NaiveProcessor",
    "PipelinePlanner",
    "PlanEstimate",
    "PlannerFeedback",
    "ProcessorCache",
    "QueryPlanner",
    "QueryProfile",
    "format_plan",
]
