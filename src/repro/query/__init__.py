"""Query processing (Section 2.2).

Query 1 — the *continuous value query*: a mobile object transmits query
tuples ``q_l = (t_l, x_l, y_l)`` at a uniform interval; the system
interpolates the sensor value at each position.  Three processors:

* :class:`NaiveProcessor` — exhaustive radius-``r`` scan + average;
* :class:`IndexedProcessor` — same semantics over an R-tree/VP-tree/…;
* :class:`ModelCoverProcessor` — nearest-centroid model evaluation.

:class:`QueryEngine` ties processors to a tuple stream + window choice,
and :mod:`repro.query.continuous` drives a trajectory of query tuples.
"""

from repro.query.base import PointQueryProcessor, QueryResult
from repro.query.continuous import ContinuousQueryDriver, uniform_query_tuples
from repro.query.engine import QueryEngine
from repro.query.indexed import IndexedProcessor
from repro.query.modelcover import ModelCoverProcessor
from repro.query.naive import NaiveProcessor
from repro.query.planner import PlanEstimate, QueryPlanner, QueryProfile

__all__ = [
    "PointQueryProcessor",
    "QueryResult",
    "ContinuousQueryDriver",
    "uniform_query_tuples",
    "QueryEngine",
    "IndexedProcessor",
    "ModelCoverProcessor",
    "NaiveProcessor",
    "PlanEstimate",
    "QueryPlanner",
    "QueryProfile",
]
