"""Continuous query driving (Query 1).

A mobile object ``v_q`` transmits query tuples at a *uniform interval*
(Section 2.2: "|t_{l+1} - t_l| is always the same").  The driver walks a
trajectory, generates the uniform query-tuple stream, and feeds it to any
point-query processor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.data.tuples import QueryTuple
from repro.query.base import PointQueryProcessor, QueryResult

Trajectory = Callable[[float], Tuple[float, float]]
"""Position of the mobile object as a function of time."""


def uniform_query_tuples(
    trajectory: Trajectory,
    t_start: float,
    interval_s: float,
    count: int,
) -> List[QueryTuple]:
    """The uniform query-tuple stream of Query 1."""
    if interval_s <= 0:
        raise ValueError("query interval must be positive")
    if count < 1:
        raise ValueError("count must be at least 1")
    out: List[QueryTuple] = []
    for step in range(count):
        t = t_start + step * interval_s
        x, y = trajectory(t)
        out.append(QueryTuple(t=t, x=x, y=y))
    return out


def waypoint_trajectory(
    waypoints: Sequence[Tuple[float, float]],
    t_start: float,
    t_end: float,
) -> Trajectory:
    """Constant-speed trajectory through ``waypoints`` between two times.

    Before ``t_start`` the object sits at the first waypoint; after
    ``t_end`` at the last.  This is how the web interface's continuous
    query mode ("users select a set of points that constitute the route")
    turns clicked points into a moving object.
    """
    if len(waypoints) < 2:
        raise ValueError("a trajectory needs at least two waypoints")
    if t_end <= t_start:
        raise ValueError("t_end must be after t_start")
    import math

    legs = []
    total = 0.0
    for (x1, y1), (x2, y2) in zip(waypoints, waypoints[1:]):
        d = math.hypot(x2 - x1, y2 - y1)
        legs.append(d)
        total += d

    def position(t: float) -> Tuple[float, float]:
        if t <= t_start:
            return waypoints[0]
        if t >= t_end:
            return waypoints[-1]
        frac = (t - t_start) / (t_end - t_start)
        target = frac * total
        for (x1, y1), (x2, y2), leg in zip(waypoints, waypoints[1:], legs):
            if leg > 0.0 and target <= leg:
                f = target / leg
                return x1 + f * (x2 - x1), y1 + f * (y2 - y1)
            target -= leg  # zero-length legs are skipped unchanged
        return waypoints[-1]

    return position


@dataclass
class ContinuousQueryDriver:
    """Runs a continuous query against a point-query processor."""

    processor: PointQueryProcessor

    def run(self, queries: Sequence[QueryTuple]) -> List[QueryResult]:
        """Process every query tuple in order."""
        return [self.processor.process(q) for q in queries]

    def run_trajectory(
        self,
        trajectory: Trajectory,
        t_start: float,
        interval_s: float,
        count: int,
    ) -> List[QueryResult]:
        """Generate the uniform stream and process it."""
        queries = uniform_query_tuples(trajectory, t_start, interval_s, count)
        return self.run(queries)
