"""The metric-space indexing method (Section 2.2).

"Similar to the naive method, but it uses a metric space index (e.g.,
R-tree or VP-tree) to enhance the performance of finding the raw tuples in
window W_c that are within radius r."

Identical answer semantics to the naive method — the paper's accuracy
experiment relies on this ("they produce the same result as the naive
method") and so do our tests.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.data.tuples import QueryTuple, TupleBatch
from repro.index.base import SpatialIndex
from repro.index.grid import GridIndex
from repro.index.kdtree import KDTree
from repro.index.rtree import RTree
from repro.index.strtree import STRTree
from repro.index.vptree import VPTree
from repro.query.base import BatchResult, QueryBatch, QueryResult

_INDEX_BUILDERS: Dict[str, Callable[[TupleBatch], SpatialIndex]] = {
    "rtree": lambda w: RTree(w.x, w.y),
    "strtree": lambda w: STRTree(w.x, w.y),
    "vptree": lambda w: VPTree(w.x, w.y),
    "grid": lambda w: GridIndex(w.x, w.y),
    "kdtree": lambda w: KDTree(w.x, w.y),
}


def available_index_kinds() -> tuple:
    return tuple(sorted(_INDEX_BUILDERS))


class IndexedProcessor:
    """Radius search through a metric-space index, then average."""

    def __init__(
        self,
        window: TupleBatch,
        kind: str = "rtree",
        radius_m: float = 1000.0,
    ) -> None:
        if radius_m < 0:
            raise ValueError("radius must be non-negative")
        try:
            build = _INDEX_BUILDERS[kind]
        except KeyError:
            raise ValueError(
                f"unknown index kind {kind!r}; known: {available_index_kinds()}"
            ) from None
        self.name = kind
        self._window = window
        self._radius = radius_m
        self._index = build(window)
        self._ss = window.s.tolist()

    @property
    def index(self) -> SpatialIndex:
        return self._index

    @property
    def window(self) -> TupleBatch:
        return self._window

    @property
    def radius_m(self) -> float:
        return self._radius

    def process(self, query: QueryTuple) -> QueryResult:
        hits = self._index.query_radius(query.x, query.y, self._radius)
        if not hits:
            return QueryResult(query=query, value=None, support=0)
        total = 0.0
        for i in hits:
            total += self._ss[i]
        return QueryResult(query=query, value=total / len(hits), support=len(hits))

    def query_radius_bulk(self, xs: np.ndarray, ys: np.ndarray) -> List[List[int]]:
        """Hit lists for many probe positions in one call.

        The tree descent itself stays per-probe (none of the pure-Python
        indexes support a true multi-probe traversal), but hoisting the
        index/radius lookups out of the caller's loop is what the batched
        path needs; a native index backend can override this with a real
        bulk range lookup without touching callers.
        """
        probe = self._index.query_radius
        r = self._radius
        return [probe(float(x), float(y), r) for x, y in zip(xs, ys)]

    def process_batch(self, queries: QueryBatch) -> BatchResult:
        """Batched radius search: bulk index probes + numpy aggregation.

        Answer semantics are identical to :meth:`process` per query; the
        per-hit-list averaging runs on the window's float64 column instead
        of a boxed Python accumulation.
        """
        m = len(queries)
        values = np.full(m, np.nan)
        support = np.zeros(m, dtype=np.int64)
        if m == 0:
            return BatchResult(queries, values, support, answered=support > 0)
        s = self._window.s
        for i, hits in enumerate(self.query_radius_bulk(queries.x, queries.y)):
            if hits:
                idx = np.asarray(hits, dtype=np.intp)
                support[i] = len(idx)
                values[i] = float(s[idx].sum()) / len(idx)
        # Explicit mask: a NaN sensor value averages to NaN but the query
        # *was* answered, exactly as the scalar path reports it.
        return BatchResult(queries, values, support, answered=support > 0)
