"""Pool plumbing for the plan pipeline: grouping, chunking, fan-out.

Continuous queries span windows: each query tuple is answered by the
processor of the window its timestamp falls in (the server's lazy-update
policy).  :func:`group_queries_by_window` splits a stream into
per-window groups — the unit the pipeline builders
(:mod:`repro.query.pipeline.executor`) turn into plan ops — and
:class:`BatchExecutor` is the bounded thread pool the shared
:class:`~repro.query.pipeline.executor.PlanExecutor` fans those ops out
on (one ``process_batch`` or hit-scan call per op/task).

Thread-safety contract: a materialised processor is immutable after
construction — ``process``/``process_batch`` only read the window arrays,
the index, or the fitted cover — so any number of pool threads may query
*distinct* groups (or even the same processor) concurrently.  What is
**not** thread-safe is processor *construction* through the engines'
epoch-keyed cache in its atomic build mode; that is why the plan
executor materialises every result op's processor before the fan-out, in
the caller's thread, and the pool threads only ever call
``process_batch``.

Choosing ``max_workers``: the work per group is numpy-heavy (distance
matrices, model evaluation), which releases the GIL for its inner loops,
so ``min(number of groups, os.cpu_count())`` is the sweet spot — the
:class:`BatchExecutor` default.  Pure-Python-bound processors (the tree
indexes) gain little from extra threads; ``max_workers=1`` degrades to an
ordinary loop with zero pool overhead.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, TypeVar

import numpy as np

from repro.data.tuples import QueryTuple
from repro.query.base import BatchResult, QueryBatch

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class QueryGroup:
    """The queries of one stream that share a window.

    ``indices`` are the positions of the group's queries in the original
    stream, so per-group results can be scattered back in input order.
    """

    window_c: int
    indices: np.ndarray
    queries: QueryBatch


def group_queries_by_window(
    queries: Sequence[QueryTuple] | QueryBatch,
    window_for_time: Callable[[float], int],
    windows_for_times: Optional[Callable[[np.ndarray], np.ndarray]] = None,
) -> List[QueryGroup]:
    """Split a query stream into per-window groups (ascending window).

    ``window_for_time`` is the engine's timestamp→window mapping, called
    once per query in the calling thread; pass ``windows_for_times`` (its
    vectorised form, e.g. :meth:`QueryEngine.windows_for_times`) to map
    the whole stream in one array op instead.
    """
    batch = (
        queries if isinstance(queries, QueryBatch) else QueryBatch.from_queries(queries)
    )
    if not len(batch):
        return []
    if windows_for_times is not None:
        windows = np.asarray(windows_for_times(batch.t), dtype=np.int64)
    else:
        windows = np.fromiter(
            (window_for_time(float(t)) for t in batch.t),
            dtype=np.int64,
            count=len(batch),
        )
    groups: List[QueryGroup] = []
    for c in np.unique(windows):
        idx = np.flatnonzero(windows == c)
        groups.append(QueryGroup(int(c), idx, batch.take(idx)))
    return groups


def split_chunks(items: Sequence[T], n: int) -> List[Sequence[T]]:
    """Split ``items`` into at most ``n`` contiguous, near-equal, non-empty
    chunks, preserving order — the unit the concurrent serving layer fans
    across worker threads (contiguity keeps each chunk's window grouping
    as dense as the original batch's)."""
    if n < 1:
        raise ValueError("chunk count must be at least 1")
    total = len(items)
    if not total:
        return []
    n = min(n, total)
    size, extra = divmod(total, n)
    chunks: List[Sequence[T]] = []
    start = 0
    for k in range(n):
        stop = start + size + (1 if k < extra else 0)
        chunks.append(items[start:stop])
        start = stop
    return chunks


def scatter_results(
    groups: Sequence[QueryGroup], results: Sequence[BatchResult], n: int
) -> BatchResult:
    """Reassemble per-group results into one stream-ordered BatchResult."""
    if len(groups) != len(results):
        raise ValueError("one result per group required")
    values = np.full(n, np.nan)
    support = np.zeros(n, dtype=np.int64)
    answered = np.zeros(n, dtype=bool)
    t = np.empty(n)
    x = np.empty(n)
    y = np.empty(n)
    for group, res in zip(groups, results):
        idx = group.indices
        values[idx] = res.values
        support[idx] = res.support
        answered[idx] = res.answered
        t[idx] = group.queries.t
        x[idx] = group.queries.x
        y[idx] = group.queries.y
    return BatchResult(QueryBatch(t, x, y), values, support, answered)


class BatchExecutor:
    """Fans independent group tasks across a bounded thread pool.

    The pool is created lazily on the first parallel :meth:`map` and then
    reused, so repeated continuous queries do not pay thread start-up per
    call.  ``ThreadPoolExecutor`` submission is itself thread-safe, so one
    executor instance may be shared freely; :meth:`shutdown` (or interpreter
    exit) reclaims the worker threads.
    """

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.max_workers = max_workers
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()

    def workers_for(self, n_tasks: int) -> int:
        cap = self.max_workers or (os.cpu_count() or 1)
        return max(1, min(cap, n_tasks))

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers or (os.cpu_count() or 1),
                    thread_name_prefix="repro-batch",
                )
            return self._pool

    def shutdown(self) -> None:
        """Tear the pool down (idempotent; a later map recreates it)."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> List[R]:
        """``[fn(t) for t in tasks]``, in order, possibly in parallel.

        Falls back to a plain loop for a single task or a single worker —
        the common point-query case pays no pool overhead.
        """
        if not tasks:
            return []
        if self.workers_for(len(tasks)) == 1 or len(tasks) == 1:
            return [fn(t) for t in tasks]
        return list(self._ensure_pool().map(fn, tasks))
