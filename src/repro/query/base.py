"""Common types for query processors: scalar and batched execution.

Two execution paths share these types (see ``repro/query/README.md``):

* the **scalar path** — ``process(QueryTuple) -> QueryResult``, one Python
  call per query, reproducing the paper's per-tuple cost profile;
* the **batched path** — ``process_batch(QueryBatch) -> BatchResult``,
  answering many queries in one call so processors can vectorise with
  NumPy.  Every processor in this package implements it; for third-party
  processors that only implement ``process``, :func:`process_batch`
  dispatches to the scalar fallback, so the batched engine APIs work
  against any :class:`PointQueryProcessor`.

The two paths are semantically equivalent — same values (up to float
summation order), same ``answered`` flags, same support counts — which
``tests/test_query_batch_equivalence.py`` enforces property-style for
every method.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.data.tuples import QueryTuple


@dataclass(frozen=True)
class QueryResult:
    """Answer to one query tuple.

    ``value`` is the interpolated sensor value ``ŝ_l``; ``None`` when the
    method found no supporting data (e.g. no raw tuples within radius r —
    possible under geo-temporal skew, and exactly the failure mode the
    model cover avoids).  ``support`` is the number of raw tuples (naive /
    indexed) or kept model (always 1) behind the answer.
    """

    query: QueryTuple
    value: Optional[float]
    support: int = 0

    @property
    def answered(self) -> bool:
        return self.value is not None


class QueryBatch:
    """Columnar batch of query tuples ``q_l = (t_l, x_l, y_l)``.

    The structure-of-arrays twin of :class:`QueryTuple`, mirroring how
    :class:`~repro.data.tuples.TupleBatch` relates to ``RawTuple``: three
    read-only float64 arrays that vectorised processors consume directly.
    """

    __slots__ = ("t", "x", "y")

    def __init__(self, t: np.ndarray, x: np.ndarray, y: np.ndarray) -> None:
        arrays = []
        for name, arr in (("t", t), ("x", x), ("y", y)):
            a = np.asarray(arr, dtype=np.float64)
            if a.ndim != 1:
                raise ValueError(f"column {name!r} must be one-dimensional")
            arrays.append(a)
        n = len(arrays[0])
        if any(len(a) != n for a in arrays):
            raise ValueError("all columns must have the same length")
        for a in arrays:
            a.flags.writeable = False
        self.t, self.x, self.y = arrays

    @classmethod
    def from_queries(cls, queries: Iterable[QueryTuple]) -> "QueryBatch":
        qs = list(queries)
        return cls(
            np.array([q.t for q in qs], dtype=np.float64),
            np.array([q.x for q in qs], dtype=np.float64),
            np.array([q.y for q in qs], dtype=np.float64),
        )

    @classmethod
    def from_grid(
        cls,
        t: float,
        min_x: float,
        min_y: float,
        width: float,
        height: float,
        nx: int,
        ny: int,
    ) -> "QueryBatch":
        """All cell probes of an ``(ny, nx)`` heatmap grid, row-major.

        Cell ``(i, j)`` lands at flat index ``j * nx + i``, so a result
        array reshapes straight into the ``(ny, nx)`` grid.  Degenerate
        axes (``nx == 1`` / ``ny == 1``) probe the centre of the box, the
        same convention as :meth:`Heatmap.cell_center`.  Fractions are
        computed exactly as the scalar loop (``i / (n - 1)``) so both
        paths probe bit-identical coordinates.
        """
        if nx < 1 or ny < 1:
            raise ValueError("grid must have at least one cell per axis")
        fx = np.full(nx, 0.5) if nx == 1 else np.arange(nx, dtype=np.float64) / (nx - 1)
        fy = np.full(ny, 0.5) if ny == 1 else np.arange(ny, dtype=np.float64) / (ny - 1)
        xs = min_x + fx * width
        ys = min_y + fy * height
        gx, gy = np.meshgrid(xs, ys)  # shape (ny, nx)
        ts = np.full(nx * ny, float(t))
        return cls(ts, gx.ravel(), gy.ravel())

    def __len__(self) -> int:
        return len(self.t)

    def __iter__(self) -> Iterator[QueryTuple]:
        for i in range(len(self)):
            yield self.query(i)

    def query(self, i: int) -> QueryTuple:
        return QueryTuple(float(self.t[i]), float(self.x[i]), float(self.y[i]))

    def take(self, indices: Sequence[int] | np.ndarray) -> "QueryBatch":
        idx = np.asarray(indices, dtype=np.intp)
        return QueryBatch(self.t[idx], self.x[idx], self.y[idx])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"QueryBatch(n={len(self)})"


class BatchResult:
    """Columnar answers to one :class:`QueryBatch`.

    ``values[i]`` is NaN when query ``i`` went unanswered; ``answered``
    keeps the distinction explicit so a model that legitimately *predicts*
    NaN is not conflated with "no data" (the scalar path's ``None``).
    """

    __slots__ = ("queries", "values", "support", "answered")

    def __init__(
        self,
        queries: QueryBatch,
        values: np.ndarray,
        support: np.ndarray,
        answered: Optional[np.ndarray] = None,
    ) -> None:
        values = np.asarray(values, dtype=np.float64)
        support = np.asarray(support, dtype=np.int64)
        n = len(queries)
        if len(values) != n or len(support) != n:
            raise ValueError("values/support must match the query batch length")
        if answered is None:
            answered = ~np.isnan(values)
        else:
            answered = np.asarray(answered, dtype=bool)
            if len(answered) != n:
                raise ValueError("answered mask must match the query batch length")
        # Unanswered slots always read as NaN, whatever the processor wrote.
        values = np.where(answered, values, np.nan)
        self.queries = queries
        self.values = values
        self.support = support
        self.answered = answered

    def __len__(self) -> int:
        return len(self.values)

    @property
    def n_answered(self) -> int:
        return int(np.count_nonzero(self.answered))

    def result(self, i: int) -> QueryResult:
        """Row view: the scalar :class:`QueryResult` for query ``i``."""
        value = float(self.values[i]) if self.answered[i] else None
        return QueryResult(
            query=self.queries.query(i), value=value, support=int(self.support[i])
        )

    def results(self) -> List[QueryResult]:
        return [self.result(i) for i in range(len(self))]

    def grid(self, ny: int, nx: int) -> np.ndarray:
        """Values reshaped to an ``(ny, nx)`` heatmap grid (NaN = no data)."""
        if ny * nx != len(self):
            raise ValueError(f"cannot reshape {len(self)} results to ({ny}, {nx})")
        return self.values.reshape(ny, nx).copy()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BatchResult(n={len(self)}, answered={self.n_answered})"


@runtime_checkable
class PointQueryProcessor(Protocol):
    """A method for answering one query tuple against one window.

    Processors may additionally expose a vectorised
    ``process_batch(QueryBatch) -> BatchResult`` (all built-in processors
    do); callers should go through :func:`process_batch`, which falls back
    to the scalar loop when the method is absent.  ``process_batch`` is
    kept out of the protocol so that minimal scalar-only processors still
    satisfy ``isinstance`` checks.
    """

    name: str

    def process(self, query: QueryTuple) -> QueryResult:
        ...


def process_batch_scalar(
    processor: PointQueryProcessor, queries: QueryBatch
) -> BatchResult:
    """Reference batched execution: one ``process`` call per query.

    This is both the fallback for scalar-only processors and the oracle
    the equivalence tests compare the vectorised implementations against.
    """
    n = len(queries)
    values = np.full(n, np.nan)
    support = np.zeros(n, dtype=np.int64)
    answered = np.zeros(n, dtype=bool)
    for i in range(n):
        res = processor.process(queries.query(i))
        if res.value is not None:
            values[i] = res.value
            answered[i] = True
        support[i] = res.support
    return BatchResult(queries, values, support, answered)


def process_batch(processor: PointQueryProcessor, queries: QueryBatch) -> BatchResult:
    """Batched execution through ``processor``'s fastest available path."""
    batched = getattr(processor, "process_batch", None)
    if batched is not None:
        return batched(queries)
    return process_batch_scalar(processor, queries)
