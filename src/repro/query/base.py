"""Common types for query processors."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, runtime_checkable

from repro.data.tuples import QueryTuple


@dataclass(frozen=True)
class QueryResult:
    """Answer to one query tuple.

    ``value`` is the interpolated sensor value ``ŝ_l``; ``None`` when the
    method found no supporting data (e.g. no raw tuples within radius r —
    possible under geo-temporal skew, and exactly the failure mode the
    model cover avoids).  ``support`` is the number of raw tuples (naive /
    indexed) or kept model (always 1) behind the answer.
    """

    query: QueryTuple
    value: Optional[float]
    support: int = 0

    @property
    def answered(self) -> bool:
        return self.value is not None


@runtime_checkable
class PointQueryProcessor(Protocol):
    """A method for answering one query tuple against one window."""

    name: str

    def process(self, query: QueryTuple) -> QueryResult:
        ...
