"""Region-sharded scatter-gather query execution.

:class:`ShardedQueryEngine` answers the same three request shapes as the
single-node :class:`~repro.query.engine.QueryEngine` — point queries,
continuous streams, heatmap grids — against a
:class:`~repro.storage.shards.ShardRouter` holding one database per
geographic region.

**Exact methods** (``naive`` and the index kinds) are radius averages
over the global window, which is a cross-shard operation: a query disk
near a region border draws tuples from several shards.  The engine
scatters each query to every shard whose ownership region the disk can
reach (:meth:`RegionGrid.disk_cell_ranges`), each shard reports its
*hits* — ``(query, global stream position, sensor value)`` triples
within radius — and the gather step merges them **exactly**: hits are
ordered by ``(query, stream position)`` (one int64 radix sort) and each
query's values are summed with one segmented reduction.  Every tuple is
owned by exactly one shard and keeps its global stream position, so the
ordered hit sequence — and hence every summed byte — depends only on
the query and the stream, never on how the regions carved it up: answers
are byte-identical for every shard count, including the 1-shard
configuration (``tests/test_engine_equivalence.py`` enforces this).

**Model-cover** answers come from the *owning* shard's cover, fitted on
that shard's slice of the window: a regional model, deliberately
shard-local (per-region models are the scaling story — fitting stays
per-shard and invalidation never crosses regions).  Its answers therefore
legitimately depend on the partition; when the owning shard has no tuples
in the window (so no cover can be fitted), the engine **falls back** to
the exact scatter-gather average, which is again partition-invariant.

**Planner integration**: ``method="auto"`` consults the cost-based
:class:`~repro.query.planner.QueryPlanner` once per ``(shard, window)``,
over that shard's own slice statistics.  Exact scans pick naive-vs-index
per scanning shard; when the engine's profile tolerates model answers,
the owning shard may answer with its cover instead.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.adkmn import AdKMNConfig, fit_adkmn
from repro.data.tuples import QueryTuple, TupleBatch
from repro.geo.coords import BoundingBox
from repro.query.base import BatchResult, QueryBatch, QueryResult
from repro.query.executor import BatchExecutor
from repro.query.indexed import IndexedProcessor, available_index_kinds
from repro.query.modelcover import ModelCoverProcessor
from repro.query.planner import QueryPlanner, QueryProfile
from repro.storage.shards import ShardRouter

SHARDED_METHODS = ("naive",) + available_index_kinds() + ("model-cover", "auto")

_MAX_CHUNK_CELLS = 8_000_000  # same footprint cap as the naive batch scan

# Exact hit partials: parallel (query position, global stream position,
# sensor value) arrays — the unit shards return and the gather step merges.
HitPartial = Tuple[np.ndarray, np.ndarray, np.ndarray]


def scan_hits(
    window: TupleBatch, gids: np.ndarray, queries: QueryBatch, radius_m: float
) -> HitPartial:
    """All ``(query, stream position, value)`` hit triples of a radius scan.

    The vectorised twin of the naive scan that keeps the individual hits
    instead of averaging them — exact merging needs them.  ``gids`` are
    the window rows' global stream positions, aligned with ``window``.
    Chunked like :meth:`NaiveProcessor.process_batch` to bound the
    distance-matrix footprint.
    """
    m, n = len(queries), len(window)
    if not m or not n:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, np.empty(0)
    wx, wy, ws = window.x, window.y, window.s
    r2 = radius_m * radius_m
    chunk = max(1, _MAX_CHUNK_CELLS // n)
    probe_parts: List[np.ndarray] = []
    gid_parts: List[np.ndarray] = []
    value_parts: List[np.ndarray] = []
    for start in range(0, m, chunk):
        stop = min(start + chunk, m)
        qx = queries.x[start:stop, None]
        qy = queries.y[start:stop, None]
        inside = (wx[None, :] - qx) ** 2 + (wy[None, :] - qy) ** 2 <= r2
        qi, ti = np.nonzero(inside)
        probe_parts.append(qi + start)
        gid_parts.append(gids[ti])
        value_parts.append(ws[ti])
    return (
        np.concatenate(probe_parts),
        np.concatenate(gid_parts),
        np.concatenate(value_parts),
    )


def index_hits(
    processor: IndexedProcessor, gids: np.ndarray, queries: QueryBatch
) -> HitPartial:
    """Hit triples via an index — identical hit set to :func:`scan_hits`."""
    s = processor.window.s
    probe_parts: List[np.ndarray] = []
    gid_parts: List[np.ndarray] = []
    value_parts: List[np.ndarray] = []
    for i, hits in enumerate(processor.query_radius_bulk(queries.x, queries.y)):
        if hits:
            idx = np.asarray(hits, dtype=np.intp)
            probe_parts.append(np.full(len(idx), i, dtype=np.int64))
            gid_parts.append(gids[idx])
            value_parts.append(s[idx])
    if not probe_parts:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, np.empty(0)
    return (
        np.concatenate(probe_parts),
        np.concatenate(gid_parts),
        np.concatenate(value_parts),
    )


def merge_hit_partials(
    n_queries: int,
    n_stream_rows: int,
    partials: Sequence[HitPartial],
    queries: QueryBatch,
) -> BatchResult:
    """Exact partition-independent gather of per-shard hit partials.

    Hits are put in canonical ``(query, stream position)`` order — a
    single int64 radix sort of the composite key — and each query's
    values are summed with one segmented ``np.add.reduceat``.  A tuple is
    owned by exactly one shard and its stream position never changes, so
    the canonical sequence per query is *the stream order itself*: every
    output byte is independent of the region partition, and the 1-shard
    and N-shard configurations agree exactly.
    """
    values = np.full(n_queries, np.nan)
    support = np.zeros(n_queries, dtype=np.int64)
    live = [p for p in partials if len(p[0])]
    if live:
        probe = np.concatenate([p for p, _, _ in live])
        gid = np.concatenate([g for _, g, _ in live])
        vals = np.concatenate([v for _, _, v in live])
        # Under concurrent ingest a hit's gid can transiently exceed the
        # row counter the caller read; widen the stride so the composite
        # sort key stays collision-free either way.
        stride = np.int64(max(n_stream_rows, int(gid.max()) + 1, 1))
        order = np.argsort(probe.astype(np.int64) * stride + gid, kind="stable")
        probe = probe[order]
        vals = vals[order]
        seg_starts = np.concatenate(
            ([0], np.flatnonzero(np.diff(probe) != 0) + 1)
        )
        sums = np.add.reduceat(vals, seg_starts)
        hit_queries = probe[seg_starts]
        counts = np.bincount(probe, minlength=n_queries)
        support = counts.astype(np.int64)
        values[hit_queries] = sums / counts[hit_queries]
    return BatchResult(queries, values, support, answered=support > 0)


class ShardedQueryEngine:
    """Scatter-gather query engine over a region-sharded tuple store.

    ``profile`` parameterises the per-shard planner used by
    ``method="auto"`` (its ``needs_exact_average`` decides whether auto
    may serve model answers); ``max_workers`` caps the thread pool the
    per-shard tasks fan out on.
    """

    DEFAULT_CACHE_CAPACITY = 128

    def __init__(
        self,
        router: ShardRouter,
        radius_m: float = 1000.0,
        config: Optional[AdKMNConfig] = None,
        profile: Optional[QueryProfile] = None,
        cache_capacity: int = DEFAULT_CACHE_CAPACITY,
        max_workers: Optional[int] = None,
    ) -> None:
        if radius_m < 0:
            raise ValueError("radius must be non-negative")
        if cache_capacity < 1:
            raise ValueError("cache_capacity must be at least 1")
        self.router = router
        self.radius_m = radius_m
        self.config = config or AdKMNConfig()
        self.profile = profile or QueryProfile(radius_m=radius_m)
        self._executor = BatchExecutor(max_workers=max_workers)
        # One bounded LRU for index processors, cover processors and
        # planner verdicts, keyed per (shard, window, ...).  Every key is
        # stamped with the shard slice's *content epoch*
        # (:meth:`ShardRouter.shard_window_epoch`): ingest that lands
        # tuples in a shard's slice of an open global window advances the
        # stamp, so entries built on a partial window are never served
        # after further ingest (they simply age out of the LRU), while
        # sealed windows keep their frozen stamps — and their cache hits.
        # Stamps are always read *before* the slice they stamp, so a
        # racing ingest can only make an entry key conservatively old,
        # never serve a stale processor under a fresh stamp.
        self._cache: "OrderedDict[tuple, object]" = OrderedDict()
        self._cache_capacity = cache_capacity
        self._cache_lock = threading.RLock()

    # -- lifecycle ---------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return self.router.n_shards

    @property
    def executor(self) -> BatchExecutor:
        return self._executor

    def close(self) -> None:
        """Release the worker pool (idempotent; recreated on demand)."""
        self._executor.shutdown()

    def __enter__(self) -> "ShardedQueryEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- shared caches -----------------------------------------------------

    def _cached(self, key: tuple, build):
        """Bounded-LRU lookup-or-build.

        The build runs *outside* the lock so concurrent shard tasks can
        materialise distinct processors in parallel (a lost insert race
        just discards the duplicate — builds only read immutable window
        slices, so duplicates are equivalent).
        """
        with self._cache_lock:
            if key in self._cache:
                self._cache.move_to_end(key)
                return self._cache[key]
        return self._cache_insert(key, build())

    def _cache_insert(self, key: tuple, value):
        with self._cache_lock:
            if key in self._cache:  # another thread won the build race
                self._cache.move_to_end(key)
                return self._cache[key]
            self._cache[key] = value
            while len(self._cache) > self._cache_capacity:
                self._cache.popitem(last=False)
            return value

    def _index_processor(
        self, s: int, c: int, kind: str, stamp: int, sub: TupleBatch
    ) -> IndexedProcessor:
        """Index over the given shard slice of window ``c`` (cached)."""
        return self._cached(
            ("index", s, c, kind, stamp),
            lambda: IndexedProcessor(sub, kind=kind, radius_m=self.radius_m),
        )

    def _cover_processor(
        self, s: int, c: int, stamp: int, sub: TupleBatch
    ) -> ModelCoverProcessor:
        def build() -> ModelCoverProcessor:
            result = fit_adkmn(sub, self.config, window_c=c)
            return ModelCoverProcessor(result.cover)

        return self._cached(("cover", s, c, stamp), build)

    def _planned_method(
        self, s: int, c: int, exact: bool, stamp: int, sub: TupleBatch
    ) -> str:
        """The planner's per-shard method choice for window ``c``.

        ``exact=True`` restricts the plan to raw-data methods (scatter
        scans must merge exactly); planning happens once per (shard,
        window content epoch, exactness) and is cached alongside the
        processors.
        """

        def build() -> str:
            profile = QueryProfile(
                expected_queries=self.profile.expected_queries,
                needs_exact_average=exact or self.profile.needs_exact_average,
                radius_m=self.radius_m,
            )
            planner = QueryPlanner(sub, config=self.config)
            method = planner.choose(profile).method
            if method == "model-cover":
                # Pricing the model-cover plan already paid for the fit;
                # seed the cover cache so the execution path does not run
                # the same Ad-KMN fit on the same slice a second time.
                self._cache_insert(
                    ("cover", s, c, stamp), planner.processor_for(profile)
                )
            return method

        return self._cached(("plan", s, c, exact, stamp), build)

    # -- scatter-gather core -----------------------------------------------

    def _shard_hit_tasks(
        self, c: int, positions: np.ndarray, queries: QueryBatch, method: str
    ) -> List:
        """One thunk per shard that must scan for this window's queries.

        ``positions`` maps the window group's local query indices back to
        stream positions; each thunk returns a :data:`HitPartial` in
        stream positions, ready for the global merge.
        """
        grid = self.router.grid
        i_lo, i_hi, j_lo, j_hi = grid.disk_cell_ranges(
            queries.x, queries.y, self.radius_m
        )
        tasks = []
        for s in range(self.n_shards):
            # One coherent read: the stamp identifies exactly these rows.
            stamp, sub, gids = self.router.snapshot_window(s, c)
            if not len(sub):
                continue
            i, j = s % grid.nx, s // grid.nx
            mask = (i_lo <= i) & (i <= i_hi) & (j_lo <= j) & (j <= j_hi)
            if not mask.any():
                continue
            local = np.flatnonzero(mask)
            shard_queries = queries.take(local)
            shard_positions = positions[local]

            def run(
                s=s, stamp=stamp, sub=sub, gids=gids,
                shard_queries=shard_queries, shard_positions=shard_positions,
            ) -> HitPartial:
                kind = method
                if kind == "auto":
                    kind = self._planned_method(s, c, exact=True, stamp=stamp, sub=sub)
                if kind == "naive":
                    probe, gid, vals = scan_hits(
                        sub, gids, shard_queries, self.radius_m
                    )
                else:
                    proc = self._index_processor(s, c, kind, stamp, sub)
                    probe, gid, vals = index_hits(proc, gids, shard_queries)
                return shard_positions[probe], gid, vals

            tasks.append(run)
        return tasks

    def _exact_batch(self, batch: QueryBatch, method: str) -> BatchResult:
        """Scatter-gather an exact radius-average batch across shards."""
        windows = self.router.windows_for_times(batch.t)
        tasks: List = []
        for c in np.unique(windows):
            positions = np.flatnonzero(windows == c)
            tasks.extend(
                self._shard_hit_tasks(
                    int(c), positions, batch.take(positions), method
                )
            )
        partials = self._executor.map(lambda run: run(), tasks)
        return merge_hit_partials(
            len(batch), self.router.global_count(), partials, batch
        )

    def _model_cover_batch(self, batch: QueryBatch, allow_plan: bool) -> BatchResult:
        """Owner-shard cover evaluation with exact fallback.

        Queries whose owning shard has no tuples in the responsible
        window (or, with ``allow_plan``, whose owner's planner prefers a
        raw-data method) are answered by the exact scatter-gather path
        instead — the "model-cover fallback".
        """
        n = len(batch)
        values = np.full(n, np.nan)
        support = np.zeros(n, dtype=np.int64)
        answered = np.zeros(n, dtype=bool)
        windows = self.router.windows_for_times(batch.t)
        owners = self.router.grid.shards_of(batch.x, batch.y)
        fallback: List[np.ndarray] = []
        for c in np.unique(windows):
            in_window = windows == c
            for s in np.unique(owners[in_window]):
                positions = np.flatnonzero(in_window & (owners == s))
                s, c = int(s), int(c)
                stamp, sub, _ = self.router.snapshot_window(s, c)
                if not len(sub):
                    fallback.append(positions)
                    continue
                if (
                    allow_plan
                    and self._planned_method(s, c, exact=False, stamp=stamp, sub=sub)
                    != "model-cover"
                ):
                    fallback.append(positions)
                    continue
                proc = self._cover_processor(s, c, stamp, sub)
                res = proc.process_batch(batch.take(positions))
                values[positions] = res.values
                support[positions] = res.support
                answered[positions] = res.answered
        if fallback:
            positions = np.concatenate(fallback)
            # From the auto path, keep the fallback on the per-shard
            # planner (exact mode) — identical answers, planned scans.
            exact_method = "auto" if allow_plan else "naive"
            res = self._exact_batch(batch.take(positions), exact_method)
            values[positions] = res.values
            support[positions] = res.support
            answered[positions] = res.answered
        return BatchResult(batch, values, support, answered)

    # -- the three web-interface modes -------------------------------------

    def continuous_query_batch(
        self,
        queries: Sequence[QueryTuple] | QueryBatch,
        method: str = "naive",
    ) -> BatchResult:
        """Columnar continuous-query mode, results in stream order."""
        if method not in SHARDED_METHODS:
            raise ValueError(
                f"unknown method {method!r}; known: {SHARDED_METHODS}"
            )
        batch = (
            queries
            if isinstance(queries, QueryBatch)
            else QueryBatch.from_queries(queries)
        )
        if not len(batch):
            return BatchResult(
                batch, np.empty(0), np.empty(0, dtype=np.int64)
            )
        if method == "model-cover":
            return self._model_cover_batch(batch, allow_plan=False)
        if method == "auto" and not self.profile.needs_exact_average:
            return self._model_cover_batch(batch, allow_plan=True)
        return self._exact_batch(batch, method)

    def continuous_query(
        self,
        queries: Sequence[QueryTuple],
        method: str = "naive",
    ) -> List[QueryResult]:
        return self.continuous_query_batch(queries, method=method).results()

    def point_query(
        self, t: float, x: float, y: float, method: str = "naive"
    ) -> QueryResult:
        batch = QueryBatch(
            np.array([t]), np.array([x]), np.array([y])
        )
        return self.continuous_query_batch(batch, method=method).result(0)

    def heatmap_grid(
        self,
        t: float,
        bounds: BoundingBox,
        nx: int = 40,
        ny: int = 30,
        method: str = "naive",
    ) -> np.ndarray:
        """Heatmap mode: an ``(ny, nx)`` grid scattered across shards.

        Each shard only scans the cells whose disks can reach its region
        — the pruning that turns region sharding into a heatmap
        throughput win — and partial tiles merge exactly.
        """
        probes = QueryBatch.from_grid(
            t, bounds.min_x, bounds.min_y, bounds.width, bounds.height, nx, ny
        )
        return self.continuous_query_batch(probes, method=method).grid(ny, nx)
