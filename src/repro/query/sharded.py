"""Region-sharded scatter-gather query execution.

:class:`ShardedQueryEngine` answers the same three request shapes as the
single-node :class:`~repro.query.engine.QueryEngine` — point queries,
continuous streams, heatmap grids — against a
:class:`~repro.storage.shards.ShardRouter` holding one database per
geographic region.

Since the plan-pipeline refactor the engine is a thin shell over
``repro/query/pipeline``: a request is compiled against a pinned
:class:`~repro.query.pipeline.binding.RouterBinding` into either a
**merge-shaped** plan (exact methods: per-(window, shard) hit scans plus
the exact partition-independent gather of
:func:`~repro.query.pipeline.gather.merge_hit_partials` — answers
byte-identical at any shard count) or a **scatter-shaped** cover plan
(owner-shard model evaluation with an exact fallback sub-plan), and the
shared :class:`~repro.query.pipeline.executor.PlanExecutor` runs it.
Index and cover processors live in the one epoch-keyed
:class:`~repro.query.pipeline.cache.ProcessorCache` (stamped with shard
window *content epochs*, so ingest invalidates exactly what it touched),
and ``method="auto"`` consults the single statistics-backed
:class:`~repro.query.pipeline.planner.PipelinePlanner` per ``(shard,
window)``, which recalibrates from the executor's observed op timings.

The exact-merge semantics (stream-ordered hit triples, one radix sort,
one segmented reduction) are documented with the primitives in
:mod:`repro.query.pipeline.gather`, which this module re-exports for
compatibility.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.adkmn import AdKMNConfig, fit_adkmn
from repro.data.tuples import QueryTuple, TupleBatch
from repro.geo.coords import BoundingBox
from repro.query.base import BatchResult, QueryBatch, QueryResult
from repro.query.executor import BatchExecutor
from repro.query.indexed import IndexedProcessor, available_index_kinds
from repro.query.modelcover import ModelCoverProcessor
from repro.query.pipeline.binding import RouterBinding
from repro.query.pipeline.cache import CacheStats, ProcessorCache

# Re-exported for compatibility: the exact-gather primitives moved into
# the pipeline package.
from repro.query.pipeline.gather import (  # noqa: F401
    HitPartial,
    index_hits,
    merge_hit_partials,
    scan_hits,
)
from repro.query.pipeline.executor import PlanExecutor, PlanRuntime, build_sharded_plan
from repro.query.pipeline.plan import (
    VECTORISED_POLICY,
    ExecutionPlan,
    PlanReport,
    PruneStats,
    ScanOp,
)
from repro.query.pipeline.planner import PipelinePlanner, PlannerFeedback
from repro.query.planner import QueryProfile
from repro.storage.shards import ShardRouter, StaleLayoutError

SHARDED_METHODS = ("naive",) + available_index_kinds() + ("model-cover", "auto")


class ShardedQueryEngine:
    """Scatter-gather query engine over a region-sharded tuple store.

    ``profile`` parameterises the per-shard planner used by
    ``method="auto"`` (its ``needs_exact_average`` decides whether auto
    may serve model answers); ``max_workers`` caps the thread pool the
    per-shard tasks fan out on.
    """

    DEFAULT_CACHE_CAPACITY = 128

    def __init__(
        self,
        router: ShardRouter,
        radius_m: float = 1000.0,
        config: Optional[AdKMNConfig] = None,
        profile: Optional[QueryProfile] = None,
        cache_capacity: int = DEFAULT_CACHE_CAPACITY,
        max_workers: Optional[int] = None,
        prune: bool = True,
    ) -> None:
        if radius_m < 0:
            raise ValueError("radius must be non-negative")
        self.router = router
        self.radius_m = radius_m
        # Plan-time scatter pruning (geometry + zone-map sketches).
        # Answers are byte-identical either way; False compiles the full
        # scatter — the baseline the pruning benchmark measures against.
        self.prune = prune
        self._prune_stats = PruneStats()
        self.config = config or AdKMNConfig()
        self.profile = profile or QueryProfile(radius_m=radius_m)
        self._executor = BatchExecutor(max_workers=max_workers)
        # The one epoch-keyed bounded LRU for index processors, cover
        # processors and planner verdicts, keyed per (shard, window, ...)
        # and stamped with the shard slice's *content epoch*
        # (:meth:`ShardRouter.shard_window_epoch`): ingest that lands
        # tuples in a shard's slice of an open global window advances the
        # stamp, so entries built on a partial window are never served
        # after further ingest, while sealed windows keep their frozen
        # stamps — and their cache hits.  Stamps are always read *before*
        # the slice they stamp (the binding's coherent snapshot_window
        # read), so a racing ingest can only make an entry key
        # conservatively old, never serve a stale processor under a
        # fresh stamp.
        self._cache = ProcessorCache(cache_capacity)
        # The planner keeps its verdicts in its own epoch-keyed store:
        # one verdict per (shard, window, exactness) would otherwise
        # compete with the covers/indexes themselves for LRU slots and
        # thrash the expensive entries out on wide cover plans.
        self._planner = PipelinePlanner(
            self.profile,
            config=self.config,
            radius_m=radius_m,
            feedback=PlannerFeedback(),
        )
        # Read-replica plan: shard id -> replica count R > 1.  Plan
        # builders split the shard's hit scans into R ops over disjoint
        # query chunks (byte-identical answers; the exact gather is
        # canonical), so one hot shard's scan load spreads across pool
        # threads / worker processes.  Set by the rebalancer (or tests)
        # via :meth:`set_replicas`; replaced wholesale, never mutated.
        self._replicas: Dict[int, int] = {}

    # -- lifecycle ---------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return self.router.n_shards

    @property
    def executor(self) -> BatchExecutor:
        return self._executor

    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss/evict/stale counters of the processor cache (live)."""
        return self._cache.stats

    @property
    def processor_cache(self) -> ProcessorCache:
        """The engine's epoch-keyed processor/plan cache."""
        return self._cache

    @property
    def planner(self) -> PipelinePlanner:
        """The statistics-backed planner behind ``method="auto"``."""
        return self._planner

    @property
    def prune_stats(self) -> PruneStats:
        """Cumulative scatter-pruning counters across every plan built."""
        return self._prune_stats

    @property
    def replicas(self) -> Dict[int, int]:
        """The active read-replica plan (shard id -> replica count)."""
        return dict(self._replicas)

    def set_replicas(self, replicas: Optional[Mapping[int, int]]) -> None:
        """Install a read-replica plan for subsequently built plans.

        Entries with a count below 2 are dropped (one replica is just
        the shard itself).  Plans already built keep the replica layout
        they were compiled with — replicas are a plan-shape choice, not
        a storage state, so no epoch is involved.
        """
        cleaned: Dict[int, int] = {}
        for s, r in (replicas or {}).items():
            if int(r) >= 2:
                cleaned[int(s)] = int(r)
        self._replicas = cleaned

    def close(self) -> None:
        """Release the worker pool (idempotent; recreated on demand)."""
        self._executor.shutdown()

    def __enter__(self) -> "ShardedQueryEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- shared caches -----------------------------------------------------

    def _index_processor(
        self, s: int, c: int, kind: str, stamp: int, sub: TupleBatch
    ) -> IndexedProcessor:
        """Index over the given shard slice of window ``c`` (cached).

        Builds outside the cache lock so concurrent shard tasks can
        materialise distinct processors in parallel (a lost insert race
        just discards the duplicate — builds only read immutable window
        slices, so duplicates are equivalent).
        """
        return self._cache.get_or_build(
            ("index", s, c, kind),
            stamp,
            lambda: IndexedProcessor(sub, kind=kind, radius_m=self.radius_m),
            shared_build=True,
        )

    def _cover_processor(
        self, s: int, c: int, stamp: int, sub: TupleBatch
    ) -> ModelCoverProcessor:
        def build() -> ModelCoverProcessor:
            result = fit_adkmn(sub, self.config, window_c=c)
            return ModelCoverProcessor(result.cover)

        return self._cache.get_or_build(
            ("cover", s, c), stamp, build, shared_build=True
        )

    def _seed_cover(self, s: int, c: int, stamp: int, proc) -> None:
        """Planner hook: pricing a model-cover plan already paid for the
        fit, so seed the cover cache and never run the same Ad-KMN fit on
        the same slice a second time."""
        self._cache.insert(("cover", s, c), stamp, proc)

    def _planned_method(
        self, s: int, c: int, exact: bool, stamp: int, sub: TupleBatch
    ) -> str:
        """The planner's per-shard method choice for window ``c``.

        ``exact=True`` restricts the plan to raw-data methods (scatter
        scans must merge exactly); planning happens once per (shard,
        window content epoch, exactness) and is cached alongside the
        processors.
        """
        return self._planner.method_for(
            s,
            c,
            stamp,
            sub,
            exact,
            seed_cover=lambda proc: self._seed_cover(s, c, stamp, proc),
        )

    # -- plan pipeline -----------------------------------------------------

    def binding(self) -> RouterBinding:
        """A pinned snapshot binding over the router."""
        return RouterBinding(self.router)

    def plan(
        self,
        queries: Sequence[QueryTuple] | QueryBatch,
        method: str = "naive",
        want_estimates: bool = False,
        prune: Optional[bool] = None,
        binding: Optional[RouterBinding] = None,
    ) -> ExecutionPlan:
        """Compile a query stream against a freshly pinned binding.

        ``prune`` overrides the engine's scatter-pruning default for
        this one plan (the benchmark's unpruned baseline path);
        ``binding`` reuses an externally pinned snapshot (the
        subscription maintenance path) instead of pinning a fresh one.

        When the engine pins the binding itself, a rebalance racing the
        build (:class:`~repro.storage.shards.StaleLayoutError`) is
        retried against a fresh binding — rebalances are rare, so the
        loop terminates in practice after one retry.  Externally pinned
        bindings propagate the error: the caller owns the snapshot and
        must decide how to re-pin.
        """
        if method not in SHARDED_METHODS:
            raise ValueError(
                f"unknown method {method!r}; known: {SHARDED_METHODS}"
            )
        batch = (
            queries
            if isinstance(queries, QueryBatch)
            else QueryBatch.from_queries(queries)
        )
        attempts = 1 if binding is not None else 3
        for attempt in range(attempts):
            try:
                plan = build_sharded_plan(
                    binding if binding is not None else self.binding(),
                    batch,
                    method,
                    self._planner,
                    self.radius_m,
                    policy=VECTORISED_POLICY,
                    seed_cover=self._seed_cover,
                    want_estimates=want_estimates,
                    prune=self.prune if prune is None else prune,
                    replicas=self._replicas or None,
                )
                break
            except StaleLayoutError:
                if binding is not None or attempt == attempts - 1:
                    raise
        self._prune_stats.observe(plan)
        return plan

    def _plan_executor(self, plan: ExecutionPlan) -> PlanExecutor:
        def materialise(op, bound):
            stamp, sub, _gids = bound
            s, c = op.context.shard, op.context.window_c
            return self._cover_processor(s, c, stamp, sub)

        def prepare_hits(op: ScanOp, bound):
            # Materialise the index inside the pool task (builds stay
            # parallel across shards) but before the executor's timer, so
            # the planner's feedback only ever observes scan cost.  The
            # processor is returned — not re-fetched in hits() — so LRU
            # pressure cannot evict-and-rebuild it inside the timer.
            stamp, sub, _gids = bound
            if op.method == "naive":
                return None
            return self._index_processor(
                op.context.shard, op.context.window_c, op.method, stamp, sub
            )

        def hits(op: ScanOp, bound, prepared=None):
            stamp, sub, gids = bound
            if op.method == "naive":
                return scan_hits(sub, gids, op.queries, self.radius_m)
            proc = prepared if prepared is not None else self._index_processor(
                op.context.shard, op.context.window_c, op.method, stamp, sub
            )
            return index_hits(proc, gids, op.queries)

        runtime = PlanRuntime(
            plan.binding, processor=materialise, hits=hits, prepare_hits=prepare_hits
        )
        # Feed per-op scan load to the router's tracker (when it has
        # one) so the adaptive rebalancer sees read skew, not just
        # ingest skew.
        tracker = getattr(self.router, "load", None)
        return PlanExecutor(
            runtime,
            pool=self._executor,
            planner=self._planner,
            load=tracker.record_scan if tracker is not None else None,
        )

    def execute(
        self, plan: ExecutionPlan, report: Optional[PlanReport] = None
    ) -> BatchResult:
        """Run a compiled plan through the shared executor."""
        return self._plan_executor(plan).execute(plan, report)

    # -- the three web-interface modes -------------------------------------

    def continuous_query_batch(
        self,
        queries: Sequence[QueryTuple] | QueryBatch,
        method: str = "naive",
    ) -> BatchResult:
        """Columnar continuous-query mode, results in stream order."""
        if method not in SHARDED_METHODS:
            raise ValueError(
                f"unknown method {method!r}; known: {SHARDED_METHODS}"
            )
        batch = (
            queries
            if isinstance(queries, QueryBatch)
            else QueryBatch.from_queries(queries)
        )
        if not len(batch):
            return BatchResult(
                batch, np.empty(0), np.empty(0, dtype=np.int64)
            )
        return self.execute(self.plan(batch, method))

    def continuous_query(
        self,
        queries: Sequence[QueryTuple],
        method: str = "naive",
    ) -> List[QueryResult]:
        return self.continuous_query_batch(queries, method=method).results()

    def point_query(
        self, t: float, x: float, y: float, method: str = "naive"
    ) -> QueryResult:
        batch = QueryBatch(
            np.array([t]), np.array([x]), np.array([y])
        )
        return self.continuous_query_batch(batch, method=method).result(0)

    def heatmap_grid(
        self,
        t: float,
        bounds: BoundingBox,
        nx: int = 40,
        ny: int = 30,
        method: str = "naive",
    ) -> np.ndarray:
        """Heatmap mode: an ``(ny, nx)`` grid scattered across shards.

        Each shard only scans the cells whose disks can reach its region
        — the pruning that turns region sharding into a heatmap
        throughput win — and partial tiles merge exactly.
        """
        probes = QueryBatch.from_grid(
            t, bounds.min_x, bounds.min_y, bounds.width, bounds.height, nx, ny
        )
        return self.continuous_query_batch(probes, method=method).grid(ny, nx)
