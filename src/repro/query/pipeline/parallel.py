"""Process-parallel execution of sharded plans over shared-memory shards.

The serial :class:`~repro.query.pipeline.executor.PlanExecutor` fans plan
ops across a *thread* pool — real concurrency only where numpy drops the
GIL.  This module executes the same
:class:`~repro.query.pipeline.plan.ExecutionPlan` IR on a persistent pool
of **worker processes**, one interpreter per worker, so hit scans, index
builds and Ad-KMN cover fits run truly in parallel:

* each region shard's committed raw-tuple prefix is published once into
  a :mod:`multiprocessing.shared_memory` block
  (:class:`~repro.storage.shm.ShardExportRegistry`) — workers slice plan
  ops' bound windows zero-copy out of the block, so a request ships only
  the op metadata and its query coordinates, never the tuple columns;
* ops are serialized as plain dicts at the plan-IR boundary: kind,
  method, shard-local ``[start, stop)`` row range (resolved from the
  plan's pinned binding, so workers read exactly the rows the builder
  pinned), query arrays, and the Ad-KMN config for cover ops;
* workers return hit triples / result arrays; the parent re-maps probe
  indices through each op's stream positions and merges with the *same*
  exact-gather primitive (:func:`~repro.query.pipeline.gather
  .merge_hit_partials`) the serial path uses.  The gather's canonical
  ``(query, stream position)`` radix sort makes the merged answer
  independent of which process produced which partial, so answers are
  **byte-identical** to the serial executor's at any worker count.

Worker-crash recovery: any failure on the process path — a worker killed
mid-query (``kill -9``), a pipe timeout, a lost shared-memory block, an
op the workers cannot serialize — abandons the process attempt and
re-runs the *whole plan* in-process through the owning engine's serial
executor.  The caller sees a correct (identical) answer either way;
the dead worker is respawned lazily on the next request.

Determinism note: worker-side cover fits call the same
:func:`~repro.core.adkmn.fit_adkmn` on the same pinned rows with the same
seeded config as the parent's cache build, so a cover answer computed in
a worker is bit-for-bit the answer the parent would have computed.
"""

from __future__ import annotations

import multiprocessing as mp
import traceback
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.query.base import BatchResult, QueryBatch
from repro.query.pipeline.gather import merge_hit_partials
from repro.query.pipeline.plan import (
    CoverOp,
    ExecutionPlan,
    FallbackOp,
    PlanReport,
    ScanOp,
)
from repro.storage.shm import ShardExportDescriptor, ShardExportRegistry, attach_shard

__all__ = ["ProcessPlanExecutor", "ProcessShardedEngine", "WorkerCrash"]


class WorkerCrash(RuntimeError):
    """A worker died, timed out or errored; the plan fell back in-process."""


class _Unsupported(RuntimeError):
    """Plan contains ops the process path cannot serialize."""


# -- worker side -------------------------------------------------------------
#
# The worker is a tiny interpreter over serialized op dicts.  It keeps two
# caches for the lifetime of the process: shared-memory attachments by
# block name, and built processors (indexes, fitted covers) keyed by the
# exact rows + method they were built from — so repeated heatmaps against
# sealed windows pay the fit exactly once per worker, mirroring the
# parent's epoch-keyed ProcessorCache (a block name pins immutable rows,
# so no epoch is needed in the key).


def _worker_main(conn) -> None:  # pragma: no cover - runs in child processes
    from repro.core.adkmn import fit_adkmn
    from repro.query.base import process_batch, process_batch_scalar
    from repro.query.indexed import IndexedProcessor
    from repro.query.modelcover import ModelCoverProcessor
    from repro.query.naive import NaiveProcessor
    from repro.query.pipeline.gather import index_hits, scan_hits

    attachments: Dict[str, object] = {}
    processors: Dict[tuple, object] = {}

    def resolve(spec):
        desc: ShardExportDescriptor = spec["descriptor"]
        attached = attachments.get(desc.shm_name)
        if attached is None:
            attached = attach_shard(desc)
            attachments[desc.shm_name] = attached
        start, stop = spec["start"], spec["stop"]
        sub = attached.batch.slice(start, stop)
        gids = attached.gids[start:stop]
        return desc.shm_name, sub, gids

    def processor_for(spec, sub, key_extra=()):
        name = spec["descriptor"].shm_name
        key = (name, spec["start"], spec["stop"], spec["method"]) + key_extra
        proc = processors.get(key)
        if proc is None:
            if spec["method"] == "model-cover":
                result = fit_adkmn(sub, spec["config"], window_c=spec["window_c"])
                proc = ModelCoverProcessor(result.cover)
            elif spec["method"] == "naive":
                proc = NaiveProcessor(sub, radius_m=spec["radius_m"])
            else:
                proc = IndexedProcessor(
                    sub, kind=spec["method"], radius_m=spec["radius_m"]
                )
            processors[key] = proc
        return proc

    def run_op(spec):
        _, sub, gids = resolve(spec)
        queries = QueryBatch(*spec["queries"])
        if spec["kind"] == "hits":
            if spec["method"] == "naive":
                probe, gid, vals = scan_hits(sub, gids, queries, spec["radius_m"])
            else:
                proc = processor_for(spec, sub)
                probe, gid, vals = index_hits(proc, gids, queries)
            return spec["op_index"], ("hits", probe, gid, vals)
        proc = processor_for(spec, sub, key_extra=(repr(spec.get("config")),))
        if spec.get("vectorise", True):
            res = process_batch(proc, queries)
        else:
            res = process_batch_scalar(proc, queries)
        return spec["op_index"], ("result", res.values, res.support, res.answered)

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg[0] == "stop":
            break
        if msg[0] == "ping":
            conn.send(("pong",))
            continue
        _, request_id, specs = msg
        try:
            conn.send(("ok", request_id, [run_op(spec) for spec in specs]))
        except Exception:
            conn.send(("err", request_id, traceback.format_exc()))
    conn.close()


# -- parent side -------------------------------------------------------------


class _Worker:
    """One persistent spawn-context worker behind a duplex pipe."""

    def __init__(self, ctx) -> None:
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=_worker_main, args=(child_conn,), daemon=True
        )
        self.process.start()
        child_conn.close()

    def alive(self) -> bool:
        return self.process.is_alive()

    def stop(self) -> None:
        try:
            if self.process.is_alive():
                self.conn.send(("stop",))
                self.process.join(timeout=2.0)
        except (BrokenPipeError, OSError):
            pass
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(timeout=2.0)
        self.conn.close()


class ProcessPlanExecutor:
    """Executes sharded plans on a persistent per-shard process pool.

    ``engine`` is the owning
    :class:`~repro.query.sharded.ShardedQueryEngine` — the process path
    reads its router for shard prefixes and its config/radius for op
    serialization, and its serial executor is the crash-recovery
    fallback.  Shard ``s`` is always served by worker ``s % processes``,
    so each worker's processor cache stays hot for its shards.
    """

    def __init__(
        self,
        engine,
        processes: int = 2,
        timeout_s: float = 120.0,
    ) -> None:
        if processes < 1:
            raise ValueError("processes must be at least 1")
        self.engine = engine
        self.processes = processes
        self.timeout_s = timeout_s
        self.registry = ShardExportRegistry()
        self._ctx = mp.get_context("spawn")
        self._workers: List[Optional[_Worker]] = [None] * processes
        self._request_counter = 0
        self.fallbacks = 0  # plans that degraded to in-process execution

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Stop every worker and unlink every shared-memory export."""
        for i, worker in enumerate(self._workers):
            if worker is not None:
                worker.stop()
                self._workers[i] = None
        self.registry.close()

    def __enter__(self) -> "ProcessPlanExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _worker(self, index: int) -> _Worker:
        worker = self._workers[index]
        if worker is None or not worker.alive():
            if worker is not None:
                worker.stop()
            worker = _Worker(self._ctx)
            self._workers[index] = worker
        return worker

    def _worker_for_shard(self, s: int) -> int:
        return s % self.processes

    # -- execution -----------------------------------------------------------

    def execute(
        self, plan: ExecutionPlan, report: Optional[PlanReport] = None
    ) -> BatchResult:
        """Run ``plan``; degrade to the engine's in-process executor on any
        worker failure (identical answer, never an error)."""
        try:
            return self._execute_process(plan)
        except (WorkerCrash, _Unsupported):
            self.fallbacks += 1
            return self.engine.execute(plan, report)

    def _execute_process(self, plan: ExecutionPlan) -> BatchResult:
        if plan.merge is not None:
            return self._execute_merge(plan)
        return self._execute_scatter(plan)

    def _execute_merge(self, plan: ExecutionPlan) -> BatchResult:
        ops: Sequence[ScanOp] = plan.ops  # type: ignore[assignment]
        replies = self._dispatch(plan, list(ops))
        partials = []
        for op, payload in zip(ops, replies):
            kind, probe, gid, vals = payload
            if kind != "hits":  # pragma: no cover - protocol invariant
                raise WorkerCrash("expected hit partial")
            partials.append((op.positions[probe], gid, vals))
        merge = plan.merge
        assert merge is not None
        return merge_hit_partials(
            merge.n_queries, merge.n_stream_rows, partials, plan.queries
        )

    def _execute_scatter(self, plan: ExecutionPlan) -> BatchResult:
        result_ops: List[ScanOp | CoverOp] = []
        fallback_ops: List[FallbackOp] = []
        for op in plan.ops:
            if isinstance(op, FallbackOp):
                fallback_ops.append(op)
            else:
                result_ops.append(op)
        replies = self._dispatch(plan, result_ops)
        results = []
        for op, payload in zip(result_ops, replies):
            kind, values, support, answered = payload
            if kind != "result":  # pragma: no cover - protocol invariant
                raise WorkerCrash("expected result arrays")
            results.append(BatchResult(op.queries, values, support, answered))
        # Sub-plans run on the process path too (they are merge-shaped) —
        # and if *they* crash-fall-back the whole plan falls back, keeping
        # one execution discipline per request.
        sub_results = [self._execute_process(fop.plan) for fop in fallback_ops]
        if (
            len(result_ops) == 1
            and not fallback_ops
            and len(result_ops[0].queries) == plan.n_queries
        ):
            return results[0]
        n = plan.n_queries
        values = np.full(n, np.nan)
        support = np.zeros(n, dtype=np.int64)
        answered = np.zeros(n, dtype=bool)
        for op, res in zip(result_ops, results):
            idx = op.positions
            values[idx] = res.values
            support[idx] = res.support
            answered[idx] = res.answered
        for fop, res in zip(fallback_ops, sub_results):
            idx = fop.positions
            values[idx] = res.values
            support[idx] = res.support
            answered[idx] = res.answered
        return BatchResult(plan.queries, values, support, answered)

    # -- op serialization ----------------------------------------------------

    def _serialize_op(self, plan: ExecutionPlan, op) -> dict:
        s = op.context.shard
        if s is None:
            raise _Unsupported("process execution needs sharded plan contexts")
        if not getattr(self.engine.router, "prefix_exportable", True):
            # Tiered routers page sealed windows to segment files, so no
            # contiguous in-memory shard prefix exists to export over
            # shared memory.  The executor's documented fallback runs the
            # whole plan in-process — byte-identical answers, same plan.
            raise _Unsupported("router does not export contiguous shard prefixes")
        c = op.context.window_c
        _stamp, sub, _gids = plan.binding.slice_for(s, c)
        router = self.engine.router
        # The binding's slice is pinned at plan-build time, but cuts and
        # shard prefixes are read *live* here — a shard split/merge
        # between build and dispatch would pair old-layout slices with
        # new-layout row ranges.  Detect the mismatch and take the
        # documented in-process fallback (the binding's memoised slices
        # make it byte-identical).
        layout = getattr(router, "layout_epoch", 0)
        if getattr(plan.binding, "layout_epoch", 0) != layout:
            raise _Unsupported("plan pinned an older shard layout")
        cuts = router.cuts(s)
        if c >= len(cuts):  # pragma: no cover - binding would have raised
            raise _Unsupported(f"window {c} has no recorded cut")
        start = cuts[c]
        stop = start + len(sub)
        descriptor = self.registry.ensure(
            s, stop, lambda: self._read_prefix(s), layout=layout
        )
        if getattr(router, "layout_epoch", 0) != layout:
            # A rebalance raced the cut/prefix reads above; the ranges
            # may describe the new layout's rows.
            raise _Unsupported("shard layout changed during serialization")
        spec = {
            "op_index": 0,  # assigned by the dispatcher
            "kind": "hits" if getattr(op, "emit", "result") == "hits" else "result",
            "method": op.method,
            "descriptor": descriptor,
            "start": start,
            "stop": stop,
            "window_c": c,
            "shard": s,
            "queries": (op.queries.t, op.queries.x, op.queries.y),
            "radius_m": self.engine.radius_m,
        }
        if op.method == "model-cover":
            spec["config"] = self.engine.config
        if isinstance(op, ScanOp) and op.emit == "result":
            spec["vectorise"] = op.vectorise
        return spec

    def _read_prefix(self, s: int):
        """Coherent committed prefix of shard ``s``: rows and aligned gids.

        Gids are appended before rows commit (the router's documented
        write order), so clamping the gid stream to the committed row
        count always yields a fully-aligned pair.
        """
        router = self.engine.router
        batch = router.database(s).raw_tuples()
        gids = router.shard_gids(s)[: len(batch)]
        return batch, gids

    # -- dispatch ------------------------------------------------------------

    def _dispatch(self, plan: ExecutionPlan, ops: Sequence) -> List[tuple]:
        """Run ``ops`` across the pool; returns payloads in op order."""
        if not ops:
            return []
        by_worker: Dict[int, List[dict]] = {}
        # Deterministic least-loaded placement for replica ops: a
        # shard's primary op (replica 0) stays on its home worker, so
        # that worker's processor cache stays hot; the extra replica
        # chunks of a hot shard go wherever the least query load has
        # accumulated so far (ties break on the lowest worker index).
        loads = [0] * self.processes
        for op_index, op in enumerate(ops):
            spec = self._serialize_op(plan, op)
            spec["op_index"] = op_index
            if getattr(op, "replica", 0) > 0:
                windex = min(range(self.processes), key=lambda w: (loads[w], w))
            else:
                windex = self._worker_for_shard(spec["shard"])
            loads[windex] += len(op.queries)
            by_worker.setdefault(windex, []).append(spec)
        self._request_counter += 1
        request_id = self._request_counter
        pending: List[Tuple[int, _Worker]] = []
        try:
            for windex, specs in by_worker.items():
                worker = self._worker(windex)
                worker.conn.send(("run", request_id, specs))
                pending.append((windex, worker))
        except (BrokenPipeError, OSError) as exc:
            self._reap(pending)
            raise WorkerCrash(f"worker pipe failed during send: {exc}") from exc
        payloads: List[Optional[tuple]] = [None] * len(ops)
        failure: Optional[str] = None
        for windex, worker in pending:
            try:
                if not worker.conn.poll(self.timeout_s):
                    raise WorkerCrash(f"worker {windex} timed out")
                status, got_id, body = worker.conn.recv()
            except (EOFError, OSError, WorkerCrash) as exc:
                self._kill(windex)
                failure = failure or str(exc)
                continue
            if status != "ok" or got_id != request_id:
                failure = failure or f"worker {windex}: {body}"
                continue
            for op_index, payload in body:
                payloads[op_index] = payload
        if failure is not None or any(p is None for p in payloads):
            raise WorkerCrash(failure or "incomplete worker replies")
        # Record scan load on the router's tracker (workers do not time
        # their scans per-op, so seconds is None — the tracker keeps its
        # unit-based EWMA either way).
        tracker = getattr(self.engine.router, "load", None)
        if tracker is not None:
            for op in ops:
                per_query = (
                    op.eval_unit_cost
                    if getattr(op, "eval_unit_cost", None) is not None
                    else float(max(op.context.n_rows, 1))
                )
                tracker.record_scan(
                    op.context.shard, len(op.queries),
                    per_query * len(op.queries), None,
                )
        return payloads  # type: ignore[return-value]

    def _kill(self, windex: int) -> None:
        worker = self._workers[windex]
        if worker is not None:
            try:
                if worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(timeout=2.0)
            except Exception:  # pragma: no cover - already gone
                pass
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass
            self._workers[windex] = None

    def _reap(self, pending) -> None:
        for windex, _worker in pending:
            self._kill(windex)


class ProcessShardedEngine:
    """The three web-interface request shapes on the process pool.

    A thin facade pairing a :class:`~repro.query.sharded.ShardedQueryEngine`
    (which compiles the plans and owns the crash-recovery fallback) with a
    :class:`ProcessPlanExecutor` (which runs them).  Answers are
    byte-identical to calling the sharded engine directly.
    """

    def __init__(
        self,
        engine,
        processes: int = 2,
        timeout_s: float = 120.0,
    ) -> None:
        self.engine = engine
        self.executor = ProcessPlanExecutor(
            engine, processes=processes, timeout_s=timeout_s
        )

    def close(self) -> None:
        self.executor.close()
        self.engine.close()

    def __enter__(self) -> "ProcessShardedEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def continuous_query_batch(
        self, queries, method: str = "naive"
    ) -> BatchResult:
        batch = (
            queries
            if isinstance(queries, QueryBatch)
            else QueryBatch.from_queries(queries)
        )
        if not len(batch):
            return BatchResult(batch, np.empty(0), np.empty(0, dtype=np.int64))
        return self.executor.execute(self.engine.plan(batch, method))

    def point_query(self, t: float, x: float, y: float, method: str = "naive"):
        batch = QueryBatch(np.array([t]), np.array([x]), np.array([y]))
        return self.continuous_query_batch(batch, method=method).result(0)

    def heatmap_grid(
        self, t: float, bounds, nx: int = 40, ny: int = 30, method: str = "naive"
    ) -> np.ndarray:
        probes = QueryBatch.from_grid(
            t, bounds.min_x, bounds.min_y, bounds.width, bounds.height, nx, ny
        )
        return self.continuous_query_batch(probes, method=method).grid(ny, nx)
