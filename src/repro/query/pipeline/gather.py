"""Exact scatter-gather primitives: hit scans and the canonical merge.

These are the numerics behind merge-shaped plans (``emit="hits"``
:class:`~repro.query.pipeline.plan.ScanOp` + ``MergeOp``): each bound
window slice reports its raw ``(query, global stream position, value)``
hit triples, and the gather step merges them **exactly** — hits ordered
by ``(query, stream position)`` with one int64 radix sort, each query's
values summed with one segmented reduction.  Every tuple is owned by
exactly one shard and keeps its global stream position, so the ordered
hit sequence — and hence every summed byte — depends only on the query
and the stream, never on how regions carved it up: answers are
byte-identical for every shard count (``tests/test_engine_equivalence.py``
enforces this).

Moved here from :mod:`repro.query.sharded` by the plan-pipeline refactor
(which re-exports them for compatibility) so the shared executor can run
merge-shaped plans without importing an engine.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.data.tuples import TupleBatch
from repro.query.base import BatchResult, QueryBatch
from repro.query.indexed import IndexedProcessor

_MAX_CHUNK_CELLS = 8_000_000  # same footprint cap as the naive batch scan

# Exact hit partials: parallel (query position, global stream position,
# sensor value) arrays — the unit scans return and the gather step merges.
HitPartial = Tuple[np.ndarray, np.ndarray, np.ndarray]


def scan_hits(
    window: TupleBatch, gids: np.ndarray, queries: QueryBatch, radius_m: float
) -> HitPartial:
    """All ``(query, stream position, value)`` hit triples of a radius scan.

    The vectorised twin of the naive scan that keeps the individual hits
    instead of averaging them — exact merging needs them.  ``gids`` are
    the window rows' global stream positions, aligned with ``window``.
    Chunked like :meth:`NaiveProcessor.process_batch` to bound the
    distance-matrix footprint.
    """
    m, n = len(queries), len(window)
    if not m or not n:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, np.empty(0)
    wx, wy, ws = window.x, window.y, window.s
    r2 = radius_m * radius_m
    chunk = max(1, _MAX_CHUNK_CELLS // n)
    probe_parts: List[np.ndarray] = []
    gid_parts: List[np.ndarray] = []
    value_parts: List[np.ndarray] = []
    for start in range(0, m, chunk):
        stop = min(start + chunk, m)
        qx = queries.x[start:stop, None]
        qy = queries.y[start:stop, None]
        inside = (wx[None, :] - qx) ** 2 + (wy[None, :] - qy) ** 2 <= r2
        qi, ti = np.nonzero(inside)
        probe_parts.append(qi + start)
        gid_parts.append(gids[ti])
        value_parts.append(ws[ti])
    return (
        np.concatenate(probe_parts),
        np.concatenate(gid_parts),
        np.concatenate(value_parts),
    )


def index_hits(
    processor: IndexedProcessor, gids: np.ndarray, queries: QueryBatch
) -> HitPartial:
    """Hit triples via an index — identical hit set to :func:`scan_hits`."""
    s = processor.window.s
    probe_parts: List[np.ndarray] = []
    gid_parts: List[np.ndarray] = []
    value_parts: List[np.ndarray] = []
    for i, hits in enumerate(processor.query_radius_bulk(queries.x, queries.y)):
        if hits:
            idx = np.asarray(hits, dtype=np.intp)
            probe_parts.append(np.full(len(idx), i, dtype=np.int64))
            gid_parts.append(gids[idx])
            value_parts.append(s[idx])
    if not probe_parts:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, np.empty(0)
    return (
        np.concatenate(probe_parts),
        np.concatenate(gid_parts),
        np.concatenate(value_parts),
    )


def merge_hit_partials(
    n_queries: int,
    n_stream_rows: int,
    partials: Sequence[HitPartial],
    queries: QueryBatch,
) -> BatchResult:
    """Exact partition-independent gather of per-shard hit partials.

    Hits are put in canonical ``(query, stream position)`` order — a
    single int64 radix sort of the composite key — and each query's
    values are summed with one segmented ``np.add.reduceat``.  A tuple is
    owned by exactly one shard and its stream position never changes, so
    the canonical sequence per query is *the stream order itself*: every
    output byte is independent of the region partition, and the 1-shard
    and N-shard configurations agree exactly.
    """
    values = np.full(n_queries, np.nan)
    support = np.zeros(n_queries, dtype=np.int64)
    live = [p for p in partials if len(p[0])]
    if live:
        probe = np.concatenate([p for p, _, _ in live])
        gid = np.concatenate([g for _, g, _ in live])
        vals = np.concatenate([v for _, _, v in live])
        # Under concurrent ingest a hit's gid can transiently exceed the
        # row counter the caller read; widen the stride so the composite
        # sort key stays collision-free either way.
        stride = np.int64(max(n_stream_rows, int(gid.max()) + 1, 1))
        order = np.argsort(probe.astype(np.int64) * stride + gid, kind="stable")
        probe = probe[order]
        vals = vals[order]
        seg_starts = np.concatenate(
            ([0], np.flatnonzero(np.diff(probe) != 0) + 1)
        )
        sums = np.add.reduceat(vals, seg_starts)
        hit_queries = probe[seg_starts]
        counts = np.bincount(probe, minlength=n_queries)
        support = counts.astype(np.int64)
        values[hit_queries] = sums / counts[hit_queries]
    return BatchResult(queries, values, support, answered=support > 0)
