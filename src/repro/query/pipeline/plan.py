"""The explicit execution-plan IR shared by every query path.

A request (point query, continuous stream, heatmap grid, server batch)
is compiled into an :class:`ExecutionPlan`: a flat list of operators,
each bound to one :class:`PlanContext` — a pinned ``(snapshot, window,
shard)`` triple resolved through a
:class:`~repro.query.pipeline.binding.SnapshotBinding` — plus the merge
discipline that reassembles their outputs in stream order.  Separating
the *choice* of how to answer (the planner, which writes the ops) from
the *execution* (one shared :class:`~repro.query.pipeline.executor.PlanExecutor`)
is the optimisation/execution split the HTAP literature argues for, and
it is what lets four previously copy-pasted paths share one pipeline.

Operators:

* :class:`ScanOp` — answer a set of queries from one bound window slice
  with a raw-data method (naive radius scan or an index kind).  Emits
  either finished per-query averages (``emit="result"``, the unsharded
  discipline) or raw ``(query, stream position, value)`` hit triples
  (``emit="hits"``, the scatter half of cross-shard exact execution).
* :class:`CoverOp` — evaluate the bound ``(window, shard)`` model cover
  over a set of queries; always emits results.
* :class:`MergeOp` — the gather half: exact, partition-independent merge
  of every hit-emitting scan's triples (one radix sort + one segmented
  reduction; see :func:`repro.query.pipeline.gather.merge_hit_partials`).
* :class:`FallbackOp` — a nested exact sub-plan answering the queries a
  cover could not (empty owning slice, or the planner preferred raw
  data).

A plan is either **scatter-shaped** (result-emitting ops + fallbacks;
outputs scattered back by query position — each query answered by
exactly one op) or **merge-shaped** (hit-emitting scans + one
:class:`MergeOp`; a query may collect hits from several shards).
Builders in :mod:`repro.query.pipeline.executor` enforce the shape.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.query.base import QueryBatch

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.query.pipeline.binding import SnapshotBinding


@dataclass(frozen=True)
class PlanContext:
    """The pinned storage context one operator executes against.

    ``shard`` is None on unsharded paths.  ``stamp`` is the content epoch
    of the bound window slice at plan-build time; the executor resolves
    the slice back through the plan's binding, whose memo guarantees the
    very same pinned data (build and execution can never see different
    rows, even under concurrent ingest).  ``n_rows`` is the slice length
    at build time — the statistic cost estimates are quoted against.
    """

    window_c: int
    shard: Optional[int]
    stamp: int
    n_rows: int

    def describe(self) -> str:
        where = f"w{self.window_c}"
        if self.shard is not None:
            where += f"/s{self.shard}"
        return f"{where}@e{self.stamp}"


@dataclass(frozen=True)
class ScanOp:
    """Raw-data scan of one bound window slice for a set of queries."""

    context: PlanContext
    method: str  # "naive" or an index kind
    positions: np.ndarray  # stream positions of the queries this op answers
    queries: QueryBatch
    emit: str = "result"  # "result" | "hits"
    vectorise: bool = True  # result mode: process_batch vs scalar loop
    est_unit_cost: Optional[float] = None  # planner estimate, scan units/query
    #: Evaluation-only share of the estimate (prep/amortise stripped) —
    #: the unit load the executor's *timed region* actually performs,
    #: and therefore the normaliser for planner feedback.
    eval_unit_cost: Optional[float] = None
    #: Read-replica index: a hot shard's hit scan is split into one op
    #: per replica (same bound context, disjoint query chunks), so the
    #: executors can spread the shard's scan load across pool threads /
    #: worker processes.  The exact gather's canonical ordering makes
    #: replica-split answers byte-identical to the single-op answer.
    replica: int = 0

    kind = "scan"


@dataclass(frozen=True)
class CoverOp:
    """Model-cover evaluation of one bound (window, shard) cover."""

    context: PlanContext
    positions: np.ndarray
    queries: QueryBatch
    est_unit_cost: Optional[float] = None
    eval_unit_cost: Optional[float] = None

    kind = "cover"
    method = "model-cover"
    emit = "result"


@dataclass(frozen=True)
class MergeOp:
    """Exact gather of every hit-emitting scan's triples."""

    n_queries: int
    n_stream_rows: int

    kind = "merge"


@dataclass(frozen=True)
class FallbackOp:
    """Queries re-routed from a cover to a nested exact sub-plan."""

    positions: np.ndarray
    plan: "ExecutionPlan"

    kind = "fallback"


@dataclass(frozen=True)
class PrunedOp:
    """Record of a candidate op the pruning pass proved empty.

    Never executed — kept on the plan so ``explain`` can show *why* a
    shard was skipped.  ``context.n_rows`` is the pinned slice length
    the pruned scan would have read (its estimated row cost, marked in
    :func:`format_plan`); ``reason`` is ``"region"`` when the grid
    geometry already excluded every query disk, ``"sketch"`` when the
    zone map's bounding volume proved the remaining queries empty, and
    ``"empty"`` when the bound slice had no rows at all (unsharded
    group plans only — the sharded builder skips empty slices
    silently, as it always has).
    """

    context: PlanContext
    n_queries: int
    reason: str  # "region" | "sketch" | "empty"

    kind = "pruned"
    method = "-"


PlanOp = Union[ScanOp, CoverOp, FallbackOp]


@dataclass(frozen=True)
class ExecutionPolicy:
    """Dispatch thresholds a plan is built and executed under.

    ``min_parallel_queries``: below this many queries across all result
    ops, groups run serially (pool submission overhead beats the win).
    ``min_vectorised_group``: below this many queries in one group, the
    scalar loop answers it (fixed numpy dispatch only amortises past a
    few dozen queries).  Both are pure cost choices — scalar and batched
    execution are equivalent by construction — but they do change float
    summation order, so each path keeps its historical policy to stay
    byte-identical with its pre-pipeline answers.
    """

    min_parallel_queries: int = 512
    min_vectorised_group: int = 24


#: The engine's continuous-query policy (historical constants).
ENGINE_POLICY = ExecutionPolicy()

#: Grid/server/sharded-cover policy: always vectorise, parallel fan-out
#: only for genuinely large batches.
VECTORISED_POLICY = ExecutionPolicy(min_vectorised_group=0)

#: Scalar point-query policy: one query, answered exactly as a single
#: ``process`` call would answer it.
SCALAR_POLICY = ExecutionPolicy(
    min_parallel_queries=2**63 - 1, min_vectorised_group=2**63 - 1
)


@dataclass(frozen=True)
class ExecutionPlan:
    """One request compiled against one pinned snapshot binding."""

    binding: "SnapshotBinding"
    queries: QueryBatch
    ops: Tuple[PlanOp, ...]
    merge: Optional[MergeOp] = None
    policy: ExecutionPolicy = ENGINE_POLICY
    method: str = ""  # the method the plan was requested with
    #: Candidate ops the pruning pass dropped (observability only —
    #: the executor never touches them).
    pruned: Tuple[PrunedOp, ...] = ()

    def __len__(self) -> int:
        return len(self.ops)

    @property
    def n_queries(self) -> int:
        return len(self.queries)

    def walk(self) -> List[Tuple[int, PlanOp]]:
        """Every op in the plan, depth-first, with its nesting depth."""
        out: List[Tuple[int, PlanOp]] = []

        def visit(plan: "ExecutionPlan", depth: int) -> None:
            for op in plan.ops:
                out.append((depth, op))
                if isinstance(op, FallbackOp):
                    visit(op.plan, depth + 1)

        visit(self, 0)
        return out

    def walk_pruned(self) -> List[Tuple[int, PrunedOp]]:
        """Every pruned-op record, depth-first, with its nesting depth."""
        out: List[Tuple[int, PrunedOp]] = []

        def visit(plan: "ExecutionPlan", depth: int) -> None:
            out.extend((depth, rec) for rec in plan.pruned)
            for op in plan.ops:
                if isinstance(op, FallbackOp):
                    visit(op.plan, depth + 1)

        visit(self, 0)
        return out

    @property
    def ops_pruned(self) -> int:
        """Candidate ops the pruning pass dropped (nested plans included)."""
        return len(self.walk_pruned())

    @property
    def ops_kept(self) -> int:
        """Executable ops that survived planning (fallback wrappers and
        the merge stage excluded — they are plumbing, not fan-out)."""
        return sum(1 for _, op in self.walk() if not isinstance(op, FallbackOp))


@dataclass
class PlanReport:
    """Observed per-op wall times, collected by the executor.

    Keyed by ``id(op)`` — ops are frozen, hashing by identity keeps the
    report usable for duplicate-looking ops in nested plans.
    """

    elapsed_s: Dict[int, float] = field(default_factory=dict)
    total_s: float = 0.0
    #: Fan-out accounting, filled by the executor from the plan: how
    #: many candidate ops pruning dropped vs how many actually ran.
    ops_pruned: int = 0
    ops_kept: int = 0

    def record(self, op: PlanOp, elapsed: float) -> None:
        self.elapsed_s[id(op)] = self.elapsed_s.get(id(op), 0.0) + elapsed

    def observed(self, op: PlanOp) -> Optional[float]:
        return self.elapsed_s.get(id(op))


class PruneStats:
    """Cumulative pruning counters an engine keeps across plans.

    The per-plan counters live on :class:`ExecutionPlan` /
    :class:`PlanReport`; this aggregates them engine-side (thread-safe —
    plans may be built concurrently) so long-running owners can surface
    a pruning line next to their ``cache_stats``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.plans = 0
        self.ops_pruned = 0
        self.ops_kept = 0

    def observe(self, plan: ExecutionPlan) -> None:
        with self._lock:
            self.plans += 1
            self.ops_pruned += plan.ops_pruned
            self.ops_kept += plan.ops_kept

    def as_dict(self) -> Dict[str, int]:
        with self._lock:
            return {
                "plans": self.plans,
                "ops_pruned": self.ops_pruned,
                "ops_kept": self.ops_kept,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PruneStats({self.as_dict()})"


def format_plan(plan: ExecutionPlan, report: Optional[PlanReport] = None) -> str:
    """Human-readable plan listing for ``cli explain`` and debugging.

    One line per op: nesting, kind, method, bound context, query count,
    slice rows, estimated cost (scan units per query, when the planner
    supplied one) and observed wall time (when a report is given).
    """
    lines = [
        f"plan: method={plan.method or '?'} queries={plan.n_queries} "
        f"ops={len(plan.walk())} shape="
        + ("merge" if plan.merge is not None else "scatter")
        + f" pruned={plan.ops_pruned}"
    ]
    header = f"  {'op':<22} {'context':<14} {'queries':>7} {'rows':>7} {'est u/q':>9}"
    if report is not None:
        header += f" {'observed':>11}"
    lines.append(header)
    for depth, op in plan.walk():
        pad = "  " * depth
        if isinstance(op, FallbackOp):
            label = f"{pad}fallback"
            ctx, n_q, rows, est = "-", len(op.positions), "-", None
        else:
            label = f"{pad}{op.kind}[{op.method}]"
            if isinstance(op, ScanOp) and op.emit == "hits":
                label += "+hits"
            ctx = op.context.describe()
            n_q, rows, est = len(op.queries), op.context.n_rows, op.est_unit_cost
        est_text = f"{est:9.1f}" if est is not None and math.isfinite(est) else f"{'-':>9}"
        line = f"  {label:<22} {ctx:<14} {n_q:>7} {rows!s:>7} {est_text}"
        if report is not None:
            seen = report.observed(op)
            line += f" {seen * 1e3:9.2f}ms" if seen is not None else f" {'-':>11}"
        lines.append(line)
    if plan.merge is not None:
        line = (
            f"  {'merge[exact]':<22} {'-':<14} {plan.merge.n_queries:>7} "
            f"{plan.merge.n_stream_rows:>7} {'-':>9}"
        )
        if report is not None:
            line += f" {'-':>11}"
        lines.append(line)
    # Pruned candidates last: never executed, rows marked with `~` (the
    # estimated slice the scan would have read had it not been proven
    # empty by geometry / the zone-map sketch).
    for depth, rec in plan.walk_pruned():
        pad = "  " * depth
        label = f"{pad}pruned[{rec.reason}]"
        line = (
            f"  {label:<22} {rec.context.describe():<14} {rec.n_queries:>7} "
            f"{'~' + str(rec.context.n_rows):>7} {'-':>9}"
        )
        if report is not None:
            line += f" {'-':>11}"
        lines.append(line)
    if plan.ops_pruned:
        lines.append(
            f"  pruning: {plan.ops_pruned} op(s) pruned, "
            f"{plan.ops_kept} kept"
        )
    if report is not None:
        lines.append(f"  total: {report.total_s * 1e3:.2f}ms")
    return "\n".join(lines)
