"""Snapshot bindings: one pinned storage view per plan.

A plan is built against — and executed against — exactly one
:class:`SnapshotBinding`.  The binding resolves ``(shard, window)`` to a
coherent ``(content stamp, window slice, gid slice)`` triple and
**memoises** every resolution, so the plan builder and the executor are
guaranteed to see the very same rows even while a writer ingests
concurrently: the first read pins the triple, every later read (from any
pool thread) returns the pinned one.  This is the single snapshot-binding
discipline that previously existed in three shapes (the engine's live
``self._batch``, the sharded engine's per-call ``snapshot_window`` reads,
the server's pinned :class:`~repro.storage.engine.StorageSnapshot`).

Bindings are cheap, request-scoped objects — build one per request, let
it die with the plan.  They hold zero-copy views only.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Protocol, Tuple

import numpy as np

from repro.data.tuples import TupleBatch
from repro.data.windows import window, windows_for_times
from repro.storage.engine import StorageSnapshot
from repro.storage.shards import ShardRouter, StaleLayoutError
from repro.storage.sketch import WindowSketch

#: What a binding resolves a (shard, window) to: the slice's content
#: stamp, the pinned zero-copy slice, and — on sharded bindings — the
#: global stream positions aligned with the slice's rows (None unsharded).
BoundSlice = Tuple[int, TupleBatch, Optional[np.ndarray]]


class SnapshotBinding(Protocol):
    """Uniform pinned-storage access for plan building and execution."""

    n_shards: int

    def stream_rows(self) -> int:
        """Total stream rows behind the binding (the merge stride)."""
        ...

    def windows_for_times(self, ts) -> np.ndarray:
        """Window index responsible for each query timestamp."""
        ...

    def slice_for(self, shard: Optional[int], c: int) -> BoundSlice:
        """Pinned ``(stamp, slice, gids)`` of window ``c`` (per shard)."""
        ...

    def sketch_for(self, shard: Optional[int], c: int) -> WindowSketch:
        """Zone-map sketch covering exactly the pinned slice's rows."""
        ...

    def peek(self, shard: Optional[int], c: int) -> Tuple[int, int]:
        """Cheap ``(stamp, n_rows)`` estimate for a slice, without pinning.

        Display-only: feeds the plan's pruned-op records for candidates
        dropped on pure geometry, where resolving (and memoising) the
        slice would defeat the point — pruned planning touches only the
        relevant shards.  Already-pinned slices report their pinned
        values.
        """
        ...

    def peek_window(self, c: int) -> List[Tuple[int, int]]:
        """:meth:`peek` for every shard of window ``c`` in one call
        (index = shard) — the pruning pass reads one window's worth of
        display estimates at a time."""
        ...


class _MemoBinding:
    """Shared memoisation: the first resolution pins, later ones replay.

    Sketches are memoised alongside slices under the same lock, and a
    subclass's ``_resolve`` may pre-fill ``self._sketches`` (the router
    binding does, from one coherent locked read), so a pruning decision
    and the scan it prunes can never see different rows.  Sketch
    resolution is lazy: plans that never prune (cover plans, the server
    path) pay nothing for it.
    """

    def __init__(self) -> None:
        self._memo: Dict[Tuple[Optional[int], int], BoundSlice] = {}
        self._sketches: Dict[Tuple[Optional[int], int], WindowSketch] = {}
        self._memo_lock = threading.Lock()

    def slice_for(self, shard: Optional[int], c: int) -> BoundSlice:
        key = (shard, int(c))
        with self._memo_lock:
            bound = self._memo.get(key)
            if bound is None:
                bound = self._resolve(shard, int(c))
                self._memo[key] = bound
            return bound

    def sketch_for(self, shard: Optional[int], c: int) -> WindowSketch:
        key = (shard, int(c))
        with self._memo_lock:
            sketch = self._sketches.get(key)
            if sketch is not None:
                return sketch
            bound = self._memo.get(key)
            if bound is None:
                bound = self._resolve(shard, int(c))
                self._memo[key] = bound
                sketch = self._sketches.get(key)  # _resolve may pre-fill
                if sketch is not None:
                    return sketch
            sketch = self._compute_sketch(shard, int(c), bound)
            self._sketches[key] = sketch
            return sketch

    def peek(self, shard: Optional[int], c: int) -> Tuple[int, int]:
        with self._memo_lock:
            bound = self._memo.get((shard, int(c)))
            if bound is not None:
                return bound[0], len(bound[1])
        # Single-slice bindings are pinned by construction, so resolving
        # is as cheap as any other read; the router binding overrides
        # this with an O(1) unpinned read.
        stamp, sub, _gids = self.slice_for(shard, int(c))
        return stamp, len(sub)

    def peek_window(self, c: int) -> List[Tuple[int, int]]:
        return [self.peek(s, int(c)) for s in range(self.n_shards)]

    def _resolve(self, shard: Optional[int], c: int) -> BoundSlice:
        raise NotImplementedError

    def _compute_sketch(
        self, shard: Optional[int], c: int, bound: BoundSlice
    ) -> WindowSketch:
        """Fallback sketch of an already-pinned slice.

        The pinned slice is immutable, so computing its exact sketch is
        always coherent; bindings with an O(1) maintained sketch
        override the resolution path instead.
        """
        return WindowSketch.of(bound[1])


class EngineBinding(_MemoBinding):
    """Unsharded binding over one pinned :class:`TupleBatch` stream.

    ``stamp_for`` maps a window index to its content stamp — the query
    engine passes :meth:`QueryEngine.window_stamp`, capturing the epoch
    state at binding time (the batch itself is immutable, so the slices
    are pinned by construction).
    """

    n_shards = 1

    def __init__(
        self,
        batch: TupleBatch,
        h: int,
        stamp_for: Callable[[int], int],
        sketch_provider: Optional[
            Callable[[int, int, TupleBatch], WindowSketch]
        ] = None,
    ) -> None:
        super().__init__()
        self.batch = batch
        self.h = h
        self._stamp_for = stamp_for
        # Engine hook ``(window, stamp, slice) -> sketch``: sketches of
        # sealed windows are immutable, so the engine caches them across
        # bindings instead of rescanning the slice per request.
        self._sketch_provider = sketch_provider

    def stream_rows(self) -> int:
        return len(self.batch)

    def windows_for_times(self, ts) -> np.ndarray:
        return windows_for_times(self.batch.t, ts, self.h)

    def _resolve(self, shard: Optional[int], c: int) -> BoundSlice:
        return self._stamp_for(c), window(self.batch, c, self.h), None

    def _compute_sketch(
        self, shard: Optional[int], c: int, bound: BoundSlice
    ) -> WindowSketch:
        if self._sketch_provider is None:
            return WindowSketch.of(bound[1])
        return self._sketch_provider(c, bound[0], bound[1])


class RouterBinding(_MemoBinding):
    """Sharded binding over a :class:`~repro.storage.shards.ShardRouter`.

    Each ``(shard, window)`` resolution is one coherent
    :meth:`ShardRouter.snapshot_window_sketch` read taken under the
    router lock — stamp, rows, gids and zone-map sketch can never tear —
    and the memo extends that coherence across the whole plan: build and
    execution, the pruning pass, and the exact fallback of a cover plan,
    all see the same pinned quadruples.
    """

    def __init__(self, router: ShardRouter) -> None:
        super().__init__()
        self.router = router
        self.n_shards = router.n_shards
        self.grid = router.grid
        # The shard layout this binding pinned.  Every *fresh* resolution
        # checks it against the live router: a split/merge re-cut between
        # binding time and resolution would otherwise mix two layouts in
        # one plan (the old grid's scatter geometry over the new layout's
        # rows — silently missing hits).  Already-memoised slices stay
        # valid forever; plan builders resolve every kept op at build
        # time, so executing a built plan never trips this.
        self.layout_epoch = getattr(router, "layout_epoch", 0)

    def _check_layout(self) -> None:
        live = getattr(self.router, "layout_epoch", 0)
        if live != self.layout_epoch:
            raise StaleLayoutError(
                f"binding pinned shard layout {self.layout_epoch}, "
                f"router has rebalanced to layout {live}"
            )

    def stream_rows(self) -> int:
        return self.router.global_count()

    def windows_for_times(self, ts) -> np.ndarray:
        return self.router.windows_for_times(ts)

    def sketch_for(self, shard: Optional[int], c: int) -> WindowSketch:
        # Sealed windows short-circuit: their sketches are frozen forever
        # and always resident on the router, so a pruning decision needs
        # no slice resolution at all.  On the durable tier that is what
        # keeps pruning from faulting a cold window in just to skip it;
        # superset safety is trivial (frozen sketch ≡ the slice's exact
        # sketch, permanently).  Open windows fall through to the pinned
        # path, which resolves slice and sketch under one router lock.
        key = (shard, int(c))
        with self._memo_lock:
            sketch = self._sketches.get(key)
            if sketch is not None:
                return sketch
            if key not in self._memo:
                # Layout check before trusting an unpinned frozen read: a
                # post-rebalance sketch describes the *new* layout's rows
                # and could wrongly prune an old-layout plan.
                self._check_layout()
                frozen = self.router.frozen_window_sketch(shard, int(c))
                if frozen is not None:
                    self._sketches[key] = frozen
                    return frozen
        return super().sketch_for(shard, c)

    def _resolve(self, shard: Optional[int], c: int) -> BoundSlice:
        if shard is None:
            raise ValueError("sharded binding needs an explicit shard index")
        self._check_layout()
        # One locked read pins slice *and* zone map together (the
        # router maintains the sketch incrementally, so this is O(1));
        # the sketch memo is pre-filled here so pruning can never
        # consult a sketch from a different instant than the slice the
        # pruned scan would have read.
        stamp, sub, gids, sketch = self.router.snapshot_window_sketch(shard, c)
        self._sketches[(shard, int(c))] = sketch
        return stamp, sub, gids

    def peek(self, shard: Optional[int], c: int) -> Tuple[int, int]:
        # O(1) and lock-free: the incrementally-maintained sketch counts
        # the slice's rows, so a geometry-pruned candidate costs no
        # slice materialisation at all.  The pair may tear under a
        # concurrent ingest, and the memo probe races pinning — both
        # fine for a display estimate; nothing correctness-bearing
        # reads it (geometry pruning is data-independent, and the
        # sketch layer pins via sketch_for).
        bound = self._memo.get((shard, int(c)))
        if bound is not None:
            return bound[0], len(bound[1])
        sketch = self.router.shard_window_sketch(shard, int(c))
        return self.router.shard_window_epoch(shard, int(c)), sketch.n_rows

    def peek_window(self, c: int) -> List[Tuple[int, int]]:
        c = int(c)
        # window_stats rows carry a third read-epoch field for display
        # consumers (the CLI shards table); the binding protocol's peek
        # pairs stay (stamp, n_rows).
        stats = self.router.window_stats(c)
        memo = self._memo
        return [
            (bound[0], len(bound[1])) if (bound := memo.get((s, c))) is not None
            else stats[s][:2]
            for s in range(self.n_shards)
        ]


class ServerSnapshotBinding(_MemoBinding):
    """Binding over a server's pinned epoch-stamped storage snapshot."""

    n_shards = 1

    def __init__(self, snapshot: StorageSnapshot) -> None:
        super().__init__()
        self.snapshot = snapshot

    def stream_rows(self) -> int:
        return len(self.snapshot)

    def windows_for_times(self, ts) -> np.ndarray:
        return self.snapshot.windows_for_times(ts)

    def _resolve(self, shard: Optional[int], c: int) -> BoundSlice:
        return self.snapshot.window_epoch(c), self.snapshot.window(c), None
