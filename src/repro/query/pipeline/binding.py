"""Snapshot bindings: one pinned storage view per plan.

A plan is built against — and executed against — exactly one
:class:`SnapshotBinding`.  The binding resolves ``(shard, window)`` to a
coherent ``(content stamp, window slice, gid slice)`` triple and
**memoises** every resolution, so the plan builder and the executor are
guaranteed to see the very same rows even while a writer ingests
concurrently: the first read pins the triple, every later read (from any
pool thread) returns the pinned one.  This is the single snapshot-binding
discipline that previously existed in three shapes (the engine's live
``self._batch``, the sharded engine's per-call ``snapshot_window`` reads,
the server's pinned :class:`~repro.storage.engine.StorageSnapshot`).

Bindings are cheap, request-scoped objects — build one per request, let
it die with the plan.  They hold zero-copy views only.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional, Protocol, Tuple

import numpy as np

from repro.data.tuples import TupleBatch
from repro.data.windows import window, windows_for_times
from repro.storage.engine import StorageSnapshot
from repro.storage.shards import ShardRouter

#: What a binding resolves a (shard, window) to: the slice's content
#: stamp, the pinned zero-copy slice, and — on sharded bindings — the
#: global stream positions aligned with the slice's rows (None unsharded).
BoundSlice = Tuple[int, TupleBatch, Optional[np.ndarray]]


class SnapshotBinding(Protocol):
    """Uniform pinned-storage access for plan building and execution."""

    n_shards: int

    def stream_rows(self) -> int:
        """Total stream rows behind the binding (the merge stride)."""
        ...

    def windows_for_times(self, ts) -> np.ndarray:
        """Window index responsible for each query timestamp."""
        ...

    def slice_for(self, shard: Optional[int], c: int) -> BoundSlice:
        """Pinned ``(stamp, slice, gids)`` of window ``c`` (per shard)."""
        ...


class _MemoBinding:
    """Shared memoisation: the first resolution pins, later ones replay."""

    def __init__(self) -> None:
        self._memo: Dict[Tuple[Optional[int], int], BoundSlice] = {}
        self._memo_lock = threading.Lock()

    def slice_for(self, shard: Optional[int], c: int) -> BoundSlice:
        key = (shard, int(c))
        with self._memo_lock:
            bound = self._memo.get(key)
            if bound is None:
                bound = self._resolve(shard, int(c))
                self._memo[key] = bound
            return bound

    def _resolve(self, shard: Optional[int], c: int) -> BoundSlice:
        raise NotImplementedError


class EngineBinding(_MemoBinding):
    """Unsharded binding over one pinned :class:`TupleBatch` stream.

    ``stamp_for`` maps a window index to its content stamp — the query
    engine passes :meth:`QueryEngine.window_stamp`, capturing the epoch
    state at binding time (the batch itself is immutable, so the slices
    are pinned by construction).
    """

    n_shards = 1

    def __init__(
        self, batch: TupleBatch, h: int, stamp_for: Callable[[int], int]
    ) -> None:
        super().__init__()
        self.batch = batch
        self.h = h
        self._stamp_for = stamp_for

    def stream_rows(self) -> int:
        return len(self.batch)

    def windows_for_times(self, ts) -> np.ndarray:
        return windows_for_times(self.batch.t, ts, self.h)

    def _resolve(self, shard: Optional[int], c: int) -> BoundSlice:
        return self._stamp_for(c), window(self.batch, c, self.h), None


class RouterBinding(_MemoBinding):
    """Sharded binding over a :class:`~repro.storage.shards.ShardRouter`.

    Each ``(shard, window)`` resolution is one coherent
    :meth:`ShardRouter.snapshot_window` read taken under the router lock
    — stamp, rows and gids can never tear — and the memo extends that
    coherence across the whole plan: build and execution, and the exact
    fallback of a cover plan, all see the same pinned triples.
    """

    def __init__(self, router: ShardRouter) -> None:
        super().__init__()
        self.router = router
        self.n_shards = router.n_shards
        self.grid = router.grid

    def stream_rows(self) -> int:
        return self.router.global_count()

    def windows_for_times(self, ts) -> np.ndarray:
        return self.router.windows_for_times(ts)

    def _resolve(self, shard: Optional[int], c: int) -> BoundSlice:
        if shard is None:
            raise ValueError("sharded binding needs an explicit shard index")
        return self.router.snapshot_window(shard, c)


class ServerSnapshotBinding(_MemoBinding):
    """Binding over a server's pinned epoch-stamped storage snapshot."""

    n_shards = 1

    def __init__(self, snapshot: StorageSnapshot) -> None:
        super().__init__()
        self.snapshot = snapshot

    def stream_rows(self) -> int:
        return len(self.snapshot)

    def windows_for_times(self, ts) -> np.ndarray:
        return self.snapshot.windows_for_times(ts)

    def _resolve(self, shard: Optional[int], c: int) -> BoundSlice:
        return self.snapshot.window_epoch(c), self.snapshot.window(c), None
