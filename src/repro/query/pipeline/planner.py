"""The single statistics-backed planner every query path consults.

:class:`PipelinePlanner` wraps the cost model of
:class:`repro.query.planner.QueryPlanner` (the per-window Section 2.2
method families, calibrated in abstract scan units) with the two things
the pipeline adds:

* **one epoch-keyed verdict cache** — ``method="auto"`` is planned once
  per ``(shard, window, content stamp, exactness)`` and the verdict is
  stored in the shared :class:`~repro.query.pipeline.cache.ProcessorCache`,
  so ingest invalidates plans exactly like it invalidates processors;
* **runtime feedback** — the executor reports every operator's observed
  wall time into a :class:`PlannerFeedback`, and subsequent ``auto``
  decisions rank candidate methods by *observed* seconds-per-query where
  measurements exist, falling back to the abstract cost model (scaled to
  the observed regime) where they don't.  The feedback loop is
  deliberately coarse — an exponentially-weighted mean per method — its
  job is to fix the *ordering* when the static constants drift from the
  machine's reality, not to predict milliseconds.

Feedback can never break correctness: every exact method merges to
byte-identical answers, so recalibration only ever moves cost, and the
exact-vs-model split stays governed by the profile's
``needs_exact_average``.
"""

from __future__ import annotations

import statistics
import threading
from typing import Callable, Dict, Optional

from repro.core.adkmn import AdKMNConfig
from repro.data.tuples import TupleBatch
from repro.query.pipeline.cache import ProcessorCache
from repro.query.planner import PlanEstimate, QueryPlanner, QueryProfile

__all__ = ["PlannerFeedback", "PipelinePlanner"]


class PlannerFeedback:
    """Exponentially-weighted observed seconds **per estimated scan
    unit**, per method — the same axis the static cost model prices in.

    Each observation divides an operator's wall time by the *method's
    own* estimated units for that op (``n_queries × est units/query``,
    from the estimates the verdict was planned with).  That keeps every
    method's rate on one axis: a naive scan's units are the slice rows,
    an index scan's are its (much smaller) ``hit_fraction·H + log H``
    — normalising both by rows would deflate index rates by
    ~``hit_fraction`` and invert the ordering.  It also makes
    observations transferable across slice sizes: a cheap scan over a
    50-row slice cannot make a method look cheap for a 5000-row slice.

    Thread-safe; the executor calls :meth:`observe` from pool threads.
    ``alpha`` is the EWMA weight of the newest observation.
    """

    def __init__(self, alpha: float = 0.25) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._sec_per_unit: Dict[str, float] = {}
        self._observations: Dict[str, int] = {}
        self._lock = threading.Lock()

    def observe(
        self,
        method: str,
        n_queries: int,
        elapsed_s: float,
        units_per_query: float = 1.0,
    ) -> None:
        """Record one executed operator's wall time.

        ``units_per_query`` is the method's estimated cost for this op
        in abstract scan units (``PlanEstimate.per_query_cost``) — the
        load the elapsed time is normalised by."""
        if n_queries < 1 or elapsed_s < 0.0 or units_per_query <= 0.0:
            return
        spu = elapsed_s / (n_queries * units_per_query)
        with self._lock:
            prev = self._sec_per_unit.get(method)
            self._sec_per_unit[method] = (
                spu if prev is None else (1.0 - self.alpha) * prev + self.alpha * spu
            )
            self._observations[method] = self._observations.get(method, 0) + 1

    def sec_per_unit(self, method: str) -> Optional[float]:
        with self._lock:
            return self._sec_per_unit.get(method)

    def observations(self, method: str) -> int:
        with self._lock:
            return self._observations.get(method, 0)

    def adjust(self, estimates: Dict[str, PlanEstimate]) -> Dict[str, float]:
        """Comparable per-method costs: estimated units × observed cost
        per unit.

        Methods with measurements use their own observed seconds-per-unit;
        the rest use the median observed rate, so every score lives on
        one axis and the slice's own unit estimate stays in the product.
        With no measurements at all this is exactly the static model.
        """
        with self._lock:
            known = {
                m: self._sec_per_unit[m]
                for m in estimates
                if m in self._sec_per_unit
            }
        if not known:
            return {m: est.per_query_cost for m, est in estimates.items()}
        default = statistics.median(known.values())
        return {
            m: est.per_query_cost * known.get(m, default)
            for m, est in estimates.items()
        }

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        with self._lock:
            return {
                m: {
                    "sec_per_unit": self._sec_per_unit[m],
                    "observations": self._observations.get(m, 0),
                }
                for m in sorted(self._sec_per_unit)
            }


class PipelinePlanner:
    """Plans ``method="auto"`` per bound window slice, with feedback.

    ``profile`` carries the workload shape (amortisation horizon and the
    exactness requirement); ``radius_m`` overrides the profile radius for
    cost purposes (the engine's query radius is authoritative);
    ``cache`` is the shared epoch-keyed store the verdicts live in.
    """

    #: Default bound on cached verdicts + estimates.  Verdicts are tiny
    #: (a method name per (shard, window, exactness)), so the planner
    #: affords a generous bound — and deliberately does NOT share the
    #: engines' processor cache: one verdict key per (shard, window)
    #: would otherwise compete with the covers and indexes themselves
    #: and LRU-thrash the expensive entries out on wide plans.
    DEFAULT_VERDICT_CAPACITY = 1024

    def __init__(
        self,
        profile: QueryProfile,
        cache: Optional[ProcessorCache] = None,
        config: Optional[AdKMNConfig] = None,
        radius_m: Optional[float] = None,
        feedback: Optional[PlannerFeedback] = None,
    ) -> None:
        self.profile = profile
        self.config = config or AdKMNConfig()
        self.radius_m = profile.radius_m if radius_m is None else radius_m
        self.feedback = feedback if feedback is not None else PlannerFeedback()
        self._cache = cache if cache is not None else ProcessorCache(
            self.DEFAULT_VERDICT_CAPACITY
        )
        # Priced estimates memo for explain/introspection and feedback
        # unit axes, keyed identically to the verdicts.
        self._estimates_memo = ProcessorCache(self.DEFAULT_VERDICT_CAPACITY)

    def _profile_for(self, exact: bool) -> QueryProfile:
        return QueryProfile(
            expected_queries=self.profile.expected_queries,
            needs_exact_average=exact or self.profile.needs_exact_average,
            radius_m=self.radius_m,
        )

    def _pick(
        self, estimates: Dict[str, PlanEstimate], allow_feedback: bool
    ) -> str:
        """The cheapest method, feedback-recalibrated where that is safe.

        Staged decision, so that answers can never depend on observed
        wall clocks: the **exact-vs-model boundary** (which changes query
        *answers* — a model evaluation is not a radius average) is decided
        by the static cost model alone, deterministically; the choice
        **among exact scan kinds** recalibrates from runtime feedback
        only where every candidate provably produces the same bytes —
        the sharded merge path (``allow_feedback=True``), whose canonical
        stream-order gather is scan-kind-invariant.  Result-emitting
        scans (the unsharded engine) sum hits in method-specific order,
        so their verdicts stay on the static model too: same inputs,
        same bytes, every run.  Ties break towards the earliest candidate
        in cost-model order (naive first), matching
        :meth:`QueryPlanner.choose`.
        """

        def argmin(scores: Dict[str, float]) -> str:
            best: Optional[str] = None
            best_cost = float("inf")
            for method, cost in scores.items():
                if cost < best_cost:
                    best, best_cost = method, cost
            assert best is not None  # naive is always offered
            return best

        static = argmin({m: e.per_query_cost for m, e in estimates.items()})
        if static == "model-cover" or not allow_feedback:
            return static
        exact = {m: e for m, e in estimates.items() if m != "model-cover"}
        return argmin(self.feedback.adjust(exact))

    def estimates_for(
        self, sub: TupleBatch, exact: bool
    ) -> Dict[str, PlanEstimate]:
        """Fresh per-method estimates for one window slice (uncached)."""
        planner = QueryPlanner(sub, config=self.config)
        return planner.estimates(self._profile_for(exact))

    def method_for(
        self,
        shard: Optional[int],
        c: int,
        stamp: int,
        sub: TupleBatch,
        exact: bool,
        seed_cover: Optional[Callable[[object], None]] = None,
    ) -> str:
        """The planned method for window ``c`` of ``shard`` at ``stamp``.

        Planned once per ``(shard, window, stamp, exactness)`` and cached
        epoch-keyed; ``exact=True`` restricts the plan to raw-data
        methods (scatter scans must merge exactly).  When the verdict is
        model-cover, ``seed_cover`` receives the processor the pricing
        fit already paid for, so execution never runs the same fit twice.
        Feedback recalibration applies only to sharded verdicts (``shard``
        not None) — see :meth:`_pick` for the determinism boundary.
        The priced estimates are memoised alongside the verdict
        (:meth:`cached_estimates`), so ``explain`` never re-runs a fit
        just to display a cost column.
        """

        def build() -> str:
            profile = self._profile_for(exact)
            planner = QueryPlanner(sub, config=self.config)
            estimates = planner.estimates(profile)
            self._estimates_memo.insert(
                ("estimates", shard, int(c), bool(exact)), stamp, estimates
            )
            method = self._pick(estimates, allow_feedback=shard is not None)
            if method == "model-cover" and seed_cover is not None:
                seed_cover(planner.processor_for(profile))
            return method

        return self._cache.get_or_build(
            ("plan", shard, int(c), bool(exact)), stamp, build, shared_build=True
        )

    def eval_units(self, estimate: PlanEstimate) -> float:
        """The evaluation-only share of an estimate, in scan units per
        query: ``per_query_cost`` minus the amortised preparation share.
        This is what the executor's timed region actually performs —
        preparation (index build, cover fit) runs *outside* the timer —
        so it is the correct normaliser for feedback observations."""
        prep_share = estimate.preparation_cost / self.profile.expected_queries
        return max(estimate.per_query_cost - prep_share, 1e-9)

    def cached_estimates(
        self, shard: Optional[int], c: int, stamp: int, exact: bool
    ) -> Optional[Dict[str, PlanEstimate]]:
        """The estimates :meth:`method_for` memoised for this verdict,
        or None when they were never computed or have been evicted."""
        return self._estimates_memo.peek(
            ("estimates", shard, int(c), bool(exact)), stamp
        )

    def record(
        self,
        method: str,
        n_queries: int,
        elapsed_s: float,
        units_per_query: float,
    ) -> None:
        """Executor hook: feed an observed operator timing back in."""
        self.feedback.observe(method, n_queries, elapsed_s, units_per_query)
