"""The unified execution-plan pipeline (one planner, one cache, one
snapshot binding — see ``docs/architecture.md``).

Every query path — :class:`~repro.query.engine.QueryEngine`,
:class:`~repro.query.sharded.ShardedQueryEngine`, and the three server
front ends — compiles requests into the plan IR of
:mod:`repro.query.pipeline.plan`, binds them to one pinned snapshot
(:mod:`repro.query.pipeline.binding`), consults the single
statistics-backed planner (:mod:`repro.query.pipeline.planner`), caches
materialised processors in the one epoch-keyed
:class:`~repro.query.pipeline.cache.ProcessorCache`, and runs them
through the shared :class:`~repro.query.pipeline.executor.PlanExecutor`,
which reports observed op timings back to the planner.
"""

from repro.query.pipeline.binding import (
    EngineBinding,
    RouterBinding,
    ServerSnapshotBinding,
    SnapshotBinding,
)
from repro.query.pipeline.cache import CacheStats, ProcessorCache
from repro.query.pipeline.executor import (
    PlanExecutor,
    PlanRuntime,
    build_group_plan,
    build_sharded_plan,
)
from repro.query.pipeline.gather import (
    HitPartial,
    index_hits,
    merge_hit_partials,
    scan_hits,
)
from repro.query.pipeline.plan import (
    ENGINE_POLICY,
    SCALAR_POLICY,
    VECTORISED_POLICY,
    CoverOp,
    ExecutionPlan,
    ExecutionPolicy,
    FallbackOp,
    MergeOp,
    PlanContext,
    PlanReport,
    ScanOp,
    format_plan,
)
from repro.query.pipeline.planner import PipelinePlanner, PlannerFeedback

__all__ = [
    "ENGINE_POLICY",
    "SCALAR_POLICY",
    "VECTORISED_POLICY",
    "CacheStats",
    "CoverOp",
    "EngineBinding",
    "ExecutionPlan",
    "ExecutionPolicy",
    "FallbackOp",
    "HitPartial",
    "MergeOp",
    "PipelinePlanner",
    "PlanContext",
    "PlanExecutor",
    "PlanReport",
    "PlanRuntime",
    "PlannerFeedback",
    "ProcessorCache",
    "RouterBinding",
    "ScanOp",
    "ServerSnapshotBinding",
    "SnapshotBinding",
    "build_group_plan",
    "build_sharded_plan",
    "format_plan",
    "merge_hit_partials",
    "index_hits",
    "scan_hits",
    ]
