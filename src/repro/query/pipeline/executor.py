"""One executor for every plan, plus the builders that write plans.

The :class:`PlanExecutor` runs an
:class:`~repro.query.pipeline.plan.ExecutionPlan` against its pinned
binding and is the only place operator dispatch lives:

* **scatter-shaped plans** — processors are materialised serially first
  (through the owner's epoch-keyed cache, so miss costs stay predictable
  and concurrent callers never build twice), then each op answers its
  query group with ``process_batch`` (or the scalar loop, per the op's
  build-time ``vectorise`` flag) — serially below the policy's
  ``min_parallel_queries``, fanned across the worker pool above it.
  Fallback ops recurse into their exact sub-plan.
* **merge-shaped plans** — every hit-emitting scan runs as one pool task
  and the partials gather through
  :func:`~repro.query.pipeline.gather.merge_hit_partials` — exact and
  partition-independent.

Every operator's wall time is reported to the planner feedback (when
wired), closing the loop that recalibrates ``method="auto"``; pass a
:class:`~repro.query.pipeline.plan.PlanReport` to also collect per-op
timings for ``cli explain``.

The owner supplies a :class:`PlanRuntime` — the two callables that know
how to materialise a processor or produce hit triples for a bound
context.  That is all that is left of the four historical execution
paths.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.query.base import (
    BatchResult,
    PointQueryProcessor,
    QueryBatch,
    process_batch,
    process_batch_scalar,
)
from repro.query.executor import BatchExecutor, group_queries_by_window
from repro.query.pipeline.binding import BoundSlice, RouterBinding, SnapshotBinding
from repro.query.pipeline.gather import HitPartial, merge_hit_partials
from repro.query.pipeline.plan import (
    VECTORISED_POLICY,
    CoverOp,
    ExecutionPlan,
    ExecutionPolicy,
    FallbackOp,
    MergeOp,
    PlanContext,
    PlanReport,
    PrunedOp,
    ScanOp,
)
from repro.query.pipeline.planner import PipelinePlanner

__all__ = [
    "PlanRuntime",
    "PlanExecutor",
    "build_group_plan",
    "build_sharded_plan",
]

ResultOp = Union[ScanOp, CoverOp]


@dataclass
class PlanRuntime:
    """How one engine materialises the executor's two primitives.

    ``processor`` maps a result-emitting op and its bound slice to an
    immutable processor (through the owner's :class:`ProcessorCache`);
    ``hits`` maps a hit-emitting scan and its bound slice to a local
    :data:`HitPartial` (probe indices local to the op's queries).  The
    binding is the plan's — the executor resolves each op's context
    through it, so execution reads exactly the rows the builder pinned.
    """

    binding: SnapshotBinding
    processor: Optional[Callable[[ResultOp, BoundSlice], PointQueryProcessor]] = None
    hits: Optional[Callable[..., HitPartial]] = None
    #: Optional warm-up for hit-emitting scans (e.g. materialise the
    #: index) — run inside the pool task but *outside* the timed region,
    #: so one-time build costs never pollute the planner's observed
    #: per-query timings (the scatter path gets the same guarantee from
    #: its serial pre-materialisation).  Whatever it returns is handed to
    #: ``hits`` as the third argument, so the prepared object cannot be
    #: evicted-and-rebuilt (inside the timer) between the two calls.
    prepare_hits: Optional[Callable[[ScanOp, BoundSlice], object]] = None

    def _bound(self, op) -> BoundSlice:
        return self.binding.slice_for(op.context.shard, op.context.window_c)

    def processor_for(self, op: ResultOp) -> PointQueryProcessor:
        if self.processor is None:
            raise RuntimeError("runtime has no processor materialiser")
        return self.processor(op, self._bound(op))

    def prepare_hit_partial(self, op: ScanOp):
        if self.prepare_hits is None:
            return None
        return self.prepare_hits(op, self._bound(op))

    def hit_partial(self, op: ScanOp, prepared=None) -> HitPartial:
        if self.hits is None:
            raise RuntimeError("runtime has no hit scanner")
        return self.hits(op, self._bound(op), prepared)


class PlanExecutor:
    """Runs plans; owns no state beyond its wiring."""

    def __init__(
        self,
        runtime: PlanRuntime,
        pool: Optional[BatchExecutor] = None,
        planner: Optional[PipelinePlanner] = None,
        load: Optional[Callable[[int, int, float, Optional[float]], None]] = None,
    ) -> None:
        self.runtime = runtime
        self.pool = pool
        self.planner = planner
        # Optional shard-load observer ``(shard, n_queries, units,
        # seconds)`` — the router's ShardLoadTracker when the owning
        # engine wires one, feeding the adaptive rebalancer.
        self.load = load

    def execute(
        self, plan: ExecutionPlan, report: Optional[PlanReport] = None
    ) -> BatchResult:
        start = time.perf_counter()
        result = self._run(plan, report)
        if report is not None:
            report.total_s += time.perf_counter() - start
            report.ops_pruned += plan.ops_pruned
            report.ops_kept += plan.ops_kept
        return result

    # -- internals ----------------------------------------------------------

    def _observe(
        self, op: ResultOp, elapsed: float, report: Optional[PlanReport]
    ) -> None:
        # Feedback needs the method's own *evaluation* unit estimate to
        # normalise the wall time onto the cost model's axis — the timed
        # region excludes preparation, so the amortised prep share must
        # be stripped from the denominator too (else a method with a big
        # amortised build scores as if builds were free).  Ops without an
        # estimate (fixed methods the planner never priced) are not
        # observations — there is no auto choice they could inform.
        if self.planner is not None and op.eval_unit_cost is not None:
            self.planner.record(
                op.method, len(op.queries), elapsed, op.eval_unit_cost
            )
        if self.load is not None and op.context.shard is not None:
            # Scan-unit load on the planner's cost axis; ops the planner
            # never priced fall back to rows-per-query (the naive scan's
            # exact unit count, and a sane upper bound for index scans).
            per_query = (
                op.eval_unit_cost
                if op.eval_unit_cost is not None
                else float(max(op.context.n_rows, 1))
            )
            self.load(
                op.context.shard, len(op.queries), per_query * len(op.queries), elapsed
            )
        if report is not None:
            report.record(op, elapsed)

    def _run(self, plan: ExecutionPlan, report: Optional[PlanReport]) -> BatchResult:
        if plan.merge is not None:
            return self._run_merge(plan, report)
        return self._run_scatter(plan, report)

    def _run_merge(self, plan: ExecutionPlan, report: Optional[PlanReport]) -> BatchResult:
        def run_hit(op: ScanOp) -> HitPartial:
            # Warm-up (index build) inside the pool task, outside the
            # timer: observed timings must reflect scan cost only.  The
            # prepared object travels by hand so cache pressure between
            # the two calls cannot force a rebuild inside the timer.
            prepared = self.runtime.prepare_hit_partial(op)
            t0 = time.perf_counter()
            probe, gid, vals = self.runtime.hit_partial(op, prepared)
            self._observe(op, time.perf_counter() - t0, report)
            # Local probe indices -> positions in the plan's query stream.
            return op.positions[probe], gid, vals

        ops: Sequence[ScanOp] = plan.ops  # type: ignore[assignment]
        if self.pool is not None:
            partials = self.pool.map(run_hit, list(ops))
        else:
            partials = [run_hit(op) for op in ops]
        merge = plan.merge
        assert merge is not None
        return merge_hit_partials(
            merge.n_queries, merge.n_stream_rows, partials, plan.queries
        )

    def _run_scatter(self, plan: ExecutionPlan, report: Optional[PlanReport]) -> BatchResult:
        result_ops: List[ResultOp] = []
        fallback_ops: List[FallbackOp] = []
        for op in plan.ops:
            if isinstance(op, FallbackOp):
                fallback_ops.append(op)
            else:
                result_ops.append(op)

        # Serial materialisation: cache + builder are guarded, and pool
        # threads must only ever touch immutable processors.
        pairs: List[Tuple[ResultOp, PointQueryProcessor]] = [
            (op, self.runtime.processor_for(op)) for op in result_ops
        ]

        def run_one(pair: Tuple[ResultOp, PointQueryProcessor]) -> BatchResult:
            op, proc = pair
            t0 = time.perf_counter()
            vectorise = not isinstance(op, ScanOp) or op.vectorise
            if vectorise:
                res = process_batch(proc, op.queries)
            else:
                res = process_batch_scalar(proc, op.queries)
            self._observe(op, time.perf_counter() - t0, report)
            return res

        total = sum(len(op.queries) for op in result_ops)
        if self.pool is None or total < plan.policy.min_parallel_queries:
            results = [run_one(pair) for pair in pairs]
        else:
            results = self.pool.map(run_one, pairs)

        # Single op covering the whole stream: already in stream order.
        if (
            len(result_ops) == 1
            and not fallback_ops
            and len(result_ops[0].queries) == plan.n_queries
        ):
            return results[0]

        n = plan.n_queries
        values = np.full(n, np.nan)
        support = np.zeros(n, dtype=np.int64)
        answered = np.zeros(n, dtype=bool)
        for op, res in zip(result_ops, results):
            idx = op.positions
            values[idx] = res.values
            support[idx] = res.support
            answered[idx] = res.answered
        for fop in fallback_ops:
            res = self._run(fop.plan, report)
            idx = fop.positions
            values[idx] = res.values
            support[idx] = res.support
            answered[idx] = res.answered
        return BatchResult(plan.queries, values, support, answered)


# -- plan builders ----------------------------------------------------------


def build_group_plan(
    binding: SnapshotBinding,
    queries: QueryBatch,
    method: str,
    policy: ExecutionPolicy,
    planner: Optional[PipelinePlanner] = None,
    seed_cover: Optional[Callable[[int, int, object], None]] = None,
    want_estimates: bool = False,
    groups: Optional[Sequence[Tuple[int, np.ndarray, QueryBatch]]] = None,
    radius_m: Optional[float] = None,
    prune: bool = False,
) -> ExecutionPlan:
    """Scatter-shaped plan: one op per window group (unsharded/server).

    ``method="auto"`` consults the planner per group over the bound
    slice's statistics; fixed methods skip planning entirely.
    ``seed_cover`` is the owner's cover-cache writer ``(window, stamp,
    processor)`` the planner seeds when pricing a model-cover plan
    already paid for the fit — without it, an auto model-cover verdict
    would run the same Ad-KMN fit a second time at execution.
    ``want_estimates`` additionally prices each op for ``explain``.
    ``groups`` overrides the window grouping with caller-provided
    ``(window, positions, queries)`` triples (positions must index into
    ``queries``) — the :meth:`QueryEngine.process_groups` path.

    With ``prune=True`` (and a ``radius_m``), a raw-data group whose
    window zone map proves *every* query disk empty is dropped whole:
    its queries come back unanswered (NaN), exactly what the scan would
    have produced.  Only whole groups are pruned — per-query masking
    would regroup the batch across the policy's vectorisation threshold
    and change float summation order, breaking bit-stability.  Cover
    groups are never pruned: a model answers regardless of distance.
    """
    if not len(queries):
        return ExecutionPlan(binding, queries, (), None, policy, method)
    if groups is None:
        groups = [
            (g.window_c, g.indices, g.queries)
            for g in group_queries_by_window(
                queries, None, windows_for_times=binding.windows_for_times
            )
        ]
    ops: List[ResultOp] = []
    pruned: List[PrunedOp] = []
    for c, positions, group_queries in groups:
        stamp, sub, _ = binding.slice_for(None, c)
        if (
            prune
            and radius_m is not None
            and method != "model-cover"
            and method != "auto"
        ):
            sketch = binding.sketch_for(None, c)
            if not sketch.disk_overlaps(
                group_queries.x, group_queries.y, radius_m
            ).any():
                pruned.append(
                    PrunedOp(
                        PlanContext(c, None, stamp, len(sub)),
                        len(group_queries),
                        "sketch" if len(sub) else "empty",
                    )
                )
                continue
        chosen = method
        if method == "auto":
            if planner is None:
                raise ValueError('method="auto" needs a planner')
            seeder = None
            if seed_cover is not None:
                def seeder(proc, c=c, stamp=stamp):
                    seed_cover(c, stamp, proc)
            chosen = planner.method_for(
                None, c, stamp, sub,
                exact=planner.profile.needs_exact_average,
                seed_cover=seeder,
            )
        est = eval_est = None
        if want_estimates:
            est, eval_est = _estimate(
                planner, sub, chosen,
                exact=planner.profile.needs_exact_average if planner else False,
                shard=None, c=c, stamp=stamp,
            )
        context = PlanContext(c, None, stamp, len(sub))
        if chosen == "model-cover":
            ops.append(CoverOp(context, positions, group_queries, est, eval_est))
        else:
            ops.append(
                ScanOp(
                    context,
                    chosen,
                    positions,
                    group_queries,
                    emit="result",
                    vectorise=len(group_queries) >= policy.min_vectorised_group,
                    est_unit_cost=est,
                    eval_unit_cost=eval_est,
                )
            )
    return ExecutionPlan(
        binding, queries, tuple(ops), None, policy, method, pruned=tuple(pruned)
    )


def build_sharded_plan(
    binding: RouterBinding,
    queries: QueryBatch,
    method: str,
    planner: PipelinePlanner,
    radius_m: float,
    policy: ExecutionPolicy = VECTORISED_POLICY,
    seed_cover: Optional[Callable[[int, int, int, object], None]] = None,
    want_estimates: bool = False,
    prune: bool = True,
    replicas: Optional[Mapping[int, int]] = None,
) -> ExecutionPlan:
    """Plan for the region-sharded scatter-gather engine.

    Exact methods (and exact-profile ``auto``) compile to a merge-shaped
    plan; ``model-cover`` (and model-tolerant ``auto``) compile to
    owner-shard cover ops with an exact fallback sub-plan.  ``seed_cover``
    is the owner's cover-cache writer ``(shard, window, stamp, processor)``
    the planner seeds when pricing already paid for a fit.

    ``prune=True`` (the default) runs the plan-time scatter-pruning pass
    on the exact path — grid geometry plus per-(shard, window) zone-map
    sketches, see :func:`_exact_plan` — so the plan fans out to
    O(relevant shards) only.  ``prune=False`` compiles the full scatter
    (every non-empty (shard, window) op gets the whole window's
    queries); both compile to byte-identical answers, which is the
    oracle the pruning benchmark and hypothesis suites enforce.

    ``replicas`` maps hot shard ids to a read-replica count ``R > 1``:
    that shard's hit scans are split into up to ``R`` ops over disjoint
    query chunks sharing one bound context, so the executors can spread
    a hot shard's scan load across pool threads / worker processes.
    The exact gather orders hits canonically by stream position, so
    replica-split and unsplit plans are byte-identical by construction.
    """
    windows = binding.windows_for_times(queries.t)
    if method == "model-cover":
        return _cover_plan(
            binding, queries, windows, planner, radius_m, policy,
            allow_plan=False, seed_cover=seed_cover, want_estimates=want_estimates,
            prune=prune, replicas=replicas,
        )
    if method == "auto" and not planner.profile.needs_exact_average:
        return _cover_plan(
            binding, queries, windows, planner, radius_m, policy,
            allow_plan=True, seed_cover=seed_cover, want_estimates=want_estimates,
            prune=prune, replicas=replicas,
        )
    return _exact_plan(
        binding, queries, windows, method, planner, radius_m, policy,
        want_estimates, prune=prune, replicas=replicas,
    )


def _estimate(
    planner: Optional[PipelinePlanner],
    sub,
    method: str,
    exact: bool,
    shard: Optional[int],
    c: int,
    stamp: int,
) -> Tuple[Optional[float], Optional[float]]:
    """``(display units/query, evaluation units/query)`` for one op.

    Reuses the estimates :meth:`PipelinePlanner.method_for` memoised
    while planning this very verdict, so pricing a cost column never
    re-runs a pricing fit; only fixed-method explains (no verdict was
    planned) price the slice fresh.
    """
    if planner is None or not len(sub):
        return None, None
    estimates = planner.cached_estimates(shard, c, stamp, exact)
    if estimates is None:
        # Price fresh.  For a raw-data method an exact-restricted pricing
        # is sufficient (the raw estimates are identical either way) and
        # never runs the Ad-KMN fit that pricing the model-cover
        # candidate can require — explaining `--method naive` must not
        # fit covers just to fill a display column.
        estimates = planner.estimates_for(sub, exact or method != "model-cover")
    est = estimates.get(method)
    if est is None:
        return None, None
    return est.per_query_cost, planner.eval_units(est)


def _exact_plan(
    binding: RouterBinding,
    queries: QueryBatch,
    windows: np.ndarray,
    method: str,
    planner: PipelinePlanner,
    radius_m: float,
    policy: ExecutionPolicy,
    want_estimates: bool = False,
    prune: bool = True,
    replicas: Optional[Mapping[int, int]] = None,
) -> ExecutionPlan:
    """Merge-shaped plan: per-(window, shard) hit scans + exact gather.

    The pruning pass (``prune=True``) cuts the O(shards x windows)
    fan-out down to the ops that can actually contribute hits, in three
    superset-safe layers:

    1. *window cuts* — a query only ever scatters into its responsible
       global window's ops (the per-window grouping below), so history
       windows a continuous stream never touches cost nothing;
    2. *grid geometry* — per query, only the shards inside the disk's
       cell-index rectangle (:meth:`RegionGrid.disks_shard_mask`, one
       vectorised evaluation per window group);
    3. *zone-map sketches* — the pinned slice's bounding box
       (:meth:`SnapshotBinding.sketch_for`, coherent with the slice by
       construction) must be within ``radius_m`` of the query point,
       which prunes shards whose geometric cell is reachable but whose
       actual rows cluster far from the query.

    A (shard, window) candidate left with zero queries is dropped from
    the plan entirely and recorded as a :class:`PrunedOp`.  Dropped
    scans are exactly those that would have produced an empty hit
    partial, and the exact gather orders hits canonically by stream
    position — so pruned and unpruned plans are byte-identical.
    ``prune=False`` is the full scatter: every window query reaches
    every non-empty shard slice (the benchmark baseline).
    """
    grid = binding.grid
    ops: List[ScanOp] = []
    pruned: List[PrunedOp] = []
    # One vectorised geometry evaluation for the whole batch; the window
    # loop below just rows into it.
    reach_all = grid.disks_shard_mask(queries.x, queries.y, radius_m) if prune else None
    for c in np.unique(windows):
        positions = np.flatnonzero(windows == c)
        wq = queries.take(positions)
        reach = reach_all[positions] if reach_all is not None else None
        if reach is None:
            candidates = range(binding.n_shards)
        else:
            # Geometry pruning is data-independent, so shards no query
            # disk can reach are dropped *before* their slices are ever
            # resolved — pruned planning, like pruned execution, touches
            # only the relevant shards.  One vectorised reduction per
            # window splits candidates from prunees; the records'
            # stamp/rows are unpinned O(1) peeks.
            reached = reach.any(axis=0)
            if not reached.all():
                stats = binding.peek_window(int(c))
                for s in np.flatnonzero(~reached):
                    stamp, n_rows = stats[s]
                    if n_rows:
                        pruned.append(
                            PrunedOp(
                                PlanContext(int(c), int(s), stamp, n_rows),
                                len(wq),
                                "region",
                            )
                        )
            candidates = np.flatnonzero(reached)
        for s in candidates:
            s = int(s)
            if reach is not None:
                # Sketch before slice: the sketch is resident (frozen for
                # sealed windows, pinned-with-slice for open ones), so a
                # fully pruned candidate never materialises its rows —
                # on the durable tier, never faults its segment in.  The
                # sketch counts the slice's rows exactly, so the empty
                # slice skip below is equivalent to the unpruned path's.
                sketch = binding.sketch_for(s, int(c))
                if sketch.is_empty:
                    continue
                mask = reach[:, s] & sketch.disk_overlaps(wq.x, wq.y, radius_m)
                if not mask.any():
                    stamp, n_rows = binding.peek(s, int(c))
                    pruned.append(
                        PrunedOp(
                            PlanContext(int(c), s, stamp, n_rows),
                            len(wq),
                            "sketch",
                        )
                    )
                    continue
                local = np.flatnonzero(mask)
            else:
                local = None
            stamp, sub, _gids = binding.slice_for(s, int(c))
            if not len(sub):
                continue
            if local is None:
                local = np.arange(len(wq), dtype=np.intp)
            chosen = method
            est = eval_est = None
            if chosen == "auto":
                chosen = planner.method_for(s, int(c), stamp, sub, exact=True)
                # Attach the verdict's own priced estimate (memoised by
                # method_for; a cheap peek) so the executor can feed this
                # op's observed timing back on the right unit axis.
                priced = planner.cached_estimates(s, int(c), stamp, True)
                if priced is not None and chosen in priced:
                    est = priced[chosen].per_query_cost
                    eval_est = planner.eval_units(priced[chosen])
            if est is None and want_estimates:
                est, eval_est = _estimate(
                    planner, sub, chosen, exact=True, shard=s, c=int(c), stamp=stamp
                )
            context = PlanContext(int(c), s, stamp, len(sub))
            r = int(replicas.get(s, 1)) if replicas else 1
            if r > 1 and len(local) > 1:
                # Read replicas: split the hot shard's scan into up to r
                # ops over disjoint query chunks.  Every chunk binds the
                # same pinned context (same rows), and the exact gather
                # is canonical in stream position — identical answers,
                # but the executors can now run the chunks on separate
                # pool threads / worker processes.
                chunks = np.array_split(local, min(r, len(local)))
                for i, chunk in enumerate(chunks):
                    if not len(chunk):
                        continue
                    ops.append(
                        ScanOp(
                            context,
                            chosen,
                            positions[chunk],
                            wq.take(chunk),
                            emit="hits",
                            est_unit_cost=est,
                            eval_unit_cost=eval_est,
                            replica=i,
                        )
                    )
            else:
                ops.append(
                    ScanOp(
                        context,
                        chosen,
                        positions[local],
                        wq.take(local),
                        emit="hits",
                        est_unit_cost=est,
                        eval_unit_cost=eval_est,
                    )
                )
    merge = MergeOp(len(queries), binding.stream_rows())
    return ExecutionPlan(
        binding, queries, tuple(ops), merge, policy, method, pruned=tuple(pruned)
    )


def _cover_plan(
    binding: RouterBinding,
    queries: QueryBatch,
    windows: np.ndarray,
    planner: PipelinePlanner,
    radius_m: float,
    policy: ExecutionPolicy,
    allow_plan: bool,
    seed_cover: Optional[Callable[[int, int, int, object], None]],
    want_estimates: bool = False,
    prune: bool = True,
    replicas: Optional[Mapping[int, int]] = None,
) -> ExecutionPlan:
    """Owner-shard cover ops plus the exact fallback sub-plan.

    Queries whose owning shard has no tuples in the responsible window
    (or, with ``allow_plan``, whose owner's planner prefers a raw-data
    method) are collected into one :class:`FallbackOp` answered by the
    exact scatter-gather path instead.  Cover ops themselves are never
    pruned — a model answers regardless of distance to its training
    rows — but ``prune`` flows into the exact fallback sub-plan.
    """
    owners = binding.grid.shards_of(queries.x, queries.y)
    ops: List[Union[CoverOp, FallbackOp]] = []
    fallback: List[np.ndarray] = []
    for c in np.unique(windows):
        in_window = windows == c
        for s in np.unique(owners[in_window]):
            positions = np.flatnonzero(in_window & (owners == s))
            s, c = int(s), int(c)
            stamp, sub, _gids = binding.slice_for(s, c)
            if not len(sub):
                fallback.append(positions)
                continue
            if allow_plan:
                seeder = None
                if seed_cover is not None:
                    def seeder(proc, s=s, c=c, stamp=stamp):
                        seed_cover(s, c, stamp, proc)
                if (
                    planner.method_for(s, c, stamp, sub, exact=False, seed_cover=seeder)
                    != "model-cover"
                ):
                    fallback.append(positions)
                    continue
            est = eval_est = None
            if want_estimates:
                est, eval_est = _estimate(
                    planner, sub, "model-cover", exact=False, shard=s, c=c, stamp=stamp
                )
            ops.append(
                CoverOp(
                    PlanContext(c, s, stamp, len(sub)),
                    positions,
                    queries.take(positions),
                    est,
                    eval_est,
                )
            )
    if fallback:
        positions = np.concatenate(fallback)
        # From the auto path, keep the fallback on the per-shard planner
        # (exact mode) — identical answers, planned scans.
        exact_method = "auto" if allow_plan else "naive"
        sub_plan = _exact_plan(
            binding,
            queries.take(positions),
            windows[positions],
            exact_method,
            planner,
            radius_m,
            policy,
            want_estimates,
            prune=prune,
            replicas=replicas,
        )
        ops.append(FallbackOp(positions, sub_plan))
    method = "auto" if allow_plan else "model-cover"
    return ExecutionPlan(binding, queries, tuple(ops), None, policy, method)
