"""The one processor cache: an epoch-keyed bounded LRU for every path.

Before the plan-pipeline refactor three divergent cache implementations
guarded materialised processors: the query engine's stamped
``OrderedDict`` (atomic lookup-or-build under one lock), the sharded
engine's lookup/insert pair (builds outside the lock, lost races
discarded), and the server's per-window cover memo (one live entry per
window, unbounded).  :class:`ProcessorCache` replaces all three with a
single epoch-keyed bounded LRU and one uniform counter block.

**Epoch keying.**  Every entry is stored under a logical ``key`` plus a
content ``stamp`` — the epoch at which the underlying window slice last
gained tuples (see :meth:`repro.storage.engine.Database.window_epoch`
and :meth:`repro.storage.shards.ShardRouter.shard_window_epoch`).  A
lookup whose stamp differs from the stored entry's is a **stale** lookup:
the entry was built on a shorter prefix of a still-open window and must
never be served.  Stale entries are replaced in place on the next build,
so invalidation needs no explicit eviction sweep — ingest advances the
stamps, and the stale entries simply stop matching.  Sealed windows keep
frozen stamps forever, so their entries hit until LRU pressure evicts
them.

**Build disciplines.**  ``get_or_build`` supports both historical
disciplines behind one flag:

* ``shared_build=False`` (default) — the whole lookup-or-build runs under
  the cache lock, so concurrent callers never build the same processor
  twice and miss costs stay predictable (the query-engine contract);
* ``shared_build=True`` — the build runs *outside* the lock so distinct
  processors materialise in parallel; a lost insert race discards the
  duplicate (the sharded scatter-gather contract — builds only read
  immutable window slices, so duplicates are equivalent).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["CacheStats", "ProcessorCache"]


@dataclass
class CacheStats:
    """Hit/miss/eviction/stale counters for a bounded epoch-keyed cache.

    Plain integer bumps; the owning cache is responsible for doing them
    under its own lock when accessed from several threads.  ``stale``
    counts lookups that found an entry built at an outdated content
    stamp — every stale lookup is also counted as a miss (the entry
    cannot be served and is rebuilt), so ``lookups == hits + misses``
    always holds.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    stale: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache; 0.0 before any lookup."""
        n = self.lookups
        return self.hits / n if n else 0.0

    def record_hit(self) -> None:
        self.hits += 1

    def record_miss(self) -> None:
        self.misses += 1

    def record_eviction(self) -> None:
        self.evictions += 1

    def record_stale(self) -> None:
        """A lookup found an entry with an outdated content stamp.

        Callers record a miss alongside (the stale entry is rebuilt); the
        separate counter makes invalidation churn visible next to plain
        capacity misses.
        """
        self.stale += 1

    def reset(self) -> None:
        self.hits = self.misses = self.evictions = self.stale = 0

    def add(self, other: "CacheStats") -> None:
        """Accumulate another counter block (for fleet-wide aggregation)."""
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions
        self.stale += other.stale

    @classmethod
    def aggregate(cls, blocks) -> "CacheStats":
        """Sum of several counter blocks (e.g. one per shard server)."""
        total = cls()
        for block in blocks:
            total.add(block)
        return total

    def as_dict(self) -> Dict[str, float]:
        """Snapshot for reports / benchmark ``extra_info`` blocks."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "stale": self.stale,
            "hit_rate": round(self.hit_rate, 4),
        }


class ProcessorCache:
    """Bounded LRU of epoch-stamped values keyed by logical cache keys.

    ``capacity`` bounds the entry count (least recently used evicted
    first); :attr:`stats` is the live :class:`CacheStats` counter block.
    Thread-safe: all bookkeeping runs under one reentrant lock.
    """

    def __init__(self, capacity: int, stats: Optional[CacheStats] = None) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be at least 1")
        self._entries: "OrderedDict[tuple, Tuple[int, object]]" = OrderedDict()
        self._capacity = capacity
        self._lock = threading.RLock()
        self.stats = stats if stats is not None else CacheStats()

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> List[tuple]:
        """Cache keys in eviction order (least recently used first)."""
        with self._lock:
            return list(self._entries)

    def entry_stamp(self, key: tuple) -> Optional[int]:
        """Content stamp of the entry under ``key`` (None when absent)."""
        with self._lock:
            entry = self._entries.get(key)
            return None if entry is None else entry[0]

    # -- core protocol ------------------------------------------------------

    def _lookup_locked(self, key: tuple, stamp: int):
        entry = self._entries.get(key)
        if entry is not None and entry[0] == stamp:
            self._entries.move_to_end(key)
            self.stats.record_hit()
            return entry[1]
        if entry is not None and entry[0] < stamp:
            # Only a genuinely outdated entry counts as stale churn; a
            # reader pinned at an *older* snapshot probing a fresher
            # entry is just a miss for that reader, not invalidation.
            self.stats.record_stale()
        self.stats.record_miss()
        return None

    def _insert_locked(self, key: tuple, stamp: int, value):
        entry = self._entries.get(key)
        if entry is not None:
            if entry[0] == stamp:  # a racing builder won: keep its entry
                self._entries.move_to_end(key)
                return entry[1]
            if entry[0] > stamp:
                # A fresher-epoch entry already lives here.  Stamps are
                # monotone, so keep the newer entry for future readers
                # and hand this (older-snapshot) caller its own build —
                # interleaved readers pinned at successive epochs of an
                # open window must not ping-pong rebuild each other's
                # processors.
                return value
        self._entries[key] = (stamp, value)
        self._entries.move_to_end(key)
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
            self.stats.record_eviction()
        return value

    def peek(self, key: tuple, stamp: int):
        """Like :meth:`lookup` but without touching counters or recency —
        for introspection (e.g. ``explain`` reading memoised estimates)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[0] == stamp:
                return entry[1]
            return None

    def lookup(self, key: tuple, stamp: int):
        """The cached value under ``key`` at content ``stamp``, or None.

        Records a hit, or a miss (plus stale when an outdated-stamp entry
        was found).  A hit refreshes LRU recency.
        """
        with self._lock:
            return self._lookup_locked(key, stamp)

    def insert(self, key: tuple, stamp: int, value):
        """Store ``value`` under ``key`` at ``stamp``; returns the value
        the *caller* should use.  A racing builder that already inserted
        at the same stamp wins (duplicate builds of immutable processors
        are equivalent); an entry at a **newer** stamp is kept for future
        readers while the older-snapshot caller gets its own build back
        — insertion never moves a key backwards in epoch time."""
        with self._lock:
            return self._insert_locked(key, stamp, value)

    def get_or_build(
        self,
        key: tuple,
        stamp: int,
        build: Callable[[], object],
        shared_build: bool = False,
    ):
        """Serve ``key`` at ``stamp`` from cache or build-and-insert it.

        ``shared_build=False`` runs the whole lookup-or-build atomically
        under the cache lock (concurrent callers never build twice);
        ``shared_build=True`` runs the build outside the lock so distinct
        keys materialise in parallel, and a lost insert race discards the
        duplicate.
        """
        if shared_build:
            value = self.lookup(key, stamp)
            if value is not None:
                return value
            return self.insert(key, stamp, build())
        with self._lock:
            value = self._lookup_locked(key, stamp)
            if value is not None:
                return value
            return self._insert_locked(key, stamp, build())
