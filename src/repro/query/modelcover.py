"""The model-cover method (Section 2.2).

"We first find the cluster centroid µ* in µ that is nearest to
(x_l, y_l).  Then the model M* corresponding to µ* is used for
interpolating the sensor value ŝ_l."

Cost per query: an O(O) centroid scan plus one model evaluation, with O
(the number of models) typically single- to low-double-digit — versus an
O(H) scan (naive) or an index descent over H indexed tuples.  That gap is
Figure 6(a).
"""

from __future__ import annotations

import numpy as np

from repro.core.cover import ModelCover
from repro.data.tuples import QueryTuple
from repro.query.base import BatchResult, QueryBatch, QueryResult


class ModelCoverProcessor:
    """Nearest-centroid model evaluation against a fitted cover."""

    name = "model-cover"

    def __init__(self, cover: ModelCover) -> None:
        self._cover = cover
        # Unpack centroids into flat Python lists once: the per-query scan
        # then runs on unboxed floats, the same engineering the naive scan
        # gets, keeping the efficiency comparison honest.
        self._cx = cover.centroids[:, 0].tolist()
        self._cy = cover.centroids[:, 1].tolist()
        self._models = list(cover.models)

    @property
    def cover(self) -> ModelCover:
        return self._cover

    def process(self, query: QueryTuple) -> QueryResult:
        cx, cy = self._cx, self._cy
        qx, qy = query.x, query.y
        best = 0
        dx = cx[0] - qx
        dy = cy[0] - qy
        best_d2 = dx * dx + dy * dy
        for k in range(1, len(cx)):
            dx = cx[k] - qx
            dy = cy[k] - qy
            d2 = dx * dx + dy * dy
            if d2 < best_d2:
                best_d2 = d2
                best = k
        value = self._models[best].predict(query.t, qx, qy)
        return QueryResult(query=query, value=value, support=1)

    def process_batch(self, queries: QueryBatch) -> BatchResult:
        """Vectorised cover evaluation.

        Delegates to :meth:`ModelCover.predict_batch`: one ``(m, O)``
        distance matrix assigns every query its owning centroid, then
        each model evaluates all of its assigned queries in a single
        ``predict_batch`` call — the matrix-op path a 1200-cell heatmap
        grid wants, instead of 1200 interpreted centroid scans.
        """
        m = len(queries)
        values = self._cover.predict_batch(queries.t, queries.x, queries.y)
        # The cover always answers (support = the one owning model); a NaN
        # prediction is still an answer, so pass the mask explicitly.
        return BatchResult(
            queries,
            values,
            np.ones(m, dtype=np.int64),
            answered=np.ones(m, dtype=bool),
        )
