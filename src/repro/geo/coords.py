"""Coordinates, distances and bounding boxes.

All query processing in the reproduction happens in a *local tangent-plane*
frame measured in metres, produced by :class:`LocalProjection`.  Radius
searches (``r = 1 km`` in the paper) are therefore plain Euclidean disk
queries, which matches how the paper's Python R-tree/VP-tree baselines
operated on projected coordinates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple

EARTH_RADIUS_M = 6_371_008.8
"""Mean Earth radius in metres (IUGG)."""


def haversine_m(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance in metres between two WGS84 points.

    Used when generating the Lausanne dataset (bus odometry along the street
    graph) and when validating the local projection.
    """
    phi1 = math.radians(lat1)
    phi2 = math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlam = math.radians(lon2 - lon1)
    a = math.sin(dphi / 2.0) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(a)))


def euclidean(x1: float, y1: float, x2: float, y2: float) -> float:
    """Planar Euclidean distance in the local frame (metres)."""
    dx = x1 - x2
    dy = y1 - y2
    return math.hypot(dx, dy)


@dataclass(frozen=True)
class LocalProjection:
    """Equirectangular projection anchored at ``(origin_lat, origin_lon)``.

    For a city-scale region (Lausanne is roughly 6 km x 4 km) the
    equirectangular approximation is accurate to well under a metre, which
    is far below the sensing noise of a mobile CO2 sensor.

    The projection maps WGS84 ``(lat, lon)`` to planar ``(x, y)`` metres
    with ``x`` pointing east and ``y`` pointing north.
    """

    origin_lat: float
    origin_lon: float

    def to_local(self, lat: float, lon: float) -> Tuple[float, float]:
        """Project a WGS84 point to local metres."""
        x = math.radians(lon - self.origin_lon) * EARTH_RADIUS_M * math.cos(
            math.radians(self.origin_lat)
        )
        y = math.radians(lat - self.origin_lat) * EARTH_RADIUS_M
        return x, y

    def to_wgs84(self, x: float, y: float) -> Tuple[float, float]:
        """Inverse-project local metres back to WGS84 ``(lat, lon)``."""
        lat = self.origin_lat + math.degrees(y / EARTH_RADIUS_M)
        lon = self.origin_lon + math.degrees(
            x / (EARTH_RADIUS_M * math.cos(math.radians(self.origin_lat)))
        )
        return lat, lon


@dataclass(frozen=True)
class BoundingBox:
    """Axis-aligned rectangle in the local frame.

    The storage engine, the R-tree and the region partitioning all use this
    as the common rectangle type.  Degenerate (point) boxes are allowed.
    """

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(
                f"invalid bounding box: ({self.min_x}, {self.min_y}) .. "
                f"({self.max_x}, {self.max_y})"
            )

    @classmethod
    def from_points(cls, points: Iterable[Tuple[float, float]]) -> "BoundingBox":
        """Smallest box enclosing ``points``; raises on an empty iterable."""
        it = iter(points)
        try:
            x0, y0 = next(it)
        except StopIteration:
            raise ValueError("cannot build a bounding box from zero points") from None
        min_x = max_x = x0
        min_y = max_y = y0
        for x, y in it:
            min_x = min(min_x, x)
            max_x = max(max_x, x)
            min_y = min(min_y, y)
            max_y = max(max_y, y)
        return cls(min_x, min_y, max_x, max_y)

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Tuple[float, float]:
        return (self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0

    def contains_point(self, x: float, y: float) -> bool:
        return self.min_x <= x <= self.max_x and self.min_y <= y <= self.max_y

    def intersects(self, other: "BoundingBox") -> bool:
        return not (
            other.min_x > self.max_x
            or other.max_x < self.min_x
            or other.min_y > self.max_y
            or other.max_y < self.min_y
        )

    def union(self, other: "BoundingBox") -> "BoundingBox":
        return BoundingBox(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def expand(self, margin: float) -> "BoundingBox":
        """Box grown by ``margin`` metres on every side."""
        if margin < 0:
            raise ValueError("margin must be non-negative")
        return BoundingBox(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )

    def min_distance_to(self, x: float, y: float) -> float:
        """Distance from ``(x, y)`` to the nearest point of the box.

        Zero when the point is inside.  This is the R-tree pruning test for
        radius searches: a subtree can be skipped when
        ``min_distance_to(q) > r``.
        """
        dx = max(self.min_x - x, 0.0, x - self.max_x)
        dy = max(self.min_y - y, 0.0, y - self.max_y)
        return math.hypot(dx, dy)

    def intersects_circle(self, x: float, y: float, radius: float) -> bool:
        return self.min_distance_to(x, y) <= radius

    def grid_points(self, nx: int, ny: int) -> Iterator[Tuple[float, float]]:
        """Yield an ``nx x ny`` lattice of points covering the box.

        Used by the heatmap renderer and by the experiment harness to place
        evaluation queries uniformly over the region.
        """
        if nx < 1 or ny < 1:
            raise ValueError("grid dimensions must be >= 1")
        for j in range(ny):
            fy = 0.5 if ny == 1 else j / (ny - 1)
            y = self.min_y + fy * self.height
            for i in range(nx):
                fx = 0.5 if nx == 1 else i / (nx - 1)
                yield self.min_x + fx * self.width, y


def bbox_of_xy(xs: Sequence[float], ys: Sequence[float]) -> BoundingBox:
    """Bounding box of parallel coordinate sequences (vector-friendly)."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    if not len(xs):
        raise ValueError("cannot build a bounding box from zero points")
    return BoundingBox(min(xs), min(ys), max(xs), max(ys))
