"""Regions and sub-regions.

The paper assumes a geographical region ``R`` over which pollution is
sensed, partitioned by the model cover into sub-regions ``R_1 .. R_O``
(Figure 1).  Ad-KMN's partition is a *Voronoi* partition induced by the
cluster centroids, so a :class:`SubRegion` is identified by its centroid
and owns the indices of the tuples assigned to it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.geo.coords import BoundingBox, euclidean


@dataclass(frozen=True)
class Region:
    """The sensed region ``R``: a named bounding box in the local frame."""

    name: str
    bounds: BoundingBox

    def contains(self, x: float, y: float) -> bool:
        return self.bounds.contains_point(x, y)


@dataclass
class SubRegion:
    """One cell ``R_k`` of the Voronoi partition induced by centroid ``µ_k``.

    ``member_indices`` index into the window ``W_c`` the partition was
    computed from; they are what the per-region model is fitted on.
    """

    centroid: Tuple[float, float]
    member_indices: List[int] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.member_indices)

    def distance_to(self, x: float, y: float) -> float:
        return euclidean(self.centroid[0], self.centroid[1], x, y)


@dataclass(frozen=True)
class RegionGrid:
    """A fixed ``nx x ny`` grid of regions tiling the sensed region ``R``.

    This is the *sharding* partition (as opposed to the Voronoi partition
    of :class:`SubRegion`, which the model cover induces per window): every
    point of the plane is owned by exactly one cell, so a tuple stream can
    be split into disjoint per-region shards.  Points outside ``bounds``
    are owned by the nearest edge cell — edge cells own unbounded slabs —
    which keeps ownership total without a catch-all shard.

    Cells are numbered row-major: cell ``(i, j)`` (column ``i``, row
    ``j``) has index ``j * nx + i``.
    """

    bounds: BoundingBox
    nx: int
    ny: int

    def __post_init__(self) -> None:
        if self.nx < 1 or self.ny < 1:
            raise ValueError("grid must have at least one cell per axis")
        if self.bounds.width <= 0 or self.bounds.height <= 0:
            raise ValueError("region grid needs a non-degenerate bounding box")

    @classmethod
    def for_shard_count(cls, bounds: BoundingBox, n: int) -> "RegionGrid":
        """The most square ``nx x ny`` factorisation of ``n`` cells.

        Prefers wider-than-tall when ``bounds`` is wider than tall (and
        vice versa) so cells stay as close to square as the factorisation
        allows; a prime ``n`` degrades to a ``1 x n`` strip.
        """
        if n < 1:
            raise ValueError("need at least one shard")
        a = int(math.isqrt(n))
        while n % a:
            a -= 1
        b = n // a  # a <= b
        if bounds.width >= bounds.height:
            return cls(bounds, nx=b, ny=a)
        return cls(bounds, nx=a, ny=b)

    @property
    def n_regions(self) -> int:
        return self.nx * self.ny

    def region(self, k: int) -> Region:
        """Cell ``k`` as a :class:`Region` (its finite core rectangle)."""
        if not 0 <= k < self.n_regions:
            raise ValueError(f"no region {k} in a {self.nx}x{self.ny} grid")
        i, j = k % self.nx, k // self.nx
        w = self.bounds.width / self.nx
        h = self.bounds.height / self.ny
        return Region(
            name=f"cell-{i},{j}",
            bounds=BoundingBox(
                self.bounds.min_x + i * w,
                self.bounds.min_y + j * h,
                self.bounds.min_x + (i + 1) * w,
                self.bounds.min_y + (j + 1) * h,
            ),
        )

    def _cells_x(self, xs: np.ndarray) -> np.ndarray:
        fx = (np.asarray(xs, dtype=np.float64) - self.bounds.min_x) / self.bounds.width
        return np.clip(np.floor(fx * self.nx).astype(np.int64), 0, self.nx - 1)

    def _cells_y(self, ys: np.ndarray) -> np.ndarray:
        fy = (np.asarray(ys, dtype=np.float64) - self.bounds.min_y) / self.bounds.height
        return np.clip(np.floor(fy * self.ny).astype(np.int64), 0, self.ny - 1)

    def shards_of(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Owning cell index per position (vectorised, total)."""
        return self._cells_y(ys) * self.nx + self._cells_x(xs)

    def shard_of(self, x: float, y: float) -> int:
        """Owning cell index of one position."""
        return int(self.shards_of(np.array([x]), np.array([y]))[0])

    def disk_cell_ranges(
        self, xs: np.ndarray, ys: np.ndarray, radius: float
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per-query cell index ranges ``(i_lo, i_hi, j_lo, j_hi)`` that a
        radius-``radius`` disk can draw owned tuples from.

        Ownership cells are monotone in each coordinate, so any tuple
        within the disk around ``(x, y)`` is owned by a cell inside the
        index rectangle of the disk's bounding square.  The rectangle is a
        (slightly conservative) superset near cell corners — harmless for
        scatter-gather, since a shard with no in-radius tuples contributes
        an empty partial.
        """
        if radius < 0:
            raise ValueError("radius must be non-negative")
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        return (
            self._cells_x(xs - radius),
            self._cells_x(xs + radius),
            self._cells_y(ys - radius),
            self._cells_y(ys + radius),
        )

    def disk_shards(self, x: float, y: float, radius: float) -> np.ndarray:
        """Cell indices a disk query must be scattered to, vectorised.

        The row-major flattening of the :meth:`disk_cell_ranges` index
        rectangle (rows outer, columns inner — the same order the old
        double loop produced).
        """
        i_lo, i_hi, j_lo, j_hi = self.disk_cell_ranges(
            np.array([x]), np.array([y]), radius
        )
        ii = np.arange(int(i_lo[0]), int(i_hi[0]) + 1, dtype=np.int64)
        jj = np.arange(int(j_lo[0]), int(j_hi[0]) + 1, dtype=np.int64)
        return (jj[:, None] * self.nx + ii[None, :]).ravel()

    def shards_overlapping_disk(self, x: float, y: float, radius: float) -> List[int]:
        """Cell indices a disk query must be scattered to (superset-safe).

        List-returning compatibility wrapper over :meth:`disk_shards`.
        """
        return self.disk_shards(x, y, radius).tolist()

    def disks_shard_mask(
        self, xs: np.ndarray, ys: np.ndarray, radius: float
    ) -> np.ndarray:
        """Batch scatter mask: ``mask[q, k]`` is True when query ``q``'s
        disk can draw owned tuples from cell ``k``.

        One vectorised evaluation of the :meth:`disk_cell_ranges`
        rectangles for a whole heatmap grid / query batch — the geometry
        half of the plan-time scatter-pruning pass.  Shape
        ``(len(xs), n_regions)``, columns in row-major cell order.
        """
        i_lo, i_hi, j_lo, j_hi = self.disk_cell_ranges(xs, ys, radius)
        i = np.arange(self.nx, dtype=np.int64)
        j = np.arange(self.ny, dtype=np.int64)
        in_i = (i_lo[:, None] <= i) & (i <= i_hi[:, None])  # (n, nx)
        in_j = (j_lo[:, None] <= j) & (j <= j_hi[:, None])  # (n, ny)
        return (in_j[:, :, None] & in_i[:, None, :]).reshape(len(in_i), -1)


def nearest_subregion(subregions: Sequence[SubRegion], x: float, y: float) -> int:
    """Index of the sub-region whose centroid is nearest to ``(x, y)``.

    This is the O(O) scan the model-cover query processor performs for
    every query tuple; O (the number of models) is small by construction,
    which is why model-cover querying beats scanning/indexing raw tuples.
    """
    if not subregions:
        raise ValueError("no subregions")
    best = 0
    best_d = subregions[0].distance_to(x, y)
    for k in range(1, len(subregions)):
        d = subregions[k].distance_to(x, y)
        if d < best_d:
            best_d = d
            best = k
    return best
