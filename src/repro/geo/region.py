"""Regions and sub-regions.

The paper assumes a geographical region ``R`` over which pollution is
sensed, partitioned by the model cover into sub-regions ``R_1 .. R_O``
(Figure 1).  Ad-KMN's partition is a *Voronoi* partition induced by the
cluster centroids, so a :class:`SubRegion` is identified by its centroid
and owns the indices of the tuples assigned to it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.geo.coords import BoundingBox, euclidean


@dataclass(frozen=True)
class Region:
    """The sensed region ``R``: a named bounding box in the local frame."""

    name: str
    bounds: BoundingBox

    def contains(self, x: float, y: float) -> bool:
        return self.bounds.contains_point(x, y)


@dataclass
class SubRegion:
    """One cell ``R_k`` of the Voronoi partition induced by centroid ``µ_k``.

    ``member_indices`` index into the window ``W_c`` the partition was
    computed from; they are what the per-region model is fitted on.
    """

    centroid: Tuple[float, float]
    member_indices: List[int] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.member_indices)

    def distance_to(self, x: float, y: float) -> float:
        return euclidean(self.centroid[0], self.centroid[1], x, y)


def nearest_subregion(subregions: Sequence[SubRegion], x: float, y: float) -> int:
    """Index of the sub-region whose centroid is nearest to ``(x, y)``.

    This is the O(O) scan the model-cover query processor performs for
    every query tuple; O (the number of models) is small by construction,
    which is why model-cover querying beats scanning/indexing raw tuples.
    """
    if not subregions:
        raise ValueError("no subregions")
    best = 0
    best_d = subregions[0].distance_to(x, y)
    for k in range(1, len(subregions)):
        d = subregions[k].distance_to(x, y)
        if d < best_d:
            best_d = d
            best = k
    return best
